# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sql_engine_test[1]_include.cmake")
include("/root/repo/build/tests/gremlin_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/db2graph_test[1]_include.cmake")
include("/root/repo/build/tests/linkbench_test[1]_include.cmake")
include("/root/repo/build/tests/property_sql_test[1]_include.cmake")
include("/root/repo/build/tests/property_graph_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/gremlin_extended_test[1]_include.cmake")
include("/root/repo/build/tests/access_control_test[1]_include.cmake")
include("/root/repo/build/tests/sql_generation_test[1]_include.cmake")
include("/root/repo/build/tests/sql_extended_test[1]_include.cmake")
include("/root/repo/build/tests/gremlin_service_test[1]_include.cmake")
