# Empty dependencies file for sql_engine_test.
# This may be replaced when dependencies are built.
