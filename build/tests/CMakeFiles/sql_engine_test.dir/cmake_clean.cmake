file(REMOVE_RECURSE
  "CMakeFiles/sql_engine_test.dir/sql_engine_test.cc.o"
  "CMakeFiles/sql_engine_test.dir/sql_engine_test.cc.o.d"
  "sql_engine_test"
  "sql_engine_test.pdb"
  "sql_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
