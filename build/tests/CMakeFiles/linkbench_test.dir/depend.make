# Empty dependencies file for linkbench_test.
# This may be replaced when dependencies are built.
