file(REMOVE_RECURSE
  "CMakeFiles/linkbench_test.dir/linkbench_test.cc.o"
  "CMakeFiles/linkbench_test.dir/linkbench_test.cc.o.d"
  "linkbench_test"
  "linkbench_test.pdb"
  "linkbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
