# Empty dependencies file for gremlin_test.
# This may be replaced when dependencies are built.
