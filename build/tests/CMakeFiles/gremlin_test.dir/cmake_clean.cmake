file(REMOVE_RECURSE
  "CMakeFiles/gremlin_test.dir/gremlin_test.cc.o"
  "CMakeFiles/gremlin_test.dir/gremlin_test.cc.o.d"
  "gremlin_test"
  "gremlin_test.pdb"
  "gremlin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
