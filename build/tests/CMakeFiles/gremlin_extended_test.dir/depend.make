# Empty dependencies file for gremlin_extended_test.
# This may be replaced when dependencies are built.
