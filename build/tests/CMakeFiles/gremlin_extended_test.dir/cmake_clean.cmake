file(REMOVE_RECURSE
  "CMakeFiles/gremlin_extended_test.dir/gremlin_extended_test.cc.o"
  "CMakeFiles/gremlin_extended_test.dir/gremlin_extended_test.cc.o.d"
  "gremlin_extended_test"
  "gremlin_extended_test.pdb"
  "gremlin_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
