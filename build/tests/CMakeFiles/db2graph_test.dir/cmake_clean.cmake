file(REMOVE_RECURSE
  "CMakeFiles/db2graph_test.dir/db2graph_test.cc.o"
  "CMakeFiles/db2graph_test.dir/db2graph_test.cc.o.d"
  "db2graph_test"
  "db2graph_test.pdb"
  "db2graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
