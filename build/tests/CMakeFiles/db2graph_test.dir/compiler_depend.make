# Empty compiler generated dependencies file for db2graph_test.
# This may be replaced when dependencies are built.
