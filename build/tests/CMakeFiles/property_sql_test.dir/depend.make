# Empty dependencies file for property_sql_test.
# This may be replaced when dependencies are built.
