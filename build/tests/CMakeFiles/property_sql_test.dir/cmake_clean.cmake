file(REMOVE_RECURSE
  "CMakeFiles/property_sql_test.dir/property_sql_test.cc.o"
  "CMakeFiles/property_sql_test.dir/property_sql_test.cc.o.d"
  "property_sql_test"
  "property_sql_test.pdb"
  "property_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
