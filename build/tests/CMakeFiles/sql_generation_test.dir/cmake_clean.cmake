file(REMOVE_RECURSE
  "CMakeFiles/sql_generation_test.dir/sql_generation_test.cc.o"
  "CMakeFiles/sql_generation_test.dir/sql_generation_test.cc.o.d"
  "sql_generation_test"
  "sql_generation_test.pdb"
  "sql_generation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
