# Empty dependencies file for sql_generation_test.
# This may be replaced when dependencies are built.
