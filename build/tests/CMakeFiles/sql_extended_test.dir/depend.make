# Empty dependencies file for sql_extended_test.
# This may be replaced when dependencies are built.
