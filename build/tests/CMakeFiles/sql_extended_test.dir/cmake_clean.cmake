file(REMOVE_RECURSE
  "CMakeFiles/sql_extended_test.dir/sql_extended_test.cc.o"
  "CMakeFiles/sql_extended_test.dir/sql_extended_test.cc.o.d"
  "sql_extended_test"
  "sql_extended_test.pdb"
  "sql_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
