file(REMOVE_RECURSE
  "CMakeFiles/gremlin_service_test.dir/gremlin_service_test.cc.o"
  "CMakeFiles/gremlin_service_test.dir/gremlin_service_test.cc.o.d"
  "gremlin_service_test"
  "gremlin_service_test.pdb"
  "gremlin_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
