# Empty compiler generated dependencies file for gremlin_service_test.
# This may be replaced when dependencies are built.
