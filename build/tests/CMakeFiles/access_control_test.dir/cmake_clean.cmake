file(REMOVE_RECURSE
  "CMakeFiles/access_control_test.dir/access_control_test.cc.o"
  "CMakeFiles/access_control_test.dir/access_control_test.cc.o.d"
  "access_control_test"
  "access_control_test.pdb"
  "access_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
