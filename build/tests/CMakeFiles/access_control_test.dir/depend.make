# Empty dependencies file for access_control_test.
# This may be replaced when dependencies are built.
