file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_strategies.dir/bench_fig4_strategies.cc.o"
  "CMakeFiles/bench_fig4_strategies.dir/bench_fig4_strategies.cc.o.d"
  "bench_fig4_strategies"
  "bench_fig4_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
