file(REMOVE_RECURSE
  "CMakeFiles/bench_synergy_pipeline.dir/bench_synergy_pipeline.cc.o"
  "CMakeFiles/bench_synergy_pipeline.dir/bench_synergy_pipeline.cc.o.d"
  "bench_synergy_pipeline"
  "bench_synergy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synergy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
