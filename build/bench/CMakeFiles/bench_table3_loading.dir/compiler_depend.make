# Empty compiler generated dependencies file for bench_table3_loading.
# This may be replaced when dependencies are built.
