file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_loading.dir/bench_table3_loading.cc.o"
  "CMakeFiles/bench_table3_loading.dir/bench_table3_loading.cc.o.d"
  "bench_table3_loading"
  "bench_table3_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
