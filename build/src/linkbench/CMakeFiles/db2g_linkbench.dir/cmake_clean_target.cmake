file(REMOVE_RECURSE
  "libdb2g_linkbench.a"
)
