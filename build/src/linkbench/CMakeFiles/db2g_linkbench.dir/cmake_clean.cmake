file(REMOVE_RECURSE
  "CMakeFiles/db2g_linkbench.dir/linkbench.cc.o"
  "CMakeFiles/db2g_linkbench.dir/linkbench.cc.o.d"
  "CMakeFiles/db2g_linkbench.dir/partitioned.cc.o"
  "CMakeFiles/db2g_linkbench.dir/partitioned.cc.o.d"
  "libdb2g_linkbench.a"
  "libdb2g_linkbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_linkbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
