# Empty dependencies file for db2g_linkbench.
# This may be replaced when dependencies are built.
