# Empty dependencies file for db2g_overlay.
# This may be replaced when dependencies are built.
