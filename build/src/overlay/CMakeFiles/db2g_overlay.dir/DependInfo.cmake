
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/auto_overlay.cc" "src/overlay/CMakeFiles/db2g_overlay.dir/auto_overlay.cc.o" "gcc" "src/overlay/CMakeFiles/db2g_overlay.dir/auto_overlay.cc.o.d"
  "/root/repo/src/overlay/config.cc" "src/overlay/CMakeFiles/db2g_overlay.dir/config.cc.o" "gcc" "src/overlay/CMakeFiles/db2g_overlay.dir/config.cc.o.d"
  "/root/repo/src/overlay/topology.cc" "src/overlay/CMakeFiles/db2g_overlay.dir/topology.cc.o" "gcc" "src/overlay/CMakeFiles/db2g_overlay.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/db2g_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
