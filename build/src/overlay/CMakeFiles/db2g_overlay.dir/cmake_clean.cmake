file(REMOVE_RECURSE
  "CMakeFiles/db2g_overlay.dir/auto_overlay.cc.o"
  "CMakeFiles/db2g_overlay.dir/auto_overlay.cc.o.d"
  "CMakeFiles/db2g_overlay.dir/config.cc.o"
  "CMakeFiles/db2g_overlay.dir/config.cc.o.d"
  "CMakeFiles/db2g_overlay.dir/topology.cc.o"
  "CMakeFiles/db2g_overlay.dir/topology.cc.o.d"
  "libdb2g_overlay.a"
  "libdb2g_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
