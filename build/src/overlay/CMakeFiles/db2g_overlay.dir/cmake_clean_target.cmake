file(REMOVE_RECURSE
  "libdb2g_overlay.a"
)
