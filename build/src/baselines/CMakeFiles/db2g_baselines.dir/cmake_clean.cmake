file(REMOVE_RECURSE
  "CMakeFiles/db2g_baselines.dir/codec.cc.o"
  "CMakeFiles/db2g_baselines.dir/codec.cc.o.d"
  "CMakeFiles/db2g_baselines.dir/janus_like.cc.o"
  "CMakeFiles/db2g_baselines.dir/janus_like.cc.o.d"
  "CMakeFiles/db2g_baselines.dir/kvstore.cc.o"
  "CMakeFiles/db2g_baselines.dir/kvstore.cc.o.d"
  "CMakeFiles/db2g_baselines.dir/loader.cc.o"
  "CMakeFiles/db2g_baselines.dir/loader.cc.o.d"
  "CMakeFiles/db2g_baselines.dir/native_graph.cc.o"
  "CMakeFiles/db2g_baselines.dir/native_graph.cc.o.d"
  "libdb2g_baselines.a"
  "libdb2g_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
