file(REMOVE_RECURSE
  "libdb2g_baselines.a"
)
