# Empty compiler generated dependencies file for db2g_baselines.
# This may be replaced when dependencies are built.
