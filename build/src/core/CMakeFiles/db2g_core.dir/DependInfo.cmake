
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/db2graph.cc" "src/core/CMakeFiles/db2g_core.dir/db2graph.cc.o" "gcc" "src/core/CMakeFiles/db2g_core.dir/db2graph.cc.o.d"
  "/root/repo/src/core/graph_structure.cc" "src/core/CMakeFiles/db2g_core.dir/graph_structure.cc.o" "gcc" "src/core/CMakeFiles/db2g_core.dir/graph_structure.cc.o.d"
  "/root/repo/src/core/gremlin_service.cc" "src/core/CMakeFiles/db2g_core.dir/gremlin_service.cc.o" "gcc" "src/core/CMakeFiles/db2g_core.dir/gremlin_service.cc.o.d"
  "/root/repo/src/core/sql_dialect.cc" "src/core/CMakeFiles/db2g_core.dir/sql_dialect.cc.o" "gcc" "src/core/CMakeFiles/db2g_core.dir/sql_dialect.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/core/CMakeFiles/db2g_core.dir/strategies.cc.o" "gcc" "src/core/CMakeFiles/db2g_core.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/db2g_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/gremlin/CMakeFiles/db2g_gremlin.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/db2g_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
