# Empty dependencies file for db2g_core.
# This may be replaced when dependencies are built.
