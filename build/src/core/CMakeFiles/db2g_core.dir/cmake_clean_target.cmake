file(REMOVE_RECURSE
  "libdb2g_core.a"
)
