file(REMOVE_RECURSE
  "CMakeFiles/db2g_core.dir/db2graph.cc.o"
  "CMakeFiles/db2g_core.dir/db2graph.cc.o.d"
  "CMakeFiles/db2g_core.dir/graph_structure.cc.o"
  "CMakeFiles/db2g_core.dir/graph_structure.cc.o.d"
  "CMakeFiles/db2g_core.dir/gremlin_service.cc.o"
  "CMakeFiles/db2g_core.dir/gremlin_service.cc.o.d"
  "CMakeFiles/db2g_core.dir/sql_dialect.cc.o"
  "CMakeFiles/db2g_core.dir/sql_dialect.cc.o.d"
  "CMakeFiles/db2g_core.dir/strategies.cc.o"
  "CMakeFiles/db2g_core.dir/strategies.cc.o.d"
  "libdb2g_core.a"
  "libdb2g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
