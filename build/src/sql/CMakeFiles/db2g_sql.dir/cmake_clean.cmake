file(REMOVE_RECURSE
  "CMakeFiles/db2g_sql.dir/database.cc.o"
  "CMakeFiles/db2g_sql.dir/database.cc.o.d"
  "CMakeFiles/db2g_sql.dir/executor.cc.o"
  "CMakeFiles/db2g_sql.dir/executor.cc.o.d"
  "CMakeFiles/db2g_sql.dir/expr.cc.o"
  "CMakeFiles/db2g_sql.dir/expr.cc.o.d"
  "CMakeFiles/db2g_sql.dir/lexer.cc.o"
  "CMakeFiles/db2g_sql.dir/lexer.cc.o.d"
  "CMakeFiles/db2g_sql.dir/parser.cc.o"
  "CMakeFiles/db2g_sql.dir/parser.cc.o.d"
  "CMakeFiles/db2g_sql.dir/result_set.cc.o"
  "CMakeFiles/db2g_sql.dir/result_set.cc.o.d"
  "CMakeFiles/db2g_sql.dir/schema.cc.o"
  "CMakeFiles/db2g_sql.dir/schema.cc.o.d"
  "CMakeFiles/db2g_sql.dir/table.cc.o"
  "CMakeFiles/db2g_sql.dir/table.cc.o.d"
  "libdb2g_sql.a"
  "libdb2g_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
