# Empty compiler generated dependencies file for db2g_sql.
# This may be replaced when dependencies are built.
