file(REMOVE_RECURSE
  "libdb2g_sql.a"
)
