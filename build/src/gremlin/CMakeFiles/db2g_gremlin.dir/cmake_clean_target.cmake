file(REMOVE_RECURSE
  "libdb2g_gremlin.a"
)
