file(REMOVE_RECURSE
  "CMakeFiles/db2g_gremlin.dir/graph_api.cc.o"
  "CMakeFiles/db2g_gremlin.dir/graph_api.cc.o.d"
  "CMakeFiles/db2g_gremlin.dir/interpreter.cc.o"
  "CMakeFiles/db2g_gremlin.dir/interpreter.cc.o.d"
  "CMakeFiles/db2g_gremlin.dir/parser.cc.o"
  "CMakeFiles/db2g_gremlin.dir/parser.cc.o.d"
  "CMakeFiles/db2g_gremlin.dir/step.cc.o"
  "CMakeFiles/db2g_gremlin.dir/step.cc.o.d"
  "libdb2g_gremlin.a"
  "libdb2g_gremlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_gremlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
