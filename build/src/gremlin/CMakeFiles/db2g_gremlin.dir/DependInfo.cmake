
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gremlin/graph_api.cc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/graph_api.cc.o" "gcc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/graph_api.cc.o.d"
  "/root/repo/src/gremlin/interpreter.cc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/interpreter.cc.o" "gcc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/interpreter.cc.o.d"
  "/root/repo/src/gremlin/parser.cc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/parser.cc.o" "gcc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/parser.cc.o.d"
  "/root/repo/src/gremlin/step.cc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/step.cc.o" "gcc" "src/gremlin/CMakeFiles/db2g_gremlin.dir/step.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/db2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
