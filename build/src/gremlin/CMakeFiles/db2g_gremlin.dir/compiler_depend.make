# Empty compiler generated dependencies file for db2g_gremlin.
# This may be replaced when dependencies are built.
