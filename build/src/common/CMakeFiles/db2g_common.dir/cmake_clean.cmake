file(REMOVE_RECURSE
  "CMakeFiles/db2g_common.dir/json.cc.o"
  "CMakeFiles/db2g_common.dir/json.cc.o.d"
  "CMakeFiles/db2g_common.dir/strings.cc.o"
  "CMakeFiles/db2g_common.dir/strings.cc.o.d"
  "CMakeFiles/db2g_common.dir/value.cc.o"
  "CMakeFiles/db2g_common.dir/value.cc.o.d"
  "libdb2g_common.a"
  "libdb2g_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db2g_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
