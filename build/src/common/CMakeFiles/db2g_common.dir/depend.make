# Empty dependencies file for db2g_common.
# This may be replaced when dependencies are built.
