file(REMOVE_RECURSE
  "libdb2g_common.a"
)
