# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_healthcare_analytics "/root/repo/build/examples/healthcare_analytics")
set_tests_properties(example_healthcare_analytics PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fraud_detection "/root/repo/build/examples/fraud_detection")
set_tests_properties(example_fraud_detection PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_law_enforcement "/root/repo/build/examples/law_enforcement")
set_tests_properties(example_law_enforcement PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overlay_views "/root/repo/build/examples/overlay_views")
set_tests_properties(example_overlay_views PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_temporal_graph "/root/repo/build/examples/temporal_graph")
set_tests_properties(example_temporal_graph PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gremlin_console "sh" "-c" "/root/repo/build/examples/gremlin_console < /dev/null")
set_tests_properties(example_gremlin_console PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
