file(REMOVE_RECURSE
  "CMakeFiles/healthcare_analytics.dir/healthcare_analytics.cpp.o"
  "CMakeFiles/healthcare_analytics.dir/healthcare_analytics.cpp.o.d"
  "healthcare_analytics"
  "healthcare_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
