# Empty dependencies file for healthcare_analytics.
# This may be replaced when dependencies are built.
