file(REMOVE_RECURSE
  "CMakeFiles/gremlin_console.dir/gremlin_console.cpp.o"
  "CMakeFiles/gremlin_console.dir/gremlin_console.cpp.o.d"
  "gremlin_console"
  "gremlin_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
