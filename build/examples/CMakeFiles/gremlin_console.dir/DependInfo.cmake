
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gremlin_console.cpp" "examples/CMakeFiles/gremlin_console.dir/gremlin_console.cpp.o" "gcc" "examples/CMakeFiles/gremlin_console.dir/gremlin_console.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/db2g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/db2g_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/linkbench/CMakeFiles/db2g_linkbench.dir/DependInfo.cmake"
  "/root/repo/build/src/gremlin/CMakeFiles/db2g_gremlin.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/db2g_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/db2g_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/db2g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
