# Empty compiler generated dependencies file for gremlin_console.
# This may be replaced when dependencies are built.
