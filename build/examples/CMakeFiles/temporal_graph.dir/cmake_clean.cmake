file(REMOVE_RECURSE
  "CMakeFiles/temporal_graph.dir/temporal_graph.cpp.o"
  "CMakeFiles/temporal_graph.dir/temporal_graph.cpp.o.d"
  "temporal_graph"
  "temporal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
