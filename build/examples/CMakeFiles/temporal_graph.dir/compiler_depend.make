# Empty compiler generated dependencies file for temporal_graph.
# This may be replaced when dependencies are built.
