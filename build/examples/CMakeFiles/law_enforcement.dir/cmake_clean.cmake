file(REMOVE_RECURSE
  "CMakeFiles/law_enforcement.dir/law_enforcement.cpp.o"
  "CMakeFiles/law_enforcement.dir/law_enforcement.cpp.o.d"
  "law_enforcement"
  "law_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/law_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
