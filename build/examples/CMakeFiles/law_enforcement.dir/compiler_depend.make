# Empty compiler generated dependencies file for law_enforcement.
# This may be replaced when dependencies are built.
