file(REMOVE_RECURSE
  "CMakeFiles/overlay_views.dir/overlay_views.cpp.o"
  "CMakeFiles/overlay_views.dir/overlay_views.cpp.o.d"
  "overlay_views"
  "overlay_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
