# Empty compiler generated dependencies file for overlay_views.
# This may be replaced when dependencies are built.
