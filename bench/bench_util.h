// Copyright (c) 2026 The db2graph-repro Authors.
//
// Shared harness pieces for the paper-reproduction benchmarks: timing,
// latency statistics, and per-system setup. Systems are built and
// measured one at a time — the paper ran each database as its own server
// process, and co-residency would distort the memory behaviour the large
// dataset is supposed to expose.

#ifndef DB2GRAPH_BENCH_BENCH_UTIL_H_
#define DB2GRAPH_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/janus_like.h"
#include "baselines/loader.h"
#include "baselines/native_graph.h"
#include "core/db2graph.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Micros() const { return Seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

inline LatencyStats Summarize(std::vector<double> micros) {
  LatencyStats stats;
  if (micros.empty()) return stats;
  double sum = 0;
  for (double m : micros) sum += m;
  stats.mean_us = sum / static_cast<double>(micros.size());
  std::sort(micros.begin(), micros.end());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * (micros.size() - 1));
    return micros[idx];
  };
  stats.p50_us = pct(0.50);
  stats.p95_us = pct(0.95);
  stats.p99_us = pct(0.99);
  return stats;
}

/// Times each query once; returns per-query latency statistics.
inline LatencyStats MeasureLatency(
    const std::function<void(const std::string&)>& run,
    const std::vector<std::string>& queries) {
  std::vector<double> micros;
  micros.reserve(queries.size());
  for (const std::string& q : queries) {
    Timer timer;
    run(q);
    micros.push_back(timer.Micros());
  }
  return Summarize(std::move(micros));
}

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= 1ull << 30) {
    std::snprintf(buf, sizeof(buf), "%.1fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= 1ull << 20) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  }
  return buf;
}

/// The graph-store object-cache capacity used throughout: sized so the
/// small dataset fits entirely and the large one thrashes (the lever
/// behind the paper's Fig. 5 10M-vs-100M crossover).
inline constexpr size_t kGraphCacheCapacity = 250000;

/// Synchronous "disk read" latency charged per cache miss in the two
/// standalone graph stores. Our backing store is RAM; this restores the
/// memory-vs-disk economics of the paper's testbed (see DESIGN.md). The
/// relational engine's data fits in its buffer pool at both scales, as
/// the paper reports for Db2.
inline constexpr double kDiskMissPenaltyUs = 8.0;

/// Relational side: dataset + MiniDb2 + an opened Db2 Graph, using the
/// partitioned layout (one table per vertex/edge type — the common
/// practice Section 5 describes, and the layout where the paper's
/// table-pruning optimizations operate).
struct RelationalSetup {
  linkbench::Dataset dataset;
  std::unique_ptr<sql::Database> db;
  std::unique_ptr<core::Db2Graph> db2graph;

  void RunDb2Graph(const std::string& q) {
    auto out = db2graph->Execute(q);
    if (!out.ok()) {
      std::fprintf(stderr, "Db2Graph error: %s\n",
                   out.status().ToString().c_str());
      std::abort();
    }
  }
};

inline RelationalSetup SetUpRelational(const linkbench::Config& config,
                                       const char* label) {
  RelationalSetup s;
  std::fprintf(stderr, "[setup] generating %s dataset...\n", label);
  s.dataset = linkbench::GeneratePartitioned(config);
  s.db = std::make_unique<sql::Database>();
  std::fprintf(stderr, "[setup] loading relational tables...\n");
  if (!linkbench::LoadIntoPartitionedDatabase(s.db.get(), s.dataset).ok()) {
    std::abort();
  }
  auto graph =
      core::Db2Graph::Open(s.db.get(), linkbench::MakePartitionedOverlay());
  if (!graph.ok()) std::abort();
  s.db2graph = std::move(*graph);
  return s;
}

inline baselines::ExportedGraph ExportFrom(sql::Database* db) {
  auto exported = baselines::ExportPartitionedLinkBenchTables(db);
  if (!exported.ok()) std::abort();
  return std::move(*exported);
}

inline std::unique_ptr<baselines::NativeGraphDb> MakeNative(
    const baselines::ExportedGraph& exported) {
  std::fprintf(stderr, "[setup] loading GDB-X...\n");
  baselines::NativeGraphDb::Options options;
  options.cache_capacity = kGraphCacheCapacity;
  options.miss_penalty_us = kDiskMissPenaltyUs;
  auto native = std::make_unique<baselines::NativeGraphDb>(options);
  if (!baselines::LoadExport(exported, native.get()).ok()) std::abort();
  if (!native->Open().ok()) std::abort();
  return native;
}

inline std::unique_ptr<baselines::JanusLikeDb> MakeJanus(
    const baselines::ExportedGraph& exported) {
  std::fprintf(stderr, "[setup] loading Janus-like...\n");
  baselines::JanusLikeDb::Options options;
  options.cache_capacity = kGraphCacheCapacity;
  options.miss_penalty_us = kDiskMissPenaltyUs;
  auto janus = std::make_unique<baselines::JanusLikeDb>(options);
  if (!baselines::LoadExport(exported, janus.get()).ok()) std::abort();
  if (!janus->Open().ok()) std::abort();
  return janus;
}

/// Parses and runs one Gremlin query on a baseline provider.
inline void RunProvider(gremlin::GraphProvider* provider,
                        const std::string& q) {
  auto script = gremlin::ParseGremlin(q);
  if (!script.ok()) std::abort();
  gremlin::Interpreter interp(provider);
  auto out = interp.RunScript(*script);
  if (!out.ok()) {
    std::fprintf(stderr, "%s error: %s\n", provider->name().c_str(),
                 out.status().ToString().c_str());
    std::abort();
  }
}

}  // namespace db2graph::bench

#endif  // DB2GRAPH_BENCH_BENCH_UTIL_H_
