// Reproduces Table 3 of the paper: graph loading time and disk usage.
// Db2 Graph queries relational data in place (only a seconds-scale graph
// open), while GDB-X and the Janus-like store must export the data out of
// the database, load it into their proprietary formats, and open.
//
// Paper shape: Db2 Graph open is ~10^3-10^4x faster than baseline
// export+load; baseline disk usage is several times the relational size.

#include <cstdio>

#include "bench/bench_util.h"
#include "linkbench/partitioned.h"

namespace {

using db2graph::bench::HumanBytes;
using db2graph::bench::Timer;


struct LoadReport {
  double db2graph_open_s = 0;
  size_t db2graph_disk = 0;
  double export_s = 0;
  double native_load_s = 0;
  double native_open_s = 0;
  size_t native_disk = 0;
  double janus_load_s = 0;
  double janus_open_s = 0;
  size_t janus_disk = 0;
};

LoadReport RunScale(const db2graph::linkbench::Config& config,
                    const char* label) {
  
  using db2graph::baselines::JanusLikeDb;
  using db2graph::baselines::LoadExport;
  using db2graph::baselines::NativeGraphDb;
  using db2graph::core::Db2Graph;

  LoadReport report;
  std::fprintf(stderr, "[table3] generating %s...\n", label);
  db2graph::linkbench::Dataset dataset =
      db2graph::linkbench::GeneratePartitioned(config);
  db2graph::sql::Database db;
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok()) {
    std::abort();
  }
  report.db2graph_disk = db.ApproxDiskBytes();

  {
    Timer timer;
    auto graph =
        Db2Graph::Open(&db, db2graph::linkbench::MakePartitionedOverlay());
    if (!graph.ok()) std::abort();
    report.db2graph_open_s = timer.Seconds();
  }
  {
    Timer timer;
    auto exported = db2graph::baselines::ExportPartitionedLinkBenchTables(&db);
    if (!exported.ok()) std::abort();
    report.export_s = timer.Seconds();

    NativeGraphDb::Options options;
    options.cache_capacity = db2graph::bench::kGraphCacheCapacity;
    NativeGraphDb native(options);
    Timer load_timer;
    if (!LoadExport(*exported, &native).ok()) std::abort();
    report.native_load_s = load_timer.Seconds();
    Timer open_timer;
    if (!native.Open().ok()) std::abort();
    report.native_open_s = open_timer.Seconds();
    report.native_disk = native.DiskBytes();

    JanusLikeDb janus;
    Timer janus_timer;
    if (!LoadExport(*exported, &janus).ok()) std::abort();
    report.janus_load_s = janus_timer.Seconds();
    Timer janus_open;
    if (!janus.Open().ok()) std::abort();
    report.janus_open_s = janus_open.Seconds();
    report.janus_disk = janus.DiskBytes();
  }
  return report;
}

}  // namespace

int main() {
  std::printf(
      "Table 3: Loading graph data into each system "
      "(Db2 Graph needs no load at all)\n\n");
  std::printf("%-9s | %9s %9s | %8s | %9s %9s %9s | %9s %9s %9s\n", "", "Db2G",
              "Db2G", "Export", "GDB-X", "GDB-X", "GDB-X", "Janus", "Janus",
              "Janus");
  std::printf("%-9s | %9s %9s | %8s | %9s %9s %9s | %9s %9s %9s\n", "Dataset",
              "Disk", "Open(ms)", "DB(s)", "Disk", "Load(s)", "Open(s)",
              "Disk", "Load(s)", "Open(s)");
  struct ScaleDef {
    const char* name;
    db2graph::linkbench::Config config;
  } scales[] = {{"LB-small", db2graph::linkbench::Config::Small()},
                {"LB-large", db2graph::linkbench::Config::Large()}};
  for (const ScaleDef& scale : scales) {
    LoadReport r = RunScale(scale.config, scale.name);
    std::printf(
        "%-9s | %9s %9.2f | %8.2f | %9s %9.2f %9.2f | %9s %9.2f %9.2f\n",
        scale.name, HumanBytes(r.db2graph_disk).c_str(),
        r.db2graph_open_s * 1e3,
        r.export_s, HumanBytes(r.native_disk).c_str(), r.native_load_s,
        r.native_open_s, HumanBytes(r.janus_disk).c_str(), r.janus_load_s,
        r.janus_open_s);
    double ratio_native =
        static_cast<double>(r.native_disk) / r.db2graph_disk;
    double ratio_janus = static_cast<double>(r.janus_disk) / r.db2graph_disk;
    std::printf(
        "          disk blow-up vs relational: GDB-X %.1fx, Janus %.1fx; "
        "total time-to-first-query: Db2G %.3fs, GDB-X %.1fs, Janus %.1fs\n",
        ratio_native, ratio_janus, r.db2graph_open_s,
        r.export_s + r.native_load_s + r.native_open_s,
        r.export_s + r.janus_load_s + r.janus_open_s);
  }
  std::printf(
      "\nPaper shape: Db2 Graph opens in seconds with zero data movement;\n"
      "baselines pay export << load, plus a multi-x disk blow-up.\n");
  return 0;
}
