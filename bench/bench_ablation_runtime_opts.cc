// Ablation of the Section 6.3 data-dependent runtime optimizations.
//
// The optimizations are deliberately redundant for the common query
// shapes (a prefixed id pins the same table that a fixed label prunes
// to), so a naive leave-one-out matrix shows nothing until everything is
// off — and "everything off" is catastrophic (every query scans every
// table). This bench instead exercises each optimization on the query
// shape where it is the *only* applicable pruning mechanism, plus the
// all-on / all-off extremes on the LinkBench mix.
//
// Layout: partitioned LinkBench (10 vertex + 10 edge tables), LB-small.

#include <cstdio>

#include "bench/bench_util.h"
#include "linkbench/partitioned.h"

namespace {

using db2graph::bench::LatencyStats;
using db2graph::bench::MeasureLatency;
using db2graph::core::Db2Graph;
using db2graph::core::RuntimeOptions;
using db2graph::linkbench::PartitionedWorkload;
using db2graph::linkbench::QueryType;

struct Scenario {
  const char* name;
  const char* query;          // fixed query exercising one optimization
  bool prefixed_overlay;      // which overlay variant to open
  RuntimeOptions off_options; // the one optimization disabled
  int iterations;             // fewer when the "off" side is slow
};

double MeasureOne(db2graph::sql::Database* db, bool prefixed,
                  const RuntimeOptions& options, const std::string& query,
                  int iterations, double* tables_per_query) {
  Db2Graph::Options graph_options;
  graph_options.runtime = options;
  auto graph = Db2Graph::Open(
      db, db2graph::linkbench::MakePartitionedOverlay(prefixed),
      graph_options);
  if (!graph.ok()) std::abort();
  auto run = [&](const std::string& q) {
    auto out = (*graph)->Execute(q);
    if (!out.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   out.status().ToString().c_str());
      std::abort();
    }
  };
  for (int i = 0; i < iterations / 5 + 1; ++i) run(query);
  (*graph)->provider()->stats().Reset();
  std::vector<std::string> queries(iterations, query);
  LatencyStats stats = MeasureLatency(run, queries);
  *tables_per_query =
      static_cast<double>(
          (*graph)->provider()->stats().Snapshot().vertex_tables_queried +
          (*graph)->provider()->stats().Snapshot().edge_tables_queried) /
      iterations;
  return stats.mean_us;
}

}  // namespace

int main() {
  db2graph::linkbench::Config config = db2graph::linkbench::Config::Small();
  std::fprintf(stderr, "[setup] generating partitioned LB-small...\n");
  db2graph::linkbench::Dataset dataset =
      db2graph::linkbench::GeneratePartitioned(config);
  db2graph::sql::Database db;
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok()) {
    return 1;
  }

  RuntimeOptions no_label;
  no_label.label_pruning = false;
  RuntimeOptions no_pinning;
  no_pinning.prefixed_id_pinning = false;
  RuntimeOptions no_endpoint;
  no_endpoint.endpoint_table_pruning = false;
  no_endpoint.vertex_from_edge_shortcut = false;
  RuntimeOptions no_implicit;
  no_implicit.implicit_edge_id_decomposition = false;

  // Each scenario isolates one optimization:
  //  * label pruning: a label scan with no ids to pin tables;
  //  * prefixed-id pinning: a prefixed-id lookup with no label step;
  //  * endpoint tables: out() over plain integer ids (nothing else can
  //    narrow the endpoint vertex table);
  //  * implicit edge ids: an edge lookup by its composed id.
  Scenario scenarios[] = {
      {"label-pruning", "g.V().hasLabel('vt3').count()", true, no_label,
       60},
      {"prefixed-id-pinning", "g.V('vt3::213')", true, no_pinning, 60},
      {"endpoint-vertex-tables", "g.V(213).out('et3')", false, no_endpoint,
       400},
      {"implicit-edge-id", "", true, no_implicit, 60},
  };
  // Build a real implicit edge id from the dataset.
  const auto& link = dataset.links[7];
  std::string edge_id =
      db2graph::linkbench::PartitionedVertexId(link.id1) + "::" +
      db2graph::linkbench::Dataset::EdgeLabel(link.ltype) + "::" +
      db2graph::linkbench::PartitionedVertexId(link.id2);
  std::string edge_query = "g.E('" + edge_id + "')";
  scenarios[3].query = edge_query.c_str();

  std::printf(
      "Ablation: Section 6.3 runtime optimizations, each on the query\n"
      "shape where it is the only applicable pruning (LB-small,\n"
      "partitioned overlay). Cells: mean latency us (tables queried).\n\n");
  std::printf("%-24s %18s %18s %9s\n", "Optimization", "on", "off",
              "speedup");
  for (const Scenario& s : scenarios) {
    double tables_on = 0;
    double tables_off = 0;
    double on_us = MeasureOne(&db, s.prefixed_overlay, RuntimeOptions{},
                              s.query, s.iterations, &tables_on);
    double off_us = MeasureOne(&db, s.prefixed_overlay, s.off_options,
                               s.query, s.iterations, &tables_off);
    std::printf("%-24s %10.1f (%4.1f) %10.1f (%4.1f) %8.1fx\n", s.name,
                on_us, tables_on, off_us, tables_off, off_us / on_us);
  }

  // The extremes on the real LinkBench mix (all-off is the fully naive
  // executor: every query consults every table, scanning when it cannot
  // form predicates).
  std::printf("\nLinkBench mixed workload (100 queries/type):\n");
  std::printf("%-24s %18s %18s %9s\n", "Variant", "mean us", "tables/query",
              "");
  for (auto [name, options] :
       {std::pair<const char*, RuntimeOptions>{"all-on", RuntimeOptions{}},
        std::pair<const char*, RuntimeOptions>{"all-off",
                                               RuntimeOptions::AllOff()}}) {
    Db2Graph::Options graph_options;
    graph_options.runtime = options;
    auto graph = Db2Graph::Open(
        &db, db2graph::linkbench::MakePartitionedOverlay(true),
        graph_options);
    if (!graph.ok()) return 1;
    PartitionedWorkload workload(dataset, 5);
    std::vector<std::string> queries;
    for (int i = 0; i < 100; ++i) {
      for (QueryType t :
           {QueryType::kGetNode, QueryType::kCountLinks, QueryType::kGetLink,
            QueryType::kGetLinkList}) {
        queries.push_back(workload.Next(t));
      }
    }
    auto run = [&](const std::string& q) {
      auto out = (*graph)->Execute(q);
      if (!out.ok()) std::abort();
    };
    for (int i = 0; i < 20; ++i) run(queries[i]);
    (*graph)->provider()->stats().Reset();
    LatencyStats stats = MeasureLatency(run, queries);
    double tables =
        static_cast<double>(
            (*graph)->provider()->stats().Snapshot().vertex_tables_queried +
            (*graph)->provider()->stats().Snapshot().edge_tables_queried) /
        queries.size();
    std::printf("%-24s %15.1f %18.1f\n", name, stats.mean_us, tables);
  }
  std::printf(
      "\nThe optimizations overlap by design: any one of them usually pins\n"
      "the right table for LinkBench queries, so the mixed workload only\n"
      "collapses when all are disabled (the paper's 'naive' execution).\n");
  return 0;
}
