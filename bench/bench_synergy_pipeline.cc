// The Section 4 synergy claim, end to end: a mixed graph+SQL analytics
// task (find patients with diseases similar to a given patient's, then
// aggregate their wearable-device data) executed two ways:
//
//  (a) in-DBMS with Db2 Graph: one SQL statement whose FROM clause embeds
//      the Gremlin traversal through the graphQuery table function;
//  (b) with a standalone graph database (GDB-X simulator): export the
//      graph tables out of the relational database, load + open the
//      graph store, run the traversal there, ship the ids back, and
//      finish the aggregation in SQL.
//
// Also measures the freshness cost: after relational updates, (a) just
// re-runs; (b) must reload the graph store to see the new data.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using db2graph::Value;
using db2graph::bench::Timer;
using db2graph::core::Db2Graph;

constexpr int kPatients = 20000;
constexpr int kDiseases = 2000;
constexpr int kDeviceDaysPerPatient = 30;

void BuildHealthcareData(db2graph::sql::Database* db) {
  auto st = db->ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY,
      name VARCHAR(40),
      address VARCHAR(60),
      subscriptionID BIGINT
    );
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY,
      conceptCode VARCHAR(20),
      conceptName VARCHAR(60)
    );
    CREATE TABLE HasDisease (
      patientID BIGINT,
      diseaseID BIGINT,
      description VARCHAR(40)
    );
    CREATE TABLE DiseaseOntology (
      sourceID BIGINT,
      targetID BIGINT,
      type VARCHAR(10)
    );
    CREATE TABLE DeviceData (
      subscriptionID BIGINT,
      day BIGINT,
      steps BIGINT,
      exerciseMinutes BIGINT
    );
    CREATE INDEX idx_hd_p ON HasDisease (patientID);
    CREATE INDEX idx_hd_d ON HasDisease (diseaseID);
    CREATE INDEX idx_do_s ON DiseaseOntology (sourceID);
    CREATE INDEX idx_do_t ON DiseaseOntology (targetID);
    CREATE INDEX idx_dd_sub ON DeviceData (subscriptionID);
  )sql");
  if (!st.ok()) std::abort();

  std::mt19937_64 rng(7);
  auto patients = db->GetTable("Patient");
  auto diseases = db->GetTable("Disease");
  auto has_disease = db->GetTable("HasDisease");
  auto ontology = db->GetTable("DiseaseOntology");
  auto device = db->GetTable("DeviceData");
  for (int64_t i = 1; i <= kPatients; ++i) {
    (void)patients->Insert({Value(i), Value("patient" + std::to_string(i)),
                            Value("addr" + std::to_string(i)),
                            Value(100000 + i)});
  }
  for (int64_t d = 1; d <= kDiseases; ++d) {
    (void)diseases->Insert({Value(d), Value("C" + std::to_string(d)),
                            Value("disease" + std::to_string(d))});
    if (d > 10) {
      // Ontology: each disease "isa" one of the first d/2 diseases.
      (void)ontology->Insert(
          {Value(d), Value(static_cast<int64_t>(1 + rng() % (d / 2))),
           Value("isa")});
    }
  }
  std::uniform_int_distribution<int64_t> disease_pick(1, kDiseases);
  for (int64_t i = 1; i <= kPatients; ++i) {
    for (int k = 0; k < 3; ++k) {
      (void)has_disease->Insert(
          {Value(i), Value(disease_pick(rng)), Value("dx")});
    }
  }
  std::uniform_int_distribution<int64_t> steps(1000, 20000);
  std::uniform_int_distribution<int64_t> minutes(5, 120);
  for (int64_t i = 1; i <= kPatients; ++i) {
    for (int64_t day = 0; day < kDeviceDaysPerPatient; ++day) {
      (void)device->Insert(
          {Value(100000 + i), Value(day), Value(steps(rng)),
           Value(minutes(rng))});
    }
  }
}

const char* kOverlay = R"json({
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true,
     "id": "'patient'::patientID", "fix_label": true, "label": "'patient'",
     "properties": ["patientID", "name", "subscriptionID"]},
    {"table_name": "Disease", "id": "diseaseID",
     "fix_label": true, "label": "'disease'",
     "properties": ["diseaseID", "conceptName"]}
  ],
  "e_tables": [
    {"table_name": "HasDisease", "src_v_table": "Patient",
     "src_v": "'patient'::patientID", "dst_v_table": "Disease",
     "dst_v": "diseaseID", "implicit_edge_id": true,
     "fix_label": true, "label": "'hasDisease'"},
    {"table_name": "DiseaseOntology", "src_v_table": "Disease",
     "src_v": "sourceID", "dst_v_table": "Disease", "dst_v": "targetID",
     "implicit_edge_id": true, "label": "type"}
  ]
})json";

std::string SimilarDiseaseGremlin(int64_t patient_id) {
  return "similar = g.V('patient::" + std::to_string(patient_id) +
         "').out('hasDisease')"
         ".repeat(out('isa').dedup().store('x')).times(2)"
         ".repeat(in('isa').dedup().store('x')).times(2)"
         ".cap('x').next();"
         "g.V(similar).in('hasDisease').dedup()"
         ".values('patientID', 'subscriptionID')";
}

}  // namespace

int main() {
  db2graph::sql::Database db;
  std::fprintf(stderr, "[setup] building healthcare dataset...\n");
  BuildHealthcareData(&db);

  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (!(*graph)->RegisterGraphQueryFunction().ok()) return 1;

  // ---- (a) in-DBMS: graph query inside SQL ---------------------------
  std::string gremlin = SimilarDiseaseGremlin(17);
  // Escape single quotes for embedding in the SQL literal.
  std::string escaped;
  for (char c : gremlin) {
    escaped += c;
    if (c == '\'') escaped += c;
  }
  std::string sql =
      "SELECT P.patientID, AVG(D.steps), AVG(D.exerciseMinutes) "
      "FROM DeviceData AS D, "
      "TABLE (graphQuery('gremlin', '" + escaped + "')) "
      "AS P (patientID BIGINT, subscriptionID BIGINT) "
      "WHERE D.subscriptionID = P.subscriptionID "
      "GROUP BY P.patientID";
  Timer in_dbms_timer;
  auto rs = db.Execute(sql);
  if (!rs.ok()) {
    std::fprintf(stderr, "in-DBMS query failed: %s\n",
                 rs.status().ToString().c_str());
    return 1;
  }
  double in_dbms_s = in_dbms_timer.Seconds();
  size_t result_rows = rs->rows.size();

  // ---- (b) standalone pipeline ----------------------------------------
  // Export the 4 graph tables, load GDB-X, query there, join back in SQL.
  Timer pipeline_timer;
  Timer export_timer;
  db2graph::baselines::NativeGraphDb native;
  {
    auto patients = db.Execute("SELECT patientID, name, subscriptionID "
                               "FROM Patient");
    auto diseases = db.Execute("SELECT diseaseID, conceptName FROM Disease");
    auto has_disease = db.Execute("SELECT patientID, diseaseID "
                                  "FROM HasDisease");
    auto ontology = db.Execute("SELECT sourceID, targetID, type "
                               "FROM DiseaseOntology");
    if (!patients.ok() || !diseases.ok() || !has_disease.ok() ||
        !ontology.ok()) {
      return 1;
    }
    double export_s = export_timer.Seconds();
    Timer load_timer;
    for (const auto& row : patients->rows) {
      (void)native.AddVertex(Value("patient::" + row[0].ToString()),
                             "patient",
                             {{"patientID", row[0]},
                              {"name", row[1]},
                              {"subscriptionID", row[2]}});
    }
    for (const auto& row : diseases->rows) {
      (void)native.AddVertex(row[0], "disease",
                             {{"diseaseID", row[0]},
                              {"conceptName", row[1]}});
    }
    int64_t eid = 1;
    for (const auto& row : has_disease->rows) {
      (void)native.AddEdge(Value(eid++), "hasDisease",
                           Value("patient::" + row[0].ToString()), row[1],
                           {});
    }
    for (const auto& row : ontology->rows) {
      (void)native.AddEdge(Value(eid++), row[2].ToString(), row[0], row[1],
                           {});
    }
    if (!native.Open().ok()) return 1;
    std::fprintf(stderr, "[pipeline] export %.3fs, load+open %.3fs\n",
                 export_s, load_timer.Seconds());
  }
  // Run the graph part on GDB-X.
  auto script = db2graph::gremlin::ParseGremlin(gremlin);
  if (!script.ok()) return 1;
  db2graph::gremlin::Interpreter interp(&native);
  auto out = interp.RunScript(*script);
  if (!out.ok()) {
    std::fprintf(stderr, "baseline graph query failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }
  // Ship ids back: stage them into a temp table and aggregate in SQL.
  {
    if (!db.Execute("CREATE TABLE TempSimilar (patientID BIGINT, "
                    "subscriptionID BIGINT)")
             .ok()) {
      return 1;
    }
    auto rows =
        db2graph::gremlin::TraversersToRows(*out, 2);
    if (!rows.ok()) return 1;
    auto temp = db.GetTable("TempSimilar");
    for (const auto& row : *rows) {
      (void)temp->Insert(row);
    }
    auto joined = db.Execute(
        "SELECT T.patientID, AVG(D.steps), AVG(D.exerciseMinutes) "
        "FROM DeviceData AS D, TempSimilar AS T "
        "WHERE D.subscriptionID = T.subscriptionID GROUP BY T.patientID");
    if (!joined.ok()) return 1;
    if (joined->rows.size() != result_rows) {
      std::fprintf(stderr,
                   "WARNING: pipeline result mismatch (%zu vs %zu rows)\n",
                   joined->rows.size(), result_rows);
    }
  }
  double pipeline_s = pipeline_timer.Seconds();

  // ---- freshness: re-run after an update -----------------------------
  if (!db.Execute("INSERT INTO HasDisease VALUES (17, 499, 'new dx')").ok()) {
    return 1;
  }
  Timer rerun_timer;
  auto rerun = db.Execute(sql);
  if (!rerun.ok()) return 1;
  double rerun_s = rerun_timer.Seconds();
  bool fresh = rerun->rows.size() >= result_rows;

  // The standalone store cannot see the INSERT: measure what staying
  // fresh actually costs it — a full re-export + reload + re-query.
  Timer reload_timer;
  {
    db2graph::baselines::NativeGraphDb fresh_native;
    auto patients = db.Execute("SELECT patientID, name, subscriptionID "
                               "FROM Patient");
    auto diseases = db.Execute("SELECT diseaseID, conceptName FROM Disease");
    auto has_disease = db.Execute("SELECT patientID, diseaseID "
                                  "FROM HasDisease");
    auto ontology = db.Execute("SELECT sourceID, targetID, type "
                               "FROM DiseaseOntology");
    for (const auto& row : patients->rows) {
      (void)fresh_native.AddVertex(Value("patient::" + row[0].ToString()),
                                   "patient",
                                   {{"patientID", row[0]},
                                    {"name", row[1]},
                                    {"subscriptionID", row[2]}});
    }
    for (const auto& row : diseases->rows) {
      (void)fresh_native.AddVertex(row[0], "disease",
                                   {{"diseaseID", row[0]},
                                    {"conceptName", row[1]}});
    }
    int64_t eid = 1;
    for (const auto& row : has_disease->rows) {
      (void)fresh_native.AddEdge(Value(eid++), "hasDisease",
                                 Value("patient::" + row[0].ToString()),
                                 row[1], {});
    }
    for (const auto& row : ontology->rows) {
      (void)fresh_native.AddEdge(Value(eid++), row[2].ToString(), row[0],
                                 row[1], {});
    }
    if (!fresh_native.Open().ok()) return 1;
    db2graph::gremlin::Interpreter fresh_interp(&fresh_native);
    auto fresh_out = fresh_interp.RunScript(*script);
    if (!fresh_out.ok()) return 1;
  }
  double reload_s = reload_timer.Seconds();

  std::printf("Synergy pipeline (Section 4 scenario, %d patients, %d-day "
              "device data)\n\n",
              kPatients, kDeviceDaysPerPatient);
  std::printf("%-44s %10s\n", "Approach", "seconds");
  std::printf("%-44s %10.3f\n",
              "in-DBMS (graphQuery inside SQL)", in_dbms_s);
  std::printf("%-44s %10.3f\n",
              "standalone GDB-X (export+load+query+join)", pipeline_s);
  std::printf("%-44s %10.3f  (sees the update: %s)\n",
              "in-DBMS re-run after relational INSERT", rerun_s,
              fresh ? "yes" : "NO");
  std::printf("%-44s %10.3f  (full re-export + reload)\n",
              "standalone re-run after relational INSERT", reload_s);
  std::printf(
      "\nin-DBMS advantage: %.1fx on first run, %.1fx per refresh under\n"
      "updates (result rows: %zu)\n",
      pipeline_s / in_dbms_s, reload_s / rerun_s, result_rows);
  return 0;
}
