// Reproduces Figure 5 of the paper: single-client latency of the four
// LinkBench query types (Table 1) on all three systems at both scales.
// Systems are built and measured one at a time, like the paper's separate
// server processes.
//
// Paper shape: Janus-like is always slowest (up to ~2.7x vs Db2 Graph);
// on the small dataset GDB-X leads most queries (Db2 Graph within ~1.5x,
// winning getNode); on the large dataset the GDB-X cache no longer holds
// the graph and Db2 Graph wins (paper: up to ~1.7x).

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using db2graph::bench::LatencyStats;
using db2graph::bench::MeasureLatency;
using db2graph::linkbench::QueryType;
using db2graph::linkbench::QueryTypeName;
using db2graph::linkbench::Workload;

constexpr QueryType kTypes[] = {QueryType::kGetNode, QueryType::kCountLinks,
                                QueryType::kGetLink,
                                QueryType::kGetLinkList};

void PrintTableOne() {
  std::printf("Table 1: LinkBench queries as Gremlin\n");
  std::printf("  getNode(id, lbl)      g.V(id).hasLabel(lbl)\n");
  std::printf("  countLinks(id1, lbl)  g.V(id1).outE(lbl).count()\n");
  std::printf(
      "  getLink(id1,lbl,id2)  g.V(id1).outE(lbl).where(inV().hasId(id2))\n");
  std::printf("  getLinkList(id1,lbl)  g.V(id1).outE(lbl)\n\n");
}

// Latencies of the 4 query types for one system.
std::vector<LatencyStats> MeasureSystem(
    const std::function<void(const std::string&)>& run,
    const db2graph::linkbench::Dataset& dataset, int queries_per_type) {
  std::vector<LatencyStats> out;
  const int warmup = queries_per_type / 5;
  int type_index = 0;
  for (QueryType type : kTypes) {
    // Distinct seed per query type: reusing one seed would make later
    // phases replay the earlier phases' link samples and ride their cache.
    Workload workload(dataset, 42 + 131 * type_index++);
    std::vector<std::string> queries;
    for (int i = 0; i < queries_per_type + warmup; ++i) {
      queries.push_back(workload.Next(type));
    }
    for (int i = 0; i < warmup; ++i) run(queries[i]);
    std::vector<std::string> measured(queries.begin() + warmup,
                                      queries.end());
    out.push_back(MeasureLatency(run, measured));
  }
  return out;
}

void RunScale(const db2graph::linkbench::Config& config, const char* label,
              int queries_per_type) {
  auto setup = db2graph::bench::SetUpRelational(config, label);
  std::vector<LatencyStats> db2g = MeasureSystem(
      [&](const std::string& q) { setup.RunDb2Graph(q); }, setup.dataset,
      queries_per_type);

  auto exported = db2graph::bench::ExportFrom(setup.db.get());
  std::vector<LatencyStats> native;
  {
    auto gdbx = db2graph::bench::MakeNative(exported);
    native = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(gdbx.get(), q);
        },
        setup.dataset, queries_per_type);
  }
  std::vector<LatencyStats> janus;
  {
    auto jl = db2graph::bench::MakeJanus(exported);
    janus = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(jl.get(), q);
        },
        setup.dataset, queries_per_type);
  }

  std::printf("Figure 5 (%s): latency in microseconds (mean / p99)\n",
              label);
  std::printf("%-12s %20s %20s %20s\n", "Query", "Db2Graph", "GDB-X",
              "Janus-like");
  for (size_t t = 0; t < 4; ++t) {
    std::printf("%-12s %11.1f/%8.1f %11.1f/%8.1f %11.1f/%8.1f\n",
                QueryTypeName(kTypes[t]), db2g[t].mean_us, db2g[t].p99_us,
                native[t].mean_us, native[t].p99_us, janus[t].mean_us,
                janus[t].p99_us);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintTableOne();
  RunScale(db2graph::linkbench::Config::Small(), "LB-small", 3000);
  RunScale(db2graph::linkbench::Config::Large(), "LB-large", 1500);
  std::printf(
      "Paper shape: Janus-like slowest everywhere; GDB-X leads on the\n"
      "small (in-cache) dataset with Db2 Graph close behind; Db2 Graph\n"
      "ahead on the large dataset once GDB-X's cache no longer holds the\n"
      "graph.\n");
  return 0;
}
