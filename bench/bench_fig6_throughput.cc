// Reproduces Figure 6 of the paper: throughput with 50 clients
// concurrently submitting LinkBench queries, on all three systems at both
// scales. Systems are built and measured one at a time.
//
// Paper shape: Db2 Graph wins everywhere (up to 1.6x vs GDB-X and 4.2x vs
// JanusGraph) because the relational engine's shared-lock read path
// scales with cores, while GDB-X serializes on its cache latch and the
// Janus-like store on its KV latch.
//
// This binary also runs a Db2Graph-only ablation of the runtime lookup
// optimizations (parallel multi-table fan-out and the sharded vertex
// cache) on the partitioned overlay with PLAIN integer ids — the layout
// where every g.V(id) must consult all 10 vertex tables, so both knobs
// have real work to do. Results land in BENCH_fig6.json. Environment:
//   DB2G_FIG6_CLIENTS        client threads for the ablation (default 8)
//   DB2G_FIG6_QPC            queries per client per query type (default 200)
//   DB2G_FIG6_CACHE=0|1      restrict the mode grid to one cache setting
//   DB2G_FIG6_FANOUT=0|1     restrict the mode grid to one fan-out setting
//   DB2G_FIG6_SKIP_SYSTEMS=1 skip the heavy three-system comparison
//   DB2G_FIG6_SKIP_ABLATION=1 skip the ablation section

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <thread>

#include "bench/bench_util.h"
#include "common/json.h"

namespace {

using db2graph::Json;
using db2graph::bench::Timer;
using db2graph::linkbench::QueryType;
using db2graph::linkbench::QueryTypeName;
using db2graph::linkbench::Workload;

constexpr int kClients = 50;
constexpr QueryType kTypes[] = {QueryType::kGetNode, QueryType::kCountLinks,
                                QueryType::kGetLink,
                                QueryType::kGetLinkList};

bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] == '1';
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

// Runs one thread per pre-generated query list; returns queries/second.
double RunClients(const std::function<void(const std::string&)>& run,
                  const std::vector<std::vector<std::string>>& per_client) {
  std::atomic<int64_t> completed{0};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (const auto& queries : per_client) {
    threads.emplace_back([&run, &queries, &completed] {
      for (const std::string& q : queries) {
        run(q);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(completed.load()) / timer.Seconds();
}

// Per-query-type throughput of one system.
std::vector<double> MeasureSystem(
    const std::function<void(const std::string&)>& run,
    const db2graph::linkbench::Dataset& dataset, int queries_per_client) {
  std::vector<double> out;
  int type_index = 0;
  for (QueryType type : kTypes) {
    std::vector<std::vector<std::string>> per_client(kClients);
    for (int c = 0; c < kClients; ++c) {
      Workload workload(dataset, 1000 + c + 977 * type_index);
      for (int i = 0; i < queries_per_client; ++i) {
        per_client[c].push_back(workload.Next(type));
      }
    }
    for (int i = 0; i < 100; ++i) run(per_client[0][i % queries_per_client]);
    out.push_back(RunClients(run, per_client));
    ++type_index;
  }
  return out;
}

void RunScale(const db2graph::linkbench::Config& config, const char* label,
              int queries_per_client) {
  auto setup = db2graph::bench::SetUpRelational(config, label);
  std::vector<double> db2g = MeasureSystem(
      [&](const std::string& q) { setup.RunDb2Graph(q); }, setup.dataset,
      queries_per_client);
  auto exported = db2graph::bench::ExportFrom(setup.db.get());
  std::vector<double> native;
  {
    auto gdbx = db2graph::bench::MakeNative(exported);
    native = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(gdbx.get(), q);
        },
        setup.dataset, queries_per_client);
  }
  std::vector<double> janus;
  {
    auto jl = db2graph::bench::MakeJanus(exported);
    janus = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(jl.get(), q);
        },
        setup.dataset, queries_per_client);
  }

  std::printf("Figure 6 (%s): throughput, %d concurrent clients "
              "(queries/sec)\n",
              label, kClients);
  std::printf("%-12s %12s %12s %12s %18s\n", "Query", "Db2Graph", "GDB-X",
              "Janus-like", "Db2G vs best-other");
  for (size_t t = 0; t < 4; ++t) {
    std::printf("%-12s %12.0f %12.0f %12.0f %17.2fx\n",
                QueryTypeName(kTypes[t]), db2g[t], native[t], janus[t],
                db2g[t] / std::max(native[t], janus[t]));
  }
  std::printf("\n");
}

// --- Ablation: parallel fan-out x vertex cache -------------------------

struct AblationMode {
  bool cache;
  bool fanout;
};

struct AblationResult {
  AblationMode mode;
  double overall_qps = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t parallel_batches = 0;
  uint64_t parallel_tasks = 0;
};

// Zipfian rank pick (P(rank r) proportional to 1/r), same log-uniform
// construction Workload uses.
size_t ZipfIndex(std::mt19937_64* rng, size_t n) {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double rank = std::exp(uniform(*rng) * std::log(static_cast<double>(n)));
  size_t r = static_cast<size_t>(rank);
  return r >= n ? n - 1 : r;
}

// Node access: half the picks land in a small hot set, the rest are
// Zipfian over all nodes — the shape LinkBench's skewed request stream
// has (the dataset generator models the same skew on the degree side via
// Config::hot_vertex_fraction).
size_t PickNode(std::mt19937_64* rng, size_t n) {
  std::uniform_int_distribution<int> coin(0, 1);
  size_t hot = std::min<size_t>(200, n);
  if (coin(*rng) == 0) {
    std::uniform_int_distribution<size_t> pick(0, hot - 1);
    return pick(*rng);
  }
  return ZipfIndex(rng, n);
}

// The ablation's query mix. Link operations compile to direct single-table
// edge SQL (the fold of V(id).outE into an id1 lookup), so they neither
// fan out nor touch the vertex cache; the shape that exercises both is the
// untyped point lookup g.V(id) — the retrofit case where the caller holds
// a plain integer id and cannot name the vertex type, forcing a consult of
// all 10 Node_t* tables. The mix keeps that lookup dominant and lets typed
// lookups and link scans ride along.
//   60% g.V(id)                  multi-table fan-out / cache hit
//   15% g.V(id).hasLabel('vtK')  pruned to one table; hits warm cache
//   15% g.V(id1).outE('etK').count()
//   10% g.V(id1).outE('etK')
std::string NextAblationQuery(const db2graph::linkbench::Dataset& dataset,
                              std::mt19937_64* rng) {
  std::uniform_int_distribution<int> pick(0, 99);
  int roll = pick(*rng);
  if (roll < 75) {
    const auto& n = dataset.nodes[PickNode(rng, dataset.nodes.size())];
    if (roll < 60) return "g.V(" + std::to_string(n.id) + ")";
    return "g.V(" + std::to_string(n.id) + ").hasLabel('" +
           db2graph::linkbench::Dataset::VertexLabel(n.type) + "')";
  }
  const auto& l = dataset.links[ZipfIndex(rng, dataset.links.size())];
  std::string base = "g.V(" + std::to_string(l.id1) + ").outE('" +
                     db2graph::linkbench::Dataset::EdgeLabel(l.ltype) + "')";
  return roll < 90 ? base + ".count()" : base;
}

// Measures one (cache, fanout) configuration over a fresh Db2Graph opened
// on the shared database. The query lists are generated once by the
// caller, so every mode answers the identical Zipfian workload.
AblationResult MeasureAblationMode(
    db2graph::sql::Database* db, const db2graph::overlay::OverlayConfig& conf,
    const std::vector<std::vector<std::string>>& per_client,
    AblationMode mode) {
  db2graph::core::Db2Graph::Options options;
  options.runtime.vertex_cache = mode.cache;
  options.runtime.parallel_fanout = mode.fanout;
  auto graph = db2graph::core::Db2Graph::Open(db, conf, options);
  if (!graph.ok()) std::abort();
  auto run = [&](const std::string& q) {
    auto out = (*graph)->Execute(q);
    if (!out.ok()) {
      std::fprintf(stderr, "ablation error: %s\n",
                   out.status().ToString().c_str());
      std::abort();
    }
  };

  // Warm up to steady state (SQL template cache and, when enabled, the
  // vertex cache) — every mode gets the identical warm-up stream.
  for (int i = 0; i < 200; ++i) {
    run(per_client[0][i % per_client[0].size()]);
  }

  AblationResult result;
  result.mode = mode;
  result.overall_qps = RunClients(run, per_client);
  const auto stats = (*graph)->provider()->stats().Snapshot();
  result.cache_hits = stats.cache_hits;
  result.cache_misses = stats.cache_misses;
  result.parallel_batches = stats.parallel_batches;
  result.parallel_tasks = stats.parallel_tasks;
  return result;
}

void RunAblation() {
  const int clients = EnvInt("DB2G_FIG6_CLIENTS", 8);
  const int queries_per_client = EnvInt("DB2G_FIG6_QPC", 800);

  // Plain integer ids: no prefix to pin a vertex table, so every untyped
  // g.V(id) fans out across all 10 Node_t* tables — the worst-case lookup
  // the cache and the parallel fan-out exist for.
  auto config = db2graph::linkbench::Config::Small();
  std::fprintf(stderr, "[setup] generating LB-small (ablation)...\n");
  auto dataset = db2graph::linkbench::GeneratePartitioned(config);
  db2graph::sql::Database db;
  std::fprintf(stderr, "[setup] loading relational tables...\n");
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok()) {
    std::abort();
  }
  auto overlay =
      db2graph::linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false);

  // One Zipfian mixed-query list per client, shared by all modes.
  std::vector<std::vector<std::string>> per_client(clients);
  for (int c = 0; c < clients; ++c) {
    std::mt19937_64 rng(5000 + c);
    per_client[c].reserve(queries_per_client);
    for (int i = 0; i < queries_per_client; ++i) {
      per_client[c].push_back(NextAblationQuery(dataset, &rng));
    }
  }

  std::vector<AblationMode> grid;
  const char* cache_env = std::getenv("DB2G_FIG6_CACHE");
  const char* fanout_env = std::getenv("DB2G_FIG6_FANOUT");
  for (bool cache : {false, true}) {
    if (cache_env != nullptr && *cache_env != '\0' &&
        cache != (cache_env[0] == '1')) {
      continue;
    }
    for (bool fanout : {false, true}) {
      if (fanout_env != nullptr && *fanout_env != '\0' &&
          fanout != (fanout_env[0] == '1')) {
        continue;
      }
      grid.push_back({cache, fanout});
    }
  }

  std::printf(
      "Ablation (LB-small, partitioned overlay, plain ids, Zipfian "
      "access,\n%d clients, lookup-heavy mix): runtime lookup "
      "optimizations\n",
      clients);
  std::printf("%-22s %12s %12s %12s %12s\n", "Mode", "overall q/s",
              "cache hits", "misses", "batches");

  std::vector<AblationResult> results;
  for (AblationMode mode : grid) {
    AblationResult r = MeasureAblationMode(&db, overlay, per_client, mode);
    std::printf("cache=%-3s fanout=%-3s   %12.0f %12llu %12llu %12llu\n",
                mode.cache ? "on" : "off", mode.fanout ? "on" : "off",
                r.overall_qps, (unsigned long long)r.cache_hits,
                (unsigned long long)r.cache_misses,
                (unsigned long long)r.parallel_batches);
    results.push_back(r);
  }

  Json doc = Json::Object();
  doc.Set("benchmark", Json::Str("fig6_ablation"));
  doc.Set("dataset", Json::Str("LB-small-partitioned-plain-ids"));
  doc.Set("clients", Json::Number(clients));
  doc.Set("queries_per_client", Json::Number(queries_per_client));
  doc.Set("zipfian", Json::Bool(true));
  doc.Set("mix", Json::Str("60% g.V(id), 15% g.V(id).hasLabel, "
                           "15% outE.count, 10% outE"));
  Json modes = Json::Array();
  const AblationResult* off_off = nullptr;
  const AblationResult* on_on = nullptr;
  for (const AblationResult& r : results) {
    Json m = Json::Object();
    m.Set("vertex_cache", Json::Bool(r.mode.cache));
    m.Set("parallel_fanout", Json::Bool(r.mode.fanout));
    m.Set("overall_qps", Json::Number(r.overall_qps));
    m.Set("cache_hits", Json::Number(static_cast<double>(r.cache_hits)));
    m.Set("cache_misses", Json::Number(static_cast<double>(r.cache_misses)));
    m.Set("parallel_batches",
          Json::Number(static_cast<double>(r.parallel_batches)));
    m.Set("parallel_tasks",
          Json::Number(static_cast<double>(r.parallel_tasks)));
    modes.Append(std::move(m));
    if (!r.mode.cache && !r.mode.fanout) off_off = &r;
    if (r.mode.cache && r.mode.fanout) on_on = &r;
  }
  doc.Set("modes", std::move(modes));
  if (off_off != nullptr && on_on != nullptr && off_off->overall_qps > 0) {
    double speedup = on_on->overall_qps / off_off->overall_qps;
    doc.Set("speedup_on_vs_off", Json::Number(speedup));
    std::printf("Speedup (cache+fanout on vs both off): %.2fx overall\n",
                speedup);
  }
  std::ofstream out("BENCH_fig6.json");
  out << doc.Dump() << "\n";
  std::printf("Wrote BENCH_fig6.json\n\n");
}

}  // namespace

int main() {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Host has %u hardware thread(s). The paper ran on 32 cores; with "
      "few\ncores the shared-lock vs global-latch separation cannot "
      "appear and\nthroughput mirrors single-client latency (see "
      "EXPERIMENTS.md).\n\n",
      cores);
  if (!EnvFlag("DB2G_FIG6_SKIP_ABLATION")) RunAblation();
  if (!EnvFlag("DB2G_FIG6_SKIP_SYSTEMS")) {
    RunScale(db2graph::linkbench::Config::Small(), "LB-small", 400);
    RunScale(db2graph::linkbench::Config::Large(), "LB-large", 200);
    std::printf(
        "Paper shape: Db2 Graph is the clear throughput winner on every\n"
        "query and both scales (paper: up to 1.6x vs GDB-X, 4.2x vs "
        "JanusGraph).\n");
  }
  return 0;
}
