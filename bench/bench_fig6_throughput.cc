// Reproduces Figure 6 of the paper: throughput with 50 clients
// concurrently submitting LinkBench queries, on all three systems at both
// scales. Systems are built and measured one at a time.
//
// Paper shape: Db2 Graph wins everywhere (up to 1.6x vs GDB-X and 4.2x vs
// JanusGraph) because the relational engine's shared-lock read path
// scales with cores, while GDB-X serializes on its cache latch and the
// Janus-like store on its KV latch.

#include <atomic>
#include <cstdio>
#include <thread>


#include "bench/bench_util.h"

namespace {

using db2graph::bench::Timer;
using db2graph::linkbench::QueryType;
using db2graph::linkbench::QueryTypeName;
using db2graph::linkbench::Workload;

constexpr int kClients = 50;
constexpr QueryType kTypes[] = {QueryType::kGetNode, QueryType::kCountLinks,
                                QueryType::kGetLink,
                                QueryType::kGetLinkList};

// Runs `kClients` threads, each draining its own pre-generated query list;
// returns queries/second.
double RunClients(const std::function<void(const std::string&)>& run,
                  const std::vector<std::vector<std::string>>& per_client) {
  std::atomic<int64_t> completed{0};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (const auto& queries : per_client) {
    threads.emplace_back([&run, &queries, &completed] {
      for (const std::string& q : queries) {
        run(q);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(completed.load()) / timer.Seconds();
}

// Per-query-type throughput of one system.
std::vector<double> MeasureSystem(
    const std::function<void(const std::string&)>& run,
    const db2graph::linkbench::Dataset& dataset, int queries_per_client) {
  std::vector<double> out;
  int type_index = 0;
  for (QueryType type : kTypes) {
    std::vector<std::vector<std::string>> per_client(kClients);
    for (int c = 0; c < kClients; ++c) {
      Workload workload(dataset, 1000 + c + 977 * type_index);
      for (int i = 0; i < queries_per_client; ++i) {
        per_client[c].push_back(workload.Next(type));
      }
    }
    for (int i = 0; i < 100; ++i) run(per_client[0][i % queries_per_client]);
    out.push_back(RunClients(run, per_client));
    ++type_index;
  }
  return out;
}

void RunScale(const db2graph::linkbench::Config& config, const char* label,
              int queries_per_client) {
  auto setup = db2graph::bench::SetUpRelational(config, label);
  std::vector<double> db2g = MeasureSystem(
      [&](const std::string& q) { setup.RunDb2Graph(q); }, setup.dataset,
      queries_per_client);
  auto exported = db2graph::bench::ExportFrom(setup.db.get());
  std::vector<double> native;
  {
    auto gdbx = db2graph::bench::MakeNative(exported);
    native = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(gdbx.get(), q);
        },
        setup.dataset, queries_per_client);
  }
  std::vector<double> janus;
  {
    auto jl = db2graph::bench::MakeJanus(exported);
    janus = MeasureSystem(
        [&](const std::string& q) {
          db2graph::bench::RunProvider(jl.get(), q);
        },
        setup.dataset, queries_per_client);
  }

  std::printf("Figure 6 (%s): throughput, %d concurrent clients "
              "(queries/sec)\n",
              label, kClients);
  std::printf("%-12s %12s %12s %12s %18s\n", "Query", "Db2Graph", "GDB-X",
              "Janus-like", "Db2G vs best-other");
  for (size_t t = 0; t < 4; ++t) {
    std::printf("%-12s %12.0f %12.0f %12.0f %17.2fx\n",
                QueryTypeName(kTypes[t]), db2g[t], native[t], janus[t],
                db2g[t] / std::max(native[t], janus[t]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Host has %u hardware thread(s). The paper ran on 32 cores; with "
      "few\ncores the shared-lock vs global-latch separation cannot "
      "appear and\nthroughput mirrors single-client latency (see "
      "EXPERIMENTS.md).\n\n",
      cores);
  RunScale(db2graph::linkbench::Config::Small(), "LB-small", 400);
  RunScale(db2graph::linkbench::Config::Large(), "LB-large", 200);
  std::printf(
      "Paper shape: Db2 Graph is the clear throughput winner on every\n"
      "query and both scales (paper: up to 1.6x vs GDB-X, 4.2x vs "
      "JanusGraph).\n");
  return 0;
}
