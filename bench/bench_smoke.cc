// Copyright (c) 2026 The db2graph-repro Authors.
//
// Smoke benchmark guarding two performance contracts, failing with a
// nonzero exit (so ctest reports it) when either is breached:
//
//  1. Tracing is "zero cost when disabled": the same point-lookup workload
//     runs untraced and traced (by arming the slow-query threshold, which
//     routes queries through the traced path without ever logging them),
//     and traced throughput must stay above a floor fraction of untraced.
//
//  2. Prepared execution beats re-parsing: a 95%-repeated LinkBench mix
//     (three prepared shapes executed with bindings, plus 5% ad-hoc
//     unique scripts) must out-run the same logical queries issued as
//     text with inlined ids and the plan cache disabled — the legacy
//     parse-per-call path. The prepared portion is additionally required
//     to make ZERO ParseGremlin calls, verified via the parse-call
//     counter. Results land in BENCH_prepared.json.
//
//  3. Vectorized block execution beats the scalar operator tree on the
//     workload it exists for: a full-scan + aggregate SQL mix over a
//     column-store table must run at least as fast vectorized as scalar
//     (in practice it wins by multiples — typed kernels never materialize
//     Rows). Results land in BENCH_vectorized.json.
//
//  4. Streaming execution pays off where it should: on a limit-heavy mix
//     over a larger partitioned dataset, the streaming pipeline must be
//     at least as fast as the pre-streaming baseline (materialized
//     interpretation, no LIMIT pushdown) AND scan strictly fewer SQL
//     rows; on a full-scan mix (where streaming can only add block
//     bookkeeping) it must stay within a loose overhead floor. Results
//     land in BENCH_streaming.json.
//
//  5. Monitoring is affordable when armed: the same SQL mix runs with all
//     observability instrumentation off (query log disabled, no
//     profiling) and fully on (query log recording + per-operator
//     EXPLAIN ANALYZE profiling on every statement), and the instrumented
//     throughput must stay at or above 0.9x uninstrumented. Results land
//     in BENCH_observability.json.
//
//  6. Governance is near-free: the streaming limit mix runs ungoverned
//     and then governed with generous limits (deadline, row and memory
//     budgets all far from tripping — every block-boundary check, charge
//     and release actually executes), and governed throughput must stay
//     at or above 0.95x ungoverned. Results land in BENCH_governor.json.
//
//  7. Morsel-driven parallelism pays where cores exist and costs nothing
//     where they don't: the full-scan aggregate SQL mix and a Gremlin
//     groupCount ablation run serial, at dop 1, and at dop 4.
//     Unconditionally, dop-1 (identical serial operators behind the
//     ExecConfig resolution) must stay at or above 0.95x serial. The
//     dop-4 >= 1.8x dop-1 floor is enforced only when the machine
//     actually has >= 4 hardware threads — on smaller CI boxes the ratios
//     are still measured and reported (with the core count) in
//     BENCH_parallel.json, just not gated.
//
//  8. Multi-hop collapse pays on the traversal it exists for: a 3-hop
//     LinkBench-style expansion runs through two graphs over the same
//     database — one with the cost-based collapse enabled (optimizer
//     default) and one forced step-at-a-time — and the collapsed N-way
//     join must be at least as fast. The collapsed graph is additionally
//     required to have actually chosen and executed collapsed plans with
//     zero runtime fallbacks, so the comparison can never silently
//     degenerate into measuring the same path twice. Results land in
//     BENCH_multihop.json.
//
// All comparisons interleave their modes across rounds and take each
// mode's best round to damp scheduler noise on small CI machines.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "core/db2graph.h"
#include "sql/database.h"
#include "sql/table.h"
#include "gremlin/parser.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace {

using db2graph::Result;
using db2graph::SlowQueryLog;
using db2graph::Value;
using db2graph::core::Db2Graph;
using db2graph::core::ExecOptions;
using db2graph::core::PreparedQuery;
using db2graph::gremlin::Traverser;

uint64_t ParseCalls() {
  return db2graph::metrics::MetricsRegistry::Global()
      .GetCounter(db2graph::gremlin::kParseCallsCounter)
      ->load();
}

// One-hop neighborhood expansions: every query issues real SQL (edge
// lookups are not cached), which is the workload shape whose overhead the
// tracing contract is about. Pure cache-hit point reads (~1us each) would
// make any per-query trace bookkeeping look catastrophic while being
// irrelevant to real traversals.
double RunBatch(Db2Graph* graph, int queries, int id_range) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    int64_t id = 1 + (i % id_range);
    Result<std::vector<Traverser>> out =
        graph->Execute("g.V(" + std::to_string(id) + ").out()");
    if (!out.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return queries / elapsed.count();
}

// The three repeated shapes of the 95%-repeated mix: one-hop expansion,
// neighbor ids, and neighbor count — all parameterized on the start
// vertex, which is the LinkBench object-get/assoc-range access pattern.
const char* const kPreparedShapes[] = {
    "g.V(vid).out()",
    "g.V(vid).out().id()",
    "g.V(vid).out().count()",
};
constexpr int kNumShapes = 3;
// One query in 20 (5%) is ad-hoc: globally unique text, so it can never
// be served from any cache and always pays a parse.
constexpr int kAdhocEvery = 20;

struct MixStats {
  double qps = 0;
  uint64_t parse_calls = 0;  // ParseGremlin delta across the batch
  uint64_t adhoc = 0;        // how many ad-hoc (unique-text) queries ran
};

// One slice of the prepared mix: 95% prepared-with-bindings, 5% ad-hoc
// unique scripts. `base` continues the query index across slices (so the
// shape rotation and ad-hoc phase carry over) and `adhoc_seq` persists
// across the whole run so ad-hoc text never repeats. Returns elapsed
// seconds; parse/ad-hoc counts accumulate into `stats`.
double RunPreparedMixSlice(Db2Graph* graph,
                           const std::vector<PreparedQuery>& prepared,
                           int queries, int base, int id_range,
                           uint64_t* adhoc_seq, MixStats* stats) {
  uint64_t parses_before = ParseCalls();
  auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < queries; ++k) {
    int i = base + k;
    int64_t id = 1 + (i % id_range);
    Result<std::vector<Traverser>> out = [&] {
      if (i % kAdhocEvery == kAdhocEvery - 1) {
        ++stats->adhoc;
        return graph->Execute("g.V(" + std::to_string(id) + ").out().limit(" +
                              std::to_string(++*adhoc_seq) + ")");
      }
      db2graph::gremlin::Environment binds{{"vid", {Value(id)}}};
      return prepared[i % kNumShapes].Execute(binds);
    }();
    if (!out.ok()) {
      std::fprintf(stderr, "prepared mix query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  stats->parse_calls += ParseCalls() - parses_before;
  return elapsed.count();
}

// One slice of the same logical mix issued as text with the id inlined
// and the plan cache opted out — the legacy path where every call
// re-parses and re-optimizes the script.
double RunTextMixSlice(Db2Graph* graph, int queries, int base, int id_range,
                       uint64_t* adhoc_seq, MixStats* stats) {
  ExecOptions opts;
  opts.use_plan_cache = false;
  uint64_t parses_before = ParseCalls();
  auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < queries; ++k) {
    int i = base + k;
    int64_t id = 1 + (i % id_range);
    std::string script;
    if (i % kAdhocEvery == kAdhocEvery - 1) {
      ++stats->adhoc;
      script = "g.V(" + std::to_string(id) + ").out().limit(" +
               std::to_string(++*adhoc_seq) + ")";
    } else {
      const char* shape = kPreparedShapes[i % kNumShapes];
      script = shape;
      size_t pos = script.find("vid");
      script.replace(pos, 3, std::to_string(id));
    }
    Result<std::vector<Traverser>> out = graph->Execute(script, opts);
    if (!out.ok()) {
      std::fprintf(stderr, "text mix query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  stats->parse_calls += ParseCalls() - parses_before;
  return elapsed.count();
}

// ---- Vectorized-vs-scalar SQL workload. ----

// Full scans and aggregates: the shapes the columnar path exists for.
// Every query drains the table, so the comparison is pure per-row
// operator cost (kernel loop vs Row materialization + tree-walk eval).
std::string VectorMixQuery(int i) {
  switch (i % 5) {
    case 0:
      return "SELECT COUNT(*), SUM(a), MIN(b), MAX(b) FROM Wide";
    case 1:
      return "SELECT a, b FROM Wide WHERE a > 500000";
    case 2:
      return "SELECT AVG(b) FROM Wide WHERE a < 250000";
    case 3:
      return "SELECT g, COUNT(*), SUM(a) FROM Wide GROUP BY g";
    default:
      return "SELECT COUNT(b) FROM Wide WHERE s = 'x7'";
  }
}

// Runs `queries` instances of the SQL mix; returns elapsed seconds.
double RunSqlMixSlice(db2graph::sql::Database* db, int queries, int base) {
  auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < queries; ++k) {
    Result<db2graph::sql::ResultSet> out = db->Execute(VectorMixQuery(base + k));
    if (!out.ok()) {
      std::fprintf(stderr, "vectorized bench query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// ---- Streaming-vs-materialized workloads. ----

// Limit-heavy: every query carries a limit that streaming can saturate —
// label-pruned single-table limits, multi-table limits, and a one-hop
// expansion capped after the first block. The materialized baseline
// drains every consulted table first.
std::string LimitMixQuery(int i) {
  switch (i % 3) {
    case 0:
      return "g.V().hasLabel('vt" + std::to_string(i % 10) + "').limit(5)";
    case 1:
      return "g.V().limit(8)";
    default:
      return "g.V().out('et" + std::to_string(i % 10) + "').limit(5)";
  }
}

// Full-scan: every query drains its input completely, so streaming has no
// rows to skip and can only add block bookkeeping.
std::string FullScanMixQuery(int i) {
  switch (i % 2) {
    case 0:
      return "g.V().hasLabel('vt" + std::to_string(i % 10) + "').id()";
    default:
      return "g.V().out('et" + std::to_string(i % 10) + "').count()";
  }
}

// Runs `queries` instances of a mix; returns elapsed seconds.
double RunMixSlice(Db2Graph* graph, std::string (*mix)(int), int queries,
                   int base) {
  auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < queries; ++k) {
    Result<std::vector<Traverser>> out = graph->Execute(mix(base + k));
    if (!out.ok()) {
      std::fprintf(stderr, "streaming bench query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// ---- Multi-hop collapse ablation workload. ----

// Three-hop friend-of-friend-of-friend expansions from a small seed set,
// the LinkBench traversal shape the join collapse exists for. The leading
// predicate keeps the whole hop chain adjacent through strategy rewrites,
// so the optimizer sees all three hops; rotating the seed value exercises
// ten distinct cached plans per mode.
std::string HopMixQuery(int i) {
  return "g.V().has('val', eq(" + std::to_string(i % 10) +
         ")).out('link').out('link').out('link').count()";
}

// Same, with every execution governed by the given options.
double RunGovernedMixSlice(Db2Graph* graph, const db2graph::core::ExecOptions&
                               options,
                           std::string (*mix)(int), int queries, int base) {
  auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < queries; ++k) {
    Result<std::vector<Traverser>> out =
        graph->Execute(mix(base + k), options);
    if (!out.ok()) {
      std::fprintf(stderr, "governed bench query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace

int main() {
  db2graph::linkbench::Config config;
  config.num_vertices = 400;
  db2graph::linkbench::Dataset dataset =
      db2graph::linkbench::GeneratePartitioned(config);
  db2graph::sql::Database db;
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 2;
  }
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
      &db, db2graph::linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
  if (!graph.ok()) {
    std::fprintf(stderr, "open failed: %s\n", graph.status().ToString().c_str());
    return 2;
  }

  constexpr int kQueries = 1500;
  constexpr int kIdRange = 200;
  constexpr int kRounds = 3;
  // Traced throughput must stay within this fraction of untraced. The
  // floor is deliberately loose — it catches pathologies (a mutex on the
  // untraced path, per-record allocation storms), not small regressions.
  constexpr double kRatioFloor = 0.30;

  // Warm the vertex cache and code paths in both modes.
  RunBatch(graph->get(), kIdRange, kIdRange);
  SlowQueryLog::Global().SetThresholdMs(1000000);  // traced, never logged
  RunBatch(graph->get(), kIdRange, kIdRange);
  SlowQueryLog::Global().SetThresholdMs(0);

  double untraced_best = 0;
  double traced_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double untraced = RunBatch(graph->get(), kQueries, kIdRange);
    if (untraced > untraced_best) untraced_best = untraced;

    SlowQueryLog::Global().SetThresholdMs(1000000);
    double traced = RunBatch(graph->get(), kQueries, kIdRange);
    SlowQueryLog::Global().SetThresholdMs(0);
    if (traced > traced_best) traced_best = traced;
  }

  double ratio = traced_best / untraced_best;
  std::printf("bench_smoke: untraced=%.0f q/s traced=%.0f q/s ratio=%.2f "
              "(floor %.2f)\n",
              untraced_best, traced_best, ratio, kRatioFloor);
  if (!SlowQueryLog::Global().Entries().empty()) {
    std::fprintf(stderr, "FAIL: armed-but-under-threshold queries were "
                         "logged as slow\n");
    return 1;
  }
  if (ratio < kRatioFloor) {
    std::fprintf(stderr, "FAIL: traced/untraced throughput ratio %.2f below "
                         "floor %.2f\n",
                 ratio, kRatioFloor);
    return 1;
  }

  // ---- Prepared-vs-text: compile-once must beat parse-per-call. ----

  std::vector<PreparedQuery> prepared;
  for (const char* shape : kPreparedShapes) {
    Result<PreparedQuery> q = graph->get()->Prepare(shape);
    if (!q.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   q.status().ToString().c_str());
      return 2;
    }
    prepared.push_back(std::move(*q));
  }

  // The hard contract first: once prepared, executing never parses. Run a
  // pure-prepared batch (no ad-hoc admixture) and require a parse-call
  // delta of exactly zero.
  uint64_t parses_before = ParseCalls();
  for (int i = 0; i < 3 * kIdRange; ++i) {
    db2graph::gremlin::Environment binds{
        {"vid", {Value(int64_t{1 + i % kIdRange})}}};
    Result<std::vector<Traverser>> out = prepared[i % kNumShapes].Execute(binds);
    if (!out.ok()) {
      std::fprintf(stderr, "prepared warmup failed: %s\n",
                   out.status().ToString().c_str());
      return 2;
    }
  }
  uint64_t warm_parse_delta = ParseCalls() - parses_before;
  if (warm_parse_delta != 0) {
    std::fprintf(stderr, "FAIL: %llu ParseGremlin calls during pure prepared "
                         "execution (expected 0)\n",
                 static_cast<unsigned long long>(warm_parse_delta));
    return 1;
  }

  // Alternate short slices of the two modes within each round so ambient
  // load (CI neighbors, thermal throttling) penalizes both about equally,
  // then take each mode's best round.
  constexpr int kSlices = 6;
  constexpr int kSliceQueries = kQueries / kSlices;
  uint64_t adhoc_seq = 0;
  MixStats prepared_best;
  MixStats text_best;
  for (int round = 0; round < kRounds; ++round) {
    MixStats p;
    MixStats t;
    double p_secs = 0;
    double t_secs = 0;
    for (int slice = 0; slice < kSlices; ++slice) {
      int base = slice * kSliceQueries;
      p_secs += RunPreparedMixSlice(graph->get(), prepared, kSliceQueries,
                                    base, kIdRange, &adhoc_seq, &p);
      t_secs += RunTextMixSlice(graph->get(), kSliceQueries, base, kIdRange,
                                &adhoc_seq, &t);
    }
    p.qps = kSlices * kSliceQueries / p_secs;
    t.qps = kSlices * kSliceQueries / t_secs;
    // Within the mix, only the ad-hoc (unique-text) queries may parse;
    // the 95% prepared portion must contribute zero.
    if (p.parse_calls > p.adhoc) {
      std::fprintf(stderr, "FAIL: prepared mix made %llu parse calls for "
                           "%llu ad-hoc queries\n",
                   static_cast<unsigned long long>(p.parse_calls),
                   static_cast<unsigned long long>(p.adhoc));
      return 1;
    }
    if (p.qps > prepared_best.qps) prepared_best = p;
    if (t.qps > text_best.qps) text_best = t;
  }

  double speedup = prepared_best.qps / text_best.qps;
  std::printf("bench_prepared: prepared=%.0f q/s text=%.0f q/s speedup=%.2fx "
              "(prepared parses=%llu over %llu ad-hoc, text parses=%llu)\n",
              prepared_best.qps, text_best.qps, speedup,
              static_cast<unsigned long long>(prepared_best.parse_calls),
              static_cast<unsigned long long>(prepared_best.adhoc),
              static_cast<unsigned long long>(text_best.parse_calls));

  {
    std::ofstream json("BENCH_prepared.json");
    json << "{\n"
         << "  \"queries_per_round\": " << kQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"repeated_fraction\": 0.95,\n"
         << "  \"prepared_qps\": " << prepared_best.qps << ",\n"
         << "  \"text_qps\": " << text_best.qps << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"prepared_parse_calls\": " << prepared_best.parse_calls
         << ",\n"
         << "  \"prepared_adhoc_queries\": " << prepared_best.adhoc << ",\n"
         << "  \"text_parse_calls\": " << text_best.parse_calls << "\n"
         << "}\n";
  }

  // Floor: the prepared path must at least match the re-parsing text
  // path. In practice it wins comfortably (no parse, no strategy pass,
  // cached SQL skeletons); equality is the regression tripwire.
  if (prepared_best.qps < text_best.qps) {
    std::fprintf(stderr, "FAIL: prepared throughput %.0f q/s below "
                         "re-parsing text path %.0f q/s\n",
                 prepared_best.qps, text_best.qps);
    return 1;
  }

  // ---- Vectorized-vs-scalar: typed kernels must beat Row tree-walks. ----
  //
  // A dedicated column-store table sized so one query scans enough rows
  // for per-row costs to dominate: mixed int/double/string/group columns
  // with a sprinkling of NULLs so the kernels' validity handling is on
  // the measured path.
  db2graph::sql::Database vec_db;
  if (!vec_db.Execute("CREATE TABLE Wide (a BIGINT, b DOUBLE, "
                      "s VARCHAR(8), g BIGINT)")
           .ok()) {
    std::fprintf(stderr, "vectorized bench setup failed\n");
    return 2;
  }
  {
    db2graph::sql::Table* wide = vec_db.GetTable("Wide");
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 100000; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      db2graph::Row row;
      row.push_back(Value(static_cast<int64_t>(rng % 1000000)));
      row.push_back((rng >> 8) % 16 == 0
                        ? Value()
                        : Value(static_cast<double>((rng >> 16) % 10000) / 4));
      row.push_back(Value("x" + std::to_string((rng >> 32) % 16)));
      row.push_back(Value(static_cast<int64_t>((rng >> 48) % 8)));
      if (!wide->Insert(std::move(row)).ok()) {
        std::fprintf(stderr, "vectorized bench load failed\n");
        return 2;
      }
    }
  }

  constexpr int kVecQueries = 60;
  constexpr int kVecSlices = 4;
  constexpr int kVecSliceQueries = kVecQueries / kVecSlices;
  // Warm both modes once.
  vec_db.SetExecConfig(vec_db.exec_config().vectorized(true));
  RunSqlMixSlice(&vec_db, 5, 0);
  vec_db.SetExecConfig(vec_db.exec_config().vectorized(false));
  RunSqlMixSlice(&vec_db, 5, 0);

  double vectorized_best = 0;
  double scalar_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double v_secs = 0;
    double s_secs = 0;
    for (int slice = 0; slice < kVecSlices; ++slice) {
      int base = slice * kVecSliceQueries;
      vec_db.SetExecConfig(vec_db.exec_config().vectorized(true));
      v_secs += RunSqlMixSlice(&vec_db, kVecSliceQueries, base);
      vec_db.SetExecConfig(vec_db.exec_config().vectorized(false));
      s_secs += RunSqlMixSlice(&vec_db, kVecSliceQueries, base);
    }
    if (kVecQueries / v_secs > vectorized_best)
      vectorized_best = kVecQueries / v_secs;
    if (kVecQueries / s_secs > scalar_best) scalar_best = kVecQueries / s_secs;
  }
  vec_db.SetExecConfig(vec_db.exec_config().vectorized(true));

  double vec_speedup = vectorized_best / scalar_best;
  std::printf("bench_vectorized: vectorized=%.0f q/s scalar=%.0f q/s "
              "speedup=%.2fx\n",
              vectorized_best, scalar_best, vec_speedup);

  {
    std::ofstream json("BENCH_vectorized.json");
    json << "{\n"
         << "  \"table_rows\": 100000,\n"
         << "  \"mix_queries\": " << kVecQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"vectorized_qps\": " << vectorized_best << ",\n"
         << "  \"scalar_qps\": " << scalar_best << ",\n"
         << "  \"speedup\": " << vec_speedup << "\n"
         << "}\n";
  }

  // Floor: the vectorized path must at least match the scalar tree on
  // its home workload. In practice it wins by multiples; equality is the
  // regression tripwire.
  if (vectorized_best < scalar_best) {
    std::fprintf(stderr, "FAIL: vectorized throughput %.0f q/s below "
                         "scalar %.0f q/s\n",
                 vectorized_best, scalar_best);
    return 1;
  }

  // ---- Monitoring overhead: armed instrumentation must stay cheap. ----
  //
  // Same column-store mix, instrumentation off vs fully on (query-log
  // recording plus per-operator profiling of every SELECT). The profiled
  // mode pays two clock reads per operator block plus one ring push per
  // statement; the floor catches that turning into anything worse.
  constexpr double kObsFloor = 0.90;
  db2graph::QueryLog& qlog = db2graph::QueryLog::Global();
  const bool qlog_was_enabled = qlog.enabled();
  auto set_instrumentation = [&](bool on) {
    qlog.SetEnabled(on);
    vec_db.SetExecConfig(vec_db.exec_config().profile(on));
  };
  // Warm both modes.
  set_instrumentation(false);
  RunSqlMixSlice(&vec_db, 5, 0);
  set_instrumentation(true);
  RunSqlMixSlice(&vec_db, 5, 0);

  double plain_best = 0;
  double instrumented_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double plain_secs = 0;
    double inst_secs = 0;
    for (int slice = 0; slice < kVecSlices; ++slice) {
      int base = slice * kVecSliceQueries;
      set_instrumentation(false);
      plain_secs += RunSqlMixSlice(&vec_db, kVecSliceQueries, base);
      set_instrumentation(true);
      inst_secs += RunSqlMixSlice(&vec_db, kVecSliceQueries, base);
    }
    if (kVecQueries / plain_secs > plain_best)
      plain_best = kVecQueries / plain_secs;
    if (kVecQueries / inst_secs > instrumented_best)
      instrumented_best = kVecQueries / inst_secs;
  }
  vec_db.SetExecConfig(vec_db.exec_config().profile(false));
  qlog.SetEnabled(qlog_was_enabled);

  double obs_ratio = instrumented_best / plain_best;
  std::printf("bench_observability: plain=%.0f q/s instrumented=%.0f q/s "
              "ratio=%.2f (floor %.2f)\n",
              plain_best, instrumented_best, obs_ratio, kObsFloor);

  {
    std::ofstream json("BENCH_observability.json");
    json << "{\n"
         << "  \"table_rows\": 100000,\n"
         << "  \"mix_queries\": " << kVecQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"plain_qps\": " << plain_best << ",\n"
         << "  \"instrumented_qps\": " << instrumented_best << ",\n"
         << "  \"ratio\": " << obs_ratio << ",\n"
         << "  \"floor\": " << kObsFloor << "\n"
         << "}\n";
  }

  if (obs_ratio < kObsFloor) {
    std::fprintf(stderr, "FAIL: instrumented/plain throughput ratio %.2f "
                         "below floor %.2f\n",
                 obs_ratio, kObsFloor);
    return 1;
  }

  // ---- Streaming-vs-materialized: early termination must pay. ----
  //
  // A larger dataset than the tracing contract's: with ~40 rows per table
  // the full drain the baseline pays is too small to measure, so the
  // streaming section gets its own database where a limit actually skips
  // thousands of rows per query.
  db2graph::linkbench::Config stream_config;
  stream_config.num_vertices = 20000;
  db2graph::linkbench::Dataset stream_dataset =
      db2graph::linkbench::GeneratePartitioned(stream_config);
  db2graph::sql::Database stream_db;
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&stream_db,
                                                        stream_dataset)
           .ok()) {
    std::fprintf(stderr, "streaming bench load failed\n");
    return 2;
  }
  Result<std::unique_ptr<Db2Graph>> streaming = Db2Graph::Open(
      &stream_db,
      db2graph::linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
  // The pre-streaming baseline: materialized interpretation and no LIMIT
  // pushdown (both arrived with the streaming pipeline).
  Db2Graph::Options mat_options;
  mat_options.exec = db2graph::ExecConfig().streaming(false);
  mat_options.strategies.limit_pushdown = false;
  Result<std::unique_ptr<Db2Graph>> materialized = Db2Graph::Open(
      &stream_db,
      db2graph::linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false),
      mat_options);
  if (!streaming.ok() || !materialized.ok()) {
    std::fprintf(stderr, "streaming bench open failed\n");
    return 2;
  }

  // Rows-scanned contract, measured once outside the timed rounds (the
  // workload is deterministic): one full pass of the limit mix per mode.
  constexpr int kStreamQueries = 240;
  constexpr int kStreamSlices = 4;
  constexpr int kStreamSliceQueries = kStreamQueries / kStreamSlices;
  db2graph::sql::ExecStats::Counts before = stream_db.stats().Snapshot();
  RunMixSlice(streaming->get(), LimitMixQuery, kStreamQueries, 0);
  db2graph::sql::ExecStats::Counts mid = stream_db.stats().Snapshot();
  RunMixSlice(materialized->get(), LimitMixQuery, kStreamQueries, 0);
  db2graph::sql::ExecStats::Counts after = stream_db.stats().Snapshot();
  uint64_t stream_rows = mid.rows_scanned - before.rows_scanned;
  uint64_t mat_rows = after.rows_scanned - mid.rows_scanned;

  double stream_limit_best = 0;
  double mat_limit_best = 0;
  double stream_scan_best = 0;
  double mat_scan_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double s_limit = 0;
    double m_limit = 0;
    for (int slice = 0; slice < kStreamSlices; ++slice) {
      int base = slice * kStreamSliceQueries;
      s_limit += RunMixSlice(streaming->get(), LimitMixQuery,
                             kStreamSliceQueries, base);
      m_limit += RunMixSlice(materialized->get(), LimitMixQuery,
                             kStreamSliceQueries, base);
    }
    double s_qps = kStreamQueries / s_limit;
    double m_qps = kStreamQueries / m_limit;
    if (s_qps > stream_limit_best) stream_limit_best = s_qps;
    if (m_qps > mat_limit_best) mat_limit_best = m_qps;

    // The full-scan mix drains everything either way; far fewer
    // iterations are needed for a stable per-query cost.
    constexpr int kScanQueries = 40;
    double s_scan = RunMixSlice(streaming->get(), FullScanMixQuery,
                                kScanQueries, 0);
    double m_scan = RunMixSlice(materialized->get(), FullScanMixQuery,
                                kScanQueries, 0);
    if (kScanQueries / s_scan > stream_scan_best)
      stream_scan_best = kScanQueries / s_scan;
    if (kScanQueries / m_scan > mat_scan_best)
      mat_scan_best = kScanQueries / m_scan;
  }

  double limit_speedup = stream_limit_best / mat_limit_best;
  double scan_ratio = stream_scan_best / mat_scan_best;
  std::printf(
      "bench_streaming: limit mix streaming=%.0f q/s materialized=%.0f q/s "
      "speedup=%.2fx rows_scanned=%llu vs %llu; full-scan mix "
      "streaming=%.0f q/s materialized=%.0f q/s ratio=%.2f\n",
      stream_limit_best, mat_limit_best, limit_speedup,
      static_cast<unsigned long long>(stream_rows),
      static_cast<unsigned long long>(mat_rows), stream_scan_best,
      mat_scan_best, scan_ratio);

  {
    std::ofstream json("BENCH_streaming.json");
    json << "{\n"
         << "  \"limit_mix_queries\": " << kStreamQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"streaming_limit_qps\": " << stream_limit_best << ",\n"
         << "  \"materialized_limit_qps\": " << mat_limit_best << ",\n"
         << "  \"limit_speedup\": " << limit_speedup << ",\n"
         << "  \"streaming_rows_scanned\": " << stream_rows << ",\n"
         << "  \"materialized_rows_scanned\": " << mat_rows << ",\n"
         << "  \"streaming_fullscan_qps\": " << stream_scan_best << ",\n"
         << "  \"materialized_fullscan_qps\": " << mat_scan_best << ",\n"
         << "  \"fullscan_ratio\": " << scan_ratio << "\n"
         << "}\n";
  }

  // Floors: on the limit mix, streaming must win on both axes — at least
  // match the baseline's throughput and scan strictly fewer rows (the
  // whole point of the pull pipeline). On the full-scan mix the block
  // machinery may cost something, but an inversion past the loose floor
  // means per-block overhead turned pathological.
  constexpr double kFullScanFloor = 0.50;
  if (stream_limit_best < mat_limit_best) {
    std::fprintf(stderr, "FAIL: streaming limit-mix throughput %.0f q/s "
                         "below materialized %.0f q/s\n",
                 stream_limit_best, mat_limit_best);
    return 1;
  }
  if (stream_rows >= mat_rows) {
    std::fprintf(stderr, "FAIL: streaming scanned %llu rows on the limit "
                         "mix, not fewer than materialized %llu\n",
                 static_cast<unsigned long long>(stream_rows),
                 static_cast<unsigned long long>(mat_rows));
    return 1;
  }
  if (scan_ratio < kFullScanFloor) {
    std::fprintf(stderr, "FAIL: streaming full-scan throughput ratio %.2f "
                         "below floor %.2f\n",
                 scan_ratio, kFullScanFloor);
    return 1;
  }

  // ---- Governor overhead: governed-but-not-tripping must be free. ----
  //
  // Generous limits put a live QueryContext on every execution, so each
  // block boundary pays the real deadline / budget checks and the memory
  // accounting charges and releases — the worst honest case for a query
  // that never violates anything.
  db2graph::core::ExecOptions governed_options;
  governed_options.timeout_ms = 600000;
  governed_options.max_result_rows = 100000000;
  governed_options.max_memory_bytes = int64_t{16} << 30;
  double ungoverned_best = 0;
  double governed_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double u = 0;
    double g = 0;
    for (int slice = 0; slice < kStreamSlices; ++slice) {
      int base = slice * kStreamSliceQueries;
      u += RunMixSlice(streaming->get(), LimitMixQuery, kStreamSliceQueries,
                       base);
      g += RunGovernedMixSlice(streaming->get(), governed_options,
                               LimitMixQuery, kStreamSliceQueries, base);
    }
    if (kStreamQueries / u > ungoverned_best)
      ungoverned_best = kStreamQueries / u;
    if (kStreamQueries / g > governed_best) governed_best = kStreamQueries / g;
  }
  double governor_ratio = governed_best / ungoverned_best;
  std::printf(
      "bench_governor: ungoverned=%.0f q/s governed=%.0f q/s ratio=%.2f\n",
      ungoverned_best, governed_best, governor_ratio);

  {
    std::ofstream json("BENCH_governor.json");
    json << "{\n"
         << "  \"queries\": " << kStreamQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"ungoverned_qps\": " << ungoverned_best << ",\n"
         << "  \"governed_qps\": " << governed_best << ",\n"
         << "  \"governed_ratio\": " << governor_ratio << "\n"
         << "}\n";
  }

  constexpr double kGovernorFloor = 0.95;
  if (governor_ratio < kGovernorFloor) {
    std::fprintf(stderr, "FAIL: governed throughput ratio %.2f below "
                         "floor %.2f\n",
                 governor_ratio, kGovernorFloor);
    return 1;
  }

  // ---- Parallel-vs-serial: morsels must pay on real cores. ----
  //
  // SQL side: the same full-scan aggregate mix the vectorized contract
  // uses, re-run under the session ExecConfig at dop 1 and dop 4 (the
  // parallel scan/aggregate operators engage at dop > 1). Gremlin side: a
  // groupCount barrier ablation over the 20k-vertex streaming dataset,
  // with the dop carried per-execution through ExecOptions::config.
  const unsigned cores = std::thread::hardware_concurrency();

  auto run_sql_at = [&](const db2graph::ExecConfig& cfg, int queries,
                        int base) {
    vec_db.SetExecConfig(cfg);
    return RunSqlMixSlice(&vec_db, queries, base);
  };
  const db2graph::ExecConfig serial_cfg;  // nothing set: resolves to dop 1
  const db2graph::ExecConfig dop1_cfg = serial_cfg.parallelism(1);
  const db2graph::ExecConfig dop4_cfg = serial_cfg.parallelism(4);
  // Warm each mode once.
  run_sql_at(serial_cfg, 5, 0);
  run_sql_at(dop1_cfg, 5, 0);
  run_sql_at(dop4_cfg, 5, 0);

  double par_serial_best = 0;
  double par_dop1_best = 0;
  double par_dop4_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double serial_secs = 0;
    double dop1_secs = 0;
    double dop4_secs = 0;
    for (int slice = 0; slice < kVecSlices; ++slice) {
      int base = slice * kVecSliceQueries;
      serial_secs += run_sql_at(serial_cfg, kVecSliceQueries, base);
      dop1_secs += run_sql_at(dop1_cfg, kVecSliceQueries, base);
      dop4_secs += run_sql_at(dop4_cfg, kVecSliceQueries, base);
    }
    if (kVecQueries / serial_secs > par_serial_best)
      par_serial_best = kVecQueries / serial_secs;
    if (kVecQueries / dop1_secs > par_dop1_best)
      par_dop1_best = kVecQueries / dop1_secs;
    if (kVecQueries / dop4_secs > par_dop4_best)
      par_dop4_best = kVecQueries / dop4_secs;
  }
  vec_db.SetExecConfig(serial_cfg);

  // Gremlin groupCount ablation: barrier drains split into per-worker
  // chunks at dop > 1; serial and parallel must agree on results (the
  // equivalence suite asserts that — here only throughput is measured).
  constexpr int kGroupCountQueries = 30;
  auto run_groupcount_at = [&](int dop) {
    ExecOptions opts;
    opts.config = db2graph::ExecConfig().parallelism(dop);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kGroupCountQueries; ++i) {
      const std::string q = i % 2 == 0
                                ? "g.V().label().groupCount()"
                                : "g.V().values('version').groupCount()";
      Result<std::vector<Traverser>> out =
          streaming->get()->Execute(q, opts);
      if (!out.ok()) {
        std::fprintf(stderr, "groupCount bench query failed: %s\n",
                     out.status().ToString().c_str());
        std::exit(2);
      }
    }
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return kGroupCountQueries / elapsed.count();
  };
  run_groupcount_at(1);  // warm
  run_groupcount_at(4);
  double gc_dop1_best = 0;
  double gc_dop4_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double g1 = run_groupcount_at(1);
    double g4 = run_groupcount_at(4);
    if (g1 > gc_dop1_best) gc_dop1_best = g1;
    if (g4 > gc_dop4_best) gc_dop4_best = g4;
  }

  double dop1_ratio = par_dop1_best / par_serial_best;
  double dop4_speedup = par_dop4_best / par_dop1_best;
  double gc_speedup = gc_dop4_best / gc_dop1_best;
  constexpr double kDop1Floor = 0.95;
  constexpr double kDop4Floor = 1.8;
  const bool dop4_gated = cores >= 4;
  std::printf(
      "bench_parallel: cores=%u sql serial=%.0f q/s dop1=%.0f q/s "
      "dop4=%.0f q/s dop1/serial=%.2f dop4/dop1=%.2fx (floor %.2fx, %s); "
      "gremlin groupCount dop1=%.0f q/s dop4=%.0f q/s speedup=%.2fx\n",
      cores, par_serial_best, par_dop1_best, par_dop4_best, dop1_ratio,
      dop4_speedup, kDop4Floor,
      dop4_gated ? "enforced" : "not enforced: fewer than 4 cores",
      gc_dop1_best, gc_dop4_best, gc_speedup);

  {
    std::ofstream json("BENCH_parallel.json");
    json << "{\n"
         << "  \"cores\": " << cores << ",\n"
         << "  \"mix_queries\": " << kVecQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"sql_serial_qps\": " << par_serial_best << ",\n"
         << "  \"sql_dop1_qps\": " << par_dop1_best << ",\n"
         << "  \"sql_dop4_qps\": " << par_dop4_best << ",\n"
         << "  \"sql_dop1_over_serial\": " << dop1_ratio << ",\n"
         << "  \"sql_dop4_over_dop1\": " << dop4_speedup << ",\n"
         << "  \"gremlin_groupcount_dop1_qps\": " << gc_dop1_best << ",\n"
         << "  \"gremlin_groupcount_dop4_qps\": " << gc_dop4_best << ",\n"
         << "  \"gremlin_groupcount_speedup\": " << gc_speedup << ",\n"
         << "  \"dop1_floor\": " << kDop1Floor << ",\n"
         << "  \"dop4_floor\": " << kDop4Floor << ",\n"
         << "  \"dop4_floor_enforced\": "
         << (dop4_gated ? "true" : "false") << "\n"
         << "}\n";
  }

  // Floors. dop 1 resolves to the identical serial operator tree — the
  // only added cost is ExecConfig resolution per statement — so it must
  // stay within 0.95x of serial everywhere. The dop-4 scaling floor only
  // means something when the hardware can actually run 4 workers at once;
  // on smaller machines the measured ratio is reported, not enforced.
  if (dop1_ratio < kDop1Floor) {
    std::fprintf(stderr, "FAIL: dop-1 throughput ratio %.2f below "
                         "floor %.2f\n",
                 dop1_ratio, kDop1Floor);
    return 1;
  }
  if (dop4_gated && dop4_speedup < kDop4Floor) {
    std::fprintf(stderr, "FAIL: dop-4/dop-1 speedup %.2fx below floor "
                         "%.2fx on a %u-core machine\n",
                 dop4_speedup, kDop4Floor, cores);
    return 1;
  }

  // ---- Multi-hop collapse: one N-way join must beat three round trips. --
  //
  // A dedicated graph with the schema shape collapse legality requires: a
  // PRIMARY KEY on the vertex id and indexes on both edge endpoints. Each
  // node carries three out-edges, so a 3-hop expansion touches 27 paths
  // per seed — enough join work per query for the SQL round-trip count to
  // be the measured difference.
  constexpr int kHopNodes = 1000;
  db2graph::sql::Database hop_db;
  if (!hop_db.ExecuteScript(
                 "CREATE TABLE node (id BIGINT PRIMARY KEY, val BIGINT);"
                 "CREATE TABLE link (src BIGINT, dst BIGINT);"
                 "CREATE INDEX idx_link_src ON link (src);"
                 "CREATE INDEX idx_link_dst ON link (dst);")
           .ok()) {
    std::fprintf(stderr, "multihop bench setup failed\n");
    return 2;
  }
  {
    db2graph::sql::Table* node = hop_db.GetTable("node");
    db2graph::sql::Table* link = hop_db.GetTable("link");
    for (int i = 1; i <= kHopNodes; ++i) {
      db2graph::Row row;
      row.push_back(Value(int64_t{i}));
      row.push_back(Value(int64_t{i % 97}));
      bool ok = node->Insert(std::move(row)).ok();
      for (int mul : {1, 3, 7}) {
        db2graph::Row edge;
        edge.push_back(Value(int64_t{i}));
        edge.push_back(Value(int64_t{(i * mul) % kHopNodes + 1}));
        ok = ok && link->Insert(std::move(edge)).ok();
      }
      if (!ok) {
        std::fprintf(stderr, "multihop bench load failed\n");
        return 2;
      }
    }
  }
  const char* hop_overlay = R"json({
    "v_tables": [{"table_name": "node", "id": "id", "fix_label": true,
                  "label": "'node'", "properties": ["val"]}],
    "e_tables": [{"table_name": "link", "src_v_table": "node",
                  "src_v": "src", "dst_v_table": "node", "dst_v": "dst",
                  "implicit_edge_id": true, "fix_label": true,
                  "label": "'link'"}]
  })json";
  Result<std::unique_ptr<Db2Graph>> collapsed =
      Db2Graph::Open(&hop_db, hop_overlay);
  Db2Graph::Options stepwise_options;
  stepwise_options.optimizer.multi_hop_collapse = false;
  Result<std::unique_ptr<Db2Graph>> stepwise =
      Db2Graph::Open(&hop_db, hop_overlay, stepwise_options);
  if (!collapsed.ok() || !stepwise.ok()) {
    std::fprintf(stderr, "multihop bench open failed\n");
    return 2;
  }

  constexpr int kHopQueries = 240;
  constexpr int kHopSlices = 4;
  constexpr int kHopSliceQueries = kHopQueries / kHopSlices;
  // Warm both modes (compiles all ten plan shapes per graph).
  RunMixSlice(collapsed->get(), HopMixQuery, 10, 0);
  RunMixSlice(stepwise->get(), HopMixQuery, 10, 0);

  // The ablation is only meaningful if the two modes genuinely diverge:
  // the collapsed graph must have chosen collapsed plans and run them as
  // joins (no runtime fallbacks), and the step-at-a-time graph — opened
  // with the pass disabled — must never even have attempted one.
  db2graph::core::OptimizerLog::Counters collapse_counters =
      collapsed->get()->optimizer_log()->counters();
  db2graph::core::OptimizerLog::Counters stepwise_counters =
      stepwise->get()->optimizer_log()->counters();
  if (collapse_counters.chosen == 0 || collapse_counters.executions == 0 ||
      collapse_counters.fallbacks != 0 || stepwise_counters.attempted != 0) {
    std::fprintf(stderr,
                 "FAIL: multihop ablation not engaged (chosen=%llu "
                 "executions=%llu fallbacks=%llu stepwise_attempted=%llu)\n",
                 static_cast<unsigned long long>(collapse_counters.chosen),
                 static_cast<unsigned long long>(collapse_counters.executions),
                 static_cast<unsigned long long>(collapse_counters.fallbacks),
                 static_cast<unsigned long long>(stepwise_counters.attempted));
    return 1;
  }

  double collapsed_best = 0;
  double stepwise_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double c_secs = 0;
    double s_secs = 0;
    for (int slice = 0; slice < kHopSlices; ++slice) {
      int base = slice * kHopSliceQueries;
      c_secs += RunMixSlice(collapsed->get(), HopMixQuery,
                            kHopSliceQueries, base);
      s_secs += RunMixSlice(stepwise->get(), HopMixQuery,
                            kHopSliceQueries, base);
    }
    if (kHopQueries / c_secs > collapsed_best)
      collapsed_best = kHopQueries / c_secs;
    if (kHopQueries / s_secs > stepwise_best)
      stepwise_best = kHopQueries / s_secs;
  }
  collapse_counters = collapsed->get()->optimizer_log()->counters();

  double hop_speedup = collapsed_best / stepwise_best;
  std::printf(
      "bench_multihop: collapsed=%.0f q/s step-at-a-time=%.0f q/s "
      "speedup=%.2fx (chosen=%llu executions=%llu fallbacks=%llu)\n",
      collapsed_best, stepwise_best, hop_speedup,
      static_cast<unsigned long long>(collapse_counters.chosen),
      static_cast<unsigned long long>(collapse_counters.executions),
      static_cast<unsigned long long>(collapse_counters.fallbacks));

  {
    std::ofstream json("BENCH_multihop.json");
    json << "{\n"
         << "  \"nodes\": " << kHopNodes << ",\n"
         << "  \"edges\": " << 3 * kHopNodes << ",\n"
         << "  \"hops\": 3,\n"
         << "  \"queries\": " << kHopQueries << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"collapsed_qps\": " << collapsed_best << ",\n"
         << "  \"step_at_a_time_qps\": " << stepwise_best << ",\n"
         << "  \"speedup\": " << hop_speedup << ",\n"
         << "  \"collapse_chosen\": " << collapse_counters.chosen << ",\n"
         << "  \"collapse_executions\": " << collapse_counters.executions
         << ",\n"
         << "  \"collapse_fallbacks\": " << collapse_counters.fallbacks << "\n"
         << "}\n";
  }

  // Floor: the collapsed join must at least match step-at-a-time on its
  // home traversal. In practice it wins (one SQL statement instead of one
  // per hop); equality is the regression tripwire.
  if (collapsed_best < stepwise_best) {
    std::fprintf(stderr, "FAIL: collapsed multi-hop throughput %.0f q/s "
                         "below step-at-a-time %.0f q/s\n",
                 collapsed_best, stepwise_best);
    return 1;
  }
  return 0;
}
