// Copyright (c) 2026 The db2graph-repro Authors.
//
// Smoke benchmark guarding the tracing layer's "zero cost when disabled"
// contract: runs the same point-lookup workload untraced and traced (by
// arming the slow-query threshold, which routes queries through the traced
// path without ever logging them) and fails — nonzero exit, so ctest
// reports it — if traced throughput falls below a floor fraction of
// untraced throughput. Interleaves the two modes across rounds and takes
// each mode's best round to damp scheduler noise on small CI machines.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/db2graph.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace {

using db2graph::Result;
using db2graph::SlowQueryLog;
using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

// One-hop neighborhood expansions: every query issues real SQL (edge
// lookups are not cached), which is the workload shape whose overhead the
// tracing contract is about. Pure cache-hit point reads (~1us each) would
// make any per-query trace bookkeeping look catastrophic while being
// irrelevant to real traversals.
double RunBatch(Db2Graph* graph, int queries, int id_range) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    int64_t id = 1 + (i % id_range);
    Result<std::vector<Traverser>> out =
        graph->Execute("g.V(" + std::to_string(id) + ").out()");
    if (!out.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(2);
    }
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return queries / elapsed.count();
}

}  // namespace

int main() {
  db2graph::linkbench::Config config;
  config.num_vertices = 400;
  db2graph::linkbench::Dataset dataset =
      db2graph::linkbench::GeneratePartitioned(config);
  db2graph::sql::Database db;
  if (!db2graph::linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 2;
  }
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
      &db, db2graph::linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
  if (!graph.ok()) {
    std::fprintf(stderr, "open failed: %s\n", graph.status().ToString().c_str());
    return 2;
  }

  constexpr int kQueries = 1500;
  constexpr int kIdRange = 200;
  constexpr int kRounds = 3;
  // Traced throughput must stay within this fraction of untraced. The
  // floor is deliberately loose — it catches pathologies (a mutex on the
  // untraced path, per-record allocation storms), not small regressions.
  constexpr double kRatioFloor = 0.30;

  // Warm the vertex cache and code paths in both modes.
  RunBatch(graph->get(), kIdRange, kIdRange);
  SlowQueryLog::Global().SetThresholdMs(1000000);  // traced, never logged
  RunBatch(graph->get(), kIdRange, kIdRange);
  SlowQueryLog::Global().SetThresholdMs(0);

  double untraced_best = 0;
  double traced_best = 0;
  for (int round = 0; round < kRounds; ++round) {
    double untraced = RunBatch(graph->get(), kQueries, kIdRange);
    if (untraced > untraced_best) untraced_best = untraced;

    SlowQueryLog::Global().SetThresholdMs(1000000);
    double traced = RunBatch(graph->get(), kQueries, kIdRange);
    SlowQueryLog::Global().SetThresholdMs(0);
    if (traced > traced_best) traced_best = traced;
  }

  double ratio = traced_best / untraced_best;
  std::printf("bench_smoke: untraced=%.0f q/s traced=%.0f q/s ratio=%.2f "
              "(floor %.2f)\n",
              untraced_best, traced_best, ratio, kRatioFloor);
  if (!SlowQueryLog::Global().Entries().empty()) {
    std::fprintf(stderr, "FAIL: armed-but-under-threshold queries were "
                         "logged as slow\n");
    return 1;
  }
  if (ratio < kRatioFloor) {
    std::fprintf(stderr, "FAIL: traced/untraced throughput ratio %.2f below "
                         "floor %.2f\n",
                 ratio, kRatioFloor);
    return 1;
  }
  return 0;
}
