// Reproduces Figure 4 of the paper: Db2 Graph latency for the four
// LinkBench query types with the optimized traversal strategies
// (Section 6.2) turned on vs. off, on the small dataset. The
// data-dependent runtime optimizations of Section 6.3 stay ON in both
// configurations, exactly as the paper specifies.
//
// Paper shape: 2.8x-3.3x speedup across all four query types.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using db2graph::bench::LatencyStats;
using db2graph::bench::MeasureLatency;
using db2graph::core::Db2Graph;
using db2graph::core::StrategyOptions;
using db2graph::linkbench::QueryType;
using db2graph::linkbench::QueryTypeName;
using db2graph::linkbench::Workload;

constexpr int kQueriesPerType = 2000;
constexpr int kWarmup = 200;

}  // namespace

int main() {
  auto systems = db2graph::bench::SetUpRelational(
      db2graph::linkbench::Config::Small(), "LB-small");

  Db2Graph::Options no_strategy_options;
  no_strategy_options.strategies = StrategyOptions::AllOff();
  auto unoptimized = Db2Graph::Open(
      systems.db.get(), db2graph::linkbench::MakePartitionedOverlay(),
      no_strategy_options);
  if (!unoptimized.ok()) return 1;

  std::printf(
      "Figure 4: Db2 Graph with vs without optimized traversal strategies\n"
      "(latency on LB-small; data-dependent runtime optimizations ON in "
      "both)\n\n");
  std::printf("%-12s %14s %14s %9s\n", "Query", "with-opt(us)",
              "without(us)", "speedup");

  QueryType types[] = {QueryType::kGetNode, QueryType::kCountLinks,
                       QueryType::kGetLink, QueryType::kGetLinkList};
  double min_speedup = 1e9;
  double max_speedup = 0;
  for (QueryType type : types) {
    Workload workload(systems.dataset, 1234);
    std::vector<std::string> queries;
    for (int i = 0; i < kQueriesPerType + kWarmup; ++i) {
      queries.push_back(workload.Next(type));
    }
    auto run_opt = [&](const std::string& q) { systems.RunDb2Graph(q); };
    auto run_naive = [&](const std::string& q) {
      auto out = (*unoptimized)->Execute(q);
      if (!out.ok()) std::abort();
    };
    // Warm both template caches first.
    for (int i = 0; i < kWarmup; ++i) {
      run_opt(queries[i]);
      run_naive(queries[i]);
    }
    std::vector<std::string> measured(queries.begin() + kWarmup,
                                      queries.end());
    LatencyStats with_opt = MeasureLatency(run_opt, measured);
    LatencyStats without = MeasureLatency(run_naive, measured);
    double speedup = without.mean_us / with_opt.mean_us;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    std::printf("%-12s %14.1f %14.1f %8.2fx\n", QueryTypeName(type),
                with_opt.mean_us, without.mean_us, speedup);
  }
  std::printf(
      "\nPaper shape: every query speeds up, 2.8x-3.3x overall "
      "(measured %.1fx-%.1fx).\n",
      min_speedup, max_speedup);
  return 0;
}
