// Reproduces Table 2 of the paper: LinkBench dataset statistics at the
// two benchmark scales (laptop-scaled stand-ins for 10M / 100M).

#include <cstdio>

#include "bench/bench_util.h"
#include "linkbench/linkbench.h"

int main() {
  using db2graph::linkbench::Config;
  using db2graph::linkbench::Dataset;
  using db2graph::linkbench::DatasetStats;
  using db2graph::linkbench::Generate;

  std::printf("Table 2: LinkBench datasets (scaled; paper used 10M/100M)\n");
  std::printf(
      "%-10s %12s %12s %10s %12s %10s\n", "Dataset", "Vertices", "Edges",
      "AvgDeg", "MaxDeg", "CSV");
  struct ScaleDef {
    const char* name;
    Config config;
  } scales[] = {{"LB-small", Config::Small()}, {"LB-large", Config::Large()}};
  for (const ScaleDef& scale : scales) {
    Dataset dataset = Generate(scale.config);
    DatasetStats stats = dataset.Stats();
    std::printf("%-10s %12lld %12lld %10.2f %12lld %10s\n", scale.name,
                static_cast<long long>(stats.num_vertices),
                static_cast<long long>(stats.num_edges), stats.avg_degree,
                static_cast<long long>(stats.max_degree),
                db2graph::bench::HumanBytes(stats.approx_csv_bytes).c_str());
  }
  std::printf(
      "\nShape check vs. paper Table 2: avg degree ~4.2-4.3 and a max\n"
      "degree around 2%% of the edge count at both scales.\n");
  return 0;
}
