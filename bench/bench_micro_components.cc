// Google-benchmark microbenchmarks for the individual components: Gremlin
// compilation, strategy application, SQL parse/prepare/execute paths,
// overlay id composition, and the baseline record codec. These quantify
// the fixed per-query costs that the end-to-end figures are built from.

#include <benchmark/benchmark.h>

#include "baselines/codec.h"
#include "core/db2graph.h"
#include "core/strategies.h"
#include "gremlin/parser.h"
#include "linkbench/linkbench.h"
#include "overlay/topology.h"
#include "sql/database.h"
#include "sql/parser.h"

namespace {

using namespace db2graph;  // NOLINT(build/namespaces) bench-local

// ---------------------------------------------------------------- gremlin

void BM_GremlinParseGetLink(benchmark::State& state) {
  const std::string q =
      "g.V(123).outE('et3').where(inV().hasId(456))";
  for (auto _ : state) {
    auto script = gremlin::ParseGremlin(q);
    benchmark::DoNotOptimize(script);
  }
}
BENCHMARK(BM_GremlinParseGetLink);

void BM_GremlinParseSectionFourQuery(benchmark::State& state) {
  const std::string q =
      "similar = g.V().hasLabel('patient').has('patientID', 1)"
      ".out('hasDisease')"
      ".repeat(out('isa').dedup().store('x')).times(2)"
      ".repeat(in('isa').dedup().store('x')).times(2).cap('x').next();"
      "g.V(similar).in('hasDisease').dedup().values('patientID')";
  for (auto _ : state) {
    auto script = gremlin::ParseGremlin(q);
    benchmark::DoNotOptimize(script);
  }
}
BENCHMARK(BM_GremlinParseSectionFourQuery);

void BM_ApplyStrategies(benchmark::State& state) {
  auto script =
      gremlin::ParseGremlin("g.V(123).outE('et3').where(inV().hasId(456))"
                            ".count()");
  for (auto _ : state) {
    gremlin::Script copy = *script;
    core::ApplyStrategies(&copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ApplyStrategies);

// -------------------------------------------------------------------- sql

class SqlFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (db) return;
    db = std::make_unique<sql::Database>();
    linkbench::Config config;
    config.num_vertices = 20000;
    auto dataset = linkbench::Generate(config);
    if (!linkbench::LoadIntoDatabase(db.get(), dataset).ok()) std::abort();
  }
  void TearDown(const benchmark::State&) override {}
  static std::unique_ptr<sql::Database> db;
};
std::unique_ptr<sql::Database> SqlFixture::db;

BENCHMARK_F(SqlFixture, BM_SqlParseSelect)(benchmark::State& state) {
  const std::string q =
      "SELECT id, ntype, data FROM Node WHERE id = 17 AND ntype = 'vt3'";
  for (auto _ : state) {
    auto stmt = sql::ParseSql(q);
    benchmark::DoNotOptimize(stmt);
  }
}

BENCHMARK_F(SqlFixture, BM_PreparedIndexProbe)(benchmark::State& state) {
  auto prepared = db->Prepare("SELECT * FROM Node WHERE id = ?");
  if (!prepared.ok()) std::abort();
  int64_t id = 1;
  for (auto _ : state) {
    auto rs = prepared->Execute({Value(id)});
    benchmark::DoNotOptimize(rs);
    id = id % 20000 + 1;
  }
}

BENCHMARK_F(SqlFixture, BM_PreparedAdjacencyProbe)(benchmark::State& state) {
  auto prepared = db->Prepare(
      "SELECT * FROM Link WHERE id1 = ? AND ltype = ?");
  if (!prepared.ok()) std::abort();
  int64_t id = 1;
  for (auto _ : state) {
    auto rs = prepared->Execute({Value(id), Value("et3")});
    benchmark::DoNotOptimize(rs);
    id = id % 20000 + 1;
  }
}

BENCHMARK_F(SqlFixture, BM_AggregatePushdownCount)(benchmark::State& state) {
  auto prepared =
      db->Prepare("SELECT COUNT(*) FROM Link WHERE id1 = ?");
  if (!prepared.ok()) std::abort();
  int64_t id = 1;
  for (auto _ : state) {
    auto rs = prepared->Execute({Value(id)});
    benchmark::DoNotOptimize(rs);
    id = id % 20000 + 1;
  }
}

BENCHMARK_F(SqlFixture, BM_FullScanFilter)(benchmark::State& state) {
  // The access path the naive (no-pushdown) plans pay: scan + filter.
  for (auto _ : state) {
    auto rs = db->Execute("SELECT COUNT(*) FROM Node WHERE version = 3");
    benchmark::DoNotOptimize(rs);
  }
}

// ------------------------------------------------------------------ codec

void BM_CodecEncodeVertexRecord(benchmark::State& state) {
  std::vector<std::pair<std::string, Value>> props = {
      {"version", Value(int64_t{3})},
      {"time", Value(int64_t{1234567890})},
      {"data", Value("abcdefghijklmnopqrstuvwx")}};
  for (auto _ : state) {
    std::string blob;
    baselines::PutValue(Value(int64_t{42}), &blob);
    baselines::PutString("vt3", &blob);
    baselines::PutProperties(props, &blob);
    benchmark::DoNotOptimize(blob);
  }
}
BENCHMARK(BM_CodecEncodeVertexRecord);

void BM_CodecDecodeVertexRecord(benchmark::State& state) {
  std::string blob;
  baselines::PutValue(Value(int64_t{42}), &blob);
  baselines::PutString("vt3", &blob);
  baselines::PutProperties({{"version", Value(int64_t{3})},
                            {"time", Value(int64_t{1234567890})},
                            {"data", Value("abcdefghijklmnopqrstuvwx")}},
                           &blob);
  for (auto _ : state) {
    baselines::Decoder dec(blob);
    Value id;
    std::string label;
    std::vector<std::pair<std::string, Value>> props;
    (void)dec.GetValue(&id);
    (void)dec.GetString(&label);
    (void)baselines::GetProperties(&dec, &props);
    benchmark::DoNotOptimize(props);
  }
}
BENCHMARK(BM_CodecDecodeVertexRecord);

// ---------------------------------------------------------------- overlay

void BM_OverlayIdComposeDecompose(benchmark::State& state) {
  auto def = overlay::FieldDef::Parse("'patient'::patientID");
  overlay::ResolvedField field;
  field.def = *def;
  field.column_indexes = {0};
  Row row = {Value(int64_t{12345})};
  for (auto _ : state) {
    Value id = field.Compose(row);
    auto back = field.Decompose(id);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_OverlayIdComposeDecompose);

}  // namespace

BENCHMARK_MAIN();
