// Ablation of the four Section 6.2 traversal strategies: each one is
// disabled individually (everything else on) to attribute Figure 4's
// speedup to its components. The paper attributes getNode to predicate
// pushdown, countLinks/getLink/getLinkList to the GraphStep::VertexStep
// mutation, countLinks additionally to aggregate pushdown, and getLink
// additionally to predicate pushdown — this bench verifies exactly that
// attribution on our implementation.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using db2graph::bench::LatencyStats;
using db2graph::bench::MeasureLatency;
using db2graph::core::Db2Graph;
using db2graph::core::StrategyOptions;
using db2graph::linkbench::QueryType;
using db2graph::linkbench::QueryTypeName;
using db2graph::linkbench::Workload;

constexpr int kQueriesPerType = 1500;

struct Variant {
  const char* name;
  StrategyOptions options;
};

}  // namespace

int main() {
  auto systems = db2graph::bench::SetUpRelational(
      db2graph::linkbench::Config::Small(), "LB-small");

  std::vector<Variant> variants;
  variants.push_back({"all-on", StrategyOptions{}});
  {
    StrategyOptions o;
    o.predicate_pushdown = false;
    variants.push_back({"no-predicate-pd", o});
  }
  {
    StrategyOptions o;
    o.projection_pushdown = false;
    variants.push_back({"no-projection-pd", o});
  }
  {
    StrategyOptions o;
    o.aggregate_pushdown = false;
    variants.push_back({"no-aggregate-pd", o});
  }
  {
    StrategyOptions o;
    o.graphstep_vertexstep_mutation = false;
    variants.push_back({"no-gs::vs-mutation", o});
  }
  variants.push_back({"all-off", StrategyOptions::AllOff()});

  // Open one graph per variant (they share the database).
  std::vector<std::unique_ptr<Db2Graph>> graphs;
  for (const Variant& variant : variants) {
    Db2Graph::Options options;
    options.strategies = variant.options;
    auto graph = Db2Graph::Open(
        systems.db.get(), db2graph::linkbench::MakePartitionedOverlay(),
        options);
    if (!graph.ok()) return 1;
    graphs.push_back(std::move(*graph));
  }

  std::printf(
      "Ablation: mean latency (us) per LinkBench query with individual\n"
      "traversal strategies disabled (LB-small)\n\n");
  std::printf("%-20s", "Variant");
  QueryType types[] = {QueryType::kGetNode, QueryType::kCountLinks,
                       QueryType::kGetLink, QueryType::kGetLinkList};
  for (QueryType type : types) std::printf(" %12s", QueryTypeName(type));
  std::printf("\n");

  for (size_t v = 0; v < variants.size(); ++v) {
    std::printf("%-20s", variants[v].name);
    for (QueryType type : types) {
      Workload workload(systems.dataset, 7);
      std::vector<std::string> queries;
      for (int i = 0; i < kQueriesPerType; ++i) {
        queries.push_back(workload.Next(type));
      }
      auto run = [&](const std::string& q) {
        auto out = graphs[v]->Execute(q);
        if (!out.ok()) std::abort();
      };
      for (int i = 0; i < 100; ++i) run(queries[i]);  // warm templates
      LatencyStats stats = MeasureLatency(run, queries);
      std::printf(" %12.1f", stats.mean_us);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected attribution (paper Section 8): getNode regresses without\n"
      "predicate pushdown; countLinks/getLink/getLinkList regress without\n"
      "the GraphStep::VertexStep mutation; countLinks also regresses\n"
      "without aggregate pushdown; getLink also without predicate "
      "pushdown.\n");
  return 0;
}
