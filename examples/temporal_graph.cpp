// Temporal graphs (paper Sections 1 & 4): "the temporal support in Db2
// allows all of our graphs to be temporal as well. For example, one can
// view a graph 'as of' different time snapshots."
//
// The mechanism needs nothing graph-specific: the history table carries
// system-time columns (sys_start, sys_end), a view selects the rows
// current at time T, and the overlay maps the view as an edge table. One
// overlay per snapshot = one graph per snapshot, all over the same rows.
//
// Build & run:  ./build/examples/temporal_graph

#include <cstdio>

#include "core/db2graph.h"

using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

namespace {

// Overlay over the employment graph as of the snapshot view `view_name`.
std::string OverlayFor(const std::string& view_name) {
  return R"json({
    "v_tables": [
      {"table_name": "Person", "prefixed_id": true, "id": "'p'::personID",
       "fix_label": true, "label": "'person'", "properties": ["name"]},
      {"table_name": "Company", "prefixed_id": true, "id": "'c'::companyID",
       "fix_label": true, "label": "'company'", "properties": ["name"]}
    ],
    "e_tables": [
      {"table_name": ")json" +
         view_name + R"json(", "src_v_table": "Person",
       "src_v": "'p'::personID", "dst_v_table": "Company",
       "dst_v": "'c'::companyID", "implicit_edge_id": true,
       "fix_label": true, "label": "'worksAt'"}
    ]
  })json";
}

}  // namespace

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Person (personID BIGINT PRIMARY KEY, name VARCHAR(30));
    CREATE TABLE Company (companyID BIGINT PRIMARY KEY, name VARCHAR(30));
    -- System-period history: every employment row carries its validity
    -- interval [sys_start, sys_end).
    CREATE TABLE WorksAtHistory (
      personID BIGINT, companyID BIGINT,
      sys_start BIGINT, sys_end BIGINT
    );
    INSERT INTO Person VALUES (1, 'Alice'), (2, 'Bob');
    INSERT INTO Company VALUES (10, 'InitCorp'), (11, 'NextCo');
    -- Alice: InitCorp during [100, 200), NextCo from 200.
    INSERT INTO WorksAtHistory VALUES (1, 10, 100, 200);
    INSERT INTO WorksAtHistory VALUES (1, 11, 200, 99999999);
    -- Bob: InitCorp from 150.
    INSERT INTO WorksAtHistory VALUES (2, 10, 150, 99999999);
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // One snapshot view per time of interest; each is a non-materialized
  // SELECT, so the snapshots track the history table automatically.
  struct Snapshot {
    int64_t time;
    std::string view;
  } snapshots[] = {{120, "WorksAt_asof_120"},
                   {180, "WorksAt_asof_180"},
                   {250, "WorksAt_asof_250"}};
  for (const Snapshot& s : snapshots) {
    std::string ddl = "CREATE VIEW " + s.view +
                      " AS SELECT personID, companyID FROM WorksAtHistory "
                      "WHERE sys_start <= " + std::to_string(s.time) +
                      " AND sys_end > " + std::to_string(s.time);
    if (!db.Execute(ddl).ok()) return 1;
  }

  for (const Snapshot& s : snapshots) {
    auto graph = Db2Graph::Open(&db, OverlayFor(s.view));
    if (!graph.ok()) {
      std::printf("%s\n", graph.status().ToString().c_str());
      return 1;
    }
    std::printf("Graph as of t=%lld:\n", static_cast<long long>(s.time));
    auto out = (*graph)->Execute(
        "g.V().hasLabel('company').in('worksAt').path()");
    if (!out.ok()) {
      std::printf("  %s\n", out.status().ToString().c_str());
      return 1;
    }
    for (const Traverser& t : *out) {
      std::printf("  %s\n", t.ToString().c_str());
    }
    if (out->empty()) std::printf("  (no employments)\n");
  }

  // A bitemporal-style correction: close Bob's row retroactively. Every
  // snapshot graph over the history reflects it instantly.
  std::printf("\nsql> UPDATE WorksAtHistory SET sys_end = 160 WHERE "
              "personID = 2\n");
  (void)db.Execute(
      "UPDATE WorksAtHistory SET sys_end = 160 WHERE personID = 2");
  auto graph = Db2Graph::Open(&db, OverlayFor("WorksAt_asof_180"));
  auto out = (*graph)->Execute("g.V('p::2').out('worksAt').count()");
  std::printf("Bob's employments as of t=180 after the correction: %s\n",
              (*out)[0].value.ToString().c_str());
  return 0;
}
