// Law-enforcement case study (paper Section 7): a police department
// dataset with persons, organizations, arrests, vehicles, locations and
// phones, all in ordinary relational tables maintained in real time.
// This example lets AutoOverlay (Section 5.1) derive the whole graph
// overlay from the primary-key/foreign-key catalog metadata — no manual
// configuration — then runs the case-study path queries the paper
// describes: the phone numbers and addresses of an arrest's suspects,
// and the criminal organizations all suspects of an arrest belong to.
//
// Build & run:  ./build/examples/law_enforcement

#include <cstdio>

#include "core/db2graph.h"
#include "overlay/auto_overlay.h"

using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Person (
      personID BIGINT PRIMARY KEY,
      name VARCHAR(40),
      role VARCHAR(20)
    );
    CREATE TABLE Organization (
      orgID BIGINT PRIMARY KEY,
      orgName VARCHAR(40),
      kind VARCHAR(20)
    );
    CREATE TABLE Arrest (
      arrestID BIGINT PRIMARY KEY,
      charge VARCHAR(40),
      day BIGINT
    );
    CREATE TABLE Phone (
      phoneID BIGINT PRIMARY KEY,
      number VARCHAR(20)
    );
    CREATE TABLE Address (
      addressID BIGINT PRIMARY KEY,
      street VARCHAR(60)
    );
    -- link tables (no PK, two FKs each => AutoOverlay edge tables)
    CREATE TABLE ArrestSuspect (
      arrestID BIGINT,
      personID BIGINT,
      FOREIGN KEY (arrestID) REFERENCES Arrest (arrestID),
      FOREIGN KEY (personID) REFERENCES Person (personID)
    );
    CREATE TABLE MemberOf (
      personID BIGINT,
      orgID BIGINT,
      FOREIGN KEY (personID) REFERENCES Person (personID),
      FOREIGN KEY (orgID) REFERENCES Organization (orgID)
    );
    CREATE TABLE HasPhone (
      personID BIGINT,
      phoneID BIGINT,
      FOREIGN KEY (personID) REFERENCES Person (personID),
      FOREIGN KEY (phoneID) REFERENCES Phone (phoneID)
    );
    CREATE TABLE LivesAt (
      personID BIGINT,
      addressID BIGINT,
      FOREIGN KEY (personID) REFERENCES Person (personID),
      FOREIGN KEY (addressID) REFERENCES Address (addressID)
    );
    INSERT INTO Person VALUES
      (1, 'Frank', 'suspect'), (2, 'Grace', 'suspect'),
      (3, 'Heidi', 'witness'), (4, 'Ivan', 'suspect');
    INSERT INTO Organization VALUES
      (1, 'Northside Crew', 'gang'), (2, 'City Bakery', 'legit');
    INSERT INTO Arrest VALUES (100, 'burglary', 12), (101, 'fraud', 19);
    INSERT INTO Phone VALUES (201, '555-0101'), (202, '555-0102'),
      (203, '555-0103');
    INSERT INTO Address VALUES (301, '17 Dock Rd'), (302, '4 Hill St');
    INSERT INTO ArrestSuspect VALUES (100, 1), (100, 2), (101, 4);
    INSERT INTO MemberOf VALUES (1, 1), (2, 1), (4, 2), (3, 2);
    INSERT INTO HasPhone VALUES (1, 201), (2, 202), (4, 203);
    INSERT INTO LivesAt VALUES (1, 301), (2, 301), (4, 302);
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // Derive the overlay from PK/FK metadata (Algorithms 1 & 2).
  auto config = db2graph::overlay::AutoOverlay(db);
  if (!config.ok()) {
    std::printf("AutoOverlay failed: %s\n",
                config.status().ToString().c_str());
    return 1;
  }
  std::printf("AutoOverlay derived %zu vertex tables and %zu edge tables:\n",
              config->v_tables.size(), config->e_tables.size());
  for (const auto& e : config->e_tables) {
    std::printf("  edge %-28s %s -> %s\n", e.label.value.c_str(),
                e.src_v_table.c_str(), e.dst_v_table.c_str());
  }
  std::printf("\nGenerated overlay configuration (JSON):\n%s\n\n",
              config->ToJsonText().substr(0, 400).c_str());

  auto graph = Db2Graph::Open(&db, *config);
  if (!graph.ok()) {
    std::printf("%s\n", graph.status().ToString().c_str());
    return 1;
  }

  auto show = [&](const char* title, const std::string& query) {
    std::printf("%s\n  gremlin> %s\n", title, query.c_str());
    auto out = (*graph)->Execute(query);
    if (!out.ok()) {
      std::printf("  ERROR: %s\n", out.status().ToString().c_str());
      return;
    }
    for (const Traverser& t : *out) {
      std::printf("    ==> %s\n", t.ToString().c_str());
    }
    std::printf("\n");
  };

  // Case study 1: phones and addresses of the suspects in arrest 100.
  // AutoOverlay maps ArrestSuspect(arrestID, personID) as an
  // Arrest -> Person edge, so suspects are reached via out().
  show("Phones of arrest 100's suspects:",
       "g.V('Arrest::100').out('Arrest_ArrestSuspect_Person')"
       ".out('Person_HasPhone_Phone').values('number')");
  show("Addresses of arrest 100's suspects:",
       "g.V('Arrest::100').out('Arrest_ArrestSuspect_Person')"
       ".out('Person_LivesAt_Address').values('street').dedup()");

  // Case study 2: the organizations all suspects of arrest 100 belong to.
  show("Organizations of arrest 100's suspects:",
       "g.V('Arrest::100').out('Arrest_ArrestSuspect_Person')"
       ".out('Person_MemberOf_Organization').dedup()"
       ".values('orgName', 'kind')");
  return 0;
}
