// The Gremlin console (paper Sections 3 & 4): a REPL over a Db2 Graph —
// and, because the graph is just a view of relational tables, a SQL
// console over the same data in the same session. This mirrors the
// paper's development-stage workflow of "a SQL console and a Gremlin
// console opened side by side to query the same underlying data".
//
// Commands:
//   g.V()...              any supported Gremlin traversal / script
//   :sql <statement>      run SQL against the same database
//   :plan <traversal>     show the strategy-optimized step plan
//   :trace <traversal>    run it and show the SQL it generated
//   :tables               list tables and views
//   :help, :quit
//
// Starts preloaded with the paper's Figure 2 healthcare data.
//
// Build & run:  ./build/examples/gremlin_console

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/db2graph.h"

using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

namespace {

constexpr char kOverlay[] = R"json({
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true,
     "id": "'patient'::patientID", "fix_label": true, "label": "'patient'",
     "properties": ["patientID", "name", "address", "subscriptionID"]},
    {"table_name": "Disease", "id": "diseaseID", "fix_label": true,
     "label": "'disease'",
     "properties": ["diseaseID", "conceptCode", "conceptName"]}
  ],
  "e_tables": [
    {"table_name": "DiseaseOntology", "src_v_table": "Disease",
     "src_v": "sourceID", "dst_v_table": "Disease", "dst_v": "targetID",
     "prefixed_edge_id": true, "id": "'ontology'::sourceID::targetID",
     "label": "type"},
    {"table_name": "HasDisease", "src_v_table": "Patient",
     "src_v": "'patient'::patientID", "dst_v_table": "Disease",
     "dst_v": "diseaseID", "implicit_edge_id": true,
     "fix_label": true, "label": "'hasDisease'"}
  ]
})json";

void PrintHelp() {
  std::printf(
      "  g.V()...            run a Gremlin traversal (scripts with ';' and\n"
      "                      variable assignment supported)\n"
      "  :sql <statement>    run SQL on the same database\n"
      "  :plan <traversal>   show the optimized step plan\n"
      "  :tables             list relations\n"
      "  :quit               exit\n");
}

}  // namespace

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY, name VARCHAR(100),
      address VARCHAR(200), subscriptionID BIGINT);
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR(20),
      conceptName VARCHAR(100));
    CREATE TABLE DiseaseOntology (
      sourceID BIGINT, targetID BIGINT, type VARCHAR(20));
    CREATE TABLE HasDisease (
      patientID BIGINT, diseaseID BIGINT, description VARCHAR(200));
    INSERT INTO Patient VALUES
      (1, 'Alice', '1 Main St', 101), (2, 'Bob', '2 Oak Ave', 102),
      (3, 'Carol', '3 Pine Rd', 103);
    INSERT INTO Disease VALUES
      (10, 'D10', 'diabetes'), (11, 'D11', 'type 2 diabetes'),
      (12, 'D12', 'hypertension'), (13, 'D13', 'metabolic disorder');
    INSERT INTO HasDisease VALUES
      (1, 11, 'dx 2019'), (2, 12, 'dx 2020'), (3, 11, 'dx 2021');
    INSERT INTO DiseaseOntology VALUES
      (11, 10, 'isa'), (10, 13, 'isa'), (12, 13, 'isa');
  )sql");
  if (!st.ok()) {
    std::printf("setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::printf("open failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  (void)(*graph)->RegisterGraphQueryFunction();

  std::printf(
      "Db2 Graph console — healthcare demo graph over 4 relational "
      "tables.\nType :help for commands.\n");
  std::string line;
  while (true) {
    std::printf("gremlin> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;  // EOF
    std::string trimmed = db2graph::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == ":quit" || trimmed == ":q" || trimmed == ":exit") break;
    if (trimmed == ":help" || trimmed == ":h") {
      PrintHelp();
      continue;
    }
    if (trimmed == ":tables") {
      for (const std::string& name : db.TableNames()) {
        std::printf("  table %s\n", name.c_str());
      }
      for (const std::string& name : db.ViewNames()) {
        std::printf("  view  %s\n", name.c_str());
      }
      continue;
    }
    if (db2graph::StartsWith(trimmed, ":sql ")) {
      auto rs = db.Execute(trimmed.substr(5));
      if (!rs.ok()) {
        std::printf("  ERROR: %s\n", rs.status().ToString().c_str());
      } else if (!rs->columns.empty()) {
        std::printf("%s", rs->ToString().c_str());
      } else {
        std::printf("  OK (%lld row(s) affected)\n",
                    static_cast<long long>(rs->affected));
      }
      continue;
    }
    if (db2graph::StartsWith(trimmed, ":trace ")) {
      (*graph)->dialect()->EnableTrace();
      auto out = (*graph)->Execute(trimmed.substr(7));
      std::vector<std::string> sql = (*graph)->dialect()->TakeTrace();
      if (!out.ok()) {
        std::printf("  ERROR: %s\n", out.status().ToString().c_str());
        continue;
      }
      for (const std::string& stmt : sql) {
        std::printf("  sql> %s\n", stmt.c_str());
      }
      for (const Traverser& t : *out) {
        std::printf("  ==> %s\n", t.ToString().c_str());
      }
      continue;
    }
    if (db2graph::StartsWith(trimmed, ":plan ")) {
      auto compiled = (*graph)->Compile(trimmed.substr(6));
      if (!compiled.ok()) {
        std::printf("  ERROR: %s\n", compiled.status().ToString().c_str());
        continue;
      }
      for (const auto& stmt : compiled->statements) {
        std::printf("  %s\n", stmt.traversal.ToString().c_str());
      }
      continue;
    }
    auto out = (*graph)->Execute(trimmed);
    if (!out.ok()) {
      std::printf("  ERROR: %s\n", out.status().ToString().c_str());
      continue;
    }
    for (const Traverser& t : *out) {
      std::printf("  ==> %s\n", t.ToString().c_str());
    }
    if (out->empty()) std::printf("  (no results)\n");
  }
  std::printf("\nbye\n");
  return 0;
}
