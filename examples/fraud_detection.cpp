// Mule-fraud detection (paper Section 7, finance): bank transaction data
// is updated continuously by operational systems and simultaneously used
// by SQL analytics. The fraud team needs graph queries over the *latest*
// transactions: how does a known fraudster's money reach a beneficiary
// through a chain of mule accounts?
//
// With Db2 Graph the transaction table is queried as a graph in place —
// a new transfer is visible to the very next traversal, with no reload.
//
// Build & run:  ./build/examples/fraud_detection

#include <cstdio>
#include <random>

#include "core/db2graph.h"

using db2graph::Value;
using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

namespace {

constexpr char kOverlay[] = R"json({
  "v_tables": [
    {"table_name": "Account", "id": "accountID",
     "fix_label": true, "label": "'account'",
     "properties": ["accountID", "holder", "riskFlag"]}
  ],
  "e_tables": [
    {"table_name": "Transfer", "src_v_table": "Account",
     "src_v": "fromAccount", "dst_v_table": "Account",
     "dst_v": "toAccount",
     "prefixed_edge_id": true, "id": "'xfer'::transferID",
     "fix_label": true, "label": "'transfer'",
     "properties": ["amount", "day"]}
  ]
})json";

}  // namespace

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Account (
      accountID BIGINT PRIMARY KEY,
      holder VARCHAR(40),
      riskFlag VARCHAR(10)
    );
    CREATE TABLE Transfer (
      transferID BIGINT PRIMARY KEY,
      fromAccount BIGINT,
      toAccount BIGINT,
      amount DOUBLE,
      day BIGINT,
      FOREIGN KEY (fromAccount) REFERENCES Account (accountID),
      FOREIGN KEY (toAccount) REFERENCES Account (accountID)
    );
    CREATE INDEX idx_tf_from ON Transfer (fromAccount);
    CREATE INDEX idx_tf_to ON Transfer (toAccount);
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // 200 accounts; account 1 is a flagged fraudster, 199 a known
  // beneficiary. Money moves 1 -> mules -> 199 through 3 hops, buried in
  // background transfer noise.
  auto* accounts = db.GetTable("Account");
  auto* transfers = db.GetTable("Transfer");
  for (int64_t a = 1; a <= 200; ++a) {
    const char* flag = a == 1 ? "fraud" : (a == 199 ? "benef" : "none");
    (void)accounts->Insert(
        {Value(a), Value("holder" + std::to_string(a)), Value(flag)});
  }
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int64_t> any(1, 200);
  std::uniform_real_distribution<double> amount(10, 500);
  int64_t tid = 1;
  for (int i = 0; i < 2000; ++i) {
    int64_t from = any(rng);
    int64_t to = any(rng);
    if (from == to) continue;
    (void)transfers->Insert({Value(tid++), Value(from), Value(to),
                             Value(amount(rng)), Value(int64_t{i % 30})});
  }
  // The laundering chain: 1 -> 42 -> 87 -> 199 (large amounts).
  for (auto [from, to] : {std::pair<int64_t, int64_t>{1, 42},
                          {42, 87},
                          {87, 199}}) {
    (void)transfers->Insert({Value(tid++), Value(from), Value(to),
                             Value(9500.0), Value(int64_t{29})});
  }

  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::printf("%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // Which accounts does the fraudster's money reach within 3 hops of
  // large transfers?
  const char* trace =
      "g.V(1).repeat(outE('transfer').has('amount', gt(5000))"
      ".inV().dedup().store('reached')).times(3).cap('reached')";
  std::printf("gremlin> %s\n", trace);
  auto out = (*graph)->Execute(trace);
  if (!out.ok()) {
    std::printf("%s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("  reachable via large transfers: %s\n\n",
              (*out)[0].ToString().c_str());

  // Does the trail hit a known beneficiary? Show the exact route
  // (vertices and transfer edges) with path().
  const char* hits_beneficiary =
      "g.V(1).repeat(outE('transfer').has('amount', gt(5000))"
      ".inV().dedup()).times(3).has('riskFlag', 'benef')"
      ".simplePath().path()";
  out = (*graph)->Execute(hits_beneficiary);
  if (!out.ok()) return 1;
  for (const Traverser& t : *out) {
    std::printf("  ALERT: laundering route %s\n", t.ToString().c_str());
  }

  // Freshness: the operational system inserts a brand-new mule hop; the
  // next traversal sees it without any reload.
  std::printf(
      "\nsql> INSERT INTO Transfer VALUES (..., 1 -> 55, 9900.0)\n"
      "sql> INSERT INTO Transfer VALUES (..., 55 -> 199, 9900.0)\n");
  (void)db.Execute("INSERT INTO Transfer VALUES (90001, 1, 55, 9900.0, 30)");
  (void)db.Execute(
      "INSERT INTO Transfer VALUES (90002, 55, 199, 9900.0, 30)");
  const char* two_hop =
      "g.V(1).outE('transfer').has('amount', gt(5000)).inV()"
      ".outE('transfer').has('amount', gt(5000)).inV()"
      ".has('riskFlag', 'benef').dedup().values('holder')";
  out = (*graph)->Execute(two_hop);
  if (!out.ok()) return 1;
  std::printf("gremlin> %s\n", two_hop);
  for (const Traverser& t : *out) {
    std::printf("  ALERT (fresh data): 2-hop route to %s via new mule\n",
                t.ToString().c_str());
  }
  std::printf(
      "\nA standalone graph database would still be showing yesterday's\n"
      "export; Db2 Graph traverses the live transaction table.\n");
  return 0;
}
