// The "surprising benefit" of the graph overlay (paper Section 5): new
// edge types can be *defined*, not inserted.
//
// An existing graph links patients to doctors and doctors to service
// providers. A customer wants direct patient -> provider edges. With a
// standalone graph database that means inserting millions of edges and
// maintaining them as the underlying relationships change. With Db2
// Graph, it is one non-materialized view joining two edge tables, mapped
// as an edge table in the overlay — and edge deletions propagate to the
// derived edges automatically.
//
// Build & run:  ./build/examples/overlay_views

#include <cstdio>

#include "core/db2graph.h"

using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

namespace {

constexpr char kOverlay[] = R"json({
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true,
     "id": "'p'::patientID", "fix_label": true, "label": "'patient'",
     "properties": ["name"]},
    {"table_name": "Doctor", "prefixed_id": true,
     "id": "'d'::doctorID", "fix_label": true, "label": "'doctor'",
     "properties": ["name"]},
    {"table_name": "Provider", "prefixed_id": true,
     "id": "'s'::providerID", "fix_label": true, "label": "'provider'",
     "properties": ["name"]}
  ],
  "e_tables": [
    {"table_name": "TreatedBy", "src_v_table": "Patient",
     "src_v": "'p'::patientID", "dst_v_table": "Doctor",
     "dst_v": "'d'::doctorID", "implicit_edge_id": true,
     "fix_label": true, "label": "'treatedBy'"},
    {"table_name": "WorksWith", "src_v_table": "Doctor",
     "src_v": "'d'::doctorID", "dst_v_table": "Provider",
     "dst_v": "'s'::providerID", "implicit_edge_id": true,
     "fix_label": true, "label": "'worksWith'"},
    {"table_name": "PatientProvider", "src_v_table": "Patient",
     "src_v": "'p'::pid", "dst_v_table": "Provider",
     "dst_v": "'s'::sid", "implicit_edge_id": true,
     "fix_label": true, "label": "'servedBy'"}
  ]
})json";

}  // namespace

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR(30));
    CREATE TABLE Doctor (doctorID BIGINT PRIMARY KEY, name VARCHAR(30));
    CREATE TABLE Provider (providerID BIGINT PRIMARY KEY, name VARCHAR(30));
    CREATE TABLE TreatedBy (patientID BIGINT, doctorID BIGINT);
    CREATE TABLE WorksWith (doctorID BIGINT, providerID BIGINT);
    INSERT INTO Patient VALUES (1, 'Alice'), (2, 'Bob');
    INSERT INTO Doctor VALUES (10, 'Dr. X'), (11, 'Dr. Y');
    INSERT INTO Provider VALUES (100, 'LabCorp'), (101, 'ImagingOne');
    INSERT INTO TreatedBy VALUES (1, 10), (2, 11);
    INSERT INTO WorksWith VALUES (10, 100), (11, 100), (11, 101);
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // The derived edge type: one view, zero inserted rows.
  st = db.ExecuteScript(R"sql(
    CREATE VIEW PatientProvider AS
      SELECT t.patientID AS pid, w.providerID AS sid
      FROM TreatedBy t JOIN WorksWith w ON t.doctorID = w.doctorID
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::printf("%s\n", graph.status().ToString().c_str());
    return 1;
  }

  auto show = [&](const std::string& query) {
    std::printf("gremlin> %s\n", query.c_str());
    auto out = (*graph)->Execute(query);
    if (!out.ok()) {
      std::printf("  ERROR: %s\n", out.status().ToString().c_str());
      return;
    }
    for (const Traverser& t : *out) {
      std::printf("  ==> %s\n", t.ToString().c_str());
    }
  };

  std::printf("Derived 'servedBy' edges come from a join view:\n");
  show("g.V('p::2').out('servedBy').values('name').order()");

  // The base relationship changes; the derived edges follow, with no
  // custom maintenance logic.
  std::printf("\nsql> DELETE FROM WorksWith WHERE doctorID = 11 AND "
              "providerID = 101\n");
  (void)db.Execute(
      "DELETE FROM WorksWith WHERE doctorID = 11 AND providerID = 101");
  show("g.V('p::2').out('servedBy').values('name').order()");

  std::printf("\nsql> INSERT INTO WorksWith VALUES (10, 101)\n");
  (void)db.Execute("INSERT INTO WorksWith VALUES (10, 101)");
  show("g.V('p::1').out('servedBy').values('name').order()");

  std::printf(
      "\nWith a standalone graph database these derived edges would be\n"
      "millions of physical rows plus custom code to keep them in sync.\n");
  return 0;
}
