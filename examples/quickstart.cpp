// Quickstart: the paper's Figure 2 healthcare scenario end to end.
//
// 1. Create ordinary relational tables and fill them with data (these
//    stand for tables that already power existing SQL applications).
// 2. Write the overlay configuration of Section 5 — verbatim from the
//    paper — mapping those tables to a property graph.
// 3. Open the graph with Db2 Graph and run Gremlin against it. No data is
//    copied or transformed; SQL keeps working on the same tables.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/db2graph.h"

using db2graph::core::Db2Graph;
using db2graph::gremlin::Traverser;

namespace {

// The Section 5 overlay configuration, as printed in the paper.
constexpr char kOverlay[] = R"json({
  "v_tables": [
    {
      "table_name": "Patient",
      "prefixed_id": true,
      "id": "'patient'::patientID",
      "fix_label": true,
      "label": "'patient'",
      "properties": ["patientID", "name", "address", "subscriptionID"]
    },
    {
      "table_name": "Disease",
      "id": "diseaseID",
      "fix_label": true,
      "label": "'disease'",
      "properties": ["diseaseID", "conceptCode", "conceptName"]
    }
  ],
  "e_tables": [
    {
      "table_name": "DiseaseOntology",
      "src_v_table": "Disease",
      "src_v": "sourceID",
      "dst_v_table": "Disease",
      "dst_v": "targetID",
      "prefixed_edge_id": true,
      "id": "'ontology'::sourceID::targetID",
      "label": "type"
    },
    {
      "table_name": "HasDisease",
      "src_v_table": "Patient",
      "src_v": "'patient'::patientID",
      "dst_v_table": "Disease",
      "dst_v": "diseaseID",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'hasDisease'"
    }
  ]
})json";

void Show(Db2Graph* graph, const std::string& query) {
  std::printf("gremlin> %s\n", query.c_str());
  auto out = graph->Execute(query);
  if (!out.ok()) {
    std::printf("  ERROR: %s\n", out.status().ToString().c_str());
    return;
  }
  for (const Traverser& t : *out) {
    std::printf("  ==> %s\n", t.ToString().c_str());
  }
}

}  // namespace

int main() {
  db2graph::sql::Database db;

  // Step 1: ordinary relational tables (Figure 2a).
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY,
      name VARCHAR(100),
      address VARCHAR(200),
      subscriptionID BIGINT
    );
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY,
      conceptCode VARCHAR(20),
      conceptName VARCHAR(100)
    );
    CREATE TABLE DiseaseOntology (
      sourceID BIGINT,
      targetID BIGINT,
      type VARCHAR(20)
    );
    CREATE TABLE HasDisease (
      patientID BIGINT,
      diseaseID BIGINT,
      description VARCHAR(200)
    );
    INSERT INTO Patient VALUES
      (1, 'Alice', '1 Main St', 101),
      (2, 'Bob', '2 Oak Ave', 102),
      (3, 'Carol', '3 Pine Rd', 103);
    INSERT INTO Disease VALUES
      (10, 'D10', 'diabetes'),
      (11, 'D11', 'type 2 diabetes'),
      (12, 'D12', 'hypertension'),
      (13, 'D13', 'metabolic disorder');
    INSERT INTO HasDisease VALUES
      (1, 11, 'diagnosed 2019'),
      (2, 12, 'diagnosed 2020'),
      (3, 11, 'diagnosed 2021');
    INSERT INTO DiseaseOntology VALUES
      (11, 10, 'isa'),
      (10, 13, 'isa'),
      (12, 13, 'isa');
  )sql");
  if (!st.ok()) {
    std::printf("setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Step 2 + 3: overlay the graph and open it. Opening resolves metadata
  // only — nothing is copied.
  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::printf("open failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Graph opened over 4 relational tables.\n\n");

  Show(graph->get(), "g.V().count()");
  Show(graph->get(), "g.V().hasLabel('patient').values('name').order()");
  Show(graph->get(), "g.V('patient::1').out('hasDisease')"
                     ".values('conceptName')");
  Show(graph->get(),
       "g.V('patient::1').out('hasDisease').repeat(out('isa')).times(2)"
       ".values('conceptName')");
  Show(graph->get(), "g.V(11).in('hasDisease').values('name').order()");

  // The graph is a live view: a plain SQL INSERT is immediately visible.
  std::printf("\nsql> INSERT INTO HasDisease VALUES (2, 11, 'new dx')\n");
  (void)db.Execute("INSERT INTO HasDisease VALUES (2, 11, 'new dx')");
  Show(graph->get(), "g.V(11).in('hasDisease').values('name').order()");
  return 0;
}
