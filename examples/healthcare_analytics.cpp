// The full Section 4 scenario: synergistic SQL + graph analytics in one
// statement. Patients' medical records and the disease ontology live in
// relational tables; wearable-device data arrives in DeviceData. The
// application finds patients whose diseases are similar to patient 1's
// (a graph traversal — 2 hops up and 2 hops down the ontology) and
// compares their daily exercise patterns (SQL join + group-by), exactly
// like the query printed in the paper:
//
//   SELECT patientID, AVG(steps), AVG(exerciseMinutes)
//   FROM DeviceData AS D,
//        TABLE (graphQuery('gremlin', '...')) AS P (...)
//   WHERE D.subscriptionID = P.subscriptionID
//   GROUP BY patientID
//
// Build & run:  ./build/examples/healthcare_analytics

#include <cstdio>
#include <random>

#include "core/db2graph.h"

using db2graph::Value;
using db2graph::core::Db2Graph;

namespace {

constexpr char kOverlay[] = R"json({
  "v_tables": [
    {"table_name": "Patient", "prefixed_id": true,
     "id": "'patient'::patientID", "fix_label": true, "label": "'patient'",
     "properties": ["patientID", "name", "subscriptionID"]},
    {"table_name": "Disease", "id": "diseaseID",
     "fix_label": true, "label": "'disease'",
     "properties": ["diseaseID", "conceptName"]}
  ],
  "e_tables": [
    {"table_name": "HasDisease", "src_v_table": "Patient",
     "src_v": "'patient'::patientID", "dst_v_table": "Disease",
     "dst_v": "diseaseID", "implicit_edge_id": true,
     "fix_label": true, "label": "'hasDisease'"},
    {"table_name": "DiseaseOntology", "src_v_table": "Disease",
     "src_v": "sourceID", "dst_v_table": "Disease", "dst_v": "targetID",
     "implicit_edge_id": true, "label": "type"}
  ]
})json";

}  // namespace

int main() {
  db2graph::sql::Database db;
  auto st = db.ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY,
      name VARCHAR(40),
      subscriptionID BIGINT
    );
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY,
      conceptName VARCHAR(60)
    );
    CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT);
    CREATE TABLE DiseaseOntology (
      sourceID BIGINT, targetID BIGINT, type VARCHAR(10)
    );
    CREATE TABLE DeviceData (
      subscriptionID BIGINT, day BIGINT, steps BIGINT,
      exerciseMinutes BIGINT
    );
    CREATE INDEX idx_hd_p ON HasDisease (patientID);
    CREATE INDEX idx_hd_d ON HasDisease (diseaseID);
    CREATE INDEX idx_do_s ON DiseaseOntology (sourceID);
    CREATE INDEX idx_do_t ON DiseaseOntology (targetID);
    CREATE INDEX idx_dd ON DeviceData (subscriptionID);
  )sql");
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // A three-level ontology: leaves (13..40) isa mid-level (7..12) isa
  // roots (1..6) — deep enough for the 2-up / 2-down traversal.
  std::mt19937_64 rng(11);
  auto* patients = db.GetTable("Patient");
  auto* diseases = db.GetTable("Disease");
  auto* has = db.GetTable("HasDisease");
  auto* onto = db.GetTable("DiseaseOntology");
  auto* device = db.GetTable("DeviceData");
  for (int64_t d = 1; d <= 40; ++d) {
    (void)diseases->Insert(
        {Value(d), Value("disease" + std::to_string(d))});
    if (d > 12) {  // leaf isa mid
      (void)onto->Insert({Value(d), Value(static_cast<int64_t>(7 + (d % 6))),
                          Value("isa")});
    } else if (d > 6) {  // mid isa root
      (void)onto->Insert({Value(d), Value(static_cast<int64_t>(1 + (d % 6))),
                          Value("isa")});
    }
  }
  std::uniform_int_distribution<int64_t> leaf(13, 40);
  std::uniform_int_distribution<int64_t> steps(2000, 18000);
  std::uniform_int_distribution<int64_t> minutes(10, 90);
  for (int64_t p = 1; p <= 60; ++p) {
    (void)patients->Insert(
        {Value(p), Value("patient" + std::to_string(p)), Value(100 + p)});
    (void)has->Insert({Value(p), Value(leaf(rng))});
    (void)has->Insert({Value(p), Value(leaf(rng))});
    for (int64_t day = 0; day < 7; ++day) {
      (void)device->Insert(
          {Value(100 + p), Value(day), Value(steps(rng)),
           Value(minutes(rng))});
    }
  }

  auto graph = Db2Graph::Open(&db, std::string(kOverlay));
  if (!graph.ok()) {
    std::printf("%s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (!(*graph)->RegisterGraphQueryFunction().ok()) return 1;

  // The paper's integrated statement (quotes doubled for SQL embedding).
  const char* sql = R"sql(
    SELECT patientID, AVG(steps) AS avgSteps,
           AVG(exerciseMinutes) AS avgMinutes
    FROM DeviceData AS D,
         TABLE (graphQuery('gremlin',
           'similar = g.V().hasLabel(''patient'').has(''patientID'', 1)
              .out(''hasDisease'')
              .repeat(out(''isa'').dedup().store(''x'')).times(2)
              .repeat(in(''isa'').dedup().store(''x'')).times(2)
              .cap(''x'').next();
            g.V(similar).in(''hasDisease'').dedup()
              .values(''patientID'', ''subscriptionID'')'))
         AS P (patientID BIGINT, subscriptionID BIGINT)
    WHERE D.subscriptionID = P.subscriptionID
    GROUP BY patientID
    ORDER BY avgSteps DESC
    LIMIT 10
  )sql";

  std::printf("Running the Section 4 integrated SQL + graph query...\n\n");
  auto rs = db.Execute(sql);
  if (!rs.ok()) {
    std::printf("%s\n", rs.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", rs->ToString().c_str());
  std::printf(
      "The subquery traversed the disease ontology as a graph; SQL did the\n"
      "join and aggregation — one statement, one copy of the data.\n");
  return 0;
}
