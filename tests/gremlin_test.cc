// Tests for the Gremlin parser and the traversal interpreter, executed
// against the native in-memory provider.

#include <gtest/gtest.h>

#include "baselines/native_graph.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"

namespace db2graph::gremlin {
namespace {

using baselines::NativeGraphDb;

// A small healthcare-shaped graph mirroring the paper's Figure 2:
// patients --hasDisease--> diseases --isa--> diseases.
class GremlinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto vp = [&](int64_t id, const std::string& name, int64_t sub) {
      ASSERT_TRUE(db_.AddVertex(Value(id), "patient",
                                {{"name", Value(name)},
                                 {"subscriptionID", Value(sub)}})
                      .ok());
    };
    auto vd = [&](int64_t id, const std::string& concept_name) {
      ASSERT_TRUE(db_.AddVertex(Value(id), "disease",
                                {{"conceptName", Value(concept_name)}})
                      .ok());
    };
    vp(1, "Alice", 101);
    vp(2, "Bob", 102);
    vp(3, "Carol", 103);
    vd(10, "diabetes");
    vd(11, "type 2 diabetes");
    vd(12, "hypertension");
    vd(13, "metabolic disorder");
    int64_t eid = 100;
    auto e = [&](const std::string& label, int64_t s, int64_t d,
                 std::vector<std::pair<std::string, Value>> props = {}) {
      ASSERT_TRUE(
          db_.AddEdge(Value(eid++), label, Value(s), Value(d), props).ok());
    };
    e("hasDisease", 1, 11, {{"description", Value("diagnosed 2019")}});
    e("hasDisease", 2, 12);
    e("hasDisease", 3, 11);
    e("isa", 11, 10);  // type 2 diabetes isa diabetes
    e("isa", 10, 13);  // diabetes isa metabolic disorder
    e("isa", 12, 13);  // hypertension isa metabolic disorder
    ASSERT_TRUE(db_.Open().ok());
  }

  std::vector<Traverser> Run(const std::string& script_text) {
    Result<Script> script = ParseGremlin(script_text);
    EXPECT_TRUE(script.ok()) << script.status().ToString();
    if (!script.ok()) return {};
    Interpreter interp(&db_);
    Result<std::vector<Traverser>> out = interp.RunScript(*script);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for "
                          << script_text;
    return out.ok() ? *out : std::vector<Traverser>{};
  }

  Value Single(const std::string& script_text) {
    std::vector<Traverser> out = Run(script_text);
    EXPECT_EQ(out.size(), 1u) << script_text;
    if (out.empty()) return Value::Null();
    return out[0].kind == Traverser::Kind::kValue ? out[0].value
                                                  : out[0].DedupKey();
  }

  NativeGraphDb db_;
};

TEST_F(GremlinTest, CountAllVertices) {
  EXPECT_EQ(Single("g.V().count()"), Value(int64_t{7}));
}

TEST_F(GremlinTest, CountAllEdges) {
  EXPECT_EQ(Single("g.E().count()"), Value(int64_t{6}));
}

TEST_F(GremlinTest, VertexById) {
  std::vector<Traverser> out = Run("g.V(1)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->label, "patient");
}

TEST_F(GremlinTest, HasLabelFilters) {
  EXPECT_EQ(Single("g.V().hasLabel('patient').count()"), Value(int64_t{3}));
  EXPECT_EQ(Single("g.V().hasLabel('disease').count()"), Value(int64_t{4}));
}

TEST_F(GremlinTest, HasPropertyEquality) {
  std::vector<Traverser> out = Run("g.V().has('name', 'Alice')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->id, Value(int64_t{1}));
}

TEST_F(GremlinTest, HasWithPredicate) {
  EXPECT_EQ(Single("g.V().has('subscriptionID', gt(101)).count()"),
            Value(int64_t{2}));
  EXPECT_EQ(Single("g.V().has('subscriptionID', within(101, 103)).count()"),
            Value(int64_t{2}));
}

TEST_F(GremlinTest, HasExistence) {
  EXPECT_EQ(Single("g.V().has('conceptName').count()"), Value(int64_t{4}));
}

TEST_F(GremlinTest, OutTraversal) {
  std::vector<Traverser> out = Run("g.V(1).out('hasDisease')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->id, Value(int64_t{11}));
}

TEST_F(GremlinTest, OutEReturnsEdgesWithProperties) {
  std::vector<Traverser> out = Run("g.V(1).outE('hasDisease')");
  ASSERT_EQ(out.size(), 1u);
  const Value* desc = out[0].edge->FindProperty("description");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(*desc, Value("diagnosed 2019"));
}

TEST_F(GremlinTest, InTraversal) {
  EXPECT_EQ(Single("g.V(11).in('hasDisease').count()"), Value(int64_t{2}));
}

TEST_F(GremlinTest, BothTraversal) {
  // Vertex 10 (diabetes): in from 11, out to 13.
  EXPECT_EQ(Single("g.V(10).both('isa').count()"), Value(int64_t{2}));
}

TEST_F(GremlinTest, EdgeVertexSteps) {
  std::vector<Traverser> out = Run("g.V(1).outE('hasDisease').inV()");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->id, Value(int64_t{11}));
  out = Run("g.V(1).outE('hasDisease').outV()");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->id, Value(int64_t{1}));
}

TEST_F(GremlinTest, ValuesProjection) {
  std::vector<Traverser> out = Run("g.V(1).values('name')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, Value("Alice"));
}

TEST_F(GremlinTest, MultiKeyValuesEmitInKeyOrder) {
  std::vector<Traverser> out =
      Run("g.V(1).values('name', 'subscriptionID')");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, Value("Alice"));
  EXPECT_EQ(out[1].value, Value(int64_t{101}));
}

TEST_F(GremlinTest, IdAndLabelSteps) {
  EXPECT_EQ(Single("g.V(1).id()"), Value(int64_t{1}));
  EXPECT_EQ(Single("g.V(1).label()"), Value("patient"));
}

TEST_F(GremlinTest, DedupRemovesDuplicates) {
  // Both Alice and Carol have disease 11.
  EXPECT_EQ(Single("g.V().hasLabel('patient').out('hasDisease').count()"),
            Value(int64_t{3}));
  EXPECT_EQ(
      Single("g.V().hasLabel('patient').out('hasDisease').dedup().count()"),
      Value(int64_t{2}));
}

TEST_F(GremlinTest, LimitAndRange) {
  EXPECT_EQ(Single("g.V().limit(3).count()"), Value(int64_t{3}));
  EXPECT_EQ(Single("g.V().range(2, 5).count()"), Value(int64_t{3}));
}

TEST_F(GremlinTest, OrderSortsValues) {
  std::vector<Traverser> out =
      Run("g.V().hasLabel('patient').values('name').order()");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, Value("Alice"));
  EXPECT_EQ(out[2].value, Value("Carol"));
  out = Run("g.V().hasLabel('patient').values('name').order('desc')");
  EXPECT_EQ(out[0].value, Value("Carol"));
}

TEST_F(GremlinTest, SumMeanMinMax) {
  EXPECT_EQ(Single("g.V().hasLabel('patient').values('subscriptionID')"
                   ".sum()"),
            Value(int64_t{306}));
  EXPECT_EQ(Single("g.V().hasLabel('patient').values('subscriptionID')"
                   ".mean()"),
            Value(102.0));
  EXPECT_EQ(Single("g.V().hasLabel('patient').values('subscriptionID')"
                   ".min()"),
            Value(int64_t{101}));
  EXPECT_EQ(Single("g.V().hasLabel('patient').values('subscriptionID')"
                   ".max()"),
            Value(int64_t{103}));
}

TEST_F(GremlinTest, RepeatTimesWalksOntology) {
  // 11 -isa-> 10 -isa-> 13.
  std::vector<Traverser> out = Run("g.V(11).repeat(out('isa')).times(2)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->id, Value(int64_t{13}));
}

TEST_F(GremlinTest, RepeatEmitCollectsEveryHop) {
  std::vector<Traverser> out =
      Run("g.V(11).repeat(out('isa')).times(2).emit()");
  ASSERT_EQ(out.size(), 2u);  // 10 then 13
}

TEST_F(GremlinTest, StoreAndCapAccumulate) {
  std::vector<Traverser> out =
      Run("g.V(11).repeat(out('isa').dedup().store('x')).times(2).cap('x')");
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].kind, Traverser::Kind::kList);
  EXPECT_EQ(out[0].list.size(), 2u);  // ids 10 and 13
}

TEST_F(GremlinTest, WhereSubTraversalFiltersEdges) {
  // getLink shape: edge from 1 with a specific destination.
  EXPECT_EQ(
      Single("g.V(1).outE('hasDisease').where(inV().hasId(11)).count()"),
      Value(int64_t{1}));
  EXPECT_EQ(
      Single("g.V(1).outE('hasDisease').where(inV().hasId(12)).count()"),
      Value(int64_t{0}));
}

TEST_F(GremlinTest, NotSubTraversal) {
  // Patients with no hasDisease edge to 11.
  EXPECT_EQ(Single("g.V().hasLabel('patient')"
                   ".not(out('hasDisease').hasId(11)).count()"),
            Value(int64_t{1}));
}

TEST_F(GremlinTest, ScriptVariablesFlowBetweenStatements) {
  std::vector<Traverser> out = Run(
      "sick = g.V(1).out('hasDisease').id();"
      "g.V(sick).in('hasDisease').values('name').order()");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, Value("Alice"));
  EXPECT_EQ(out[1].value, Value("Carol"));
}

TEST_F(GremlinTest, PaperSectionFourSimilarDiseaseQuery) {
  // The similar-disease traversal of Section 4, on the toy ontology with
  // 1-hop fan instead of 2 (also exercises cap + variable reuse).
  std::vector<Traverser> out = Run(
      "similar = g.V().hasLabel('patient').has('name', 'Alice')"
      ".out('hasDisease')"
      ".repeat(out('isa').dedup().store('x')).times(2)"
      ".repeat(in('isa').dedup().store('x')).times(2)"
      ".cap('x').next();"
      "g.V(similar).in('hasDisease').dedup().values('name')");
  // Similar diseases of Alice's t2d: up {10,13}, then down from there
  // {11,12,10}; patients with any of those: Alice, Bob, Carol.
  ASSERT_EQ(out.size(), 3u);
}

TEST_F(GremlinTest, ValueMapRendersProperties) {
  std::vector<Traverser> out = Run("g.V(1).valueMap('name')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, Value("{name: Alice}"));
}

TEST_F(GremlinTest, TraversersToRowsGroupsByArity) {
  std::vector<Traverser> out =
      Run("g.V().hasLabel('patient').values('name', 'subscriptionID')");
  Result<std::vector<Row>> rows = TraversersToRows(out, 2);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].size(), 2u);
}

TEST_F(GremlinTest, TraversersToRowsRejectsArityMismatch) {
  std::vector<Traverser> out = Run("g.V().hasLabel('patient').values('name')");
  EXPECT_FALSE(TraversersToRows(out, 2).ok());
}

TEST_F(GremlinTest, ParseErrors) {
  EXPECT_FALSE(ParseGremlin("g.V().unknownStep()").ok());
  EXPECT_FALSE(ParseGremlin("g.V(").ok());
  EXPECT_FALSE(ParseGremlin("").ok());
  EXPECT_FALSE(ParseGremlin("notg.V()").ok());
  EXPECT_FALSE(ParseGremlin("g.V().has()").ok());
  EXPECT_FALSE(ParseGremlin("g.V().times(2)").ok());
}

TEST_F(GremlinTest, PlanRendering) {
  Result<Traversal> t =
      ParseTraversal("g.V(1).outE('hasDisease').count()");
  ASSERT_TRUE(t.ok());
  std::string plan = t->ToString();
  EXPECT_NE(plan.find("GraphStep"), std::string::npos);
  EXPECT_NE(plan.find("VertexStep"), std::string::npos);
  EXPECT_NE(plan.find("AggregateStep"), std::string::npos);
}

TEST_F(GremlinTest, UnboundVariableFails) {
  Result<Script> script = ParseGremlin("g.V(nothere).count()");
  ASSERT_TRUE(script.ok());
  Interpreter interp(&db_);
  Result<std::vector<Traverser>> out = interp.RunScript(*script);
  EXPECT_FALSE(out.ok());
}

}  // namespace
}  // namespace db2graph::gremlin
