// Copyright (c) 2026 The db2graph-repro Authors.
//
// Workload governor coverage:
//
//  * deadlines — a timeout_ms=50 full traversal over 100k vertices fails
//    with kTimeout well under the 100 ms acceptance bound, including when
//    the deadline expires inside a barrier drain (order / groupCount /
//    both());
//  * result-row and memory budgets latch kResourceExhausted;
//  * ExecOptions limit resolution against process defaults (0 = inherit,
//    negative = explicitly unlimited);
//  * observability — the reason column in sysmon.query_log and
//    sysmon.slow_queries, the governor.* counters, sysmon.active_queries
//    and KillQuery;
//  * GremlinService admission control (bounded queue sheds with
//    kOverloaded under 4x-concurrency load) and Shutdown() cancelling
//    in-flight queries through the shared token;
//  * cancellation racing the parallel multi-table fan-out (a TSan
//    target, so the suite name matches the CI stress regex).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "common/workload_governor.h"
#include "core/db2graph.h"
#include "core/gremlin_service.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

uint64_t CounterValue(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name)->load();
}

// ------------------------------------------------------------------
// Deadlines over a large single-table graph.
// ------------------------------------------------------------------

// 100k vertices with edges: heavy enough that a full expansion runs for
// hundreds of milliseconds, so a 50 ms deadline reliably interrupts it.
class GovernorDeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    linkbench::Config config;
    config.num_vertices = 100000;
    config.edges_per_vertex = 2.0;
    dataset_ = new linkbench::Dataset(linkbench::Generate(config));
    db_ = new sql::Database();
    ASSERT_TRUE(linkbench::LoadIntoDatabase(db_, *dataset_).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  void SetUp() override {
    Result<std::unique_ptr<Db2Graph>> graph =
        Db2Graph::Open(db_, linkbench::MakeOverlay());
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  static linkbench::Dataset* dataset_;
  static sql::Database* db_;
  std::unique_ptr<Db2Graph> graph_;
};

linkbench::Dataset* GovernorDeadlineTest::dataset_ = nullptr;
sql::Database* GovernorDeadlineTest::db_ = nullptr;

// The acceptance test: deadline 50 ms, full two-hop expansion, kTimeout
// in well under 100 ms with the fan-out joined (Execute returning at all
// proves the join — producers still running would crash on teardown).
TEST_F(GovernorDeadlineTest, FullTraversalTimesOutUnder100ms) {
  uint64_t timeouts_before = CounterValue(governor::kTimeoutsCounter);
  ExecOptions options;
  options.timeout_ms = 50;
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V().out().out().count()", options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTimeout)
      << out.status().ToString();
  EXPECT_LT(elapsed.count(), 100) << "cooperative checks too coarse";
  EXPECT_GE(CounterValue(governor::kTimeoutsCounter), timeouts_before + 1);
}

// The deadline must also fire inside barrier drains, which buffer their
// whole upstream before emitting.
TEST_F(GovernorDeadlineTest, TimeoutInterruptsBarrierSteps) {
  // Each barrier sits on an expensive expansion so the upstream alone
  // outlives the deadline; the drain must observe it mid-buffer.
  for (const char* script :
       {"g.V().out().order().by('vp1').limit(5)",
        "g.V().out().values('vp1').groupCount()",
        "g.V().both().count()"}) {
    ExecOptions options;
    options.timeout_ms = 30;
    auto start = std::chrono::steady_clock::now();
    Result<std::vector<Traverser>> out = graph_->Execute(script, options);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_FALSE(out.ok()) << script;
    EXPECT_EQ(out.status().code(), StatusCode::kTimeout)
        << script << ": " << out.status().ToString();
    EXPECT_LT(elapsed.count(), 100) << script;
  }
}

TEST_F(GovernorDeadlineTest, ResultRowBudgetLatchesResourceExhausted) {
  ExecOptions options;
  options.max_result_rows = 1000;
  Result<std::vector<Traverser>> out = graph_->Execute("g.V()", options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
      << out.status().ToString();
}

TEST_F(GovernorDeadlineTest, MemoryBudgetLatchesResourceExhausted) {
  uint64_t before = CounterValue(governor::kResourceExhaustedCounter);
  ExecOptions options;
  options.max_memory_bytes = 64 * 1024;  // far under 100k traversers
  // Plain g.V() materializes every vertex (count() would push the
  // aggregate into SQL and retain nothing).
  Result<std::vector<Traverser>> out = graph_->Execute("g.V()", options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted)
      << out.status().ToString();
  EXPECT_GE(CounterValue(governor::kResourceExhaustedCounter), before + 1);
}

TEST_F(GovernorDeadlineTest, GenerousLimitsDoNotPerturbResults) {
  Result<std::vector<Traverser>> plain = graph_->Execute("g.V().count()");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ExecOptions options;
  options.timeout_ms = 60000;
  options.max_result_rows = 10000000;
  options.max_memory_bytes = int64_t{4} << 30;
  Result<std::vector<Traverser>> governed =
      graph_->Execute("g.V().count()", options);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ((*plain)[0].ToString(), (*governed)[0].ToString());
}

TEST_F(GovernorDeadlineTest, ProcessDefaultsApplyAndPerCallOverrides) {
  Db2Graph::SetDefaultMaxResultRows(1000);
  // 0 (the ExecOptions default) inherits the process default...
  Result<std::vector<Traverser>> inherited = graph_->Execute("g.V()");
  ASSERT_FALSE(inherited.ok());
  EXPECT_EQ(inherited.status().code(), StatusCode::kResourceExhausted);
  // ...and a negative field opts this call out of it.
  ExecOptions unlimited;
  unlimited.max_result_rows = -1;
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V().count()", unlimited);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  Db2Graph::SetDefaultMaxResultRows(0);
}

TEST_F(GovernorDeadlineTest, ExternalCancelTokenStopsExecution) {
  uint64_t cancels_before = CounterValue(governor::kCancelsCounter);
  governor::CancelToken token = governor::CancelToken::Make();
  ExecOptions options;
  options.cancel_token = token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel("client went away");
  });
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V().out().out().count()", options);
  canceller.join();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
      << out.status().ToString();
  EXPECT_NE(out.status().message().find("client went away"),
            std::string::npos);
  EXPECT_GE(CounterValue(governor::kCancelsCounter), cancels_before + 1);
}

// ------------------------------------------------------------------
// Observability: reason columns, active_queries, KillQuery.
// ------------------------------------------------------------------

TEST_F(GovernorDeadlineTest, QueryLogRecordsTerminationReason) {
  QueryLog::Global().SetEnabled(true);
  QueryLog::Global().Clear();
  ExecOptions options;
  options.timeout_ms = 30;
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V().out().out().count()", options);
  ASSERT_FALSE(out.ok());
  ASSERT_EQ(out.status().code(), StatusCode::kTimeout);

  Result<sql::ResultSet> rs = db_->Execute(
      "SELECT reason, error FROM sysmon.query_log "
      "WHERE layer = 'gremlin' AND reason = 'timeout'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_GE(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][1], Value(true));
  QueryLog::Global().SetEnabled(false);
  QueryLog::Global().Clear();
}

TEST_F(GovernorDeadlineTest, SlowQueryLogRecordsTerminationReason) {
  SlowQueryLog::Global().SetThresholdMs(1);
  SlowQueryLog::Global().Clear();
  ExecOptions options;
  options.timeout_ms = 30;
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V().out().out().count()", options);
  ASSERT_FALSE(out.ok());
  bool found = false;
  for (const SlowQueryLog::Entry& e : SlowQueryLog::Global().Entries()) {
    if (e.reason == "timeout") found = true;
  }
  EXPECT_TRUE(found);
  SlowQueryLog::Global().SetThresholdMs(0);
  SlowQueryLog::Global().Clear();
}

TEST_F(GovernorDeadlineTest, ActiveQueriesVisibleAndKillable) {
  ExecOptions options;
  options.timeout_ms = 60000;  // governed, but nowhere near expiring
  auto future = std::async(std::launch::async, [&] {
    return graph_->Execute("g.V().out().out().count()", options);
  });

  // Find the running query in the registry (it may take a moment to
  // register; it stays until the traversal finishes or is killed).
  uint64_t id = 0;
  for (int i = 0; i < 2000 && id == 0; ++i) {
    for (const auto& q : governor::ActiveQueryRegistry::Global().Snapshot()) {
      if (q->script().find("out()") != std::string::npos) id = q->id();
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u) << "query never appeared in sysmon.active_queries";

  // The virtual table surfaces the same query while it runs.
  Result<sql::ResultSet> rs = db_->Execute(
      "SELECT id, script, timeout_ms FROM sysmon.active_queries");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  bool visible = false;
  for (const Row& row : rs->rows) {
    if (row[0].as_int() == static_cast<int64_t>(id)) {
      visible = true;
      EXPECT_EQ(row[2].as_int(), 60000);
    }
  }
  EXPECT_TRUE(visible);

  ASSERT_TRUE(Db2Graph::KillQuery(id, "test kill"));
  Result<std::vector<Traverser>> out = future.get();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
      << out.status().ToString();
  EXPECT_NE(out.status().message().find("test kill"), std::string::npos);
  // Gone from the registry once unwound.
  EXPECT_FALSE(Db2Graph::KillQuery(id));
}

// ------------------------------------------------------------------
// GremlinService: admission control and shutdown cancellation.
// ------------------------------------------------------------------

TEST_F(GovernorDeadlineTest, ServiceShedsUnderOverload) {
  GremlinService::Options service_options;
  service_options.workers = 2;
  service_options.max_queue_depth = 4;
  GremlinService service(graph_.get(), service_options);

  // 4x the service's total capacity (2 executing + 4 queued): the surplus
  // must fail fast with kOverloaded, not park unboundedly.
  uint64_t shed_before = CounterValue(governor::kShedCounter);
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(service.Submit("g.V().out().count()"));
  }
  size_t ok = 0;
  size_t overloaded = 0;
  for (auto& f : futures) {
    GremlinService::Response r = f.get();
    if (r.ok()) {
      ++ok;
    } else if (r.status().code() == StatusCode::kOverloaded) {
      ++overloaded;
      EXPECT_NE(r.status().message().find("retry"), std::string::npos);
    } else {
      ADD_FAILURE() << r.status().ToString();
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(overloaded, 1u);
  EXPECT_EQ(service.shed(), overloaded);
  EXPECT_GE(CounterValue(governor::kShedCounter), shed_before + overloaded);
  service.Shutdown();
}

TEST_F(GovernorDeadlineTest, ShutdownCancelsInFlightQueries) {
  GremlinService::Options service_options;
  service_options.workers = 1;
  GremlinService service(graph_.get(), service_options);
  std::future<GremlinService::Response> slow =
      service.Submit("g.V().out().out().out().count()");
  // Let the worker pick it up, then shut down while it runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto start = std::chrono::steady_clock::now();
  service.Shutdown();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  GremlinService::Response r = slow.get();
  ASSERT_FALSE(r.ok());
  // kCancelled when the worker had started it, kUnavailable in the rare
  // schedule where shutdown won the race to the queue.
  EXPECT_TRUE(r.status().code() == StatusCode::kCancelled ||
              r.status().code() == StatusCode::kUnavailable)
      << r.status().ToString();
  // Cooperative cancellation means shutdown never waits out the full
  // three-hop expansion (which runs for many seconds).
  EXPECT_LT(elapsed.count(), 2000);
}

TEST_F(GovernorDeadlineTest, ServiceKillQueryCancelsOneRequest) {
  GremlinService::Options service_options;
  service_options.workers = 1;
  GremlinService service(graph_.get(), service_options);
  std::future<GremlinService::Response> slow =
      service.Submit("g.V().out().out().out().count()");
  uint64_t id = 0;
  for (int i = 0; i < 2000 && id == 0; ++i) {
    for (const auto& q : governor::ActiveQueryRegistry::Global().Snapshot()) {
      if (q->script().find("out().out().out()") != std::string::npos) {
        id = q->id();
      }
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(service.KillQuery(id));
  GremlinService::Response r = slow.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();
  // The service itself is healthy and keeps serving.
  GremlinService::Response next = service.Submit("g.V().limit(1)").get();
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  service.Shutdown();
}

// ------------------------------------------------------------------
// Cancellation vs the parallel fan-out (TSan stress; the suite name
// matches the CI tsan-stress regex).
// ------------------------------------------------------------------

class GovernorCancellationStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 4000;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

// A cancel fired from another thread races the 10-table producer fan-out:
// producers must observe the token (or the queue cancel) and join without
// a leak or a data race, whatever the interleaving.
TEST_F(GovernorCancellationStressTest, CancelRacesParallelProducers) {
  for (int iter = 0; iter < 50; ++iter) {
    governor::CancelToken token = governor::CancelToken::Make();
    ExecOptions options;
    options.cancel_token = token;
    std::thread canceller([&token, iter] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * iter));
      token.Cancel("stress cancel");
    });
    Result<std::vector<Traverser>> out = graph_->Execute("g.V()", options);
    canceller.join();
    // Either the query won the race or it observed the cancel — both are
    // valid; crashes, races, and stuck producers are what TSan hunts.
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
          << out.status().ToString();
    }
  }
}

// Tight deadlines expire while producers are mid-table; every outcome
// must be kTimeout or a complete result, with the fan-out joined.
TEST_F(GovernorCancellationStressTest, DeadlineRacesParallelProducers) {
  for (int iter = 0; iter < 50; ++iter) {
    ExecOptions options;
    options.timeout_ms = 1 + iter % 5;
    Result<std::vector<Traverser>> out =
        graph_->Execute("g.V().both().count()", options);
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kTimeout)
          << out.status().ToString();
    }
  }
}

}  // namespace
}  // namespace db2graph::core
