// Copyright (c) 2026 The db2graph-repro Authors.
//
// Concurrency stress coverage for the parallel multi-table fan-out and the
// sharded vertex cache: correct results under many concurrent sessionless
// GremlinService submits, nonzero parallel-batch/cache counters, and
// write-epoch invalidation (a write provably flushes stale cache entries,
// including cached negative lookups). The ConcurrentReadersAndWriter case
// is the primary TSan target (see README "Sanitizers").

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/db2graph.h"
#include "core/gremlin_service.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

// Partitioned LinkBench overlay with PLAIN integer ids: every g.V(id) must
// consult all 10 vertex tables (no prefix to pin a table), which is exactly
// the shape that exercises the fan-out and makes the cache worth filling.
class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 2000;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  Result<std::vector<Traverser>> Run(const std::string& script) {
    return graph_->Execute(script);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(ConcurrencyStressTest, FanOutAndCacheCountersFire) {
  auto& stats = graph_->provider()->stats();
  stats.Reset();

  Result<std::vector<Traverser>> first = Run("g.V(17)");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0].vertex->id, Value(int64_t{17}));
  // Cold cache: the lookup missed, then fanned out over all 10 tables.
  EXPECT_GT(stats.Snapshot().cache_misses, 0u);
  EXPECT_EQ(stats.Snapshot().cache_hits, 0u);
  EXPECT_GT(stats.Snapshot().parallel_batches, 0u);
  EXPECT_GE(stats.Snapshot().parallel_tasks, 10u);

  uint64_t queries_before = graph_->dialect()->queries_issued();
  Result<std::vector<Traverser>> second = Run("g.V(17)");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].vertex->id, Value(int64_t{17}));
  EXPECT_GT(stats.Snapshot().cache_hits, 0u);
  // The repeat was served entirely from the cache — no SQL at all.
  EXPECT_EQ(graph_->dialect()->queries_issued(), queries_before);
}

TEST_F(ConcurrencyStressTest, ConcurrentSubmitsReturnCorrectResults) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(8));
  auto& stats = graph_->provider()->stats();
  stats.Reset();

  constexpr int kRequests = 300;
  std::vector<std::future<GremlinService::Response>> futures;
  std::vector<int64_t> expected_ids;
  futures.reserve(kRequests);
  expected_ids.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    // Heavy repetition over a small id set so later requests hit the cache
    // while early ones are still fanning out.
    int64_t id = 1 + (i % 40);
    expected_ids.push_back(id);
    futures.push_back(service.Submit("g.V(" + std::to_string(id) + ")"));
  }
  for (int i = 0; i < kRequests; ++i) {
    GremlinService::Response response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->size(), 1u) << "request " << i;
    EXPECT_EQ((*response)[0].vertex->id, Value(expected_ids[i]));
  }
  EXPECT_EQ(service.completed(), static_cast<uint64_t>(kRequests));
  EXPECT_GT(stats.Snapshot().parallel_batches, 0u);
  EXPECT_GT(stats.Snapshot().cache_hits, 0u);
}

TEST_F(ConcurrencyStressTest, WriteInvalidatesCachedVertex) {
  // 42 % 10 == 2, so node 42 lives in Node_t2.
  Result<std::vector<Traverser>> before = Run("g.V(42)");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->size(), 1u);

  // Confirm the entry is cached: a repeat issues no SQL.
  uint64_t queries_before = graph_->dialect()->queries_issued();
  ASSERT_TRUE(Run("g.V(42)").ok());
  ASSERT_EQ(graph_->dialect()->queries_issued(), queries_before);

  ASSERT_TRUE(
      db_.Execute("UPDATE Node_t2 SET version = 777 WHERE id = 42").ok());

  Result<std::vector<Traverser>> after = Run("g.V(42)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->size(), 1u);
  const Value* version = (*after)[0].vertex->FindProperty("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(*version, Value(int64_t{777}))
      << "read after write returned a stale cached vertex";
}

TEST_F(ConcurrencyStressTest, WriteInvalidatesCachedNegativeLookup) {
  // 99999 % 10 == 9, so once inserted the node belongs in Node_t9.
  ASSERT_TRUE(Run("g.V(99999)").ok());
  EXPECT_EQ(Run("g.V(99999)")->size(), 0u);  // cached "no such vertex"

  ASSERT_TRUE(
      db_.Execute("INSERT INTO Node_t9 VALUES (99999, 5, 12345, 'late')")
          .ok());

  Result<std::vector<Traverser>> after = Run("g.V(99999)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->size(), 1u)
      << "insert did not flush the cached negative entry";
  EXPECT_EQ((*after)[0].vertex->id, Value(int64_t{99999}));
}

TEST_F(ConcurrencyStressTest, ConcurrentTracedQueriesDoNotInterleaveSpans) {
  // Each thread runs its own traced query against a distinct vertex id;
  // the installed traces are per-thread (and per-fan-out-job via
  // ScopedTrace), so every SQL record must mention only that thread's id.
  // Primary TSan target for the tracing layer.
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 25;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // Distinct id per thread per iteration; ids do not overlap across
        // threads, so a cross-trace leak is detectable in the SQL text.
        // One shared script with a per-execution binding: every thread
        // executes the same cached plan concurrently.
        int64_t id = 1 + t * 500 + i;
        QueryTrace trace;
        ExecOptions opts;
        opts.trace = &trace;
        opts.bindings = {{"vid", {Value(id)}}};
        Result<std::vector<Traverser>> out = graph_->Execute("g.V(vid)", opts);
        if (!out.ok() || out->size() != 1) {
          failures.fetch_add(1);
          continue;
        }
        // Point lookups render as `"id" IN (<id>)`.
        std::string expect = "(" + std::to_string(id) + ")";
        for (const StepTraceSpan& span : trace.Spans()) {
          for (const SqlTraceRecord& record : span.statements) {
            if (record.sql.find(expect) == std::string::npos) {
              failures.fetch_add(1);
            }
          }
        }
        // The fan-out consulted multiple tables; all must land here.
        bool saw_sql = false;
        for (const StepTraceSpan& span : trace.Spans()) {
          saw_sql |= !span.statements.empty();
        }
        if (!saw_sql) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrencyStressTest, ConcurrentReadersAndWriter) {
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 150;
  constexpr int kWrites = 60;
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([this, r, &failures] {
      std::mt19937_64 rng(1000 + r);
      for (int i = 0; i < kReadsPerReader; ++i) {
        int64_t id = 1 + static_cast<int64_t>(rng() % 200);
        Result<std::vector<Traverser>> out =
            graph_->Execute("g.V(" + std::to_string(id) + ")");
        if (!out.ok() || out->size() != 1 ||
            (*out)[0].vertex->id != Value(id)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([this, &failures] {
    for (int i = 0; i < kWrites; ++i) {
      int64_t id = 1 + (i % 200);
      std::string table = "Node_t" + std::to_string(id % 10);
      Result<sql::ResultSet> r = db_.Execute(
          "UPDATE " + table + " SET version = " + std::to_string(1000 + i) +
          " WHERE id = " + std::to_string(id));
      if (!r.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace db2graph::core
