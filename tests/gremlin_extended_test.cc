// Tests for the extended Gremlin steps: union, coalesce, is, path,
// simplePath, tail, groupCount — on the native provider and end-to-end
// through Db2 Graph (where the strategies must respect path semantics).

#include <gtest/gtest.h>

#include "baselines/native_graph.h"
#include "core/db2graph.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"

namespace db2graph::gremlin {
namespace {

using baselines::NativeGraphDb;
using core::Db2Graph;

// Diamond graph with a cycle:
//   1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 1 (cycle back), all label "e".
class GremlinExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(db_.AddVertex(Value(i), i % 2 == 0 ? "even" : "odd",
                                {{"score", Value(i * 10)}})
                      .ok());
    }
    int64_t eid = 100;
    for (auto [s, d] : {std::pair<int64_t, int64_t>{1, 2},
                        {1, 3},
                        {2, 4},
                        {3, 4},
                        {4, 1}}) {
      ASSERT_TRUE(db_.AddEdge(Value(eid++), "e", Value(s), Value(d),
                              {{"w", Value(s + d)}})
                      .ok());
    }
    ASSERT_TRUE(db_.Open().ok());
  }

  std::vector<Traverser> Run(const std::string& text) {
    Result<Script> script = ParseGremlin(text);
    EXPECT_TRUE(script.ok()) << script.status().ToString();
    if (!script.ok()) return {};
    Interpreter interp(&db_);
    Result<std::vector<Traverser>> out = interp.RunScript(*script);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << text;
    return out.ok() ? *out : std::vector<Traverser>{};
  }

  Value Single(const std::string& text) {
    std::vector<Traverser> out = Run(text);
    EXPECT_EQ(out.size(), 1u) << text;
    if (out.empty()) return Value::Null();
    return out[0].kind == Traverser::Kind::kValue ? out[0].value
                                                  : out[0].DedupKey();
  }

  NativeGraphDb db_;
};

TEST_F(GremlinExtendedTest, UnionMergesBranchesPerTraverser) {
  // For vertex 1: out() = {2,3}; in() = {4}.
  EXPECT_EQ(Single("g.V(1).union(out('e'), in('e')).count()"),
            Value(int64_t{3}));
  // Branch outputs can be values too.
  std::vector<Traverser> out =
      Run("g.V(1).union(values('score'), id()).order()");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, Value(int64_t{1}));
  EXPECT_EQ(out[1].value, Value(int64_t{10}));
}

TEST_F(GremlinExtendedTest, CoalesceTakesFirstNonEmptyBranch) {
  // Vertex 2 has out-edges, so the first branch wins.
  EXPECT_EQ(Single("g.V(2).coalesce(out('e'), values('score')).id()"),
            Value(int64_t{4}));
  // A vertex with no out-edges of label 'x' falls through to the second.
  EXPECT_EQ(Single("g.V(2).coalesce(out('x'), values('score'))"),
            Value(int64_t{20}));
}

TEST_F(GremlinExtendedTest, IsFiltersValueStreams) {
  EXPECT_EQ(Single("g.V().values('score').is(gt(25)).count()"),
            Value(int64_t{2}));
  EXPECT_EQ(Single("g.V().values('score').is(30).count()"),
            Value(int64_t{1}));
}

TEST_F(GremlinExtendedTest, WhereWithCountIsPredicate) {
  // Vertices with at least 2 outgoing edges: only vertex 1.
  EXPECT_EQ(
      Single("g.V().where(outE('e').count().is(gte(2))).count()"),
      Value(int64_t{1}));
}

TEST_F(GremlinExtendedTest, PathRecordsTheTraversalHistory) {
  std::vector<Traverser> out = Run("g.V(1).out('e').out('e').path()");
  ASSERT_EQ(out.size(), 2u);  // 1-2-4 and 1-3-4
  for (const Traverser& t : out) {
    ASSERT_EQ(t.kind, Traverser::Kind::kList);
    ASSERT_EQ(t.list.size(), 3u);
    EXPECT_EQ(t.list[0], Value(int64_t{1}));
    EXPECT_EQ(t.list[2], Value(int64_t{4}));
  }
}

TEST_F(GremlinExtendedTest, PathIncludesEdgesWhenTraversedExplicitly) {
  std::vector<Traverser> out = Run("g.V(1).outE('e').inV().path()");
  ASSERT_EQ(out.size(), 2u);
  // Path = vertex, edge, vertex.
  EXPECT_EQ(out[0].list.size(), 3u);
}

TEST_F(GremlinExtendedTest, SimplePathDropsCycles) {
  // 3 hops from 1: 1-2-4-1 and 1-3-4-1 revisit vertex 1.
  EXPECT_EQ(Single("g.V(1).out('e').out('e').out('e').count()"),
            Value(int64_t{2}));
  std::vector<Traverser> out =
      Run("g.V(1).out('e').out('e').out('e').simplePath()");
  EXPECT_TRUE(out.empty());
  // 2 hops are still simple.
  EXPECT_EQ(
      Single("g.V(1).out('e').out('e').simplePath().count()"),
      Value(int64_t{2}));
}

TEST_F(GremlinExtendedTest, TailKeepsLastN) {
  std::vector<Traverser> out = Run("g.V().id().order().tail(2)");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, Value(int64_t{3}));
  EXPECT_EQ(out[1].value, Value(int64_t{4}));
}

TEST_F(GremlinExtendedTest, GroupCountTalliesValues) {
  std::vector<Traverser> out = Run("g.V().label().groupCount()");
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].kind, Traverser::Kind::kList);
  // Alternating [key, count] sorted by key: even=2, odd=2.
  ASSERT_EQ(out[0].list.size(), 4u);
  EXPECT_EQ(out[0].list[0], Value("even"));
  EXPECT_EQ(out[0].list[1], Value(int64_t{2}));
  EXPECT_EQ(out[0].list[2], Value("odd"));
  EXPECT_EQ(out[0].list[3], Value(int64_t{2}));
}

TEST_F(GremlinExtendedTest, OrderByPropertyModulator) {
  std::vector<Traverser> out =
      Run("g.V().order().by('score').by('desc').values('score')");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].value, Value(int64_t{40}));
  EXPECT_EQ(out[3].value, Value(int64_t{10}));
  out = Run("g.V().order().by('score').id()");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].value, Value(int64_t{1}));
}

TEST_F(GremlinExtendedTest, ParseErrorsForNewSteps) {
  EXPECT_FALSE(ParseGremlin("g.V().union()").ok());
  EXPECT_FALSE(ParseGremlin("g.V().union(5)").ok());
  EXPECT_FALSE(ParseGremlin("g.V().is()").ok());
  EXPECT_FALSE(ParseGremlin("g.V().tail('x')").ok());
  EXPECT_FALSE(ParseGremlin("g.V().by('x')").ok());  // by needs order
}

// ---- the same steps through Db2 Graph (strategies + SQL) --------------

class Db2GraphExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE N (id BIGINT PRIMARY KEY, score BIGINT);
      CREATE TABLE E2 (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT,
                       w BIGINT);
      CREATE INDEX idx_src ON E2 (src);
      CREATE INDEX idx_dst ON E2 (dst);
      INSERT INTO N VALUES (1, 10), (2, 20), (3, 30), (4, 40);
      INSERT INTO E2 VALUES (100, 1, 2, 3), (101, 1, 3, 4),
        (102, 2, 4, 6), (103, 3, 4, 7), (104, 4, 1, 5);
    )sql")
                    .ok());
    auto graph = core::Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "N", "id": "id", "fix_label": true,
                    "label": "'n'", "properties": ["score"]}],
      "e_tables": [{"table_name": "E2", "src_v_table": "N", "src_v": "src",
                    "dst_v_table": "N", "dst_v": "dst",
                    "id": "'e'::eid", "prefixed_edge_id": true,
                    "fix_label": true, "label": "'e'",
                    "properties": ["w"]}]
    })json");
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  Value Single(const std::string& text) {
    auto out = graph_->Execute(text);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << text;
    if (!out.ok() || out->size() != 1) return Value::Null();
    return (*out)[0].kind == Traverser::Kind::kValue ? (*out)[0].value
                                                     : (*out)[0].DedupKey();
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(Db2GraphExtendedTest, PathDisablesTheMutationStrategy) {
  // With the GraphStep::VertexStep mutation, the path would lose the
  // starting vertex; the strategy must detect path() and stand down.
  auto compiled = graph_->Compile("g.V(1).out('e').path()");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_GE(steps.size(), 2u);
  EXPECT_FALSE(steps[0].graph_emits_edges);  // not mutated

  auto out = graph_->Execute("g.V(1).out('e').path()");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].list.front(), Value(int64_t{1}));
}

TEST_F(Db2GraphExtendedTest, UnionAndCoalesceOverSql) {
  EXPECT_EQ(Single("g.V(1).union(out('e'), in('e')).count()"),
            Value(int64_t{3}));
  EXPECT_EQ(Single("g.V(2).coalesce(out('x'), values('score'))"),
            Value(int64_t{20}));
}

TEST_F(Db2GraphExtendedTest, SimplePathOverSql) {
  EXPECT_EQ(Single("g.V(1).out('e').out('e').simplePath().count()"),
            Value(int64_t{2}));
  EXPECT_EQ(
      Single("g.V(1).out('e').out('e').out('e').simplePath().count()"),
      Value(int64_t{0}));
}

TEST_F(Db2GraphExtendedTest, GroupCountOverSql) {
  auto out = graph_->Execute("g.V(1).out('e').label().groupCount()");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].list.size(), 2u);
  EXPECT_EQ((*out)[0].list[1], Value(int64_t{2}));
}

TEST_F(Db2GraphExtendedTest, FraudStylePathQuery) {
  // The Section 7 mule-trace shape: enumerate simple paths with weights.
  auto out = graph_->Execute(
      "g.V(1).outE('e').has('w', gt(3)).inV().outE('e').inV()"
      ".simplePath().path()");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);  // 1 -e101-> 3 -e103-> 4
  const auto& path = (*out)[0].list;
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0], Value(int64_t{1}));
  EXPECT_EQ(path[1], Value("e::101"));
  EXPECT_EQ(path[4], Value(int64_t{4}));
}

}  // namespace
}  // namespace db2graph::gremlin
