// Property-based tests for the SQL substrate: index-vs-scan equivalence,
// hash-join-vs-nested-loop equivalence, transaction atomicity under random
// workloads, JSON round-trips, KV-store behaviour against a reference
// model, and codec round-trips. Parameterized over random seeds.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "baselines/codec.h"
#include "baselines/kvstore.h"
#include "common/json.h"
#include "sql/database.h"

namespace db2graph {
namespace {

// ------------------------------------------------------------------
// Index vs. scan equivalence: the same predicates must select the same
// rows whether or not an index exists.
// ------------------------------------------------------------------

class IndexEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceTest, IndexedAndUnindexedTablesAgree) {
  std::mt19937_64 rng(GetParam());
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE WithIdx (a BIGINT, b BIGINT, c VARCHAR(8));
    CREATE TABLE NoIdx (a BIGINT, b BIGINT, c VARCHAR(8));
    CREATE INDEX idx_a ON WithIdx (a);
    CREATE INDEX idx_ab ON WithIdx (a, b);
  )sql")
                  .ok());
  std::uniform_int_distribution<int64_t> small(0, 20);
  const char* strings[] = {"x", "y", "z", "w"};
  for (int i = 0; i < 300; ++i) {
    int64_t a = small(rng);
    int64_t b = small(rng);
    const char* c = strings[rng() % 4];
    std::string values = "(" + std::to_string(a) + ", " + std::to_string(b) +
                         ", '" + c + "')";
    ASSERT_TRUE(db.Execute("INSERT INTO WithIdx VALUES " + values).ok());
    ASSERT_TRUE(db.Execute("INSERT INTO NoIdx VALUES " + values).ok());
  }
  for (int q = 0; q < 40; ++q) {
    int64_t a = small(rng);
    int64_t b = small(rng);
    std::string predicates[] = {
        "a = " + std::to_string(a),
        "a = " + std::to_string(a) + " AND b = " + std::to_string(b),
        "a IN (" + std::to_string(a) + ", " + std::to_string(b) + ")",
        "a = " + std::to_string(a) + " OR b = " + std::to_string(b),
        "a > " + std::to_string(a),
        "a = " + std::to_string(a) + " AND c = 'x'",
    };
    for (const std::string& pred : predicates) {
      auto with_idx = db.Execute(
          "SELECT COUNT(*), SUM(b) FROM WithIdx WHERE " + pred);
      auto without = db.Execute(
          "SELECT COUNT(*), SUM(b) FROM NoIdx WHERE " + pred);
      ASSERT_TRUE(with_idx.ok()) << pred;
      ASSERT_TRUE(without.ok()) << pred;
      EXPECT_EQ(with_idx->rows[0][0], without->rows[0][0]) << pred;
      EXPECT_EQ(with_idx->rows[0][1], without->rows[0][1]) << pred;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------------------------
// Join equivalence: joining many-vs-few rows must produce identical
// results through the index path, the hash-join path, and the
// nested-loop path (exercised by column choice and row counts).
// ------------------------------------------------------------------

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, JoinResultsMatchReferenceComputation) {
  std::mt19937_64 rng(GetParam() * 77);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE L (id BIGINT PRIMARY KEY, k BIGINT);
    CREATE TABLE R2 (k BIGINT, v BIGINT);
  )sql")
                  .ok());
  std::uniform_int_distribution<int64_t> keys(0, 15);
  std::map<int64_t, int64_t> left;  // id -> k
  std::multimap<int64_t, int64_t> right;
  for (int64_t i = 1; i <= 60; ++i) {
    int64_t k = keys(rng);
    left[i] = k;
    ASSERT_TRUE(db.Execute("INSERT INTO L VALUES (" + std::to_string(i) +
                           ", " + std::to_string(k) + ")")
                    .ok());
  }
  for (int i = 0; i < 120; ++i) {
    int64_t k = keys(rng);
    int64_t v = static_cast<int64_t>(rng() % 1000);
    right.emplace(k, v);
    ASSERT_TRUE(db.Execute("INSERT INTO R2 VALUES (" + std::to_string(k) +
                           ", " + std::to_string(v) + ")")
                    .ok());
  }
  // Reference: count of matching pairs and sum of v over them.
  int64_t expected_pairs = 0;
  int64_t expected_sum = 0;
  for (const auto& [id, k] : left) {
    (void)id;
    auto [begin, end] = right.equal_range(k);
    for (auto it = begin; it != end; ++it) {
      ++expected_pairs;
      expected_sum += it->second;
    }
  }
  for (const char* join : {
           "SELECT COUNT(*), SUM(v) FROM L JOIN R2 ON L.k = R2.k",
           "SELECT COUNT(*), SUM(v) FROM L, R2 WHERE L.k = R2.k",
           "SELECT COUNT(*), SUM(v) FROM R2, L WHERE R2.k = L.k",
       }) {
    auto rs = db.Execute(join);
    ASSERT_TRUE(rs.ok()) << join << ": " << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0], Value(expected_pairs)) << join;
    EXPECT_EQ(rs->rows[0][1], Value(expected_sum)) << join;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------------------------
// Transaction atomicity: a random batch of mutations inside
// BEGIN..ROLLBACK must leave no observable trace.
// ------------------------------------------------------------------

class TransactionAtomicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TransactionAtomicityTest, RollbackRestoresExactState) {
  std::mt19937_64 rng(GetParam() * 131);
  sql::Database db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE T (id BIGINT PRIMARY KEY, v BIGINT)").ok());
  for (int64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                           ", " + std::to_string(i * 10) + ")")
                    .ok());
  }
  auto snapshot = [&]() {
    auto rs = db.Execute("SELECT id, v FROM T ORDER BY id");
    EXPECT_TRUE(rs.ok());
    return rs->rows;
  };
  std::vector<Row> before = snapshot();

  ASSERT_TRUE(db.Execute("BEGIN").ok());
  std::uniform_int_distribution<int64_t> id_pick(1, 80);
  for (int op = 0; op < 30; ++op) {
    int64_t id = id_pick(rng);
    switch (rng() % 3) {
      case 0:
        (void)db.Execute("INSERT INTO T VALUES (" + std::to_string(100 + op) +
                         ", " + std::to_string(op) + ")");
        break;
      case 1:
        (void)db.Execute("UPDATE T SET v = v + 1 WHERE id = " +
                         std::to_string(id));
        break;
      case 2:
        (void)db.Execute("DELETE FROM T WHERE id = " + std::to_string(id));
        break;
    }
  }
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  std::vector<Row> after = snapshot();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
  // Indexes survived too: point lookups still work.
  db.stats().Reset();
  auto rs = db.Execute("SELECT v FROM T WHERE id = 25");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_GE(db.stats().Snapshot().index_probes, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransactionAtomicityTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------------------------
// JSON round trip on randomly generated documents.
// ------------------------------------------------------------------

class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

Json RandomJson(std::mt19937_64* rng, int depth) {
  switch ((*rng)() % (depth > 2 ? 4 : 6)) {
    case 0:
      return Json();
    case 1:
      return Json::Bool((*rng)() % 2 == 0);
    case 2:
      return Json::Number(static_cast<double>(
          static_cast<int64_t>((*rng)() % 100000) - 50000));
    case 3: {
      std::string s;
      int len = (*rng)() % 12;
      const char* alphabet = "ab\"\\\ncd ef\tgh";
      for (int i = 0; i < len; ++i) s.push_back(alphabet[(*rng)() % 13]);
      return Json::Str(std::move(s));
    }
    case 4: {
      Json arr = Json::Array();
      int n = (*rng)() % 4;
      for (int i = 0; i < n; ++i) {
        arr.Append(RandomJson(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::Object();
      int n = (*rng)() % 4;
      for (int i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(i), RandomJson(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST_P(JsonRoundTripTest, DumpParseDumpIsStable) {
  std::mt19937_64 rng(GetParam() * 31337);
  for (int i = 0; i < 50; ++i) {
    Json doc = RandomJson(&rng, 0);
    std::string text = doc.Dump();
    Result<Json> parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest, ::testing::Range(1, 7));

// ------------------------------------------------------------------
// KV store vs. a reference std::map model under random operations.
// ------------------------------------------------------------------

class KvStoreModelTest : public ::testing::TestWithParam<int> {};

TEST_P(KvStoreModelTest, MatchesReferenceModel) {
  std::mt19937_64 rng(GetParam() * 997);
  baselines::KvStore store;
  std::map<std::string, std::string> model;
  auto random_key = [&] {
    return std::string(1, static_cast<char>('a' + rng() % 4)) + ":" +
           std::to_string(rng() % 30);
  };
  for (int op = 0; op < 500; ++op) {
    std::string key = random_key();
    switch (rng() % 4) {
      case 0:
      case 1: {
        std::string value = "v" + std::to_string(rng() % 1000);
        store.Put(key, value);
        model[key] = value;
        break;
      }
      case 2: {
        auto got = store.Get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value()) << key;
        } else {
          ASSERT_TRUE(got.has_value()) << key;
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      case 3:
        EXPECT_EQ(store.Delete(key), model.erase(key) > 0) << key;
        break;
    }
  }
  EXPECT_EQ(store.size(), model.size());
  // Prefix scans agree with the model.
  for (char c = 'a'; c <= 'd'; ++c) {
    std::string prefix(1, c);
    prefix += ":";
    auto scanned = store.Scan(prefix);
    std::vector<std::pair<std::string, std::string>> expected;
    for (auto it = model.lower_bound(prefix);
         it != model.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      expected.emplace_back(it->first, it->second);
    }
    EXPECT_EQ(scanned, expected) << prefix;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreModelTest, ::testing::Range(1, 7));

// ------------------------------------------------------------------
// Codec round trip on random value streams.
// ------------------------------------------------------------------

class CodecRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTripTest, RandomValueStreamsRoundTrip) {
  std::mt19937_64 rng(GetParam() * 4242);
  for (int round = 0; round < 40; ++round) {
    std::vector<Value> values;
    int n = 1 + rng() % 12;
    for (int i = 0; i < n; ++i) {
      switch (rng() % 5) {
        case 0:
          values.push_back(Value::Null());
          break;
        case 1:
          values.push_back(Value(rng() % 2 == 0));
          break;
        case 2:
          values.push_back(Value(
              static_cast<int64_t>(rng()) - (int64_t{1} << 62)));
          break;
        case 3:
          values.push_back(
              Value(static_cast<double>(rng() % 100000) / 7.0));
          break;
        default: {
          std::string s;
          int len = rng() % 20;
          for (int j = 0; j < len; ++j) {
            s.push_back(static_cast<char>(rng() % 256));
          }
          values.push_back(Value(std::move(s)));
        }
      }
    }
    std::string buf;
    for (const Value& v : values) baselines::PutValue(v, &buf);
    baselines::Decoder dec(buf);
    for (const Value& v : values) {
      Value back;
      ASSERT_TRUE(dec.GetValue(&back).ok());
      EXPECT_EQ(back, v);
    }
    EXPECT_TRUE(dec.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest, ::testing::Range(1, 7));

// ------------------------------------------------------------------
// Value total-order invariants.
// ------------------------------------------------------------------

class ValueOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderTest, CompareIsATotalOrderAndHashAgrees) {
  std::mt19937_64 rng(GetParam() * 555);
  std::vector<Value> pool = {Value::Null(), Value(true), Value(false),
                             Value(int64_t{0}), Value(int64_t{7}),
                             Value(7.0), Value(7.5), Value(-3),
                             Value(""), Value("abc"), Value("abd")};
  for (int i = 0; i < 20; ++i) {
    pool.push_back(Value(static_cast<int64_t>(rng() % 100) - 50));
    pool.push_back(Value(static_cast<double>(rng() % 100) / 3.0));
  }
  for (const Value& a : pool) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Value& b : pool) {
      int ab = a.Compare(b);
      int ba = b.Compare(a);
      EXPECT_EQ(ab == 0, ba == 0);
      EXPECT_EQ(ab < 0, ba > 0);
      if (ab == 0) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
      for (const Value& c : pool) {
        if (ab <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
  // Int/double cross-type equality.
  EXPECT_EQ(Value(int64_t{7}), Value(7.0));
  EXPECT_NE(Value(int64_t{7}), Value(7.5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace db2graph
