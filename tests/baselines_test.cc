// Tests for the baseline substrates: binary codec, the BerkeleyDB-style
// KV store, the GDB-X native-graph simulator (cache behaviour included),
// and the JanusGraph-like store.

#include <gtest/gtest.h>

#include "baselines/codec.h"
#include "baselines/janus_like.h"
#include "baselines/kvstore.h"
#include "baselines/native_graph.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"

namespace db2graph::baselines {
namespace {

using gremlin::Interpreter;
using gremlin::LookupSpec;
using gremlin::ParseGremlin;
using gremlin::Traverser;

// ---------------------------------------------------------------- codec

TEST(CodecTest, VarintRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                     ~0ull}) {
    std::string buf;
    PutVarint(v, &buf);
    Decoder dec(buf);
    uint64_t back = 0;
    ASSERT_TRUE(dec.GetVarint(&back).ok());
    EXPECT_EQ(back, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(CodecTest, ValueRoundTripAllTypes) {
  std::vector<Value> values = {Value::Null(), Value(true), Value(false),
                               Value(int64_t{42}), Value(int64_t{-7}),
                               Value(3.25), Value("hello"), Value("")};
  std::string buf;
  for (const Value& v : values) PutValue(v, &buf);
  Decoder dec(buf);
  for (const Value& v : values) {
    Value back;
    ASSERT_TRUE(dec.GetValue(&back).ok());
    EXPECT_EQ(back, v);
  }
}

TEST(CodecTest, PropertiesRoundTrip) {
  std::vector<std::pair<std::string, Value>> props = {
      {"a", Value(int64_t{1})}, {"b", Value("x")}, {"c", Value(2.5)}};
  std::string buf;
  PutProperties(props, &buf);
  Decoder dec(buf);
  std::vector<std::pair<std::string, Value>> back;
  ASSERT_TRUE(GetProperties(&dec, &back).ok());
  EXPECT_EQ(back, props);
}

TEST(CodecTest, TruncatedBufferFailsCleanly) {
  std::string buf;
  PutValue(Value("hello world"), &buf);
  std::string cut = buf.substr(0, buf.size() - 3);
  Decoder dec(cut);
  Value out;
  EXPECT_FALSE(dec.GetValue(&out).ok());
}

// -------------------------------------------------------------- kvstore

TEST(KvStoreTest, PutGetDelete) {
  KvStore store;
  store.Put("k1", "v1");
  store.Put("k2", "v2");
  EXPECT_EQ(store.Get("k1").value(), "v1");
  EXPECT_FALSE(store.Get("nope").has_value());
  EXPECT_TRUE(store.Delete("k1"));
  EXPECT_FALSE(store.Delete("k1"));
  EXPECT_FALSE(store.Get("k1").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteUpdatesBytes) {
  KvStore store;
  store.Put("k", "small");
  size_t before = store.ApproxBytes();
  store.Put("k", std::string(1000, 'x'));
  EXPECT_GT(store.ApproxBytes(), before);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, PrefixScanIsOrderedAndBounded) {
  KvStore store;
  store.Put("a:3", "3");
  store.Put("a:1", "1");
  store.Put("a:2", "2");
  store.Put("b:1", "x");
  auto rows = store.Scan("a:");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "a:1");
  EXPECT_EQ(rows[2].first, "a:3");
  EXPECT_EQ(store.ScanKeys("b:").size(), 1u);
  EXPECT_TRUE(store.Scan("c:").empty());
}

// --------------------------------------------------- shared fixture data

template <typename Db>
void LoadTinyGraph(Db* db) {
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(db->AddVertex(Value(i), i <= 2 ? "user" : "item",
                              {{"score", Value(i * 10)}})
                    .ok());
  }
  ASSERT_TRUE(db->AddEdge(Value(int64_t{100}), "likes", Value(int64_t{1}),
                          Value(int64_t{3}), {{"weight", Value(0.5)}})
                  .ok());
  ASSERT_TRUE(db->AddEdge(Value(int64_t{101}), "likes", Value(int64_t{1}),
                          Value(int64_t{4}), {})
                  .ok());
  ASSERT_TRUE(db->AddEdge(Value(int64_t{102}), "likes", Value(int64_t{2}),
                          Value(int64_t{3}), {})
                  .ok());
  ASSERT_TRUE(db->Open().ok());
}

template <typename Db>
Value RunSingle(Db* db, const std::string& text) {
  Result<gremlin::Script> script = ParseGremlin(text);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  Interpreter interp(db);
  Result<std::vector<Traverser>> out = interp.RunScript(*script);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok() || out->empty()) return Value::Null();
  return (*out)[0].kind == Traverser::Kind::kValue ? (*out)[0].value
                                                   : (*out)[0].DedupKey();
}

// ----------------------------------------------------------- native GDB-X

TEST(NativeGraphTest, BasicTraversals) {
  NativeGraphDb db;
  LoadTinyGraph(&db);
  EXPECT_EQ(RunSingle(&db, "g.V().count()"), Value(int64_t{4}));
  EXPECT_EQ(RunSingle(&db, "g.E().count()"), Value(int64_t{3}));
  EXPECT_EQ(RunSingle(&db, "g.V(1).outE('likes').count()"),
            Value(int64_t{2}));
  EXPECT_EQ(RunSingle(&db, "g.V(3).in('likes').count()"), Value(int64_t{2}));
  EXPECT_EQ(RunSingle(&db, "g.V().hasLabel('user').count()"),
            Value(int64_t{2}));
}

TEST(NativeGraphTest, EdgePropertiesSurvideSerialization) {
  NativeGraphDb db;
  LoadTinyGraph(&db);
  Result<gremlin::Script> script =
      ParseGremlin("g.V(1).outE('likes').values('weight')");
  ASSERT_TRUE(script.ok());
  Interpreter interp(&db);
  Result<std::vector<Traverser>> out = interp.RunScript(*script);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);  // only edge 100 has a weight
  EXPECT_EQ((*out)[0].value, Value(0.5));
}

TEST(NativeGraphTest, InsertAfterOpenIsRejected) {
  NativeGraphDb db;
  LoadTinyGraph(&db);
  Status st = db.AddVertex(Value(int64_t{99}), "user", {});
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(NativeGraphTest, EdgeEndpointMustExist) {
  NativeGraphDb db;
  ASSERT_TRUE(db.AddVertex(Value(int64_t{1}), "user", {}).ok());
  Status st = db.AddEdge(Value(int64_t{100}), "likes", Value(int64_t{1}),
                         Value(int64_t{404}), {});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(NativeGraphTest, PrefetchWarmsCache) {
  NativeGraphDb db;
  LoadTinyGraph(&db);
  EXPECT_EQ(db.cached_elements(), 7u);  // 4 vertices + 3 edges
  uint64_t hits_before = db.cache_stats().hits.load();
  RunSingle(&db, "g.V(1).outE('likes').count()");
  EXPECT_GT(db.cache_stats().hits.load(), hits_before);
  EXPECT_EQ(db.cache_stats().misses.load(), 0u);
}

TEST(NativeGraphTest, SmallCacheEvictsAndMisses) {
  NativeGraphDb::Options options;
  options.cache_capacity = 2;
  NativeGraphDb db(options);
  LoadTinyGraph(&db);
  EXPECT_LE(db.cached_elements(), 2u);
  // Ping-pong between vertices 1..4 to force misses.
  for (int round = 0; round < 3; ++round) {
    for (int64_t id = 1; id <= 4; ++id) {
      RunSingle(&db, "g.V(" + std::to_string(id) + ").count()");
    }
  }
  EXPECT_GT(db.cache_stats().misses.load(), 0u);
  EXPECT_GT(db.cache_stats().evictions.load(), 0u);
}

TEST(NativeGraphTest, DiskBytesExceedRawPayload) {
  NativeGraphDb db;
  LoadTinyGraph(&db);
  // Proprietary format with adjacency embedded twice + record overhead.
  EXPECT_GT(db.DiskBytes(), 7u * 96u);
}

// ----------------------------------------------------------- Janus-like

TEST(JanusLikeTest, BasicTraversals) {
  JanusLikeDb db;
  LoadTinyGraph(&db);
  EXPECT_EQ(RunSingle(&db, "g.V().count()"), Value(int64_t{4}));
  EXPECT_EQ(RunSingle(&db, "g.E().count()"), Value(int64_t{3}));
  EXPECT_EQ(RunSingle(&db, "g.V(1).outE('likes').count()"),
            Value(int64_t{2}));
  EXPECT_EQ(RunSingle(&db, "g.V(3).in('likes').count()"), Value(int64_t{2}));
  EXPECT_EQ(RunSingle(&db, "g.V().hasLabel('item').count()"),
            Value(int64_t{2}));
}

TEST(JanusLikeTest, EdgeLookupByIdThroughLocator) {
  JanusLikeDb db;
  LoadTinyGraph(&db);
  Result<gremlin::Script> script = ParseGremlin("g.E(101).inV().id()");
  ASSERT_TRUE(script.ok());
  Interpreter interp(&db);
  Result<std::vector<Traverser>> out = interp.RunScript(*script);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{4}));
}

TEST(JanusLikeTest, WalIsDroppedAfterFinalize) {
  JanusLikeDb db;
  LoadTinyGraph(&db);
  EXPECT_TRUE(db.store().ScanKeys("wal:").empty());
}

TEST(JanusLikeTest, AdjacencyStoredOnBothEndpoints) {
  JanusLikeDb db;
  LoadTinyGraph(&db);
  // Every traversal hop pays KV gets; verify the store actually contains
  // one vertex column + one adjacency column per vertex.
  EXPECT_EQ(db.store().ScanKeys("v:").size(), 4u);
  EXPECT_EQ(db.store().ScanKeys("a:").size(), 4u);
  EXPECT_EQ(db.store().ScanKeys("e:").size(), 3u);
}

TEST(JanusLikeTest, InsertAfterOpenIsRejected) {
  JanusLikeDb db;
  LoadTinyGraph(&db);
  EXPECT_EQ(db.AddVertex(Value(int64_t{9}), "user", {}).code(),
            StatusCode::kUnsupported);
}

// -------------------------------------------- cross-system equivalence

TEST(BaselineEquivalenceTest, SameResultsOnBothBaselines) {
  NativeGraphDb native;
  JanusLikeDb janus;
  LoadTinyGraph(&native);
  LoadTinyGraph(&janus);
  const char* queries[] = {
      "g.V().count()",
      "g.E().count()",
      "g.V(1).out('likes').count()",
      "g.V(2).outE('likes').count()",
      "g.V(3).in('likes').count()",
      "g.V().hasLabel('user').count()",
      "g.V().has('score', gt(15)).count()",
      "g.V(1).outE('likes').where(inV().hasId(3)).count()",
  };
  for (const char* q : queries) {
    EXPECT_EQ(RunSingle(&native, q), RunSingle(&janus, q)) << q;
  }
}

}  // namespace
}  // namespace db2graph::baselines
