// Copyright (c) 2026 The db2graph-repro Authors.
//
// SYSMON monitoring catalog coverage: the virtual tables are ordinary
// relations (plain SELECT, WHERE, aggregation, vectorized execution, the
// Gremlin entry point feeds them), sysmon.query_log reflects live engine
// state, EXPLAIN ANALYZE reports per-operator actuals that match the
// ExecInfo totals, and profile_execution attaches plans to the log.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "core/db2graph.h"
#include "sql/database.h"

namespace db2graph::sql {
namespace {

class SysmonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryLog::Global().SetEnabled(true);
    QueryLog::Global().Clear();
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE items (id BIGINT PRIMARY KEY, name VARCHAR(20),
                          price BIGINT);
      INSERT INTO items VALUES (1, 'apple', 10), (2, 'pear', 20),
                               (3, 'plum', NULL), (4, 'fig', 40);
    )sql")
                    .ok());
  }

  ResultSet Run(const std::string& sql) {
    Result<ResultSet> rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for " << sql;
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
};

TEST_F(SysmonTest, CatalogListsVirtualTables) {
  std::vector<std::string> names = db_.VirtualTableNames();
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("sysmon.query_log"));
  EXPECT_TRUE(has("sysmon.metrics"));
  EXPECT_TRUE(has("sysmon.slow_queries"));
  EXPECT_TRUE(has("sysmon.column_stats"));
}

TEST_F(SysmonTest, QueryLogReturnsRecentExecutions) {
  Run("SELECT name FROM items WHERE price > 15");
  ResultSet rs = Run(
      "SELECT script, exec_mode, access_path, rows_scanned, rows_emitted "
      "FROM sysmon.query_log WHERE layer = 'sql'");
  // Setup recorded CREATE + INSERT; then the SELECT above.
  ASSERT_GE(rs.rows.size(), 3u);
  const Row* select_row = nullptr;
  for (const Row& row : rs.rows) {
    if (row[0].as_string() == "SELECT FROM items") select_row = &row;
  }
  ASSERT_NE(select_row, nullptr);
  EXPECT_EQ((*select_row)[3], Value(int64_t{4}));  // rows_scanned
  EXPECT_EQ((*select_row)[4], Value(int64_t{2}));  // rows_emitted
}

TEST_F(SysmonTest, QueryLogRecordsErrors) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM no_such_table").ok());
  ResultSet rs = Run(
      "SELECT script, error_message FROM sysmon.query_log WHERE error");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "SELECT FROM no_such_table");
  EXPECT_NE(rs.rows[0][1].as_string().find("no_such_table"),
            std::string::npos);
}

TEST_F(SysmonTest, VirtualTablesComposeLikeRelations) {
  // Aggregation, DISTINCT and ORDER BY run over the snapshot unchanged.
  ResultSet count = Run(
      "SELECT COUNT(*) FROM sysmon.query_log WHERE layer = 'sql'");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_GE(count.rows[0][0].as_int(), 2);

  ResultSet joined = Run(
      "SELECT c.column_name, q.script FROM sysmon.column_stats c, "
      "sysmon.query_log q WHERE c.table_name = 'items' AND "
      "c.column_name = 'id' AND q.layer = 'sql' LIMIT 1");
  ASSERT_EQ(joined.rows.size(), 1u);
  EXPECT_EQ(joined.rows[0][0], Value("id"));
}

TEST_F(SysmonTest, QueryLogScansVectorized) {
  db_.SetExecConfig(db_.exec_config().vectorized(true));
  Run("SELECT * FROM items");
  Result<ResultSet> rs = db_.Execute(
      "SELECT script FROM sysmon.query_log WHERE layer = 'sql'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // The virtual-table scan itself runs through the columnar operators.
  EXPECT_STREQ(rs->exec.ExecMode(), "vectorized");
  EXPECT_GE(rs->rows.size(), 3u);
}

TEST_F(SysmonTest, MetricsTableExposesRegistry) {
  metrics::MetricsRegistry::Global()
      .GetCounter("sysmon_test.widgets")
      ->fetch_add(7);
  metrics::MetricsRegistry::Global()
      .GetHistogram("sysmon_test.latency")
      ->Observe(100);
  ResultSet rs = Run(
      "SELECT kind, value FROM sysmon.metrics "
      "WHERE name = 'sysmon_test.widgets'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("counter"));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{7}));

  ResultSet hist = Run(
      "SELECT value, p99 FROM sysmon.metrics "
      "WHERE name = 'sysmon_test.latency' AND kind = 'histogram'");
  ASSERT_EQ(hist.rows.size(), 1u);
  EXPECT_EQ(hist.rows[0][0], Value(int64_t{1}));  // count
  EXPECT_GE(hist.rows[0][1].as_int(), 100);       // bucket upper bound
}

TEST_F(SysmonTest, ColumnStatsReflectLiveTables) {
  ResultSet rs = Run(
      "SELECT column_name, rows, nulls, min, max FROM sysmon.column_stats "
      "WHERE table_name = 'items' ORDER BY column_name");
  ASSERT_EQ(rs.rows.size(), 3u);  // id, name, price
  // price: 4 live rows, one NULL, min 10 max 40 (rendered as strings).
  const Row& price = rs.rows[2][0] == Value("price") ? rs.rows[2]
                                                     : rs.rows[0];
  ASSERT_EQ(price[0], Value("price"));
  EXPECT_EQ(price[1], Value(int64_t{4}));
  EXPECT_EQ(price[2], Value(int64_t{1}));
  EXPECT_EQ(price[3], Value("10"));
  EXPECT_EQ(price[4], Value("40"));

  // Stats track mutations: delete a row and re-scan.
  Run("DELETE FROM items WHERE id = 4");
  ResultSet after = Run(
      "SELECT rows, max FROM sysmon.column_stats "
      "WHERE table_name = 'items' AND column_name = 'price'");
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(after.rows[0][1], Value("20"));
}

TEST_F(SysmonTest, SlowQueriesTableReadsGlobalRing) {
  SlowQueryLog::Global().Clear();
  SlowQueryLog::Entry entry;
  entry.script = "g.V().count()";
  entry.elapsed_micros = 123456;
  entry.rows_scanned = 10;
  entry.rows_emitted = 1;
  entry.trace_json = "{}";
  SlowQueryLog::Global().Record(std::move(entry));
  ResultSet rs = Run(
      "SELECT script, elapsed_micros FROM sysmon.slow_queries");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("g.V().count()"));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{123456}));
  SlowQueryLog::Global().Clear();
}

TEST_F(SysmonTest, QueryLogDisableRemovesRecording) {
  QueryLog::Global().SetEnabled(false);
  Run("SELECT * FROM items");
  QueryLog::Global().SetEnabled(true);
  ResultSet rs = Run(
      "SELECT script FROM sysmon.query_log WHERE layer = 'sql'");
  for (const Row& row : rs.rows) {
    EXPECT_NE(row[0].as_string(), "SELECT FROM items");
  }
}

// ----------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE
// ----------------------------------------------------------------------

TEST_F(SysmonTest, ExplainRendersOperatorTreeWithoutExecuting) {
  ResultSet rs = Run("EXPLAIN SELECT name FROM items WHERE price > 15");
  ASSERT_EQ(rs.columns, std::vector<std::string>{"plan"});
  ASSERT_FALSE(rs.rows.empty());
  std::string all;
  for (const Row& row : rs.rows) all += row[0].as_string() + "\n";
  EXPECT_NE(all.find("Scan"), std::string::npos);
  EXPECT_EQ(all.find("actual"), std::string::npos);  // not executed
  EXPECT_EQ(rs.exec.rows_scanned, 0u);
}

TEST_F(SysmonTest, ExplainAnalyzeActualsMatchExecInfoScalar) {
  db_.SetExecConfig(db_.exec_config().vectorized(false));
  ResultSet rs = Run("EXPLAIN ANALYZE SELECT name FROM items");
  const std::vector<OpProfile>& ops = rs.exec.op_profiles;
  ASSERT_EQ(ops.size(), 2u);  // Scan -> Project (leaf-first)
  EXPECT_EQ(ops[0].name, "Scan");
  EXPECT_EQ(ops[1].name, "Project");
  EXPECT_EQ(ops[0].rows_out, rs.exec.rows_scanned);
  EXPECT_EQ(ops[1].rows_out, rs.exec.rows_emitted);
  EXPECT_EQ(ops[1].rows_in, ops[0].rows_out);
  EXPECT_GE(ops[0].blocks, 1u);
  // Inclusive timing: the root covers everything below it.
  EXPECT_GE(ops[1].micros, ops[0].micros);

  std::string all;
  for (const Row& row : rs.rows) all += row[0].as_string() + "\n";
  EXPECT_NE(all.find("actual"), std::string::npos);
  EXPECT_NE(all.find("rows=4"), std::string::npos);
}

TEST_F(SysmonTest, ExplainAnalyzeActualsMatchExecInfoVectorized) {
  db_.SetExecConfig(db_.exec_config().vectorized(true));
  ResultSet rs = Run("EXPLAIN ANALYZE SELECT name FROM items "
                     "WHERE price > 15");
  const std::vector<OpProfile>& ops = rs.exec.op_profiles;
  ASSERT_EQ(ops.size(), 3u);  // ColumnScan -> ColumnFilter -> ColumnProject
  EXPECT_EQ(ops[0].name, "ColumnScan");
  EXPECT_EQ(ops[1].name, "ColumnFilter");
  EXPECT_EQ(ops[2].name, "ColumnProject");
  EXPECT_STREQ(rs.exec.ExecMode(), "vectorized");
  EXPECT_EQ(ops[0].rows_out, rs.exec.rows_scanned);  // pre-filter
  EXPECT_EQ(ops[2].rows_out, rs.exec.rows_emitted);
  EXPECT_EQ(ops[1].rows_in, ops[0].rows_out);
  EXPECT_EQ(rs.exec.rows_scanned, 4u);
  EXPECT_EQ(rs.exec.rows_emitted, 2u);
}

TEST_F(SysmonTest, ExplainAnalyzeEntersQueryLogWithPlan) {
  Run("EXPLAIN ANALYZE SELECT * FROM items");
  ResultSet rs = Run(
      "SELECT script, plan FROM sysmon.query_log WHERE layer = 'sql'");
  const Row* analyzed = nullptr;
  for (const Row& row : rs.rows) {
    if (row[0].as_string() == "EXPLAIN ANALYZE SELECT FROM items") {
      analyzed = &row;
    }
  }
  ASSERT_NE(analyzed, nullptr);
  EXPECT_NE((*analyzed)[1].as_string().find("actual"), std::string::npos);
}

TEST_F(SysmonTest, ProfileExecutionInstrumentsEverySelect) {
  db_.SetExecConfig(db_.exec_config().profile(true));
  Result<ResultSet> rs = db_.Execute("SELECT name FROM items");
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(rs->exec.op_profiles.empty());
  EXPECT_EQ(rs->exec.op_profiles.back().rows_out, rs->exec.rows_emitted);
  db_.SetExecConfig(db_.exec_config().profile(false));

  // The profiled run's plan landed in the query log.
  ResultSet log = Run(
      "SELECT script, plan FROM sysmon.query_log WHERE layer = 'sql'");
  bool found = false;
  for (const Row& row : log.rows) {
    if (row[0].as_string() == "SELECT FROM items" &&
        !row[1].as_string().empty()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ----------------------------------------------------------------------
// Core-layer integration: Gremlin entries and sysmon.plan_cache
// ----------------------------------------------------------------------

constexpr char kGraphConfig[] = R"json({
  "v_tables": [
    {
      "table_name": "items",
      "id": "id",
      "fix_label": true,
      "label": "'item'",
      "properties": ["id", "name", "price"]
    }
  ],
  "e_tables": []
})json";

TEST_F(SysmonTest, GremlinExecutionsAndPlanCacheAreQueryable) {
  Result<std::unique_ptr<core::Db2Graph>> graph =
      core::Db2Graph::Open(&db_, kGraphConfig);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_TRUE((*graph)->Execute("g.V().count()").ok());
  ASSERT_TRUE((*graph)->Execute("g.V().count()").ok());  // plan-cache hit

  ResultSet gremlin = Run(
      "SELECT script, plan_source, rows_emitted FROM sysmon.query_log "
      "WHERE layer = 'gremlin' ORDER BY id");
  ASSERT_EQ(gremlin.rows.size(), 2u);
  EXPECT_EQ(gremlin.rows[0][0], Value("g.V().count()"));
  EXPECT_EQ(gremlin.rows[0][1], Value("compiled"));
  EXPECT_EQ(gremlin.rows[1][1], Value("cached"));
  EXPECT_EQ(gremlin.rows[0][2], Value(int64_t{1}));  // one traverser out

  ResultSet cache = Run(
      "SELECT hits, misses, entries FROM sysmon.plan_cache");
  ASSERT_EQ(cache.rows.size(), 1u);
  EXPECT_GE(cache.rows[0][0].as_int(), 1);  // second run hit
  EXPECT_GE(cache.rows[0][1].as_int(), 1);  // first run missed
  EXPECT_GE(cache.rows[0][2].as_int(), 1);

  // Graph teardown leaves the virtual table registered but empty.
  graph->reset();
  ResultSet gone = Run("SELECT * FROM sysmon.plan_cache");
  EXPECT_TRUE(gone.rows.empty());
}

}  // namespace
}  // namespace db2graph::sql
