// Plan-shape tests for the Traversal Strategy module (Section 6.2): each
// strategy's rewrite is asserted structurally, including the boundary
// cases where folding must NOT happen.

#include <gtest/gtest.h>

#include "core/strategies.h"
#include "gremlin/parser.h"

namespace db2graph::core {
namespace {

using gremlin::AggOp;
using gremlin::Direction;
using gremlin::ParseTraversal;
using gremlin::StepKind;
using gremlin::Traversal;

Traversal Compile(const std::string& text,
                  const StrategyOptions& options = {}) {
  Result<Traversal> t = ParseTraversal(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  ApplyStrategies(&*t, options);
  return std::move(*t);
}

// ---------------------------------------------------------- mutation

TEST(MutationStrategyTest, VOutEBecomesEdgeGraphStep) {
  Traversal t = Compile("g.V(1).outE('a')");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_TRUE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[0].src_id_args.size(), 1u);
  EXPECT_EQ(t.steps[0].spec.labels, std::vector<std::string>{"a"});
}

TEST(MutationStrategyTest, VInEConstrainsDestination) {
  Traversal t = Compile("g.V(1).inE('a')");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_TRUE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[0].dst_id_args.size(), 1u);
  EXPECT_TRUE(t.steps[0].src_id_args.empty());
}

TEST(MutationStrategyTest, VOutAppendsEdgeVertexStep) {
  Traversal t = Compile("g.V(1).out('a')");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_TRUE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[1].kind, StepKind::kEdgeVertex);
  EXPECT_EQ(t.steps[1].direction, Direction::kIn);
}

TEST(MutationStrategyTest, VInAppendsOutVStep) {
  Traversal t = Compile("g.V(1).in('a')");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[1].kind, StepKind::kEdgeVertex);
  EXPECT_EQ(t.steps[1].direction, Direction::kOut);
}

TEST(MutationStrategyTest, BothIsNotMutated) {
  Traversal t = Compile("g.V(1).both('a')");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[0].kind, StepKind::kGraph);
  EXPECT_FALSE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[1].kind, StepKind::kVertex);
}

TEST(MutationStrategyTest, GraphStepWithFoldedFiltersIsNotMutated) {
  // hasLabel folds into the GraphStep first... order is mutation-first,
  // so with a label in between, the mutation applies before folding; but
  // an explicit label via a prior fold must block it. Simulate by folding
  // manually: g.V().hasLabel('x').outE('a') — mutation runs first and
  // sees [Graph, Has, Vertex], so the pattern does not match.
  Traversal t = Compile("g.V().hasLabel('x').outE('a')");
  ASSERT_GE(t.steps.size(), 2u);
  EXPECT_FALSE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[0].spec.labels, std::vector<std::string>{"x"});
  EXPECT_EQ(t.steps[1].kind, StepKind::kVertex);
}

TEST(MutationStrategyTest, EmptyIdsStillMutates) {
  // g.V().outE() == g.E(): every edge.
  Traversal t = Compile("g.V().outE()");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_TRUE(t.steps[0].graph_emits_edges);
  EXPECT_TRUE(t.steps[0].src_id_args.empty());
}

// --------------------------------------------------- predicate pushdown

TEST(PredicatePushdownTest, FoldsHasChainsIntoGraphStep) {
  Traversal t =
      Compile("g.V().hasLabel('p').has('a', 1).has('b', gt(2))");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0].spec.labels, std::vector<std::string>{"p"});
  ASSERT_EQ(t.steps[0].spec.predicates.size(), 2u);
  EXPECT_EQ(t.steps[0].spec.predicates[0].key, "a");
  EXPECT_EQ(t.steps[0].spec.predicates[1].op,
            gremlin::PropPredicate::Op::kGt);
}

TEST(PredicatePushdownTest, FoldsHasIdIntoEmptyGraphStep) {
  Traversal t = Compile("g.V().hasId(5)");
  ASSERT_EQ(t.steps.size(), 1u);
  ASSERT_EQ(t.steps[0].start_ids.size(), 1u);
  EXPECT_EQ(t.steps[0].start_ids[0].literal, Value(int64_t{5}));
}

TEST(PredicatePushdownTest, DoesNotFoldHasIdWhenIdsPresent) {
  // g.V(1).hasId(5) is an intersection — must stay client-side.
  Traversal t = Compile("g.V(1).hasId(5)");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[1].kind, StepKind::kHas);
}

TEST(PredicatePushdownTest, SecondHasLabelStopsFolding) {
  // Folding two label sets would need intersection semantics.
  Traversal t = Compile("g.V().hasLabel('a').hasLabel('b')");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[0].spec.labels, std::vector<std::string>{"a"});
  EXPECT_EQ(t.steps[1].kind, StepKind::kHas);
}

TEST(PredicatePushdownTest, WhereInVFoldsToDstOnEdges) {
  Traversal t = Compile("g.V(1).outE('a').where(inV().hasId(2))");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0].dst_id_args.size(), 1u);
}

TEST(PredicatePushdownTest, WhereOutVFoldsToSrcOnEdges) {
  Traversal t = Compile("g.V(1).inE('a').where(outV().hasId(2))");
  ASSERT_EQ(t.steps.size(), 1u);
  // inE mutation puts V's ids on dst; the where adds src.
  EXPECT_EQ(t.steps[0].dst_id_args.size(), 1u);
  EXPECT_EQ(t.steps[0].src_id_args.size(), 1u);
}

TEST(PredicatePushdownTest, WhereWithComplexBodyIsNotFolded) {
  Traversal t =
      Compile("g.V(1).outE('a').where(inV().has('x', 1))");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[1].kind, StepKind::kWhere);
}

TEST(PredicatePushdownTest, FoldsInsideRepeatBodies) {
  Traversal t =
      Compile("g.V(1).repeat(out('e').hasLabel('x')).times(2)");
  // Mutation runs on the outer plan; the body's out+hasLabel folds.
  const auto* repeat = &t.steps.back();
  ASSERT_EQ(repeat->kind, StepKind::kRepeat);
  ASSERT_EQ(repeat->body.size(), 1u);
  EXPECT_EQ(repeat->body[0].spec.labels, std::vector<std::string>{"x"});
}

// --------------------------------------------------- projection pushdown

TEST(ProjectionPushdownTest, ValuesSetsProjection) {
  Traversal t = Compile("g.V().has('a', 1).values('name', 'age')");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_TRUE(t.steps[0].spec.has_projection);
  EXPECT_EQ(t.steps[0].spec.projection,
            (std::vector<std::string>{"name", "age"}));
  EXPECT_EQ(t.steps[1].kind, StepKind::kValues);  // kept for conversion
}

TEST(ProjectionPushdownTest, IdStepNeedsNoProperties) {
  Traversal t = Compile("g.V().id()");
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_TRUE(t.steps[0].spec.has_projection);
  EXPECT_TRUE(t.steps[0].spec.projection.empty());
}

// ---------------------------------------------------- aggregate pushdown

TEST(AggregatePushdownTest, CountFoldsIntoGraphStep) {
  Traversal t = Compile("g.V().count()");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0].spec.agg, AggOp::kCount);
}

TEST(AggregatePushdownTest, ValuesSumFoldsWithKey) {
  Traversal t = Compile("g.V().values('age').sum()");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_EQ(t.steps[0].spec.agg, AggOp::kSum);
  EXPECT_EQ(t.steps[0].spec.agg_key, "age");
}

TEST(AggregatePushdownTest, DoesNotFoldIntoVertexEmittingSteps) {
  // out() emits vertices through EdgeEndpoints; count() must survive.
  StrategyOptions no_mutation;
  no_mutation.graphstep_vertexstep_mutation = false;
  Traversal t = Compile("g.V(1).out('a').count()", no_mutation);
  ASSERT_EQ(t.steps.size(), 3u);
  EXPECT_EQ(t.steps[2].kind, StepKind::kAggregate);
}

TEST(AggregatePushdownTest, FoldsIntoEdgeEmittingVertexStep) {
  StrategyOptions no_mutation;
  no_mutation.graphstep_vertexstep_mutation = false;
  Traversal t = Compile("g.V(1).outE('a').count()", no_mutation);
  ASSERT_EQ(t.steps.size(), 2u);
  EXPECT_EQ(t.steps[1].kind, StepKind::kVertex);
  EXPECT_EQ(t.steps[1].spec.agg, AggOp::kCount);
}

TEST(AggregatePushdownTest, MultiKeyValuesBlockFold) {
  Traversal t = Compile("g.V().values('a', 'b').sum()");
  // Two keys cannot become one SQL aggregate; all three steps survive
  // (projection still folds the two keys).
  ASSERT_EQ(t.steps.size(), 3u);
  EXPECT_EQ(t.steps[0].spec.agg, AggOp::kNone);
}

// ------------------------------------------------------------ combined

TEST(CombinedStrategyTest, PaperExampleCollapsesToOneStep) {
  // The paper's end-to-end example: g.V(ids).outE().has(...).count() ->
  // one SQL "SELECT COUNT(*) ... WHERE src IN (..) AND metIn='US'".
  Traversal t =
      Compile("g.V(1, 2).outE('knows').has('metIn', 'US').count()");
  ASSERT_EQ(t.steps.size(), 1u);
  EXPECT_TRUE(t.steps[0].graph_emits_edges);
  EXPECT_EQ(t.steps[0].src_id_args.size(), 2u);
  ASSERT_EQ(t.steps[0].spec.predicates.size(), 1u);
  EXPECT_EQ(t.steps[0].spec.predicates[0].key, "metIn");
  EXPECT_EQ(t.steps[0].spec.agg, AggOp::kCount);
}

TEST(CombinedStrategyTest, AllOffLeavesPlanIntact) {
  Traversal t = Compile("g.V(1).outE('a').has('x', 1).count()",
                        StrategyOptions::AllOff());
  ASSERT_EQ(t.steps.size(), 4u);
  EXPECT_EQ(t.steps[0].kind, StepKind::kGraph);
  EXPECT_EQ(t.steps[1].kind, StepKind::kVertex);
  EXPECT_EQ(t.steps[2].kind, StepKind::kHas);
  EXPECT_EQ(t.steps[3].kind, StepKind::kAggregate);
}

TEST(CombinedStrategyTest, VariablesSurviveMutationAndFolds) {
  Traversal t = Compile("g.V(similar).outE('a').where(inV().hasId(other))");
  ASSERT_EQ(t.steps.size(), 1u);
  ASSERT_EQ(t.steps[0].src_id_args.size(), 1u);
  EXPECT_EQ(t.steps[0].src_id_args[0].var, "similar");
  ASSERT_EQ(t.steps[0].dst_id_args.size(), 1u);
  EXPECT_EQ(t.steps[0].dst_id_args[0].var, "other");
}

}  // namespace
}  // namespace db2graph::core
