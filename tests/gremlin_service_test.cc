// Tests for the Gremlin Server analog: concurrent sessionless requests,
// sessioned variable persistence, session isolation, and clean shutdown.

#include <gtest/gtest.h>

#include "core/gremlin_service.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

class GremlinServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE N (id BIGINT PRIMARY KEY, score BIGINT);
      CREATE TABLE E2 (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
      CREATE INDEX idx_src ON E2 (src);
      INSERT INTO N VALUES (1, 10), (2, 20), (3, 30);
      INSERT INTO E2 VALUES (100, 1, 2), (101, 2, 3), (102, 1, 3);
    )sql")
                    .ok());
    auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "N", "id": "id", "fix_label": true,
                    "label": "'n'", "properties": ["score"]}],
      "e_tables": [{"table_name": "E2", "src_v_table": "N", "src_v": "src",
                    "dst_v_table": "N", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'e'"}]
    })json");
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(GremlinServiceTest, SessionlessRequestsExecute) {
  GremlinService service(graph_.get(), 2);
  auto f1 = service.Submit("g.V().count()");
  auto f2 = service.Submit("g.E().count()");
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r1)[0].value, Value(int64_t{3}));
  EXPECT_EQ((*r2)[0].value, Value(int64_t{3}));
  EXPECT_EQ(service.completed(), 2u);
}

TEST_F(GremlinServiceTest, ParseErrorsReturnAsStatuses) {
  GremlinService service(graph_.get(), 1);
  auto result = service.Submit("g.V().noSuchStep()").get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(GremlinServiceTest, SessionsKeepVariablesAcrossRequests) {
  GremlinService service(graph_.get(), 2);
  // First request binds a variable; the second uses it.
  auto r1 = service.SubmitSession("s1", "friends = g.V(1).out('e').id()")
                .get();
  ASSERT_TRUE(r1.ok());
  auto r2 =
      service.SubmitSession("s1", "g.V(friends).values('score').sum()")
          .get();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)[0].value, Value(int64_t{50}));  // 20 + 30
}

TEST_F(GremlinServiceTest, SessionsAreIsolated) {
  GremlinService service(graph_.get(), 2);
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  auto other = service.SubmitSession("b", "g.V(x).count()").get();
  ASSERT_FALSE(other.ok());  // 'x' is not bound in session b
  EXPECT_EQ(other.status().code(), StatusCode::kNotFound);
}

TEST_F(GremlinServiceTest, SessionlessHasNoBindings) {
  GremlinService service(graph_.get(), 1);
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  auto result = service.Submit("g.V(x).count()").get();
  EXPECT_FALSE(result.ok());
}

TEST_F(GremlinServiceTest, CloseSessionDropsBindings) {
  GremlinService service(graph_.get(), 1);
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  service.CloseSession("a");
  auto result = service.SubmitSession("a", "g.V(x).count()").get();
  EXPECT_FALSE(result.ok());
}

TEST_F(GremlinServiceTest, ManyConcurrentClients) {
  GremlinService service(graph_.get(), 4);
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(
        service.Submit("g.V(" + std::to_string(1 + i % 3) + ").count()"));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)[0].value, Value(int64_t{1}));
  }
  EXPECT_EQ(service.completed(), 200u);
}

TEST_F(GremlinServiceTest, ShutdownWithPendingWorkIsClean) {
  auto service = std::make_unique<GremlinService>(graph_.get(), 1);
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(service->Submit("g.V().count()"));
  }
  service.reset();  // joins workers; unprocessed requests get a status
  for (auto& f : futures) {
    (void)f.get();  // must not hang or throw
  }
}

}  // namespace
}  // namespace db2graph::core
