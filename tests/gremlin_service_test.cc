// Tests for the Gremlin Server analog: concurrent sessionless requests,
// sessioned variable persistence, session isolation, and clean shutdown.

#include <gtest/gtest.h>

#include "core/gremlin_service.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

class GremlinServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE N (id BIGINT PRIMARY KEY, score BIGINT);
      CREATE TABLE E2 (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
      CREATE INDEX idx_src ON E2 (src);
      INSERT INTO N VALUES (1, 10), (2, 20), (3, 30);
      INSERT INTO E2 VALUES (100, 1, 2), (101, 2, 3), (102, 1, 3);
    )sql")
                    .ok());
    auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "N", "id": "id", "fix_label": true,
                    "label": "'n'", "properties": ["score"]}],
      "e_tables": [{"table_name": "E2", "src_v_table": "N", "src_v": "src",
                    "dst_v_table": "N", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'e'"}]
    })json");
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(GremlinServiceTest, SessionlessRequestsExecute) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  auto f1 = service.Submit("g.V().count()");
  auto f2 = service.Submit("g.E().count()");
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r1)[0].value, Value(int64_t{3}));
  EXPECT_EQ((*r2)[0].value, Value(int64_t{3}));
  EXPECT_EQ(service.completed(), 2u);
}

TEST_F(GremlinServiceTest, ParseErrorsReturnAsStatuses) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(1));
  auto result = service.Submit("g.V().noSuchStep()").get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(GremlinServiceTest, SessionsKeepVariablesAcrossRequests) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  // First request binds a variable; the second uses it.
  auto r1 = service.SubmitSession("s1", "friends = g.V(1).out('e').id()")
                .get();
  ASSERT_TRUE(r1.ok());
  auto r2 =
      service.SubmitSession("s1", "g.V(friends).values('score').sum()")
          .get();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)[0].value, Value(int64_t{50}));  // 20 + 30
}

TEST_F(GremlinServiceTest, SessionsAreIsolated) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  auto other = service.SubmitSession("b", "g.V(x).count()").get();
  ASSERT_FALSE(other.ok());  // 'x' is not bound in session b
  EXPECT_EQ(other.status().code(), StatusCode::kNotFound);
}

TEST_F(GremlinServiceTest, SessionlessHasNoBindings) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(1));
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  auto result = service.Submit("g.V(x).count()").get();
  EXPECT_FALSE(result.ok());
}

TEST_F(GremlinServiceTest, CloseSessionDropsBindings) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(1));
  (void)service.SubmitSession("a", "x = g.V(1).id()").get();
  service.CloseSession("a");
  auto result = service.SubmitSession("a", "g.V(x).count()").get();
  EXPECT_FALSE(result.ok());
}

TEST_F(GremlinServiceTest, ManyConcurrentClients) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(4));
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(
        service.Submit("g.V(" + std::to_string(1 + i % 3) + ").count()"));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)[0].value, Value(int64_t{1}));
  }
  EXPECT_EQ(service.completed(), 200u);
}

TEST_F(GremlinServiceTest, ShutdownWithPendingWorkIsClean) {
  auto service = std::make_unique<GremlinService>(
      graph_.get(), GremlinService::Options::WithWorkers(1));
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(service->Submit("g.V().count()"));
  }
  service.reset();  // joins workers; unprocessed requests get a status
  for (auto& f : futures) {
    (void)f.get();  // must not hang or throw
  }
}

TEST_F(GremlinServiceTest, SessionlessRequestsCarryBindings) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  auto out = service
                 .Submit("g.V(vid).values('score')",
                         {{"vid", {Value(int64_t{2})}}})
                 .get();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{20}));
}

TEST_F(GremlinServiceTest, SessionBindingsPersistLikeAssignments) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  auto first = service
                   .SubmitSession("s", "g.V(vid).out('e').count()",
                                  {{"vid", {Value(int64_t{1})}}})
                   .get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)[0].value, Value(int64_t{2}));
  // The binding installed by the first request is still visible.
  auto second = service.SubmitSession("s", "g.V(vid).id()").get();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].value, Value(int64_t{1}));
}

TEST_F(GremlinServiceTest, SessionRequestsExecuteInSubmissionOrder) {
  // Fire a burst of assignments into one session without waiting between
  // them; serialization in submission order means the last assignment
  // wins, whatever worker executed each request.
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(4));
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 1; i <= 3; ++i) {
    for (int round = 0; round < 10; ++round) {
      futures.push_back(service.SubmitSession(
          "s", "last = g.V(" + std::to_string(i) + ").id()"));
    }
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  auto out = service.SubmitSession("s", "g.V(last).values('score')").get();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{30}));
}

TEST_F(GremlinServiceTest, OneSlowSessionDoesNotPinEveryWorker) {
  // A burst on one session may occupy at most one worker at a time; with
  // two workers, interleaved sessionless requests and a second session
  // must all complete even while session "hog" has a deep backlog.
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  std::vector<std::future<GremlinService::Response>> hog;
  for (int i = 0; i < 50; ++i) {
    hog.push_back(service.SubmitSession("hog", "g.V().count()"));
  }
  std::vector<std::future<GremlinService::Response>> others;
  for (int i = 0; i < 25; ++i) {
    others.push_back(service.Submit("g.V(1).count()"));
    others.push_back(service.SubmitSession("other", "g.V(2).count()"));
  }
  for (auto& f : hog) ASSERT_TRUE(f.get().ok());
  for (auto& f : others) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(service.completed(), 100u);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST_F(GremlinServiceTest, CloseSessionFailsRequestsAwaitingTheirTurn) {
  // With a single worker and a queue full of sessionless work, sessioned
  // requests past the first sit on the session's pending queue; closing
  // the session fails them with Unavailable.
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(1));
  std::vector<std::future<GremlinService::Response>> filler;
  for (int i = 0; i < 30; ++i) {
    filler.push_back(service.Submit("g.V().count()"));
  }
  auto first = service.SubmitSession("s", "g.V().count()");
  auto second = service.SubmitSession("s", "g.V().count()");
  auto third = service.SubmitSession("s", "g.V().count()");
  service.CloseSession("s");
  for (auto& f : filler) ASSERT_TRUE(f.get().ok());
  // The first request was already admitted to the worker queue and runs;
  // later ones either ran (if the worker got to them before the close) or
  // failed with Unavailable — never hang.
  ASSERT_TRUE(first.get().ok());
  for (auto* f : {&second, &third}) {
    auto r = f->get();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    }
  }
}

// Shim coverage: the deprecated (graph, workers) constructor must keep
// its historical shape — n workers, unbounded queue — until callers
// finish migrating to Options::WithWorkers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(GremlinServiceTest, DeprecatedWorkerCountConstructorStillServes) {
  GremlinService service(graph_.get(), 2);
  std::vector<std::future<GremlinService::Response>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(service.Submit("g.V().count()"));
  }
  for (auto& f : futures) {
    auto out = f.get();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  EXPECT_EQ(service.shed(), 0u) << "legacy constructor queue is unbounded";
}
#pragma GCC diagnostic pop

TEST_F(GremlinServiceTest, ServiceExecConfigAppliesToEveryRequest) {
  GremlinService::Options options = GremlinService::Options::WithWorkers(2);
  options.exec = ExecConfig().parallelism(4);
  GremlinService service(graph_.get(), options);
  auto out = service.Submit("g.V().count()").get();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{3}));
}

}  // namespace
}  // namespace db2graph::core
