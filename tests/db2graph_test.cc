// End-to-end tests for Db2 Graph: Gremlin over relational tables through
// the overlay, the Section 6.2 strategies, the Section 6.3 runtime
// optimizations (asserted through provider/engine counters), the
// graphQuery table function inside SQL, and freshness under updates.

#include <gtest/gtest.h>

#include "core/db2graph.h"
#include "overlay/auto_overlay.h"

namespace db2graph::core {
namespace {

using gremlin::StepKind;
using gremlin::Traverser;

constexpr char kPaperConfig[] = R"json({
  "v_tables": [
    {
      "table_name": "Patient",
      "prefixed_id": true,
      "id": "'patient'::patientID",
      "fix_label": true,
      "label": "'patient'",
      "properties": ["patientID", "name", "address", "subscriptionID"]
    },
    {
      "table_name": "Disease",
      "id": "diseaseID",
      "fix_label": true,
      "label": "'disease'",
      "properties": ["diseaseID", "conceptCode", "conceptName"]
    }
  ],
  "e_tables": [
    {
      "table_name": "DiseaseOntology",
      "src_v_table": "Disease",
      "src_v": "sourceID",
      "dst_v_table": "Disease",
      "dst_v": "targetID",
      "prefixed_edge_id": true,
      "id": "'ontology'::sourceID::targetID",
      "label": "type"
    },
    {
      "table_name": "HasDisease",
      "src_v_table": "Patient",
      "src_v": "'patient'::patientID",
      "dst_v_table": "Disease",
      "dst_v": "diseaseID",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'hasDisease'"
    }
  ]
})json";

class Db2GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Patient (
        patientID BIGINT PRIMARY KEY,
        name VARCHAR(100),
        address VARCHAR(200),
        subscriptionID BIGINT
      );
      CREATE TABLE Disease (
        diseaseID BIGINT PRIMARY KEY,
        conceptCode VARCHAR(20),
        conceptName VARCHAR(100)
      );
      CREATE TABLE DiseaseOntology (
        sourceID BIGINT,
        targetID BIGINT,
        type VARCHAR(20),
        FOREIGN KEY (sourceID) REFERENCES Disease (diseaseID),
        FOREIGN KEY (targetID) REFERENCES Disease (diseaseID)
      );
      CREATE TABLE HasDisease (
        patientID BIGINT,
        diseaseID BIGINT,
        description VARCHAR(200),
        FOREIGN KEY (patientID) REFERENCES Patient (patientID),
        FOREIGN KEY (diseaseID) REFERENCES Disease (diseaseID)
      );
      CREATE INDEX idx_hd_patient ON HasDisease (patientID);
      CREATE INDEX idx_hd_disease ON HasDisease (diseaseID);
      CREATE INDEX idx_do_source ON DiseaseOntology (sourceID);
      CREATE INDEX idx_do_target ON DiseaseOntology (targetID);
      INSERT INTO Patient VALUES
        (1, 'Alice', '1 Main St', 101),
        (2, 'Bob', '2 Oak Ave', 102),
        (3, 'Carol', '3 Pine Rd', 103);
      INSERT INTO Disease VALUES
        (10, 'D10', 'diabetes'),
        (11, 'D11', 'type 2 diabetes'),
        (12, 'D12', 'hypertension'),
        (13, 'D13', 'metabolic disorder');
      INSERT INTO HasDisease VALUES
        (1, 11, 'diagnosed 2019'),
        (2, 12, 'diagnosed 2020'),
        (3, 11, 'diagnosed 2021');
      INSERT INTO DiseaseOntology VALUES
        (11, 10, 'isa'),
        (10, 13, 'isa'),
        (12, 13, 'isa');
    )sql")
                    .ok());
    Result<std::unique_ptr<Db2Graph>> graph =
        Db2Graph::Open(&db_, kPaperConfig);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  std::vector<Traverser> Run(const std::string& script) {
    Result<std::vector<Traverser>> out = graph_->Execute(script);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << script;
    return out.ok() ? *out : std::vector<Traverser>{};
  }

  Value Single(const std::string& script) {
    std::vector<Traverser> out = Run(script);
    EXPECT_EQ(out.size(), 1u) << script;
    if (out.empty()) return Value::Null();
    return out[0].kind == Traverser::Kind::kValue ? out[0].value
                                                  : out[0].DedupKey();
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

// ---------------------------------------------------------- basic reads

TEST_F(Db2GraphTest, CountsVerticesAcrossBothVertexTables) {
  EXPECT_EQ(Single("g.V().count()"), Value(int64_t{7}));
}

TEST_F(Db2GraphTest, CountsEdgesAcrossBothEdgeTables) {
  EXPECT_EQ(Single("g.E().count()"), Value(int64_t{6}));
}

TEST_F(Db2GraphTest, VertexByPrefixedId) {
  std::vector<Traverser> out = Run("g.V('patient::1')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->label, "patient");
  const Value* name = out[0].vertex->FindProperty("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, Value("Alice"));
}

TEST_F(Db2GraphTest, VertexByPlainIntegerId) {
  std::vector<Traverser> out = Run("g.V(11)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex->label, "disease");
}

TEST_F(Db2GraphTest, LabelFiltering) {
  EXPECT_EQ(Single("g.V().hasLabel('patient').count()"), Value(int64_t{3}));
  EXPECT_EQ(Single("g.V().hasLabel('disease').count()"), Value(int64_t{4}));
  EXPECT_EQ(Single("g.E().hasLabel('isa').count()"), Value(int64_t{3}));
  EXPECT_EQ(Single("g.E().hasLabel('hasDisease').count()"),
            Value(int64_t{3}));
}

TEST_F(Db2GraphTest, PropertyPredicate) {
  std::vector<Traverser> out =
      Run("g.V().has('name', 'Alice').values('address')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, Value("1 Main St"));
}

TEST_F(Db2GraphTest, TraversalAcrossTables) {
  // Alice -> her disease -> its conceptName.
  std::vector<Traverser> out = Run(
      "g.V('patient::1').out('hasDisease').values('conceptName')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, Value("type 2 diabetes"));
}

TEST_F(Db2GraphTest, ReverseTraversal) {
  EXPECT_EQ(Single("g.V(11).in('hasDisease').count()"), Value(int64_t{2}));
}

TEST_F(Db2GraphTest, ColumnMappedEdgeLabel) {
  // DiseaseOntology's label comes from the 'type' column.
  std::vector<Traverser> out = Run("g.V(11).outE('isa')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].edge->label, "isa");
  EXPECT_EQ(out[0].edge->dst_id, Value(int64_t{10}));
}

TEST_F(Db2GraphTest, ImplicitEdgeIdComposition) {
  std::vector<Traverser> out = Run("g.V('patient::1').outE('hasDisease')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].edge->id, Value("patient::1::hasDisease::11"));
  // And looking the edge up by that id round-trips.
  out = Run("g.E('patient::1::hasDisease::11')");
  ASSERT_EQ(out.size(), 1u);
  const Value* desc = out[0].edge->FindProperty("description");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(*desc, Value("diagnosed 2019"));
}

TEST_F(Db2GraphTest, PrefixedExplicitEdgeId) {
  std::vector<Traverser> out = Run("g.E('ontology::11::10')");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].edge->label, "isa");
}

TEST_F(Db2GraphTest, EdgeEndpointSteps) {
  EXPECT_EQ(Single("g.V('patient::1').outE('hasDisease').inV().id()"),
            Value(int64_t{11}));
  EXPECT_EQ(Single("g.V('patient::1').outE('hasDisease').outV().id()"),
            Value("patient::1"));
}

TEST_F(Db2GraphTest, SectionFourSimilarDiseaseScenario) {
  std::vector<Traverser> out = Run(
      "similar = g.V().hasLabel('patient').has('patientID', 1)"
      ".out('hasDisease')"
      ".repeat(out('isa').dedup().store('x')).times(2)"
      ".repeat(in('isa').dedup().store('x')).times(2)"
      ".cap('x').next();"
      "g.V(similar).in('hasDisease').dedup()"
      ".values('patientID', 'subscriptionID')");
  // Similar diseases reach {10,13} then {11,12,10}; their patients are
  // Alice, Bob and Carol -> 3 patients x 2 values.
  EXPECT_EQ(out.size(), 6u);
}

// ------------------------------------------------- strategy plan rewrites

TEST_F(Db2GraphTest, PredicatePushdownFoldsHasSteps) {
  Result<gremlin::Script> compiled =
      graph_->Compile("g.V().hasLabel('patient').has('name', 'Alice')");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, StepKind::kGraph);
  EXPECT_EQ(steps[0].spec.labels, std::vector<std::string>{"patient"});
  ASSERT_EQ(steps[0].spec.predicates.size(), 1u);
  EXPECT_EQ(steps[0].spec.predicates[0].key, "name");
}

TEST_F(Db2GraphTest, AggregatePushdownFoldsCount) {
  Result<gremlin::Script> compiled = graph_->Compile("g.V().count()");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].spec.agg, gremlin::AggOp::kCount);
}

TEST_F(Db2GraphTest, GraphStepVertexStepMutationSkipsVertexFetch) {
  Result<gremlin::Script> compiled =
      graph_->Compile("g.V('patient::1').outE('hasDisease').count()");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 1u);  // one GraphStep on edges, count folded
  EXPECT_TRUE(steps[0].graph_emits_edges);
  EXPECT_EQ(steps[0].src_id_args.size(), 1u);
  EXPECT_EQ(steps[0].spec.agg, gremlin::AggOp::kCount);
}

TEST_F(Db2GraphTest, GetLinkShapeFoldsEndpointConstraint) {
  Result<gremlin::Script> compiled = graph_->Compile(
      "g.V('patient::1').outE('hasDisease').where(inV().hasId(11))");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].dst_id_args.size(), 1u);
  // And it executes correctly.
  EXPECT_EQ(Single("g.V('patient::1').outE('hasDisease')"
                   ".where(inV().hasId(11)).count()"),
            Value(int64_t{1}));
  EXPECT_EQ(Single("g.V('patient::1').outE('hasDisease')"
                   ".where(inV().hasId(12)).count()"),
            Value(int64_t{0}));
}

TEST_F(Db2GraphTest, MutationPreservesOutSemantics) {
  Result<gremlin::Script> compiled =
      graph_->Compile("g.V('patient::1').out('hasDisease')");
  ASSERT_TRUE(compiled.ok());
  const auto& steps = compiled->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(steps[0].graph_emits_edges);
  EXPECT_EQ(steps[1].kind, StepKind::kEdgeVertex);
  EXPECT_EQ(steps[1].direction, gremlin::Direction::kIn);
}

// Every query must produce identical results with strategies disabled.
TEST_F(Db2GraphTest, StrategiesPreserveResults) {
  Db2Graph::Options naive;
  naive.strategies = StrategyOptions::AllOff();
  Result<std::unique_ptr<Db2Graph>> unoptimized =
      Db2Graph::Open(&db_, kPaperConfig, naive);
  ASSERT_TRUE(unoptimized.ok());
  const char* queries[] = {
      "g.V().count()",
      "g.E().count()",
      "g.V().hasLabel('patient').count()",
      "g.V().has('name', 'Alice').values('address')",
      "g.V('patient::1').outE('hasDisease').count()",
      "g.V('patient::1').out('hasDisease').values('conceptName')",
      "g.V(11).in('hasDisease').count()",
      "g.V(11).repeat(out('isa').dedup().store('x')).times(2)"
      ".cap('x')",
      "g.V('patient::1').outE('hasDisease').where(inV().hasId(11)).count()",
      "g.V().hasLabel('patient').values('subscriptionID').sum()",
      "g.V().hasLabel('disease').values('conceptName').order()",
  };
  for (const char* q : queries) {
    Result<std::vector<Traverser>> a = graph_->Execute(q);
    Result<std::vector<Traverser>> b = (*unoptimized)->Execute(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].DedupKey(), (*b)[i].DedupKey()) << q;
    }
  }
}

// ------------------------------------------ data-dependent optimizations

TEST_F(Db2GraphTest, FixedLabelPruningSkipsNonMatchingTables) {
  graph_->provider()->stats().Reset();
  Run("g.V().hasLabel('patient')");
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_queried, 1u);
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_pruned, 1u);
}

TEST_F(Db2GraphTest, PrefixedIdPinsExactTable) {
  graph_->provider()->stats().Reset();
  Run("g.V('patient::1')");
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_queried, 1u);
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_pruned, 1u);
}

TEST_F(Db2GraphTest, PropertyNamePruningSkipsTablesWithoutTheProperty) {
  graph_->provider()->stats().Reset();
  Run("g.V().has('conceptCode', 'D10')");
  // Only Disease has conceptCode.
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_queried, 1u);
  EXPECT_EQ(graph_->provider()->stats().Snapshot().vertex_tables_pruned, 1u);
}

TEST_F(Db2GraphTest, ImplicitEdgeIdNarrowsByEncodedLabel) {
  graph_->provider()->stats().Reset();
  Run("g.E('patient::1::hasDisease::11')");
  // The ontology table is pruned: its explicit-id definition cannot
  // produce this id.
  EXPECT_EQ(graph_->provider()->stats().Snapshot().edge_tables_queried, 1u);
  EXPECT_EQ(graph_->provider()->stats().Snapshot().edge_tables_pruned, 1u);
}

TEST_F(Db2GraphTest, EndpointTablePruningOnAdjacency) {
  graph_->provider()->stats().Reset();
  // Patient vertices: only HasDisease can have them as sources.
  Run("g.V('patient::1').out('hasDisease')");
  EXPECT_EQ(graph_->provider()->stats().Snapshot().edge_tables_queried, 1u);
}

TEST_F(Db2GraphTest, SrcIdDecompositionUsesIndexProbes) {
  db_.stats().Reset();
  Run("g.V('patient::1').outE('hasDisease')");
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
}

TEST_F(Db2GraphTest, RuntimeOptimizationsPreserveResults) {
  Db2Graph::Options naive;
  naive.runtime = RuntimeOptions::AllOff();
  Result<std::unique_ptr<Db2Graph>> unoptimized =
      Db2Graph::Open(&db_, kPaperConfig, naive);
  ASSERT_TRUE(unoptimized.ok());
  const char* queries[] = {
      "g.V().count()",
      "g.V('patient::1')",
      "g.V('patient::2').out('hasDisease')",
      "g.V(11).in('hasDisease').values('name').order()",
      "g.E('patient::1::hasDisease::11')",
      "g.E('ontology::11::10')",
      "g.V().hasLabel('disease').has('conceptCode', 'D12')",
  };
  for (const char* q : queries) {
    Result<std::vector<Traverser>> a = graph_->Execute(q);
    Result<std::vector<Traverser>> b = (*unoptimized)->Execute(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
    ASSERT_EQ(a->size(), b->size()) << q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].DedupKey(), (*b)[i].DedupKey()) << q;
    }
  }
}

// ---------------------------------------------------- synergy & freshness

TEST_F(Db2GraphTest, GraphQueryTableFunctionInsideSql) {
  ASSERT_TRUE(graph_->RegisterGraphQueryFunction().ok());
  Result<sql::ResultSet> rs = db_.Execute(
      "SELECT p.name FROM Patient p, "
      "TABLE (graphQuery('gremlin', "
      "'g.V(11).in(''hasDisease'').values(''patientID'')')) "
      "AS t (pid BIGINT) "
      "WHERE p.patientID = t.pid ORDER BY p.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0], Value("Alice"));
  EXPECT_EQ(rs->rows[1][0], Value("Carol"));
}

TEST_F(Db2GraphTest, GraphQueryMultiColumnRows) {
  ASSERT_TRUE(graph_->RegisterGraphQueryFunction().ok());
  Result<sql::ResultSet> rs = db_.Execute(
      "SELECT t.pid, t.sub FROM "
      "TABLE (graphQuery('gremlin', "
      "'g.V().hasLabel(''patient'').values(''patientID'', "
      "''subscriptionID'')')) AS t (pid BIGINT, sub BIGINT) "
      "ORDER BY t.pid");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_EQ(rs->rows[0][1], Value(int64_t{101}));
}

TEST_F(Db2GraphTest, GraphSeesRelationalUpdatesImmediately) {
  EXPECT_EQ(Single("g.V().hasLabel('patient').count()"), Value(int64_t{3}));
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Patient VALUES (4, 'Dave', '4 Elm', 104)")
          .ok());
  EXPECT_EQ(Single("g.V().hasLabel('patient').count()"), Value(int64_t{4}));
  ASSERT_TRUE(
      db_.Execute("INSERT INTO HasDisease VALUES (4, 12, 'new dx')").ok());
  EXPECT_EQ(Single("g.V(12).in('hasDisease').count()"), Value(int64_t{2}));
  // Transactional rollback is invisible to the graph afterwards.
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(
      db_.Execute("DELETE FROM HasDisease WHERE patientID = 4").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  EXPECT_EQ(Single("g.V(12).in('hasDisease').count()"), Value(int64_t{2}));
}

TEST_F(Db2GraphTest, DerivedEdgesThroughViews) {
  // The "surprising benefit" (Section 5): patient -> ontology parent via a
  // non-materialized join view mapped as an edge table.
  ASSERT_TRUE(db_.Execute(
                     "CREATE VIEW PatientParentDisease AS "
                     "SELECT h.patientID AS pid, o.targetID AS parent "
                     "FROM HasDisease h JOIN DiseaseOntology o "
                     "ON h.diseaseID = o.sourceID")
                  .ok());
  overlay::OverlayConfig config =
      *overlay::OverlayConfig::Parse(kPaperConfig);
  overlay::EdgeTableConf derived;
  derived.table_name = "PatientParentDisease";
  derived.src_v_table = "Patient";
  derived.src_v = *overlay::FieldDef::Parse("'patient'::pid");
  derived.dst_v_table = "Disease";
  derived.dst_v = *overlay::FieldDef::Parse("parent");
  derived.implicit_edge_id = true;
  derived.label.fixed = true;
  derived.label.value = "hasParentDisease";
  config.e_tables.push_back(derived);

  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(&db_, config);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  Result<std::vector<Traverser>> out = (*graph)->Execute(
      "g.V('patient::1').out('hasParentDisease').values('conceptName')");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value("diabetes"));  // 11 -isa-> 10

  // Deleting the underlying edge removes the derived edge automatically.
  ASSERT_TRUE(
      db_.Execute("DELETE FROM DiseaseOntology WHERE sourceID = 11").ok());
  out = (*graph)->Execute("g.V('patient::1').out('hasParentDisease')");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(Db2GraphTest, AutoOverlayGraphIsQueryable) {
  Result<overlay::OverlayConfig> config = overlay::AutoOverlay(db_);
  ASSERT_TRUE(config.ok());
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(&db_, *config);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  Result<std::vector<Traverser>> out =
      (*graph)->Execute("g.V().hasLabel('Patient').count()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{3}));
  // AutoOverlay's FK-pair edge labels work too.
  out = (*graph)->Execute(
      "g.V('Patient::1').out('Patient_HasDisease_Disease').count()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].value, Value(int64_t{1}));
}

// ------------------------------------------------------- dialect module

TEST_F(Db2GraphTest, TemplateCacheHitsOnRepeatedQueries) {
  // The vertex cache would satisfy the repeats without reaching SQL;
  // disable it so every run exercises the statement-template cache.
  Db2Graph::Options options;
  options.runtime.vertex_cache = false;
  Result<std::unique_ptr<Db2Graph>> graph =
      Db2Graph::Open(&db_, kPaperConfig, options);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  (*graph)->dialect()->ResetCounters();
  for (int i = 0; i < 5; ++i) {
    Result<std::vector<Traverser>> out = (*graph)->Execute(
        "g.V('patient::" + std::to_string(1 + i % 3) + "')");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  EXPECT_GT((*graph)->dialect()->template_cache_hits(), 0u);
  EXPECT_GE((*graph)->dialect()->queries_issued(), 5u);
}

TEST_F(Db2GraphTest, IndexAdvisorSuggestsFrequentPatterns) {
  // 'name' predicates on Patient, repeatedly, with no index on name
  // (pattern recording is sampled 1-in-8, hence the query count).
  for (int i = 0; i < 200; ++i) {
    Run("g.V().has('name', 'Alice')");
  }
  std::vector<SqlDialect::IndexSuggestion> suggestions =
      graph_->dialect()->SuggestIndexes();
  bool found = false;
  for (const auto& s : suggestions) {
    if (s.table == "Patient" &&
        s.columns == std::vector<std::string>{"name"}) {
      found = true;
      EXPECT_NE(s.ddl.find("CREATE INDEX"), std::string::npos);
      // Applying the advice works.
      EXPECT_TRUE(db_.Execute(s.ddl).ok());
    }
  }
  EXPECT_TRUE(found);
  // Indexed patterns are no longer suggested.
  suggestions = graph_->dialect()->SuggestIndexes();
  for (const auto& s : suggestions) {
    EXPECT_FALSE(s.table == "Patient" &&
                 s.columns == std::vector<std::string>{"name"});
  }
}

// A table with a primary key and a foreign key serves as both a vertex
// table and an edge table (the star-schema fact-table case). e.outV()
// then needs no SQL at all: the vertex is built from the edge's own row
// (Section 6.3, "When A Vertex Table Is Also An Edge Table").
TEST_F(Db2GraphTest, VertexFromEdgeShortcutAvoidsSql) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE Visit (
      visitID BIGINT PRIMARY KEY,
      patientID BIGINT,
      note VARCHAR(40),
      FOREIGN KEY (patientID) REFERENCES Patient (patientID)
    );
    INSERT INTO Visit VALUES (500, 1, 'checkup'), (501, 2, 'follow-up');
  )sql")
                  .ok());
  overlay::OverlayConfig config =
      *overlay::OverlayConfig::Parse(kPaperConfig);
  overlay::VertexTableConf visit_vertex;
  visit_vertex.table_name = "Visit";
  visit_vertex.prefixed_id = true;
  visit_vertex.id = *overlay::FieldDef::Parse("'visit'::visitID");
  visit_vertex.label.fixed = true;
  visit_vertex.label.value = "visit";
  visit_vertex.properties = {"note"};
  visit_vertex.properties_specified = true;
  config.v_tables.push_back(visit_vertex);
  overlay::EdgeTableConf visit_edge;
  visit_edge.table_name = "Visit";
  visit_edge.src_v_table = "Visit";
  visit_edge.src_v = *overlay::FieldDef::Parse("'visit'::visitID");
  visit_edge.dst_v_table = "Patient";
  visit_edge.dst_v = *overlay::FieldDef::Parse("'patient'::patientID");
  visit_edge.implicit_edge_id = true;
  visit_edge.label.fixed = true;
  visit_edge.label.value = "visitOf";
  config.e_tables.push_back(visit_edge);

  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(&db_, config);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  // outV() of a visitOf edge is the Visit row itself.
  (*graph)->provider()->stats().Reset();
  db_.stats().Reset();
  Result<std::vector<Traverser>> out = (*graph)->Execute(
      "g.E('visit::500::visitOf::patient::1').outV().values('note')");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value("checkup"));
  EXPECT_GE((*graph)->provider()->stats().Snapshot().shortcut_vertices, 1u);
  // Exactly one SQL (the edge fetch); the vertex came from the same row.
  EXPECT_EQ(db_.stats().Snapshot().selects, 1u);

  // With the shortcut disabled the same query needs a second SELECT.
  Db2Graph::Options no_shortcut;
  no_shortcut.runtime.vertex_from_edge_shortcut = false;
  Result<std::unique_ptr<Db2Graph>> plain =
      Db2Graph::Open(&db_, config, no_shortcut);
  ASSERT_TRUE(plain.ok());
  db_.stats().Reset();
  out = (*plain)->Execute(
      "g.E('visit::500::visitOf::patient::1').outV().values('note')");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value("checkup"));
  EXPECT_EQ(db_.stats().Snapshot().selects, 2u);
}

// The AutoOverlay-catalog integration the paper lists as future work:
// AutoGraph regenerates its overlay whenever DDL has run.
TEST_F(Db2GraphTest, AutoGraphFollowsDdlChanges) {
  Result<AutoGraph> auto_graph = AutoGraph::Open(&db_);
  ASSERT_TRUE(auto_graph.ok()) << auto_graph.status().ToString();
  auto out = auto_graph->Execute("g.V().hasLabel('Patient').count()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].value, Value(int64_t{3}));

  // New DDL + data: the next Execute() sees the new vertex table without
  // any manual overlay work.
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE Clinic (clinicID BIGINT PRIMARY KEY, name VARCHAR(20));
    INSERT INTO Clinic VALUES (1, 'North'), (2, 'South');
  )sql")
                  .ok());
  out = auto_graph->Execute("g.V().hasLabel('Clinic').count()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0].value, Value(int64_t{2}));

  // Plain DML does not force a reopen.
  Result<Db2Graph*> before = auto_graph->Get();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO Clinic VALUES (3, 'East')").ok());
  Result<Db2Graph*> after = auto_graph->Get();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);  // same graph object
  out = auto_graph->Execute("g.V().hasLabel('Clinic').count()");
  EXPECT_EQ((*out)[0].value, Value(int64_t{3}));
}

TEST_F(Db2GraphTest, StalenessFlagTracksDdl) {
  EXPECT_FALSE(graph_->OverlayMayBeStale());
  ASSERT_TRUE(db_.Execute("CREATE TABLE Extra (x BIGINT)").ok());
  EXPECT_TRUE(graph_->OverlayMayBeStale());
}

// Composite vertex ids: a two-column primary key composes into one id
// ('ord'::region::num) and lookups decompose it back into conjunctive
// predicates (the OR-group SQL path).
TEST_F(Db2GraphTest, CompositeVertexIdsRoundTrip) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE Orders (
      region VARCHAR(8),
      num BIGINT,
      total BIGINT,
      PRIMARY KEY (region, num)
    );
    INSERT INTO Orders VALUES ('east', 1, 100), ('east', 2, 250),
      ('west', 1, 75);
  )sql")
                  .ok());
  const char* overlay = R"json({
    "v_tables": [{"table_name": "Orders", "prefixed_id": true,
                  "id": "'ord'::region::num", "fix_label": true,
                  "label": "'order'", "properties": ["total"]}]
  })json";
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(&db_, overlay);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // Composition.
  Result<std::vector<Traverser>> out =
      (*graph)->Execute("g.V().hasLabel('order').id().order()");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].value, Value("ord::east::1"));
  // Decomposition (multi-column OR-group lookup), and multi-id form.
  out = (*graph)->Execute("g.V('ord::east::2').values('total')");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{250}));
  out = (*graph)->Execute(
      "g.V('ord::east::1', 'ord::west::1').values('total').sum()");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].value, Value(int64_t{175}));
  // Mismatched prefix or arity matches nothing.
  out = (*graph)->Execute("g.V('ord::north::9').count()");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].value, Value(int64_t{0}));
}

TEST_F(Db2GraphTest, OpenFailsOnBadOverlay) {
  EXPECT_FALSE(Db2Graph::Open(&db_, "not json").ok());
  EXPECT_FALSE(
      Db2Graph::Open(&db_, R"({"v_tables": [{"table_name": "Nope",
        "id": "x", "fix_label": true, "label": "'n'"}]})")
          .ok());
}

}  // namespace
}  // namespace db2graph::core
