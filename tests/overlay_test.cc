// Tests for the overlay configuration parser, field definitions, the
// Topology resolver, and the AutoOverlay toolkit (Algorithms 1 & 2).

#include <gtest/gtest.h>

#include "overlay/auto_overlay.h"
#include "overlay/config.h"
#include "overlay/topology.h"
#include "sql/database.h"

namespace db2graph::overlay {
namespace {

// The overlay configuration printed verbatim in the paper's Section 5.
constexpr char kPaperConfig[] = R"json({
  "v_tables": [
    {
      "table_name": "Patient",
      "prefixed_id": true,
      "id": "'patient'::patientID",
      "fix_label": true,
      "label": "'patient'",
      "properties": ["patientID", "name", "address", "subscriptionID"]
    },
    {
      "table_name": "Disease",
      "id": "diseaseID",
      "fix_label": true,
      "label": "'disease'",
      "properties": ["diseaseID", "conceptCode", "conceptName"]
    }
  ],
  "e_tables": [
    {
      "table_name": "DiseaseOntology",
      "src_v_table": "Disease",
      "src_v": "sourceID",
      "dst_v_table": "Disease",
      "dst_v": "targetID",
      "prefixed_edge_id": true,
      "id": "'ontology'::sourceID::targetID",
      "label": "type"
    },
    {
      "table_name": "HasDisease",
      "src_v_table": "Patient",
      "src_v": "'patient'::patientID",
      "dst_v_table": "Disease",
      "dst_v": "diseaseID",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'hasDisease'"
    }
  ]
})json";

void CreateHealthcareTables(sql::Database* db) {
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY,
      name VARCHAR(100),
      address VARCHAR(200),
      subscriptionID BIGINT
    );
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY,
      conceptCode VARCHAR(20),
      conceptName VARCHAR(100)
    );
    CREATE TABLE DiseaseOntology (
      sourceID BIGINT,
      targetID BIGINT,
      type VARCHAR(20),
      FOREIGN KEY (sourceID) REFERENCES Disease (diseaseID),
      FOREIGN KEY (targetID) REFERENCES Disease (diseaseID)
    );
    CREATE TABLE HasDisease (
      patientID BIGINT,
      diseaseID BIGINT,
      description VARCHAR(200),
      FOREIGN KEY (patientID) REFERENCES Patient (patientID),
      FOREIGN KEY (diseaseID) REFERENCES Disease (diseaseID)
    );
  )sql")
                  .ok());
}

// -------------------------------------------------------------- FieldDef

TEST(FieldDefTest, ParsesSingleColumn) {
  Result<FieldDef> def = FieldDef::Parse("diseaseID");
  ASSERT_TRUE(def.ok());
  EXPECT_TRUE(def->SingleColumn());
  EXPECT_EQ(def->Prefix(), "");
  EXPECT_EQ(def->Columns(), std::vector<std::string>{"diseaseID"});
}

TEST(FieldDefTest, ParsesPrefixedColumn) {
  Result<FieldDef> def = FieldDef::Parse("'patient'::patientID");
  ASSERT_TRUE(def.ok());
  EXPECT_FALSE(def->SingleColumn());
  EXPECT_EQ(def->Prefix(), "patient");
  EXPECT_EQ(def->Columns(), std::vector<std::string>{"patientID"});
  EXPECT_EQ(def->ToString(), "'patient'::patientID");
}

TEST(FieldDefTest, ParsesMultiColumnComposite) {
  Result<FieldDef> def = FieldDef::Parse("'ontology'::sourceID::targetID");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->Columns(),
            (std::vector<std::string>{"sourceID", "targetID"}));
}

TEST(FieldDefTest, RejectsMalformedDefinitions) {
  EXPECT_FALSE(FieldDef::Parse("").ok());
  EXPECT_FALSE(FieldDef::Parse("'unterminated::x").ok());
  EXPECT_FALSE(FieldDef::Parse("a::::b").ok());
}

// ---------------------------------------------------------- config parse

TEST(OverlayConfigTest, ParsesThePaperExample) {
  Result<OverlayConfig> config = OverlayConfig::Parse(kPaperConfig);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->v_tables.size(), 2u);
  ASSERT_EQ(config->e_tables.size(), 2u);

  const VertexTableConf& patient = config->v_tables[0];
  EXPECT_EQ(patient.table_name, "Patient");
  EXPECT_TRUE(patient.prefixed_id);
  EXPECT_EQ(patient.id.Prefix(), "patient");
  EXPECT_TRUE(patient.label.fixed);
  EXPECT_EQ(patient.label.value, "patient");
  EXPECT_EQ(patient.properties.size(), 4u);

  const EdgeTableConf& ontology = config->e_tables[0];
  EXPECT_EQ(ontology.src_v_table, "Disease");
  EXPECT_FALSE(ontology.label.fixed);
  EXPECT_EQ(ontology.label.value, "type");
  EXPECT_TRUE(ontology.prefixed_edge_id);

  const EdgeTableConf& has_disease = config->e_tables[1];
  EXPECT_TRUE(has_disease.implicit_edge_id);
  EXPECT_TRUE(has_disease.label.fixed);
  // Properties not specified: defaulting behaviour is resolved later.
  EXPECT_FALSE(has_disease.properties_specified);
}

TEST(OverlayConfigTest, RoundTripsThroughJson) {
  Result<OverlayConfig> config = OverlayConfig::Parse(kPaperConfig);
  ASSERT_TRUE(config.ok());
  std::string text = config->ToJsonText();
  Result<OverlayConfig> again = OverlayConfig::Parse(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->v_tables.size(), 2u);
  EXPECT_EQ(again->e_tables.size(), 2u);
  EXPECT_EQ(again->e_tables[0].id.ToString(),
            "'ontology'::sourceID::targetID");
}

TEST(OverlayConfigTest, RejectsInvalidConfigs) {
  EXPECT_FALSE(OverlayConfig::Parse("not json").ok());
  EXPECT_FALSE(OverlayConfig::Parse("{}").ok());  // no v_tables
  EXPECT_FALSE(
      OverlayConfig::Parse(R"({"v_tables": [{"table_name": "T"}]})").ok());
  // prefixed_id without a constant prefix.
  EXPECT_FALSE(OverlayConfig::Parse(R"({"v_tables": [{
    "table_name": "T", "prefixed_id": true, "id": "x",
    "fix_label": true, "label": "'t'"}]})")
                   .ok());
  // implicit_edge_id combined with an explicit id.
  EXPECT_FALSE(OverlayConfig::Parse(R"({"v_tables": [{
      "table_name": "T", "id": "x", "fix_label": true, "label": "'t'"}],
    "e_tables": [{
      "table_name": "E", "src_v": "a", "dst_v": "b",
      "implicit_edge_id": true, "id": "c",
      "fix_label": true, "label": "'e'"}]})")
                   .ok());
}

// ------------------------------------------------------------- topology

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override { CreateHealthcareTables(&db_); }
  sql::Database db_;
};

TEST_F(TopologyTest, ResolvesThePaperOverlay) {
  Result<OverlayConfig> config = OverlayConfig::Parse(kPaperConfig);
  ASSERT_TRUE(config.ok());
  Result<Topology> topo = Topology::Build(db_, *config);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  ASSERT_EQ(topo->vertex_tables().size(), 2u);
  ASSERT_EQ(topo->edge_tables().size(), 2u);

  const ResolvedVertexTable& patient = topo->vertex_tables()[0];
  EXPECT_EQ(patient.id.column_indexes, std::vector<size_t>{0});
  EXPECT_EQ(patient.properties.size(), 4u);

  const ResolvedEdgeTable& ontology = topo->edge_tables()[0];
  ASSERT_TRUE(ontology.label_column.has_value());
  EXPECT_EQ(*ontology.label_column, 2u);
  EXPECT_EQ(ontology.src_vertex_table, 1);  // Disease
  EXPECT_EQ(ontology.dst_vertex_table, 1);

  const ResolvedEdgeTable& has_disease = topo->edge_tables()[1];
  EXPECT_EQ(has_disease.src_vertex_table, 0);  // Patient
  EXPECT_EQ(has_disease.dst_vertex_table, 1);  // Disease
  // Unspecified properties default to all non-required columns.
  EXPECT_EQ(has_disease.properties,
            std::vector<std::string>{"description"});
}

TEST_F(TopologyTest, RejectsUnknownTable) {
  OverlayConfig config;
  VertexTableConf conf;
  conf.table_name = "Nope";
  conf.id = *FieldDef::Parse("x");
  conf.label.fixed = true;
  conf.label.value = "n";
  config.v_tables.push_back(conf);
  EXPECT_FALSE(Topology::Build(db_, config).ok());
}

TEST_F(TopologyTest, RejectsUnknownColumn) {
  OverlayConfig config;
  VertexTableConf conf;
  conf.table_name = "Patient";
  conf.id = *FieldDef::Parse("noSuchColumn");
  conf.label.fixed = true;
  conf.label.value = "p";
  config.v_tables.push_back(conf);
  EXPECT_FALSE(Topology::Build(db_, config).ok());
}

TEST_F(TopologyTest, RejectsEndpointDefinitionMismatch) {
  // HasDisease src_v must match Patient's id definition structurally.
  std::string bad = kPaperConfig;
  size_t pos = bad.find("'patient'::patientID\",\n      \"dst_v_table\"");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 20, "patientID");  // drop the prefix -> mismatch
  Result<OverlayConfig> config = OverlayConfig::Parse(bad);
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(Topology::Build(db_, *config).ok());
}

TEST_F(TopologyTest, ResolvesOverlayOnViews) {
  // The "surprising benefit": a join view mapped as an edge table.
  ASSERT_TRUE(db_.Execute(
                     "CREATE VIEW PatientOntologyRoot AS "
                     "SELECT h.patientID AS pid, o.targetID AS root FROM "
                     "HasDisease h JOIN DiseaseOntology o "
                     "ON h.diseaseID = o.sourceID")
                  .ok());
  OverlayConfig config = *OverlayConfig::Parse(kPaperConfig);
  EdgeTableConf derived;
  derived.table_name = "PatientOntologyRoot";
  derived.src_v_table = "Patient";
  derived.src_v = *FieldDef::Parse("'patient'::pid");
  derived.dst_v_table = "Disease";
  derived.dst_v = *FieldDef::Parse("root");
  derived.implicit_edge_id = true;
  derived.label.fixed = true;
  derived.label.value = "derivedLink";
  config.e_tables.push_back(derived);
  Result<Topology> topo = Topology::Build(db_, config);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  EXPECT_EQ(topo->edge_tables().size(), 3u);
}

TEST_F(TopologyTest, FieldComposeAndDecomposeRoundTrip) {
  Result<OverlayConfig> config = OverlayConfig::Parse(kPaperConfig);
  ASSERT_TRUE(config.ok());
  Result<Topology> topo = Topology::Build(db_, *config);
  ASSERT_TRUE(topo.ok());
  const ResolvedVertexTable& patient = topo->vertex_tables()[0];
  Row row = {Value(int64_t{7}), Value("Ann"), Value("addr"),
             Value(int64_t{77})};
  Value id = patient.id.Compose(row);
  EXPECT_EQ(id, Value("patient::7"));
  auto decomposed = patient.id.Decompose(id);
  ASSERT_TRUE(decomposed.has_value());
  ASSERT_EQ(decomposed->size(), 1u);
  EXPECT_EQ((*decomposed)[0], Value(int64_t{7}));
  // A disease id (plain int) does not decompose against the prefixed def.
  EXPECT_FALSE(patient.id.Decompose(Value(int64_t{7})).has_value());
  // The single-column Disease id composes to the raw value.
  const ResolvedVertexTable& disease = topo->vertex_tables()[1];
  Row drow = {Value(int64_t{10}), Value("D10"), Value("diabetes")};
  EXPECT_EQ(disease.id.Compose(drow), Value(int64_t{10}));
}

// ----------------------------------------------------------- AutoOverlay

class AutoOverlayTest : public ::testing::Test {
 protected:
  void SetUp() override { CreateHealthcareTables(&db_); }
  sql::Database db_;
};

TEST_F(AutoOverlayTest, ClassifiesVertexAndEdgeTables) {
  Result<OverlayConfig> config = AutoOverlay(db_);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  // Algorithm 1: Patient and Disease have PKs -> vertex tables.
  ASSERT_EQ(config->v_tables.size(), 2u);
  // DiseaseOntology and HasDisease: no PK, 2 FKs -> 1 edge table each.
  ASSERT_EQ(config->e_tables.size(), 2u);
}

TEST_F(AutoOverlayTest, VertexConfFollowsAlgorithmTwo) {
  Result<OverlayConfig> config = AutoOverlay(db_);
  ASSERT_TRUE(config.ok());
  const VertexTableConf* patient = nullptr;
  for (const auto& v : config->v_tables) {
    if (v.table_name == "Patient") patient = &v;
  }
  ASSERT_NE(patient, nullptr);
  EXPECT_TRUE(patient->prefixed_id);
  EXPECT_EQ(patient->id.ToString(), "'Patient'::patientID");
  EXPECT_TRUE(patient->label.fixed);
  EXPECT_EQ(patient->label.value, "Patient");
  // Properties: all columns minus the primary key.
  EXPECT_EQ(patient->properties,
            (std::vector<std::string>{"name", "address", "subscriptionID"}));
}

TEST_F(AutoOverlayTest, ManyToManyTableBecomesEdgePerFkPair) {
  Result<OverlayConfig> config = AutoOverlay(db_);
  ASSERT_TRUE(config.ok());
  const EdgeTableConf* has_disease = nullptr;
  for (const auto& e : config->e_tables) {
    if (e.table_name == "HasDisease") has_disease = &e;
  }
  ASSERT_NE(has_disease, nullptr);
  EXPECT_TRUE(has_disease->implicit_edge_id);
  EXPECT_EQ(has_disease->src_v_table, "Patient");
  EXPECT_EQ(has_disease->dst_v_table, "Disease");
  EXPECT_EQ(has_disease->src_v.ToString(), "'Patient'::patientID");
  EXPECT_EQ(has_disease->dst_v.ToString(), "'Disease'::diseaseID");
  EXPECT_TRUE(has_disease->label.fixed);
  EXPECT_EQ(has_disease->properties,
            std::vector<std::string>{"description"});
}

TEST_F(AutoOverlayTest, PkPlusFkTableIsBothVertexAndEdge) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE Visit (
      visitID BIGINT PRIMARY KEY,
      patientID BIGINT,
      note VARCHAR(50),
      FOREIGN KEY (patientID) REFERENCES Patient (patientID)
    );
  )sql")
                  .ok());
  Result<OverlayConfig> config = AutoOverlay(db_);
  ASSERT_TRUE(config.ok());
  bool visit_vertex = false;
  const EdgeTableConf* visit_edge = nullptr;
  for (const auto& v : config->v_tables) {
    if (v.table_name == "Visit") visit_vertex = true;
  }
  for (const auto& e : config->e_tables) {
    if (e.table_name == "Visit") visit_edge = &e;
  }
  EXPECT_TRUE(visit_vertex);
  ASSERT_NE(visit_edge, nullptr);
  EXPECT_EQ(visit_edge->src_v_table, "Visit");
  EXPECT_EQ(visit_edge->dst_v_table, "Patient");
  EXPECT_EQ(visit_edge->label.value, "Visit_Patient");
}

TEST_F(AutoOverlayTest, ThreeForeignKeysYieldThreeEdgePairs) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE Fact (
      patientID BIGINT,
      diseaseID BIGINT,
      subscriptionID BIGINT,
      FOREIGN KEY (patientID) REFERENCES Patient (patientID),
      FOREIGN KEY (diseaseID) REFERENCES Disease (diseaseID),
      FOREIGN KEY (subscriptionID) REFERENCES Patient (patientID)
    );
  )sql")
                  .ok());
  Result<OverlayConfig> config = AutoOverlay(db_, {"Patient", "Disease",
                                                   "Fact"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  int fact_edges = 0;
  for (const auto& e : config->e_tables) {
    if (e.table_name == "Fact") ++fact_edges;
  }
  EXPECT_EQ(fact_edges, 3);  // C(3,2)
}

TEST_F(AutoOverlayTest, GeneratedOverlayResolvesAgainstTheCatalog) {
  Result<OverlayConfig> config = AutoOverlay(db_);
  ASSERT_TRUE(config.ok());
  Result<Topology> topo = Topology::Build(db_, *config);
  EXPECT_TRUE(topo.ok()) << topo.status().ToString();
}

TEST_F(AutoOverlayTest, FailsWhenFkTargetNotSelected) {
  Result<OverlayConfig> config = AutoOverlay(db_, {"Patient", "HasDisease"});
  EXPECT_FALSE(config.ok());  // HasDisease references Disease
}

TEST_F(AutoOverlayTest, FailsWithoutAnyPrimaryKey) {
  sql::Database empty;
  ASSERT_TRUE(
      empty.Execute("CREATE TABLE NoKeys (a BIGINT, b BIGINT)").ok());
  EXPECT_FALSE(AutoOverlay(empty).ok());
}

}  // namespace
}  // namespace db2graph::overlay
