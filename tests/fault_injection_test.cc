// Copyright (c) 2026 The db2graph-repro Authors.
//
// Fault-injection harness coverage (compiled only under
// -DDB2GRAPH_FAULT_INJECTION=ON): named failpoints in the SQL executor,
// the graph provider, and the Gremlin service force errors, simulated
// allocation failures, and slow blocks at exact points, proving the
// engine unwinds cleanly — the failing query reports the injected
// status, and the very next query over the same objects succeeds.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/db2graph.h"
#include "core/gremlin_service.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::core {
namespace {

using fault::FailPointRegistry;
using gremlin::Traverser;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Global().DisableAll();
    linkbench::Config config;
    config.num_vertices = 2000;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  void TearDown() override { FailPointRegistry::Global().DisableAll(); }

  // The clean-unwind assertion every test ends with: with all failpoints
  // off, the same engine serves queries normally.
  void ExpectHealthy() {
    FailPointRegistry::Global().DisableAll();
    Result<std::vector<Traverser>> out = graph_->Execute("g.V().count()");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    Result<sql::ResultSet> rs = db_.Execute("SELECT COUNT(*) FROM Node_t0");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(FaultInjectionTest, SqlExecutorBlockErrorUnwinds) {
  FailPointRegistry::Global().Enable(
      "sql.executor.block",
      fault::ErrorFault(StatusCode::kInternal, "injected mid-scan failure"));
  Result<sql::ResultSet> rs = db_.Execute("SELECT COUNT(*) FROM Node_t0");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().message().find("injected mid-scan failure"),
            std::string::npos);
  EXPECT_GE(FailPointRegistry::Global().HitCount("sql.executor.block"), 1u);
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, SqlExecutorAllocationFailureUnwinds) {
  FailPointRegistry::Global().Enable(
      "sql.executor.alloc", fault::AllocFailure("sort buffer allocation"));
  Result<sql::ResultSet> rs =
      db_.Execute("SELECT * FROM Node_t0 ORDER BY data");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, ProviderFetchErrorFailsGremlinQuery) {
  FailPointRegistry::Global().Enable(
      "provider.fetch_vertex_table",
      fault::ErrorFault(StatusCode::kUnavailable, "table connection lost"));
  // Point lookups fetch materialized per-table; the injected error must
  // surface as the query's status, not crash the fan-out.
  Result<std::vector<Traverser>> out = graph_->Execute("g.V(5)");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable)
      << out.status().ToString();
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, ProviderStreamOpenErrorFailsScan) {
  FailPointRegistry::Global().Enable(
      "provider.open_vertex_stream",
      fault::ErrorFault(StatusCode::kInternal, "cursor open failed"));
  // A plain scan opens per-table streams (count() would push the
  // aggregate into SQL and bypass them).
  Result<std::vector<Traverser>> out = graph_->Execute("g.V()");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("cursor open failed"),
            std::string::npos);
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, FirstHitsOnlyThenRecovers) {
  fault::FailPointConfig config =
      fault::ErrorFault(StatusCode::kInternal, "transient");
  config.hits_remaining = 1;  // fail exactly once
  FailPointRegistry::Global().Enable("provider.open_vertex_stream", config);
  Result<std::vector<Traverser>> first = graph_->Execute("g.V()");
  ASSERT_FALSE(first.ok());
  // The failpoint is spent: the retry succeeds with it still enabled.
  Result<std::vector<Traverser>> second = graph_->Execute("g.V()");
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, SlowProducerBlockTripsDeadline) {
  // Slow-block injection: each producer block stalls 20 ms, so a 60 ms
  // deadline expires mid-stream and the governor cancels the fan-out.
  FailPointRegistry::Global().Enable("provider.producer_block",
                                     fault::SleepFault(20));
  ExecOptions options;
  options.timeout_ms = 60;
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<Traverser>> out = graph_->Execute("g.V()", options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTimeout)
      << out.status().ToString();
  // Unwind is prompt: one in-flight sleep per producer at most, nowhere
  // near the ~10s a full injected-slow scan would take.
  EXPECT_LT(elapsed.count(), 2000);
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, ServiceExecuteFaultFailsRequestOnly) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(2));
  FailPointRegistry::Global().Enable(
      "service.before_execute",
      fault::ErrorFault(StatusCode::kInternal, "injected dispatch fault"));
  GremlinService::Response r = service.Submit("g.V().count()").get();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("injected dispatch fault"),
            std::string::npos);
  // The worker survives its injected failure and serves the next request.
  FailPointRegistry::Global().DisableAll();
  GremlinService::Response next = service.Submit("g.V().count()").get();
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  service.Shutdown();
  ExpectHealthy();
}

TEST_F(FaultInjectionTest, SkipCountDelaysInjection) {
  fault::FailPointConfig config =
      fault::ErrorFault(StatusCode::kInternal, "late failure");
  config.skip = 1000000;  // beyond any hit count this query produces
  FailPointRegistry::Global().Enable("sql.executor.block", config);
  Result<sql::ResultSet> rs = db_.Execute("SELECT COUNT(*) FROM Node_t0");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  ExpectHealthy();
}

}  // namespace
}  // namespace db2graph::core
