// Access control (paper Section 1: "Db2 Graph directly inherits Db2's
// mature access control mechanisms"): SQL-level grants govern graph
// queries automatically, because the graph layer is just SQL underneath.

#include <gtest/gtest.h>

#include "core/db2graph.h"

namespace db2graph {
namespace {

using core::Db2Graph;

class AccessControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Person (id BIGINT PRIMARY KEY, name VARCHAR(20));
      CREATE TABLE Salary (id BIGINT PRIMARY KEY, amount BIGINT);
      CREATE TABLE Knows (src BIGINT, dst BIGINT);
      INSERT INTO Person VALUES (1, 'a'), (2, 'b');
      INSERT INTO Salary VALUES (1, 100), (2, 200);
      INSERT INTO Knows VALUES (1, 2);
    )sql")
                    .ok());
    db_.EnableAccessControl();
  }

  sql::Database db_;
};

TEST_F(AccessControlTest, SuperuserIsUnrestricted) {
  EXPECT_TRUE(db_.Execute("SELECT * FROM Salary").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO Person VALUES (3, 'c')").ok());
}

TEST_F(AccessControlTest, UngrantedUserIsDenied) {
  db_.SetCurrentUser("intern");
  auto rs = db_.Execute("SELECT * FROM Salary");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(AccessControlTest, SelectGrantAllowsReadsNotWrites) {
  ASSERT_TRUE(db_.Execute("GRANT SELECT ON Person TO intern").ok());
  db_.SetCurrentUser("intern");
  EXPECT_TRUE(db_.Execute("SELECT * FROM Person").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO Person VALUES (9, 'x')").ok());
  EXPECT_FALSE(db_.Execute("DELETE FROM Person WHERE id = 1").ok());
}

TEST_F(AccessControlTest, AllGrantAllowsWrites) {
  ASSERT_TRUE(db_.Execute("GRANT ALL ON Person TO editor").ok());
  db_.SetCurrentUser("editor");
  EXPECT_TRUE(db_.Execute("UPDATE Person SET name = 'z' WHERE id = 1").ok());
}

TEST_F(AccessControlTest, RevokeRemovesAccess) {
  ASSERT_TRUE(db_.Execute("GRANT SELECT ON Person TO intern").ok());
  ASSERT_TRUE(db_.Execute("REVOKE SELECT ON Person FROM intern").ok());
  db_.SetCurrentUser("intern");
  EXPECT_FALSE(db_.Execute("SELECT * FROM Person").ok());
}

TEST_F(AccessControlTest, OnlySuperuserAdministersGrants) {
  db_.SetCurrentUser("intern");
  EXPECT_FALSE(db_.Execute("GRANT SELECT ON Person TO intern").ok());
}

TEST_F(AccessControlTest, ViewsRunWithDefinersRights) {
  // A view over Salary granted to the analyst exposes only what the view
  // projects, without granting the base table — the classic pattern.
  db_.SetCurrentUser("");
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW SalaryBands AS SELECT id, amount / 100 AS "
                  "band FROM Salary")
          .ok());
  ASSERT_TRUE(db_.Execute("GRANT SELECT ON SalaryBands TO analyst").ok());
  db_.SetCurrentUser("analyst");
  EXPECT_TRUE(db_.Execute("SELECT * FROM SalaryBands").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM Salary").ok());
}

TEST_F(AccessControlTest, GraphQueriesInheritTableGrants) {
  const char* overlay = R"json({
    "v_tables": [{"table_name": "Person", "id": "id", "fix_label": true,
                  "label": "'person'", "properties": ["name"]}],
    "e_tables": [{"table_name": "Knows", "src_v_table": "Person",
                  "src_v": "src", "dst_v_table": "Person", "dst_v": "dst",
                  "implicit_edge_id": true, "fix_label": true,
                  "label": "'knows'"}]
  })json";
  auto graph = Db2Graph::Open(&db_, overlay);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  // Without grants the graph query is denied — the denial comes from the
  // SQL layer, not from any graph-specific mechanism.
  db_.SetCurrentUser("intern");
  auto out = (*graph)->Execute("g.V().count()");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kConstraintViolation);

  // Granting the underlying tables unlocks the graph.
  db_.SetCurrentUser("");
  ASSERT_TRUE(db_.Execute("GRANT SELECT ON Person TO intern").ok());
  ASSERT_TRUE(db_.Execute("GRANT SELECT ON Knows TO intern").ok());
  db_.SetCurrentUser("intern");
  out = (*graph)->Execute("g.V(1).out('knows').values('name')");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value("b"));

  // Partial grants deny exactly the protected part.
  db_.SetCurrentUser("");
  ASSERT_TRUE(db_.Execute("REVOKE SELECT ON Knows FROM intern").ok());
  db_.SetCurrentUser("intern");
  EXPECT_TRUE((*graph)->Execute("g.V().count()").ok());
  EXPECT_FALSE((*graph)->Execute("g.E().count()").ok());
}

TEST_F(AccessControlTest, DisabledByDefault) {
  sql::Database open_db;
  ASSERT_TRUE(open_db.Execute("CREATE TABLE T (a BIGINT)").ok());
  open_db.SetCurrentUser("anyone");
  EXPECT_TRUE(open_db.Execute("SELECT * FROM T").ok());
}

}  // namespace
}  // namespace db2graph
