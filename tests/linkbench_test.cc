// Tests for the LinkBench generator/workload, the Table 3 export/load
// pipeline, and cross-system result equivalence on LinkBench data.

#include <gtest/gtest.h>

#include "baselines/janus_like.h"
#include "baselines/loader.h"
#include "baselines/native_graph.h"
#include "core/db2graph.h"
#include "linkbench/linkbench.h"

namespace db2graph::linkbench {
namespace {

using baselines::ExportedGraph;
using baselines::ExportLinkBenchTables;
using baselines::JanusLikeDb;
using baselines::LoadExport;
using baselines::NativeGraphDb;
using core::Db2Graph;
using gremlin::Traverser;

Config TinyConfig() {
  Config config;
  config.num_vertices = 2000;
  return config;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Dataset a = Generate(TinyConfig());
  Dataset b = Generate(TinyConfig());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.links.size(), b.links.size());
  EXPECT_EQ(a.nodes[7].data, b.nodes[7].data);
  EXPECT_EQ(a.links[13].id2, b.links[13].id2);
  Config other = TinyConfig();
  other.seed = 7;
  Dataset c = Generate(other);
  EXPECT_NE(a.nodes[7].data, c.nodes[7].data);
}

TEST(GeneratorTest, StatsMatchTableTwoShape) {
  Dataset d = Generate(TinyConfig());
  DatasetStats stats = d.Stats();
  EXPECT_EQ(stats.num_vertices, 2000);
  // Average degree ~4.3, as in Table 2.
  EXPECT_NEAR(stats.avg_degree, 4.3, 0.5);
  // Heavily skewed: the max degree is orders of magnitude above average.
  EXPECT_GT(stats.max_degree, stats.num_edges / 100);
  EXPECT_GT(stats.approx_csv_bytes, 0u);
}

TEST(GeneratorTest, TypesSpanTheConfiguredRanges) {
  Dataset d = Generate(TinyConfig());
  std::set<int> vtypes;
  std::set<int> etypes;
  for (const Node& n : d.nodes) vtypes.insert(n.type);
  for (const Link& l : d.links) etypes.insert(l.ltype);
  EXPECT_EQ(vtypes.size(), 10u);
  EXPECT_EQ(etypes.size(), 10u);
}

TEST(GeneratorTest, NoDuplicateLinksOrSelfLoops) {
  Dataset d = Generate(TinyConfig());
  std::set<std::tuple<int64_t, int, int64_t>> seen;
  for (const Link& l : d.links) {
    EXPECT_NE(l.id1, l.id2);
    EXPECT_TRUE(seen.insert({l.id1, l.ltype, l.id2}).second);
  }
}

class LinkBenchSystemsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = Generate(TinyConfig());
    ASSERT_TRUE(LoadIntoDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph =
        Db2Graph::Open(&db_, MakeOverlay());
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);

    Result<ExportedGraph> exported = ExportLinkBenchTables(&db_);
    ASSERT_TRUE(exported.ok()) << exported.status().ToString();
    ASSERT_TRUE(LoadExport(*exported, &native_).ok());
    ASSERT_TRUE(native_.Open().ok());
    ASSERT_TRUE(LoadExport(*exported, &janus_).ok());
    ASSERT_TRUE(janus_.Open().ok());
  }

  static std::vector<std::string> Normalize(
      const std::vector<Traverser>& ts) {
    std::vector<std::string> out;
    for (const Traverser& t : ts) {
      if (t.kind == Traverser::Kind::kEdge) {
        // Edge ids differ across stores; compare structural identity.
        out.push_back(t.edge->src_id.ToString() + "|" + t.edge->label + "|" +
                      t.edge->dst_id.ToString());
      } else {
        out.push_back(t.ToString());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
  NativeGraphDb native_;
  JanusLikeDb janus_;
};

TEST_F(LinkBenchSystemsTest, LoadedCountsAgree) {
  Result<std::vector<Traverser>> v = graph_->Execute("g.V().count()");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)[0].value,
            Value(static_cast<int64_t>(dataset_.nodes.size())));
  Result<std::vector<Traverser>> e = graph_->Execute("g.E().count()");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)[0].value,
            Value(static_cast<int64_t>(dataset_.links.size())));
  EXPECT_EQ(native_.VertexCount(), dataset_.nodes.size());
  EXPECT_EQ(native_.EdgeCount(), dataset_.links.size());
}

TEST_F(LinkBenchSystemsTest, ExportMatchesDatasetSizes) {
  Result<ExportedGraph> exported = ExportLinkBenchTables(&db_);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->vertices.size(), dataset_.nodes.size());
  EXPECT_EQ(exported->edges.size(), dataset_.links.size());
  EXPECT_GT(exported->csv_bytes, 0u);
}

// The headline correctness property: all three systems return identical
// results for every LinkBench query type, over many random instances.
TEST_F(LinkBenchSystemsTest, AllThreeSystemsAgreeOnLinkBenchQueries) {
  Workload workload(dataset_, 7);
  gremlin::Interpreter native_interp(&native_);
  gremlin::Interpreter janus_interp(&janus_);
  for (QueryType type :
       {QueryType::kGetNode, QueryType::kCountLinks, QueryType::kGetLink,
        QueryType::kGetLinkList}) {
    for (int i = 0; i < 25; ++i) {
      std::string q = workload.Next(type);
      Result<std::vector<Traverser>> a = graph_->Execute(q);
      ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
      Result<gremlin::Script> script = gremlin::ParseGremlin(q);
      ASSERT_TRUE(script.ok());
      Result<std::vector<Traverser>> b = native_interp.RunScript(*script);
      ASSERT_TRUE(b.ok()) << q << ": " << b.status().ToString();
      Result<std::vector<Traverser>> c = janus_interp.RunScript(*script);
      ASSERT_TRUE(c.ok()) << q << ": " << c.status().ToString();
      EXPECT_EQ(Normalize(*a), Normalize(*b)) << q;
      EXPECT_EQ(Normalize(*a), Normalize(*c)) << q;
    }
  }
}

TEST_F(LinkBenchSystemsTest, WorkloadQueriesMostlyHit) {
  // Parameters are drawn from existing links, so getLink finds its edge.
  Workload workload(dataset_, 99);
  int hits = 0;
  for (int i = 0; i < 20; ++i) {
    std::string q = workload.Next(QueryType::kGetLink);
    Result<std::vector<Traverser>> out = graph_->Execute(q);
    ASSERT_TRUE(out.ok());
    if (!out->empty()) ++hits;
  }
  EXPECT_EQ(hits, 20);
}

TEST_F(LinkBenchSystemsTest, CountLinksUsesAggregatePushdown) {
  db_.stats().Reset();
  Workload workload(dataset_, 3);
  std::string q = workload.Next(QueryType::kCountLinks);
  Result<std::vector<Traverser>> out = graph_->Execute(q);
  ASSERT_TRUE(out.ok());
  // One SQL SELECT (COUNT pushed down), zero rows materialized client-side.
  EXPECT_EQ(db_.stats().Snapshot().selects, 1u);
  EXPECT_EQ(db_.stats().Snapshot().rows_returned, 1u);
}

TEST_F(LinkBenchSystemsTest, Db2GraphDiskIsSmallerThanBaselines) {
  // Table 3 shape: the graph stores' proprietary formats blow up several
  // times over the relational representation Db2 Graph queries in place.
  size_t relational = db_.ApproxDiskBytes();
  EXPECT_GT(native_.DiskBytes(), 2 * relational);
  EXPECT_GT(janus_.DiskBytes(), 2 * relational);
}

}  // namespace
}  // namespace db2graph::linkbench
