// Copyright (c) 2026 The db2graph-repro Authors.
//
// The compile-once/execute-many surface: Prepare()/PreparedQuery with bind
// variables, the transparent plan cache behind the text Execute() path
// (zero ParseGremlin calls on a hit, counter-verified), DDL staleness
// invalidation, binding validation statuses, plan provenance in
// Explain()/profile(), the deprecated wrapper shims, and a concurrent
// Prepare/Execute/DDL stress (TSan target).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/db2graph.h"
#include "core/plan_cache.h"
#include "gremlin/parser.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

uint64_t ParseCalls() {
  return metrics::MetricsRegistry::Global()
      .GetCounter(gremlin::kParseCallsCounter)
      ->load();
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE N (id BIGINT PRIMARY KEY, score BIGINT);
      CREATE TABLE E2 (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
      CREATE INDEX idx_src ON E2 (src);
      INSERT INTO N VALUES (1, 10), (2, 20), (3, 30);
      INSERT INTO E2 VALUES (100, 1, 2), (101, 2, 3), (102, 1, 3);
    )sql")
                    .ok());
    auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "N", "id": "id", "fix_label": true,
                    "label": "'n'", "properties": ["score"]}],
      "e_tables": [{"table_name": "E2", "src_v_table": "N", "src_v": "src",
                    "dst_v_table": "N", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'e'"}]
    })json");
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  // Bumps the catalog ddl_version without touching the overlay's tables.
  void BumpDdl() {
    static std::atomic<int> n{0};
    std::string name = "DdlBump" + std::to_string(n.fetch_add(1));
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE " + name + " (id BIGINT PRIMARY KEY)")
            .ok());
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

// ----------------------------------------------------------------------
// Prepared execution with bindings
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, PreparedQueryExecutesWithDifferentBindings) {
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(vid).out('e').id()");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->unbound_variables(),
            std::vector<std::string>{"vid"});

  auto r1 = prepared->Execute({{"vid", {Value(int64_t{1})}}});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->size(), 2u);  // 1 -> 2, 1 -> 3

  auto r2 = prepared->Execute({{"vid", {Value(int64_t{2})}}});
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), 1u);  // 2 -> 3
  EXPECT_EQ((*r2)[0].value, Value(int64_t{3}));

  // A bind slot may supply several ids at once.
  auto r3 = prepared->Execute(
      {{"vid", {Value(int64_t{1}), Value(int64_t{2})}}});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 3u);
}

TEST_F(PlanCacheTest, PredicateBindingsFilterPerExecution) {
  Result<PreparedQuery> prepared =
      graph_->Prepare("g.V().has('score', gt(threshold)).id()");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto over15 = prepared->Execute({{"threshold", {Value(int64_t{15})}}});
  ASSERT_TRUE(over15.ok()) << over15.status().ToString();
  EXPECT_EQ(over15->size(), 2u);  // scores 20, 30

  auto over25 = prepared->Execute({{"threshold", {Value(int64_t{25})}}});
  ASSERT_TRUE(over25.ok());
  ASSERT_EQ(over25->size(), 1u);
  EXPECT_EQ((*over25)[0].value, Value(int64_t{3}));
}

TEST_F(PlanCacheTest, PreparedExecutionNeverReparsesTheScript) {
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(vid).out('e').id()");
  ASSERT_TRUE(prepared.ok());
  uint64_t parses_before = ParseCalls();
  for (int i = 1; i <= 3; ++i) {
    auto out = prepared->Execute({{"vid", {Value(int64_t{i})}}});
    ASSERT_TRUE(out.ok());
  }
  EXPECT_EQ(ParseCalls(), parses_before)
      << "prepared executions must not call ParseGremlin";
}

// ----------------------------------------------------------------------
// Transparent text-path caching
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, RepeatedTextExecutionHitsCacheWithZeroParses) {
  const std::string script = "g.V(1).out('e').id()";
  auto first = graph_->Execute(script);
  ASSERT_TRUE(first.ok());
  PlanCache::Counts after_first = graph_->plan_cache()->Snapshot();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  uint64_t parses_before = ParseCalls();
  auto second = graph_->Execute(script);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), first->size());
  EXPECT_EQ(ParseCalls(), parses_before)
      << "a cached plan must execute with zero ParseGremlin calls";
  PlanCache::Counts after_second = graph_->plan_cache()->Snapshot();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
}

TEST_F(PlanCacheTest, CacheCountersLandInMetricsRegistry) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  uint64_t hits_before =
      registry.GetCounter(PlanCache::kHitsCounter)->load();
  uint64_t misses_before =
      registry.GetCounter(PlanCache::kMissesCounter)->load();
  ASSERT_TRUE(graph_->Execute("g.V(2).id()").ok());
  ASSERT_TRUE(graph_->Execute("g.V(2).id()").ok());
  EXPECT_EQ(registry.GetCounter(PlanCache::kMissesCounter)->load(),
            misses_before + 1);
  EXPECT_EQ(registry.GetCounter(PlanCache::kHitsCounter)->load(),
            hits_before + 1);
}

TEST_F(PlanCacheTest, OptingOutOfTheCacheReparsesEveryTime) {
  ExecOptions no_cache;
  no_cache.use_plan_cache = false;
  ASSERT_TRUE(graph_->Execute("g.V(1).id()", no_cache).ok());
  uint64_t parses_before = ParseCalls();
  ASSERT_TRUE(graph_->Execute("g.V(1).id()", no_cache).ok());
  EXPECT_EQ(ParseCalls(), parses_before + 1);
  EXPECT_EQ(graph_->plan_cache()->size(), 0u);
}

// ----------------------------------------------------------------------
// DDL staleness
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, DdlInvalidatesCachedPlans) {
  const std::string script = "g.V(1).out('e').id()";
  ASSERT_TRUE(graph_->Execute(script).ok());
  BumpDdl();
  uint64_t parses_before = ParseCalls();
  auto after = graph_->Execute(script);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);
  EXPECT_EQ(ParseCalls(), parses_before + 1)
      << "a plan compiled before DDL must not be served afterwards";
  PlanCache::Counts counts = graph_->plan_cache()->Snapshot();
  EXPECT_EQ(counts.invalidations, 1u);
  EXPECT_EQ(counts.hits, 0u);
}

TEST_F(PlanCacheTest, StalePreparedQueryRecompilesTransparently) {
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(vid).out('e').id()");
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->IsStale());
  BumpDdl();
  EXPECT_TRUE(prepared->IsStale());
  // Execution still works: the handle recompiles through the cache.
  auto out = prepared->Execute({{"vid", {Value(int64_t{1})}}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
}

// ----------------------------------------------------------------------
// Binding validation
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, MissingBindingIsNotFound) {
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(vid).id()");
  ASSERT_TRUE(prepared.ok());
  auto out = prepared->Execute();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  EXPECT_NE(out.status().ToString().find("vid"), std::string::npos);
}

TEST_F(PlanCacheTest, IdBindingTypeMismatchIsInvalidArgument) {
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(vid).id()");
  ASSERT_TRUE(prepared.ok());
  auto out = prepared->Execute({{"vid", {Value(1.5)}}});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().ToString().find("DOUBLE"), std::string::npos);
}

TEST_F(PlanCacheTest, ScalarPredicateBindingRejectsValueLists) {
  Result<PreparedQuery> prepared =
      graph_->Prepare("g.V().has('score', gt(threshold))");
  ASSERT_TRUE(prepared.ok());
  auto out = prepared->Execute(
      {{"threshold", {Value(int64_t{1}), Value(int64_t{2})}}});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------------
// Plan provenance in Explain / profile()
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, ExplainReportsWhetherThePlanWasCached) {
  auto cold = graph_->Explain("g.V(1).out('e')");
  ASSERT_TRUE(cold.ok());
  EXPECT_NE(cold->text.find("plan: compiled"), std::string::npos)
      << cold->text;
  auto warm = graph_->Explain("g.V(1).out('e')");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->text.find("plan: cached"), std::string::npos)
      << warm->text;
  // The machine-readable rendering carries the same field, and the cached
  // plan still explains the rewrites recorded at compile time.
  const Json* plan = warm->json.Find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->as_string(), "cached");
  const Json* strategies = warm->json.Find("strategies");
  ASSERT_NE(strategies, nullptr);
  EXPECT_FALSE(strategies->items().empty());
}

TEST_F(PlanCacheTest, ProfileReportsWhetherThePlanWasCached) {
  auto cold = graph_->Execute("g.V(1).out('e').profile()");
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->size(), 1u);
  EXPECT_NE((*cold)[0].value.ToString().find("\"plan\": \"compiled\""),
            std::string::npos);
  auto warm = graph_->Execute("g.V(1).out('e').profile()");
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->size(), 1u);
  EXPECT_NE((*warm)[0].value.ToString().find("\"plan\": \"cached\""),
            std::string::npos);
}

// ----------------------------------------------------------------------
// AutoGraph routes through the unified path
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, AutoGraphProfileProducesATrace) {
  Result<AutoGraph> auto_graph = AutoGraph::Open(&db_);
  ASSERT_TRUE(auto_graph.ok()) << auto_graph.status().ToString();
  auto out = auto_graph->Execute("g.V(1).profile()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  std::string trace_json = (*out)[0].value.ToString();
  EXPECT_NE(trace_json.find("\"steps\""), std::string::npos)
      << "profile() through AutoGraph must produce a trace";
  EXPECT_NE(trace_json.find("\"plan\""), std::string::npos);
}

TEST_F(PlanCacheTest, AutoGraphAcceptsBindings) {
  Result<AutoGraph> auto_graph = AutoGraph::Open(&db_);
  ASSERT_TRUE(auto_graph.ok());
  // AutoOverlay derives prefixed ids: '<Table>::<pk>'.
  ExecOptions options;
  options.bindings = {{"vid", {Value("N::1")}}};
  auto out = auto_graph->Execute("g.V(vid).count()", options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, Value(int64_t{1}));
}

// ----------------------------------------------------------------------
// ExecOptions covers everything the removed wrappers did
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, ExecOptionsCoverTheRemovedWrapperPaths) {
  // Session environment (the old Run(script, env)).
  gremlin::Environment env;
  ExecOptions session_options;
  session_options.session_env = &env;
  auto assigned =
      graph_->Execute("ids = g.V(1).out('e').id()", session_options);
  ASSERT_TRUE(assigned.ok());
  ASSERT_EQ(env.count("ids"), 1u);
  EXPECT_EQ(env["ids"].size(), 2u);

  // Caller-supplied trace (the old ExecuteTraced).
  QueryTrace trace;
  ExecOptions traced_options;
  traced_options.trace = &trace;
  auto traced = graph_->Execute("g.V(1)", traced_options);
  ASSERT_TRUE(traced.ok());
  EXPECT_FALSE(trace.Spans().empty());
  EXPECT_FALSE(trace.plan_source().empty());

  // Compile-once execution (the old Compile + ExecuteScript).
  Result<PreparedQuery> prepared = graph_->Prepare("g.V(1).id()");
  ASSERT_TRUE(prepared.ok());
  auto direct = prepared->Execute();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->size(), 1u);
}

// ----------------------------------------------------------------------
// Concurrency (TSan target)
// ----------------------------------------------------------------------

TEST_F(PlanCacheTest, ConcurrentPrepareExecuteAndDdlStress) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  // Query threads mix text executions (shared cache entries), prepared
  // executions, and per-thread scripts.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      Result<PreparedQuery> prepared =
          graph_->Prepare("g.V(vid).out('e').count()");
      if (!prepared.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        int64_t vid = 1 + (t + i) % 3;
        auto via_text = graph_->Execute("g.V(" + std::to_string(vid) +
                                        ").id()");
        if (!via_text.ok()) failures.fetch_add(1);
        auto via_prepared = prepared->Execute({{"vid", {Value(vid)}}});
        if (!via_prepared.ok()) failures.fetch_add(1);
        auto shared = graph_->Execute("g.V().count()");
        if (!shared.ok() || (*shared)[0].value != Value(int64_t{3})) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // DDL thread: keeps invalidating every cached plan.
  threads.emplace_back([this] {
    for (int i = 0; i < kIterations / 2; ++i) {
      std::string name = "Stress" + std::to_string(i);
      (void)db_.Execute("CREATE TABLE " + name +
                        " (id BIGINT PRIMARY KEY)");
      (void)db_.Execute("DROP TABLE " + name);
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----------------------------------------------------------------------
// PlanCache unit behavior
// ----------------------------------------------------------------------

TEST(PlanCacheUnitTest, EvictsLeastRecentlyUsedWithinShard) {
  PlanCache cache(/*capacity=*/2, /*shards=*/1);
  auto plan = [](const std::string& text) {
    auto p = std::make_shared<CompiledPlan>();
    p->script_text = text;
    return p;
  };
  cache.Insert("a", plan("a"));
  cache.Insert("b", plan("b"));
  ASSERT_NE(cache.Lookup("a", 0), nullptr);  // a is now most recent
  cache.Insert("c", plan("c"));              // evicts b
  EXPECT_NE(cache.Lookup("a", 0), nullptr);
  EXPECT_EQ(cache.Lookup("b", 0), nullptr);
  EXPECT_NE(cache.Lookup("c", 0), nullptr);
  EXPECT_EQ(cache.Snapshot().evictions, 1u);
}

TEST(PlanCacheUnitTest, StaleEntryIsInvalidatedOnLookup) {
  PlanCache cache(8, 1);
  auto p = std::make_shared<CompiledPlan>();
  p->ddl_version = 1;
  cache.Insert("k", p);
  EXPECT_NE(cache.Lookup("k", 1), nullptr);
  EXPECT_EQ(cache.Lookup("k", 2), nullptr);  // stale: erased + counted
  EXPECT_EQ(cache.size(), 0u);
  PlanCache::Counts counts = cache.Snapshot();
  EXPECT_EQ(counts.invalidations, 1u);
  EXPECT_EQ(counts.hits, 1u);
  EXPECT_EQ(counts.misses, 1u);
}

TEST(PlanCacheUnitTest, CollectBindSlotsSkipsAssignedVariables) {
  Result<gremlin::Script> script = gremlin::ParseGremlin(
      "xs = g.V(seed).out('e').id(); g.V(xs).has('score', gt(cut))");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  std::vector<CompiledPlan::BindSlot> slots = CollectBindSlots(*script);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].name, "seed");
  EXPECT_EQ(slots[0].use, CompiledPlan::BindSlot::Use::kId);
  EXPECT_EQ(slots[1].name, "cut");
  EXPECT_EQ(slots[1].use, CompiledPlan::BindSlot::Use::kPredicate);
  EXPECT_EQ(slots[1].op, gremlin::PropPredicate::Op::kGt);
}

}  // namespace
}  // namespace db2graph::core
