// Unit tests for the common module: Value semantics, string helpers, the
// '::' composite-id convention, Status/Result, and JSON parsing errors.

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace db2graph {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(int64_t{7}).is_int());
  EXPECT_TRUE(Value(7.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(7).is_numeric());
  EXPECT_TRUE(Value(7.5).is_numeric());
  EXPECT_FALSE(Value("7").is_numeric());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_LT(Value(3), Value(3.5));
  EXPECT_LT(Value(3.5), Value(4));
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, TypeFamiliesAreOrderedConsistently) {
  // NULL < BOOL < numeric < string.
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(999999), Value(""));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_TRUE(Value(0.1).Truthy());
}

// --------------------------------------------------------------- strings

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Patient", "PATIENT"));
  EXPECT_FALSE(EqualsIgnoreCase("Patient", "Patients"));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a::b::c", "::"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("abc", "::"), std::vector<std::string>{"abc"});
  EXPECT_EQ(Split("::", "::"), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("patient::1", "patient"));
  EXPECT_FALSE(StartsWith("pa", "patient"));
}

TEST(StringsTest, ComposeDecomposeIdRoundTrip) {
  std::string id = ComposeId({"patient", "17"});
  EXPECT_EQ(id, "patient::17");
  EXPECT_EQ(DecomposeId(id), (std::vector<std::string>{"patient", "17"}));
  EXPECT_EQ(DecomposeId("just-one"),
            std::vector<std::string>{"just-one"});
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(std::move(bad).ValueOrThrow(), std::runtime_error);
}

// ------------------------------------------------------------------ JSON

TEST(JsonTest, ParsesScalarsAndContainers) {
  Result<Json> doc = Json::Parse(
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->as_int(), 1);
  EXPECT_EQ(doc->Find("b")->items().size(), 3u);
  EXPECT_TRUE(doc->Find("b")->items()[1].is_null());
  EXPECT_DOUBLE_EQ(doc->Find("c")->Find("d")->as_number(), 2.5);
  EXPECT_EQ(doc->Find("nope"), nullptr);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("z", Json::Number(1));
  obj.Set("a", Json::Number(2));
  obj.Set("z", Json::Number(3));  // update, not reorder
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "z");
  EXPECT_EQ(obj.members()[0].second.as_int(), 3);
}

TEST(JsonTest, StringEscapes) {
  Result<Json> doc = Json::Parse(R"({"s": "a\"b\\c\nd"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("s")->as_string(), "a\"b\\c\nd");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse(R"({"a" 1})").ok());
  EXPECT_FALSE(Json::Parse(R"({"a": 1} garbage)").ok());
  EXPECT_FALSE(Json::Parse(R"("unterminated)").ok());
}

TEST(JsonTest, GetHelpersApplyDefaults) {
  Result<Json> doc = Json::Parse(R"({"flag": true, "name": "x"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetBool("flag", false));
  EXPECT_FALSE(doc->GetBool("missing", false));
  EXPECT_EQ(doc->GetString("name", "d"), "x");
  EXPECT_EQ(doc->GetString("missing", "d"), "d");
  // Wrong-typed fields fall back too.
  EXPECT_EQ(doc->GetString("flag", "d"), "d");
}

TEST(JsonTest, NegativeAndExponentNumbers) {
  Result<Json> doc = Json::Parse(R"([-5, 1.5e3, -0.25])");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->items()[0].as_int(), -5);
  EXPECT_DOUBLE_EQ(doc->items()[1].as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(doc->items()[2].as_number(), -0.25);
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  // Raw control bytes (a SQL script with tabs/newlines, a stray 0x01)
  // must come out as \uXXXX escapes, never as raw bytes.
  Json s = Json::Str(std::string("a\tb\nc\x01") + '\x1f');
  std::string dumped = s.Dump(0);
  EXPECT_EQ(dumped, "\"a\\tb\\nc\\u0001\\u001f\"");
  // And the escaped form parses back to the original bytes.
  Result<Json> round = Json::Parse(dumped);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->as_string(), s.as_string());
}

TEST(JsonTest, DumpReplacesInvalidUtf8) {
  // A lone 0xFF (invalid UTF-8 anywhere) and a truncated multibyte
  // sequence become U+FFFD so the output stays valid JSON/UTF-8.
  Json bad = Json::Str(std::string("ok\xff") + "\xe2\x82");
  std::string dumped = bad.Dump(0);
  EXPECT_EQ(dumped.find('\xff'), std::string::npos);
  Result<Json> round = Json::Parse(dumped);
  ASSERT_TRUE(round.ok());
  EXPECT_NE(round->as_string().find("\xef\xbf\xbd"), std::string::npos);
}

TEST(JsonTest, DumpPassesValidMultibyteUtf8Through) {
  Json s = Json::Str("caf\xc3\xa9 \xe2\x82\xac");  // café €
  std::string dumped = s.Dump(0);
  EXPECT_EQ(dumped, "\"caf\xc3\xa9 \xe2\x82\xac\"");
}

TEST(JsonTest, ParsesUnicodeEscapesAndSurrogatePairs) {
  Result<Json> doc = Json::Parse(R"({"s": "Aé€😀"})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // A, é (2 bytes), € (3 bytes), 😀 (4 bytes via surrogate pair).
  EXPECT_EQ(doc->Find("s")->as_string(),
            "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
  // Unpaired surrogates are malformed.
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());
  EXPECT_FALSE(Json::Parse(R"("\uZZZZ")").ok());
}

// ------------------------------------------------------------- metrics

TEST(MetricsTest, RenderPrometheusExposesAllKinds) {
  metrics::MetricsRegistry registry;
  registry.GetCounter("requests.total")->fetch_add(42);
  registry.GetGauge("queue.depth")->Set(-3);
  registry.GetHistogram("latency.micros")->Observe(7);
  registry.GetHistogram("latency.micros")->Observe(9);

  std::string out = registry.RenderPrometheus();
  // Dots are outside the Prometheus charset and collapse to '_'.
  EXPECT_NE(out.find("# TYPE requests_total counter\nrequests_total 42\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE queue_depth gauge\nqueue_depth -3\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE latency_micros summary"), std::string::npos);
  EXPECT_NE(out.find("latency_micros{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("latency_micros{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(out.find("latency_micros_sum 16\n"), std::string::npos);
  EXPECT_NE(out.find("latency_micros_count 2\n"), std::string::npos);
}

TEST(MetricsTest, PrometheusNamesSanitizedToCharset) {
  metrics::MetricsRegistry registry;
  registry.GetCounter("1weird name\xc3\xa9!")->fetch_add(1);
  std::string out = registry.RenderPrometheus();
  // Leading digit gets a '_' prefix; every other foreign byte maps to '_'.
  EXPECT_NE(out.find("_1weird_name___ 1\n"), std::string::npos) << out;
}

TEST(MetricsTest, RegistrySnapshotCoversEveryMetric) {
  metrics::MetricsRegistry registry;
  registry.GetCounter("c")->fetch_add(5);
  registry.GetGauge("g")->Set(6);
  registry.GetHistogram("h")->Observe(200);
  std::vector<metrics::MetricsRegistry::Sample> samples =
      registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  bool saw_histogram = false;
  for (const auto& s : samples) {
    if (s.kind == "histogram") {
      saw_histogram = true;
      EXPECT_EQ(s.name, "h");
      EXPECT_EQ(s.value, 1);  // count
      EXPECT_EQ(s.sum, 200u);
      EXPECT_GE(s.p99, 200u);
    }
  }
  EXPECT_TRUE(saw_histogram);
}

}  // namespace
}  // namespace db2graph
