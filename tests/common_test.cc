// Unit tests for the common module: Value semantics, string helpers, the
// '::' composite-id convention, Status/Result, and JSON parsing errors.

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace db2graph {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(int64_t{7}).is_int());
  EXPECT_TRUE(Value(7.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(7).is_numeric());
  EXPECT_TRUE(Value(7.5).is_numeric());
  EXPECT_FALSE(Value("7").is_numeric());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_LT(Value(3), Value(3.5));
  EXPECT_LT(Value(3.5), Value(4));
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, TypeFamiliesAreOrderedConsistently) {
  // NULL < BOOL < numeric < string.
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(999999), Value(""));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_TRUE(Value(0.1).Truthy());
}

// --------------------------------------------------------------- strings

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Patient", "PATIENT"));
  EXPECT_FALSE(EqualsIgnoreCase("Patient", "Patients"));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a::b::c", "::"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("abc", "::"), std::vector<std::string>{"abc"});
  EXPECT_EQ(Split("::", "::"), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("patient::1", "patient"));
  EXPECT_FALSE(StartsWith("pa", "patient"));
}

TEST(StringsTest, ComposeDecomposeIdRoundTrip) {
  std::string id = ComposeId({"patient", "17"});
  EXPECT_EQ(id, "patient::17");
  EXPECT_EQ(DecomposeId(id), (std::vector<std::string>{"patient", "17"}));
  EXPECT_EQ(DecomposeId("just-one"),
            std::vector<std::string>{"just-one"});
}

// ---------------------------------------------------------------- Status

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(std::move(bad).ValueOrThrow(), std::runtime_error);
}

// ------------------------------------------------------------------ JSON

TEST(JsonTest, ParsesScalarsAndContainers) {
  Result<Json> doc = Json::Parse(
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->as_int(), 1);
  EXPECT_EQ(doc->Find("b")->items().size(), 3u);
  EXPECT_TRUE(doc->Find("b")->items()[1].is_null());
  EXPECT_DOUBLE_EQ(doc->Find("c")->Find("d")->as_number(), 2.5);
  EXPECT_EQ(doc->Find("nope"), nullptr);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("z", Json::Number(1));
  obj.Set("a", Json::Number(2));
  obj.Set("z", Json::Number(3));  // update, not reorder
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "z");
  EXPECT_EQ(obj.members()[0].second.as_int(), 3);
}

TEST(JsonTest, StringEscapes) {
  Result<Json> doc = Json::Parse(R"({"s": "a\"b\\c\nd"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("s")->as_string(), "a\"b\\c\nd");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse(R"({"a" 1})").ok());
  EXPECT_FALSE(Json::Parse(R"({"a": 1} garbage)").ok());
  EXPECT_FALSE(Json::Parse(R"("unterminated)").ok());
}

TEST(JsonTest, GetHelpersApplyDefaults) {
  Result<Json> doc = Json::Parse(R"({"flag": true, "name": "x"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->GetBool("flag", false));
  EXPECT_FALSE(doc->GetBool("missing", false));
  EXPECT_EQ(doc->GetString("name", "d"), "x");
  EXPECT_EQ(doc->GetString("missing", "d"), "d");
  // Wrong-typed fields fall back too.
  EXPECT_EQ(doc->GetString("flag", "d"), "d");
}

TEST(JsonTest, NegativeAndExponentNumbers) {
  Result<Json> doc = Json::Parse(R"([-5, 1.5e3, -0.25])");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->items()[0].as_int(), -5);
  EXPECT_DOUBLE_EQ(doc->items()[1].as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(doc->items()[2].as_number(), -0.25);
}

}  // namespace
}  // namespace db2graph
