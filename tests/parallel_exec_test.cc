// Copyright (c) 2026 The db2graph-repro Authors.
//
// Coverage for morsel-driven intra-query parallelism and the ExecConfig
// surface that fronts it:
//
//  * ExecConfig tri-state layering — overlay precedence, clamping, the
//    thread-local scope, and the database session resolution chain;
//  * SQL parallel-vs-serial equivalence — every eligible shape (full
//    scans, kernel and fallback filters, simple and grouped aggregates,
//    hash joins, ORDER BY) produces identical rows at dop 1/2/8 x block
//    sizes 1/7/1024 x vectorized/scalar (double aggregates compare with
//    an epsilon: per-worker partial sums reassociate);
//  * Gremlin parallel-vs-serial equivalence — the streaming shape suite
//    at every (dop, block size, vectorized) combination matches the
//    serial materialized baseline exactly, ordering included;
//  * observability — EXPLAIN ANALYZE, ExecInfo, and sysmon.query_log
//    surface the per-query dop and morsel counts, and a serial plan
//    keeps reporting dop 1 / morsels 0 even when the config asks for
//    more;
//  * governance — morsel workers racing KillQuery under TSan, and
//    cooperative cancellation landing in under 100 ms mid-parallel-scan.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_config.h"
#include "common/query_log.h"
#include "common/workload_governor.h"
#include "core/db2graph.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"
#include "sql/database.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;
using sql::ResultSet;

// ------------------------------------------------------------------
// ExecConfig semantics.
// ------------------------------------------------------------------

TEST(ExecConfigTest, UnsetFieldsResolveToEngineDefaults) {
  ExecConfig cfg;
  EXPECT_EQ(cfg.parallelism(), 1);
  EXPECT_TRUE(cfg.vectorized());
  EXPECT_TRUE(cfg.streaming());
  EXPECT_FALSE(cfg.profile());
  EXPECT_EQ(cfg.block_rows(), 0u);
  EXPECT_FALSE(cfg.has_parallelism());
  EXPECT_FALSE(cfg.has_vectorized());
}

TEST(ExecConfigTest, BuildersReturnModifiedCopies) {
  const ExecConfig base;
  ExecConfig tuned = base.parallelism(4).vectorized(false).block_rows(64);
  EXPECT_EQ(base.parallelism(), 1);   // base untouched
  EXPECT_TRUE(base.vectorized());
  EXPECT_EQ(tuned.parallelism(), 4);
  EXPECT_FALSE(tuned.vectorized());
  EXPECT_EQ(tuned.block_rows(), 64u);
  EXPECT_FALSE(tuned.has_streaming());  // never set: still inherits
}

TEST(ExecConfigTest, ParallelismClampsToSupportedRange) {
  EXPECT_EQ(ExecConfig().parallelism(0).parallelism(), 1);
  EXPECT_EQ(ExecConfig().parallelism(-5).parallelism(), 1);
  EXPECT_EQ(ExecConfig().parallelism(1000).parallelism(), 64);
}

TEST(ExecConfigTest, OverlayLetsSetFieldsWinAndUnsetFallThrough) {
  ExecConfig lower = ExecConfig().parallelism(2).vectorized(false);
  ExecConfig upper = ExecConfig().parallelism(8);  // vectorized unset
  ExecConfig merged = lower.OverlaidBy(upper);
  EXPECT_EQ(merged.parallelism(), 8);     // upper wins
  EXPECT_FALSE(merged.vectorized());      // falls through to lower
  EXPECT_FALSE(merged.has_streaming());   // unset at both layers
  // Overlaying an all-unset config changes nothing.
  ExecConfig same = lower.OverlaidBy(ExecConfig());
  EXPECT_EQ(same.parallelism(), 2);
  EXPECT_FALSE(same.vectorized());
}

TEST(ExecConfigTest, ScopedExecConfigInstallsAndRestoresThreadLocally) {
  EXPECT_EQ(ExecConfig::Current().parallelism(), 1);
  {
    ScopedExecConfig outer(ExecConfig().parallelism(4));
    EXPECT_EQ(ExecConfig::Current().parallelism(), 4);
    {
      ScopedExecConfig inner(ExecConfig().parallelism(2));
      EXPECT_EQ(ExecConfig::Current().parallelism(), 2);
    }
    EXPECT_EQ(ExecConfig::Current().parallelism(), 4);  // restored
  }
  EXPECT_EQ(ExecConfig::Current().parallelism(), 1);
  // Another thread never sees this thread's scope.
  ScopedExecConfig scoped(ExecConfig().parallelism(8));
  int other_thread_dop = 0;
  std::thread([&] {
    other_thread_dop = ExecConfig::Current().parallelism();
  }).join();
  EXPECT_EQ(other_thread_dop, 1);
}

TEST(ExecConfigTest, DatabaseSessionThenThreadScopeResolution) {
  sql::Database db;
  db.SetExecConfig(ExecConfig().parallelism(4).vectorized(false));
  ExecConfig resolved = db.ResolveExecConfig();
  EXPECT_EQ(resolved.parallelism(), 4);
  EXPECT_FALSE(resolved.vectorized());
  {
    // A per-query thread-local scope overrides the session layer.
    ScopedExecConfig scoped(ExecConfig().parallelism(2));
    ExecConfig overridden = db.ResolveExecConfig();
    EXPECT_EQ(overridden.parallelism(), 2);
    EXPECT_FALSE(overridden.vectorized());  // session still supplies this
  }
  EXPECT_EQ(db.ResolveExecConfig().parallelism(), 4);
  EXPECT_EQ(db.exec_config().parallelism(), 4);
}

// ------------------------------------------------------------------
// SQL parallel-vs-serial equivalence matrix.
// ------------------------------------------------------------------

class ParallelSqlEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE Facts (a BIGINT, b DOUBLE, "
                            "s VARCHAR(8), g BIGINT)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE Dims (id BIGINT PRIMARY KEY, "
                    "name VARCHAR(16))")
            .ok());
    sql::Table* facts = db_.GetTable("Facts");
    ASSERT_NE(facts, nullptr);
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 3000; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      Row row;
      row.push_back(Value(static_cast<int64_t>(rng % 3000)));
      row.push_back((rng >> 8) % 16 == 0
                        ? Value()
                        : Value(static_cast<double>((rng >> 16) % 997) / 4));
      row.push_back(Value("s" + std::to_string((rng >> 32) % 13)));
      row.push_back(Value(static_cast<int64_t>((rng >> 48) % 500)));
      ASSERT_TRUE(facts->Insert(std::move(row)).ok());
    }
    sql::Table* dims = db_.GetTable("Dims");
    ASSERT_NE(dims, nullptr);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          dims->Insert({Value(int64_t{i}), Value("d" + std::to_string(i % 7))})
              .ok());
    }
  }

  ResultSet Run(const std::string& q) {
    Result<ResultSet> rs = db_.Execute(q);
    EXPECT_TRUE(rs.ok()) << q << ": " << rs.status().ToString();
    return rs.ok() ? std::move(*rs) : ResultSet{};
  }

  sql::Database db_;
};

TEST_F(ParallelSqlEquivalenceTest, AllShapesMatchSerialAcrossTheMatrix) {
  // Every operator family parallelism touches: full-scan filters (typed
  // kernel and scalar fallback), simple and grouped aggregates, the
  // sharded hash join, the parallel sort (>= 1024 rows so it engages),
  // DISTINCT, and a multi-way mix. No double SUM/AVG here — those
  // reassociate and are compared separately with an epsilon.
  const char* const kQueries[] = {
      "SELECT COUNT(*), SUM(a), MIN(a), MAX(a) FROM Facts",
      "SELECT COUNT(b), MIN(b), MAX(b) FROM Facts",
      "SELECT a, s FROM Facts WHERE a > 1500",
      "SELECT a FROM Facts WHERE a + 1 > 1500",  // scalar-fallback kernel
      "SELECT s FROM Facts WHERE a > 300 AND g < 250",
      "SELECT g, COUNT(*), SUM(a), MIN(a) FROM Facts GROUP BY g",
      "SELECT s, COUNT(*) FROM Facts GROUP BY s",
      "SELECT g, COUNT(*) FROM Facts WHERE a < 2000 GROUP BY g",
      "SELECT DISTINCT s FROM Facts",
      "SELECT a, s FROM Facts WHERE a < 2500 ORDER BY a, s",
      "SELECT s, COUNT(*) AS n FROM Facts GROUP BY s ORDER BY n DESC, s",
      "SELECT f.a, d.name FROM Facts f JOIN Dims d ON f.g = d.id "
      "WHERE f.a < 700",
      "SELECT d.name, COUNT(*) FROM Facts f JOIN Dims d ON f.g = d.id "
      "GROUP BY d.name",
      "SELECT COUNT(*) FROM Facts f, Dims d WHERE f.g = d.id AND f.a > 100",
      "SELECT a FROM Facts ORDER BY a LIMIT 20",
  };

  // Serial baseline: nothing set, so everything resolves to defaults.
  db_.SetExecConfig(ExecConfig());
  std::vector<ResultSet> expected;
  for (const char* q : kQueries) expected.push_back(Run(q));

  const int kDops[] = {1, 2, 8};
  const size_t kBlockSizes[] = {1, 7, 1024};
  for (int dop : kDops) {
    for (size_t block : kBlockSizes) {
      for (bool vectorized : {true, false}) {
        db_.SetExecConfig(ExecConfig()
                              .parallelism(dop)
                              .block_rows(block)
                              .vectorized(vectorized));
        for (size_t i = 0; i < std::size(kQueries); ++i) {
          ResultSet rs = Run(kQueries[i]);
          EXPECT_EQ(expected[i].columns, rs.columns) << kQueries[i];
          EXPECT_EQ(expected[i].rows, rs.rows)
              << kQueries[i] << " at dop=" << dop << " block=" << block
              << " vectorized=" << vectorized;
        }
      }
    }
  }
  db_.SetExecConfig(ExecConfig());
}

TEST_F(ParallelSqlEquivalenceTest, DoubleAggregatesMatchWithinEpsilon) {
  // SUM/AVG over DOUBLE reassociate across per-worker partial states;
  // the result is deterministic for a fixed dop but may differ from the
  // serial sum in the last bits.
  const char* const kQueries[] = {
      "SELECT SUM(b) FROM Facts",
      "SELECT AVG(b) FROM Facts WHERE a < 2000",
  };
  db_.SetExecConfig(ExecConfig());
  std::vector<double> expected;
  for (const char* q : kQueries) {
    ResultSet rs = Run(q);
    ASSERT_EQ(rs.rows.size(), 1u);
    expected.push_back(rs.rows[0][0].as_double());
  }
  for (int dop : {2, 8}) {
    db_.SetExecConfig(ExecConfig().parallelism(dop));
    for (size_t i = 0; i < std::size(kQueries); ++i) {
      ResultSet rs = Run(kQueries[i]);
      ASSERT_EQ(rs.rows.size(), 1u);
      double got = rs.rows[0][0].as_double();
      EXPECT_NEAR(got, expected[i], std::abs(expected[i]) * 1e-9)
          << kQueries[i] << " at dop=" << dop;
    }
  }
  db_.SetExecConfig(ExecConfig());
}

// ------------------------------------------------------------------
// Observability: dop and morsel counts must surface everywhere.
// ------------------------------------------------------------------

TEST_F(ParallelSqlEquivalenceTest, ExplainAnalyzeSurfacesDopAndMorsels) {
  db_.SetExecConfig(ExecConfig().parallelism(4));
  ResultSet rs = Run("EXPLAIN ANALYZE SELECT g, COUNT(*) FROM Facts "
                     "WHERE a > 100 GROUP BY g");
  EXPECT_EQ(rs.exec.dop, 4u);
  EXPECT_GT(rs.exec.morsels, 0u);
  std::string plan;
  for (const Row& row : rs.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("ParallelColumnAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("dop=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("morsels="), std::string::npos) << plan;

  rs = Run("EXPLAIN ANALYZE SELECT a, s FROM Facts WHERE a > 1500");
  EXPECT_EQ(rs.exec.dop, 4u);
  EXPECT_GT(rs.exec.morsels, 0u);
  plan.clear();
  for (const Row& row : rs.rows) plan += row[0].as_string() + "\n";
  EXPECT_NE(plan.find("ParallelColumnScan"), std::string::npos) << plan;
  db_.SetExecConfig(ExecConfig());
}

TEST_F(ParallelSqlEquivalenceTest, SerialPlansReportDopOneAndZeroMorsels) {
  // A plan with no parallel-eligible operator reports what it actually
  // did — dop 1, zero morsels — even though the config asked for more.
  db_.SetExecConfig(ExecConfig().parallelism(8).vectorized(false));
  ResultSet rs = Run("SELECT a FROM Facts WHERE a > 2990");
  EXPECT_EQ(rs.exec.dop, 1u);
  EXPECT_EQ(rs.exec.morsels, 0u);
  db_.SetExecConfig(ExecConfig());
  rs = Run("SELECT COUNT(*) FROM Facts");
  EXPECT_EQ(rs.exec.dop, 1u);
  EXPECT_EQ(rs.exec.morsels, 0u);
}

TEST_F(ParallelSqlEquivalenceTest, QueryLogRecordsDopAndMorsels) {
  QueryLog& query_log = QueryLog::Global();
  const bool was_enabled = query_log.enabled();
  query_log.SetEnabled(true);
  db_.SetExecConfig(ExecConfig().parallelism(4));
  Run("SELECT g, COUNT(*) FROM Facts GROUP BY g");
  db_.SetExecConfig(ExecConfig());
  ResultSet rs = Run("SELECT script, dop, morsels FROM sysmon.query_log "
                     "WHERE layer = 'sql'");
  query_log.SetEnabled(was_enabled);
  // The log stores a synthesized statement description, so match on the
  // table plus the recorded dop (only this test's queries are logged —
  // the log was disabled during the rest of the suite).
  bool found = false;
  for (const Row& row : rs.rows) {
    if (row[0].as_string().find("Facts") != std::string::npos &&
        row[1] == Value(int64_t{4})) {
      EXPECT_GT(row[2].as_int(), 0) << row[0].as_string();
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "parallel query not found in sysmon.query_log";
}

// ------------------------------------------------------------------
// Gremlin parallel-vs-serial equivalence matrix.
// ------------------------------------------------------------------

class ParallelGremlinEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 300;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
  }

  std::unique_ptr<Db2Graph> Open(const ExecConfig& exec) {
    Db2Graph::Options options;
    options.exec = exec;
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false),
        options);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (!graph.ok()) return nullptr;
    return std::move(*graph);
  }

  static std::vector<std::string> RunOrdered(Db2Graph* graph,
                                             const std::string& q) {
    Result<std::vector<Traverser>> out = graph->Execute(q);
    if (!out.ok()) return {"ERROR: " + out.status().ToString()};
    std::vector<std::string> rendered;
    rendered.reserve(out->size());
    for (const Traverser& t : *out) rendered.push_back(t.ToString());
    return rendered;
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
};

TEST_F(ParallelGremlinEquivalenceTest, StreamingShapesMatchAcrossTheMatrix) {
  // The streaming shape families (same suite the streaming equivalence
  // test runs): linear chains, limit/range short-circuits, stateful
  // steps, barriers — order() and groupCount() are the ones the parallel
  // drain splits — adjacency, and sub-traversal steps.
  const char* const kQueries[] = {
      "g.V()",
      "g.V().limit(1)",
      "g.V().limit(7)",
      "g.V().limit(1000)",
      "g.V().range(3, 11)",
      "g.V().range(0, 5)",
      "g.V().hasLabel('vt1')",
      "g.V().hasLabel('vt1').limit(5)",
      "g.V().has('version', 3).limit(4)",
      "g.V().id().limit(6)",
      "g.V().label().dedup()",
      "g.V().values('time').limit(9)",
      "g.V().valueMap('version').limit(3)",
      "g.V().dedup().limit(8)",
      "g.V().out().limit(6)",
      "g.V().out('et1')",
      "g.V().outE('et2').limit(3)",
      "g.V().in().limit(5)",
      "g.V().out().in().limit(4)",
      "g.V().both('et2').limit(5)",
      "g.V().both().count()",
      "g.E()",
      "g.E().limit(6)",
      "g.V().order().limit(5)",
      "g.V().values('time').order().tail(3)",
      "g.V().groupCount()",
      "g.V().order()",
      "g.V().values('time').groupCount()",
      "g.V().count()",
      "g.V().out().count()",
      "g.V().store('s').limit(3).cap('s')",
      "g.V().limit(10).store('s').cap('s')",
      "g.V().where(outE('et1').count().is(gte(1))).limit(4)",
      "g.V().not(out('et1')).limit(5)",
      "g.V(5).repeat(out().dedup()).times(2)",
      "g.V().out().path().limit(4)",
      "g.V().out().simplePath().limit(5)",
  };

  // Serial materialized baseline — the pre-parallel, pre-streaming model.
  std::unique_ptr<Db2Graph> baseline = Open(ExecConfig().streaming(false));
  ASSERT_NE(baseline, nullptr);
  std::vector<std::vector<std::string>> expected;
  for (const char* q : kQueries) {
    expected.push_back(RunOrdered(baseline.get(), q));
  }

  const int kDops[] = {1, 2, 8};
  const size_t kBlockSizes[] = {1, 7, 1024};
  for (int dop : kDops) {
    for (size_t block : kBlockSizes) {
      for (bool vectorized : {true, false}) {
        std::unique_ptr<Db2Graph> graph = Open(ExecConfig()
                                                   .parallelism(dop)
                                                   .block_rows(block)
                                                   .vectorized(vectorized));
        ASSERT_NE(graph, nullptr);
        for (size_t i = 0; i < std::size(kQueries); ++i) {
          EXPECT_EQ(expected[i], RunOrdered(graph.get(), kQueries[i]))
              << kQueries[i] << " at dop=" << dop << " block=" << block
              << " vectorized=" << vectorized;
        }
      }
    }
  }
}

TEST_F(ParallelGremlinEquivalenceTest, PerCallConfigOverridesSessionDop) {
  std::unique_ptr<Db2Graph> graph = Open(ExecConfig().parallelism(8));
  ASSERT_NE(graph, nullptr);
  // The per-call overlay can take one execution back to serial; results
  // must be identical either way.
  ExecOptions serial_call;
  serial_call.config = ExecConfig().parallelism(1);
  auto parallel_out = graph->Execute("g.V().groupCount()");
  auto serial_out = graph->Execute("g.V().groupCount()", serial_call);
  ASSERT_TRUE(parallel_out.ok()) << parallel_out.status().ToString();
  ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();
  ASSERT_EQ(parallel_out->size(), serial_out->size());
  for (size_t i = 0; i < parallel_out->size(); ++i) {
    EXPECT_EQ((*parallel_out)[i].ToString(), (*serial_out)[i].ToString());
  }
}

// ------------------------------------------------------------------
// Governance: morsel workers vs KillQuery / cancellation latency.
// ------------------------------------------------------------------

class ParallelGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 20000;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

// TSan target: dop-8 morsel workers continuously starting and finishing
// while another thread kills whatever query is active. Every execution
// must end in either success or a clean kCancelled — never a crash,
// leak, or deadlock — and the kill thread must observe at least some
// victims mid-flight.
TEST_F(ParallelGovernanceTest, MorselWorkersRaceKillQueryStress) {
  constexpr int kIterations = 40;
  std::atomic<bool> done{false};
  std::atomic<int> cancelled{0};
  std::thread killer([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const auto& q :
           governor::ActiveQueryRegistry::Global().Snapshot()) {
        if (Db2Graph::KillQuery(q->id(), "parallel stress kill")) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::yield();
    }
  });
  ExecOptions options;
  options.config = ExecConfig().parallelism(8);
  options.timeout_ms = 600000;  // governed: registered for KillQuery
  for (int i = 0; i < kIterations; ++i) {
    const std::string q = i % 2 == 0 ? "g.V().groupCount()"
                                     : "g.V().out().count()";
    Result<std::vector<Traverser>> out = graph_->Execute(q, options);
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
          << out.status().ToString();
    }
  }
  done.store(true, std::memory_order_release);
  killer.join();
  // With 40 governed executions and a tight kill loop, at least one must
  // have been caught mid-flight (usually most are).
  EXPECT_GT(cancelled.load(), 0);
}

TEST_F(ParallelGovernanceTest, CancellationLandsUnder100MsMidParallelScan) {
  // A long traversal (two-hop expansion over 20k vertices) under dop 8:
  // morsel workers check the governor at every morsel boundary, so a
  // kill must land within the latency budget, not after the scan drains.
  std::atomic<bool> started{false};
  std::atomic<int64_t> finished_at_micros{0};
  Status final_status = Status::OK();
  std::thread runner([&] {
    ExecOptions options;
    options.config = ExecConfig().parallelism(8);
    options.timeout_ms = 600000;
    started.store(true, std::memory_order_release);
    Result<std::vector<Traverser>> out =
        graph_->Execute("g.V().out().out().count()", options);
    final_status = out.status();
    finished_at_micros.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_release);
  });

  // Wait until the query is registered and has made progress (so the
  // kill genuinely lands mid-scan), then kill and time the unwind.
  uint64_t victim = 0;
  for (int spin = 0; spin < 20000 && victim == 0; ++spin) {
    for (const auto& q : governor::ActiveQueryRegistry::Global().Snapshot()) {
      if (q->elapsed_micros() > 1000) victim = q->id();
    }
    if (victim == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_NE(victim, 0u) << "parallel query never appeared in the registry";
  const int64_t kill_at =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  EXPECT_TRUE(Db2Graph::KillQuery(victim, "latency probe"));
  runner.join();

  ASSERT_FALSE(final_status.ok()) << "query finished before the kill; "
                                     "enlarge the dataset";
  EXPECT_EQ(final_status.code(), StatusCode::kCancelled)
      << final_status.ToString();
  const int64_t latency_micros =
      finished_at_micros.load(std::memory_order_acquire) - kill_at;
  EXPECT_LT(latency_micros, 100000)
      << "cancellation took " << latency_micros / 1000 << " ms";
}

}  // namespace
}  // namespace db2graph::core
