// Copyright (c) 2026 The db2graph-repro Authors.
//
// The cost-based multi-hop join collapse (core/optimizer.h): the
// equivalence matrix proving collapsed plans are byte-identical with
// step-at-a-time execution across hop counts, predicate placements, block
// sizes, and degrees of parallelism; the legality/misestimate bail-outs;
// the statistics-sensitive plan-cache expiry; and the observability
// surfaces (sysmon.optimizer, Explain / EXPLAIN ANALYZE, query-log
// collapsed_hops).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_config.h"
#include "common/metrics.h"
#include "common/query_log.h"
#include "core/db2graph.h"
#include "core/optimizer.h"
#include "gremlin/parser.h"
#include "sql/database.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

constexpr int kPersons = 20;

// Renders every byte of a result that execution order or content could
// perturb: traverser kind, element id/label/properties (in materialized
// order), and the full path-id history.
std::string RenderAll(const std::vector<Traverser>& out) {
  std::string s;
  for (const Traverser& t : out) {
    switch (t.kind) {
      case Traverser::Kind::kVertex:
        s += "V{" + t.vertex->id.ToString() + "," + t.vertex->label;
        for (const auto& [k, v] : t.vertex->properties) {
          s += "," + k + "=" + v.ToString();
        }
        s += "}";
        break;
      case Traverser::Kind::kEdge:
        s += "E{" + t.edge->id.ToString() + "}";
        break;
      case Traverser::Kind::kValue:
        s += "v{" + t.value.ToString() + "}";
        break;
      case Traverser::Kind::kList:
        s += "l{";
        for (const Value& v : t.list) s += v.ToString() + ",";
        s += "}";
        break;
    }
    s += " path=[";
    for (const Value& v : t.path) s += v.ToString() + ",";
    s += "];\n";
  }
  return s;
}

uint64_t RegistryCount(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name)->load();
}

class MultiHopCollapseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE person (id BIGINT PRIMARY KEY, age BIGINT, name VARCHAR);
      CREATE TABLE knows (src BIGINT, dst BIGINT, w BIGINT);
      CREATE INDEX idx_knows_src ON knows (src);
      CREATE INDEX idx_knows_dst ON knows (dst);
      CREATE TABLE follows (src BIGINT, dst BIGINT);
      CREATE INDEX idx_follows_src ON follows (src);
      CREATE INDEX idx_follows_dst ON follows (dst);
    )sql")
                    .ok());
    for (int i = 1; i <= kPersons; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO person VALUES (" +
                              std::to_string(i) + ", " +
                              std::to_string(20 + i % 7) + ", 'p" +
                              std::to_string(i) + "')")
                      .ok());
      // A few out-edges per person, deterministic and overlapping enough
      // that multi-hop chains fan out and revisit vertices.
      for (int mul : {1, 3, 7}) {
        ASSERT_TRUE(db_.Execute("INSERT INTO knows VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string((i * mul) % kPersons + 1) +
                                ", " + std::to_string(i % 5) + ")")
                        .ok());
      }
      for (int mul : {2, 5}) {
        ASSERT_TRUE(db_.Execute("INSERT INTO follows VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string((i * mul) % kPersons + 1) +
                                ")")
                        .ok());
      }
    }
    // Two graphs over the same database: the control compiles everything
    // step-at-a-time; the subject runs the collapse pass. The subject
    // opens last so the shared sysmon.optimizer registration reads its
    // log.
    Db2Graph::Options off;
    off.optimizer.multi_hop_collapse = false;
    graph_off_ = OpenGraph(off);
    graph_on_ = OpenGraph(Db2Graph::Options());
  }

  std::unique_ptr<Db2Graph> OpenGraph(Db2Graph::Options options) {
    auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "person", "id": "id", "fix_label": true,
                    "label": "'person'", "properties": ["age", "name"]}],
      "e_tables": [{"table_name": "knows", "src_v_table": "person",
                    "src_v": "src", "dst_v_table": "person", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'knows'", "properties": ["w"]},
                   {"table_name": "follows", "src_v_table": "person",
                    "src_v": "src", "dst_v_table": "person", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'follows'"}]
    })json",
                                options);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return graph.ok() ? std::move(*graph) : nullptr;
  }

  std::string Run(Db2Graph* graph, const std::string& script,
                  size_t block_rows, int dop) {
    ExecOptions options;
    options.config = ExecConfig().block_rows(block_rows).parallelism(dop);
    Result<std::vector<Traverser>> out = graph->Execute(script, options);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << script;
    return out.ok() ? RenderAll(*out) : "<error>";
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_off_;
  std::unique_ptr<Db2Graph> graph_on_;
};

// ----------------------------------------------------------------------
// Equivalence matrix: hops x predicate placement x block size x dop
// ----------------------------------------------------------------------

TEST_F(MultiHopCollapseTest, EquivalenceMatrix) {
  const std::vector<std::string> scripts = {
      // 2 / 3 / 4 hops, server-side (pushed) predicates only.
      "g.V().out('knows').out('knows')",
      "g.V().has('age', gte(22)).out('knows').has('age', lte(25))"
      ".out('knows')",
      "g.V(1, 2, 3, 4).out('knows').out('follows').out('knows')",
      "g.V().out('knows').out('knows').out('follows').out('knows').id()",
      // inbound direction.
      "g.V(5).in('knows').in('knows')",
      // outE().inV() pairs: edge ids on the path, edge predicates pushed.
      "g.V(1, 7, 13).outE('knows').inV().outE('knows').inV().path()",
      "g.V().outE('knows').has('w', gte(2)).inV().out('follows')",
      // Unlabeled first hop fans out over both edge tables.
      "g.V(3).out().out('knows')",
      // Client-side predicate (without() stays client-side) forces the
      // bail path; mixed = pushed on one hop, client on another.
      "g.V(1, 2).out('knows').has('age', without(21, 23)).out('knows')",
      "g.V().has('age', gte(22)).out('knows').has('age', gte(21))"
      ".out('follows').has('name', without('p3')).out('knows')",
      // Projection on the final hop only.
      "g.V(2, 4).out('knows').out('knows').values('name')",
  };
  for (size_t block_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
    for (int dop : {1, 4}) {
      for (const std::string& script : scripts) {
        std::string collapsed = Run(graph_on_.get(), script, block_rows, dop);
        std::string stepwise = Run(graph_off_.get(), script, block_rows, dop);
        EXPECT_EQ(collapsed, stepwise)
            << script << " (block_rows=" << block_rows << " dop=" << dop
            << ")";
      }
    }
  }
  // The matrix only proves something if the subject actually collapsed.
  OptimizerLog::Counters c = graph_on_->optimizer_log()->counters();
  EXPECT_GT(c.chosen, 0u);
  EXPECT_GT(c.bailed, 0u);  // the client-predicate scripts
  EXPECT_GT(c.executions, 0u);
  EXPECT_EQ(graph_off_->optimizer_log()->counters().attempted, 0u);
}

// ----------------------------------------------------------------------
// Cost-model bail-outs
// ----------------------------------------------------------------------

TEST_F(MultiHopCollapseTest, MisestimateBailsToStepAtATime) {
  // A fan-out cap below any real per-hop estimate: every chain is legal
  // but too expensive, so nothing collapses — and results are unchanged.
  Db2Graph::Options capped;
  capped.optimizer.max_fanout = 0.001;
  std::unique_ptr<Db2Graph> graph = OpenGraph(capped);
  // The predicate on g.V() keeps GraphStepVertexStepMutation away from
  // the first hop, so the full two-hop chain is a collapse candidate.
  const std::string script =
      "g.V().has('age', gte(20)).out('knows').out('knows')";
  EXPECT_EQ(Run(graph.get(), script, 256, 1),
            Run(graph_off_.get(), script, 256, 1));
  OptimizerLog::Counters c = graph->optimizer_log()->counters();
  EXPECT_GT(c.attempted, 0u);
  EXPECT_EQ(c.chosen, 0u);
  bool saw_fanout_bail = false;
  for (const OptimizerLog::Decision& d : graph->optimizer_log()->Snapshot()) {
    EXPECT_FALSE(d.chosen);
    if (d.bail_reason.find("fan-out estimate") != std::string::npos) {
      saw_fanout_bail = true;
    }
  }
  EXPECT_TRUE(saw_fanout_bail);

  Db2Graph::Options rows_capped;
  rows_capped.optimizer.max_est_rows = 0.5;
  graph = OpenGraph(rows_capped);
  EXPECT_EQ(Run(graph.get(), script, 256, 1),
            Run(graph_off_.get(), script, 256, 1));
  EXPECT_EQ(graph->optimizer_log()->counters().chosen, 0u);
}

TEST_F(MultiHopCollapseTest, UnindexedEndpointBailsWithReason) {
  // An edge table with no endpoint indexes breaks probe parity, so the
  // optimizer must keep the chain step-at-a-time.
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE likes (src BIGINT, dst BIGINT);
      INSERT INTO likes VALUES (1, 2), (2, 3);
    )sql")
                  .ok());
  auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [{"table_name": "person", "id": "id", "fix_label": true,
                    "label": "'person'", "properties": ["age"]}],
      "e_tables": [{"table_name": "likes", "src_v_table": "person",
                    "src_v": "src", "dst_v_table": "person", "dst_v": "dst",
                    "implicit_edge_id": true, "fix_label": true,
                    "label": "'likes'"}]
    })json");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto out = (*graph)->Execute(
      "g.V().has('age', gte(0)).out('likes').out('likes')");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].vertex->id, Value(int64_t{3}));
  OptimizerLog::Counters c = (*graph)->optimizer_log()->counters();
  EXPECT_GT(c.attempted, 0u);
  EXPECT_EQ(c.chosen, 0u);
}

// ----------------------------------------------------------------------
// Statistics-sensitive plan-cache expiry
// ----------------------------------------------------------------------

TEST_F(MultiHopCollapseTest, StaleStatsRecompile) {
  Db2Graph::Options options;
  options.optimizer.stats_drift_limit = 8;
  std::unique_ptr<Db2Graph> graph = OpenGraph(options);
  const std::string script =
      "g.V().has('age', gte(21)).out('knows').out('knows')";
  ASSERT_TRUE(graph->Execute(script).ok());

  // Within the drift limit the cached plan keeps serving: no reparse, no
  // stale-stats recompile.
  uint64_t stale0 = RegistryCount(PlanCache::kStaleStatsRecompilesCounter);
  uint64_t parses0 = RegistryCount(gremlin::kParseCallsCounter);
  ASSERT_TRUE(graph->Execute(script).ok());
  EXPECT_EQ(RegistryCount(gremlin::kParseCallsCounter), parses0);
  EXPECT_EQ(RegistryCount(PlanCache::kStaleStatsRecompilesCounter), stale0);

  // Drift the statistics epoch past the limit: the next execution must
  // throw the cached plan away and recompile (a counted stale-stats
  // recompile — the script parses again).
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO knows VALUES (1, " +
                            std::to_string(2 + i % 5) + ", 0)")
                    .ok());
  }
  uint64_t attempts = graph->optimizer_log()->counters().attempted;
  ASSERT_TRUE(graph->Execute(script).ok());
  EXPECT_EQ(RegistryCount(gremlin::kParseCallsCounter), parses0 + 1);
  EXPECT_EQ(RegistryCount(PlanCache::kStaleStatsRecompilesCounter),
            stale0 + 1);
  EXPECT_EQ(graph->optimizer_log()->counters().attempted, attempts + 1);

  // The recompiled plan is cached again under the fresh epoch.
  uint64_t parses1 = RegistryCount(gremlin::kParseCallsCounter);
  ASSERT_TRUE(graph->Execute(script).ok());
  EXPECT_EQ(RegistryCount(gremlin::kParseCallsCounter), parses1);
  EXPECT_EQ(RegistryCount(PlanCache::kStaleStatsRecompilesCounter),
            stale0 + 1);
}

TEST_F(MultiHopCollapseTest, StepAtATimePlansIgnoreStatsDrift) {
  // A plan the optimizer never examined (single hop) is not
  // statistics-sensitive and survives any amount of drift.
  Db2Graph::Options options;
  options.optimizer.stats_drift_limit = 2;
  std::unique_ptr<Db2Graph> graph = OpenGraph(options);
  const std::string script = "g.V(1).id()";
  ASSERT_TRUE(graph->Execute(script).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        db_.Execute("INSERT INTO follows VALUES (1, " + std::to_string(i + 1) +
                    ")")
            .ok());
  }
  uint64_t before = RegistryCount(PlanCache::kStaleStatsRecompilesCounter);
  PlanCache::Counts c0 = graph->plan_cache()->Snapshot();
  ASSERT_TRUE(graph->Execute(script).ok());
  EXPECT_EQ(graph->plan_cache()->Snapshot().hits, c0.hits + 1);
  EXPECT_EQ(RegistryCount(PlanCache::kStaleStatsRecompilesCounter), before);
}

// ----------------------------------------------------------------------
// Observability: sysmon.optimizer, Explain, profile(), query log
// ----------------------------------------------------------------------

TEST_F(MultiHopCollapseTest, SysmonOptimizerTable) {
  ASSERT_TRUE(
      graph_on_
          ->Execute("g.V().has('age', gte(20)).out('knows').out('knows')")
          .ok());
  Result<sql::ResultSet> rs = db_.Execute(
      "SELECT chain, chosen, bail_reason, hops, join_order, est_rows, "
      "actual_rows, executions FROM sysmon.optimizer");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_FALSE(rs->rows.empty());
  bool saw_chosen_execution = false;
  for (const Row& row : rs->rows) {
    if (!row[1].as_bool()) continue;
    EXPECT_EQ(row[2].as_string(), "");  // chosen rows carry no bail reason
    EXPECT_NE(row[4].as_string().find("knows"), std::string::npos)
        << row[4].as_string();
    if (row[7].as_int() > 0 && row[6].as_int() > 0) {
      saw_chosen_execution = true;
    }
  }
  EXPECT_TRUE(saw_chosen_execution)
      << "no executed collapse decision reported est vs actual rows";
}

TEST_F(MultiHopCollapseTest, ExplainShowsMultiHopJoin) {
  Result<Db2Graph::ExplainResult> explain = graph_on_->Explain(
      "g.V().has('age', gte(22)).out('knows').out('knows')"
      ".has('age', lte(25))");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->text.find("MultiHopStep"), std::string::npos)
      << explain->text;
  EXPECT_NE(explain->text.find("join=knows>person>knows>person"),
            std::string::npos)
      << explain->text;
  EXPECT_NE(explain->text.find("est="), std::string::npos);
  EXPECT_NE(explain->text.find("multi-hop join"), std::string::npos)
      << explain->text;
  // The preserved fallback body must not be previewed as if it executed.
  std::string json = explain->json.Dump(0);
  EXPECT_NE(json.find("multi-hop join"), std::string::npos);

  // The control graph explains the same script step-at-a-time.
  Result<Db2Graph::ExplainResult> off =
      graph_off_->Explain("g.V().out('knows').out('knows')");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->text.find("MultiHopStep"), std::string::npos) << off->text;
}

TEST_F(MultiHopCollapseTest, ProfileShowsMultiHopStep) {
  Result<std::vector<Traverser>> out = graph_on_->Execute(
      "g.V().has('age', gte(20)).out('knows').out('knows').profile()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  const std::string trace = (*out)[0].value.as_string();
  EXPECT_NE(trace.find("MultiHopStep"), std::string::npos) << trace;
  EXPECT_NE(trace.find("join=knows>person>knows>person"), std::string::npos)
      << trace;
}

TEST_F(MultiHopCollapseTest, QueryLogRecordsCollapsedHops) {
  QueryLog::Global().Clear();
  QueryLog::Global().SetEnabled(true);
  ASSERT_TRUE(
      graph_on_
          ->Execute("g.V().has('age', gte(20)).out('knows').out('knows')")
          .ok());
  ASSERT_TRUE(graph_off_->Execute("g.V(1).out('knows')").ok());
  Result<sql::ResultSet> rs = db_.Execute(
      "SELECT script, collapsed_hops FROM sysmon.query_log "
      "WHERE layer = 'gremlin'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  uint64_t collapsed = 0, stepwise = SIZE_MAX;
  for (const Row& row : rs->rows) {
    if (row[0].as_string().find("out('knows').out") != std::string::npos) {
      collapsed = static_cast<uint64_t>(row[1].as_int());
    } else {
      stepwise = static_cast<uint64_t>(row[1].as_int());
    }
  }
  EXPECT_EQ(collapsed, 2u);
  EXPECT_EQ(stepwise, 0u);
}

// ----------------------------------------------------------------------
// Pass-level unit coverage (no execution)
// ----------------------------------------------------------------------

TEST_F(MultiHopCollapseTest, CompilePreservesFallbackBody) {
  Result<gremlin::Script> script = graph_on_->Compile(
      "g.V().has('age', gte(20)).out('knows').out('knows').out('knows')");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->statements.size(), 1u);
  const auto& steps = script->statements[0].traversal.steps;
  ASSERT_EQ(steps.size(), 2u);  // g.V() + MultiHopStep
  EXPECT_EQ(steps[1].kind, gremlin::StepKind::kMultiHop);
  ASSERT_NE(steps[1].multi_hop, nullptr);
  EXPECT_EQ(steps[1].multi_hop->hops.size(), 3u);
  EXPECT_EQ(steps[1].body.size(), 3u);  // the preserved out() steps
  for (const auto& preserved : steps[1].body) {
    EXPECT_EQ(preserved.kind, gremlin::StepKind::kVertex);
  }
}

TEST_F(MultiHopCollapseTest, CollapseDisabledLeavesPlanUntouched) {
  Result<gremlin::Script> script =
      graph_off_->Compile("g.V().out('knows').out('knows')");
  ASSERT_TRUE(script.ok());
  for (const auto& step : script->statements[0].traversal.steps) {
    EXPECT_NE(step.kind, gremlin::StepKind::kMultiHop);
  }
}

TEST_F(MultiHopCollapseTest, PlanKeySeparatesOptimizerToggle) {
  // The same script through both graphs must not share cache entries —
  // the optimizer bit is part of the plan key. (They use different caches
  // here, but the key must differ anyway for safety; verify indirectly by
  // checking both compile to their own shapes after each other.)
  const std::string script =
      "g.V().has('age', gte(20)).out('knows').out('knows')";
  ASSERT_TRUE(graph_on_->Execute(script).ok());
  ASSERT_TRUE(graph_off_->Execute(script).ok());
  Result<gremlin::Script> on = graph_on_->Compile(script);
  Result<gremlin::Script> off = graph_off_->Compile(script);
  ASSERT_TRUE(on.ok() && off.ok());
  EXPECT_NE(on->statements[0].traversal.steps.size(),
            off->statements[0].traversal.steps.size());
}

}  // namespace
}  // namespace db2graph::core
