// Copyright (c) 2026 The db2graph-repro Authors.
//
// Coverage for the block-at-a-time streaming pipeline:
//
//  * block-boundary correctness — every traversal shape produces the exact
//    same ordered results at block sizes 1, 7 and 1024 as the materialized
//    execution model;
//  * limit()/range() early termination, counter-asserted against the SQL
//    layer's rows_scanned (the acceptance bound: a limit(10) over a
//    100k-vertex table scans at most 10 + one block of rows per consulted
//    table, while the materialized path scans everything);
//  * barrier-step drain equivalence (order/tail/groupCount/cap/aggregates
//    over a streamed upstream);
//  * early-termination cancellation racing the parallel multi-table
//    fan-out (a TSan target: Close() mid-stream must cleanly cancel
//    producers that have not started and join the ones that have).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/db2graph.h"
#include "gremlin/graph_api.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

// Renders a traversal's result as an ordered list of strings; errors
// render too, so modes must agree on failures as well as results.
std::vector<std::string> RunOrdered(Db2Graph* graph, const std::string& q) {
  Result<std::vector<Traverser>> out = graph->Execute(q);
  if (!out.ok()) return {"ERROR: " + out.status().ToString()};
  std::vector<std::string> rendered;
  rendered.reserve(out->size());
  for (const Traverser& t : *out) rendered.push_back(t.ToString());
  return rendered;
}

// ------------------------------------------------------------------
// Block-boundary correctness + barrier drain equivalence.
// ------------------------------------------------------------------

// Partitioned LinkBench (10 vertex tables, 10 edge tables) with plain
// integer ids, so multi-table fan-out and table-order merging are always
// in play.
class StreamingEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 300;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
  }

  std::unique_ptr<Db2Graph> Open(bool streaming, size_t block_rows,
                                 bool vectorized = true) {
    Db2Graph::Options options;
    options.exec = ExecConfig()
                       .streaming(streaming)
                       .block_rows(block_rows)
                       .vectorized(vectorized);
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false),
        options);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (!graph.ok()) return nullptr;
    return std::move(*graph);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
};

TEST_F(StreamingEquivalenceTest, AllBlockSizesMatchMaterialized) {
  // Every family the pipeline carves differently: pure streaming chains,
  // limit/range short-circuits, stateful steps (dedup/store), barriers
  // (order/tail/groupCount/cap/count), adjacency in all directions, and
  // sub-traversal steps (where/not/repeat).
  const char* const kQueries[] = {
      "g.V()",
      "g.V().limit(1)",
      "g.V().limit(7)",
      "g.V().limit(1000)",
      "g.V().range(3, 11)",
      "g.V().range(0, 5)",
      "g.V().hasLabel('vt1')",
      "g.V().hasLabel('vt1').limit(5)",
      "g.V().has('version', 3).limit(4)",
      "g.V().id().limit(6)",
      "g.V().label().dedup()",
      "g.V().values('time').limit(9)",
      "g.V().valueMap('version').limit(3)",
      "g.V().dedup().limit(8)",
      "g.V().out().limit(6)",
      "g.V().out('et1')",
      "g.V().outE('et2').limit(3)",
      "g.V().in().limit(5)",
      "g.V().out().in().limit(4)",
      "g.V().both('et2').limit(5)",
      "g.V().both().count()",
      "g.E()",
      "g.E().limit(6)",
      "g.V().order().limit(5)",
      "g.V().values('time').order().tail(3)",
      "g.V().groupCount()",
      "g.V().count()",
      "g.V().out().count()",
      "g.V().store('s').limit(3).cap('s')",
      "g.V().limit(10).store('s').cap('s')",
      "g.V().where(outE('et1').count().is(gte(1))).limit(4)",
      "g.V().not(out('et1')).limit(5)",
      "g.V(5).repeat(out().dedup()).times(2)",
      "g.V().out().path().limit(4)",
      "g.V().out().simplePath().limit(5)",
  };

  std::unique_ptr<Db2Graph> materialized = Open(/*streaming=*/false, 256);
  ASSERT_NE(materialized, nullptr);
  const size_t kBlockSizes[] = {1, 7, 1024};
  for (const char* q : kQueries) {
    std::vector<std::string> expected = RunOrdered(materialized.get(), q);
    for (size_t block : kBlockSizes) {
      std::unique_ptr<Db2Graph> streaming = Open(/*streaming=*/true, block);
      ASSERT_NE(streaming, nullptr);
      EXPECT_EQ(expected, RunOrdered(streaming.get(), q))
          << q << " at block size " << block;
    }
  }
}

// The vectorized SQL path must be invisible above the RowStream seam:
// every block size produces identical ordered results whether the scans
// underneath run columnar kernels or the scalar operator tree.
TEST_F(StreamingEquivalenceTest, BlockSizesMatchUnderVectorizedAndScalar) {
  const char* const kQueries[] = {
      "g.V()",
      "g.V().limit(7)",
      "g.V().range(3, 11)",
      "g.V().hasLabel('vt1')",
      "g.V().has('version', 3).limit(4)",
      "g.V().values('time').limit(9)",
      "g.V().out('et1')",
      "g.V().out().in().limit(4)",
      "g.V().both().count()",
      "g.E().limit(6)",
      "g.V().values('time').order().tail(3)",
      "g.V().groupCount()",
      "g.V().where(outE('et1').count().is(gte(1))).limit(4)",
  };
  const size_t kBlockSizes[] = {1, 7, 1024};
  for (bool vectorized : {false, true}) {
    // Open() pushes the vectorized toggle onto the shared database, so
    // the baseline and its streaming counterparts are grouped per mode.
    std::unique_ptr<Db2Graph> materialized =
        Open(/*streaming=*/false, 256, vectorized);
    ASSERT_NE(materialized, nullptr);
    for (const char* q : kQueries) {
      std::vector<std::string> expected = RunOrdered(materialized.get(), q);
      for (size_t block : kBlockSizes) {
        std::unique_ptr<Db2Graph> streaming =
            Open(/*streaming=*/true, block, vectorized);
        ASSERT_NE(streaming, nullptr);
        EXPECT_EQ(expected, RunOrdered(streaming.get(), q))
            << q << " at block size " << block
            << (vectorized ? " (vectorized)" : " (scalar)");
      }
    }
  }
}

// ------------------------------------------------------------------
// Early termination, counter-asserted.
// ------------------------------------------------------------------

TEST(StreamingScanBudgetTest, LimitShortCircuitsSingleTableScan) {
  linkbench::Config config;
  config.num_vertices = 100000;
  config.edges_per_vertex = 0;  // vertex-scan test; links are irrelevant
  linkbench::Dataset dataset = linkbench::Generate(config);
  sql::Database db;
  ASSERT_TRUE(linkbench::LoadIntoDatabase(&db, dataset).ok());

  Result<std::unique_ptr<Db2Graph>> streaming =
      Db2Graph::Open(&db, linkbench::MakeOverlay());
  ASSERT_TRUE(streaming.ok());
  // The pre-streaming baseline: materialized interpretation AND no LIMIT
  // pushdown (both were introduced together; pushdown alone would bound
  // the baseline's scan through the SQL-side LimitOp).
  Db2Graph::Options mat_options;
  mat_options.exec = ExecConfig().streaming(false);
  mat_options.strategies.limit_pushdown = false;
  Result<std::unique_ptr<Db2Graph>> materialized =
      Db2Graph::Open(&db, linkbench::MakeOverlay(), mat_options);
  ASSERT_TRUE(materialized.ok());

  const std::string q = "g.V().hasLabel('vt3').limit(10)";
  const uint64_t kBlock = 256;  // default streaming block size

  sql::ExecStats::Counts before = db.stats().Snapshot();
  Result<std::vector<Traverser>> s_out = (*streaming)->Execute(q);
  sql::ExecStats::Counts mid = db.stats().Snapshot();
  Result<std::vector<Traverser>> m_out = (*materialized)->Execute(q);
  sql::ExecStats::Counts after = db.stats().Snapshot();
  ASSERT_TRUE(s_out.ok()) << s_out.status().ToString();
  ASSERT_TRUE(m_out.ok()) << m_out.status().ToString();
  ASSERT_EQ(s_out->size(), 10u);

  // Identical results...
  std::vector<std::string> s_ids;
  std::vector<std::string> m_ids;
  for (const Traverser& t : *s_out) s_ids.push_back(t.ToString());
  for (const Traverser& t : *m_out) m_ids.push_back(t.ToString());
  EXPECT_EQ(s_ids, m_ids);

  // ...but the streaming side stops scanning. The label predicate is
  // pushed into the WHERE clause, so the LIMIT-bounded scan visits rows
  // until 10 match — an order of magnitude under the acceptance bound,
  // four under the materialized full drain.
  uint64_t streamed = mid.rows_scanned - before.rows_scanned;
  uint64_t drained = after.rows_scanned - mid.rows_scanned;
  EXPECT_LE(streamed, 10 * 10 + kBlock);  // ~1-in-10 label selectivity
  EXPECT_GE(drained, 100000u);
  EXPECT_LT(streamed, drained);

  // Unfiltered limit: the pull hint asks the SQL cursor for exactly the
  // rows the limit still accepts.
  before = db.stats().Snapshot();
  Result<std::vector<Traverser>> plain = (*streaming)->Execute("g.V().limit(10)");
  mid = db.stats().Snapshot();
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 10u);
  EXPECT_LE(mid.rows_scanned - before.rows_scanned, 10 + kBlock);

  // range(lo, hi) terminates at hi, not at the end of the table.
  before = db.stats().Snapshot();
  Result<std::vector<Traverser>> ranged =
      (*streaming)->Execute("g.V().range(100, 110)");
  mid = db.stats().Snapshot();
  ASSERT_TRUE(ranged.ok());
  EXPECT_EQ(ranged->size(), 10u);
  EXPECT_LE(mid.rows_scanned - before.rows_scanned, 110 + kBlock);
}

TEST(StreamingScanBudgetTest, LimitBudgetAppliesPerConsultedTable) {
  // Ten vertex tables, no label: the limit's per-table budget is rendered
  // as a SQL LIMIT in each table's statement, so even the tables the
  // consumer never reaches (the parallel producers may have started them)
  // scan at most the budget.
  linkbench::Config config;
  config.num_vertices = 20000;
  config.edges_per_vertex = 0;
  linkbench::Dataset dataset = linkbench::GeneratePartitioned(config);
  sql::Database db;
  ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db, dataset).ok());
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
      &db, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
  ASSERT_TRUE(graph.ok());

  sql::ExecStats::Counts before = db.stats().Snapshot();
  Result<std::vector<Traverser>> out = (*graph)->Execute("g.V().limit(10)");
  sql::ExecStats::Counts after = db.stats().Snapshot();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 10u);
  const uint64_t kTables = 10;
  const uint64_t kBlock = 256;
  EXPECT_LE(after.rows_scanned - before.rows_scanned,
            kTables * (10 + kBlock));
}

// ------------------------------------------------------------------
// Early-termination cancellation vs the parallel fan-out (TSan target).
// ------------------------------------------------------------------

class StreamingCancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 4000;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(StreamingCancellationTest, CloseMidStreamRacesProducers) {
  // Directly drive the provider stream: pull a varying number of blocks
  // (including zero — Close before any Next cancels producers that may
  // not have started), then Close while the 10-table fan-out is running.
  for (int iter = 0; iter < 50; ++iter) {
    gremlin::LookupSpec spec;  // all tables
    Result<std::unique_ptr<gremlin::VertexStream>> stream =
        graph_->provider()->VerticesStreaming(spec);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    std::vector<gremlin::VertexPtr> block;
    for (int pulls = 0; pulls < iter % 4; ++pulls) {
      if (!(*stream)->Next(&block, 8)) break;
      EXPECT_TRUE((*stream)->status().ok());
    }
    (*stream)->Close();
    (*stream)->Close();  // idempotent
  }
}

TEST_F(StreamingCancellationTest, LimitQueriesCancelCleanly) {
  // The same race through the full stack: a saturated limit closes the
  // stream while per-table producers are mid-scan.
  for (int iter = 0; iter < 50; ++iter) {
    Result<std::vector<Traverser>> out =
        graph_->Execute("g.V().limit(" + std::to_string(1 + iter % 7) + ")");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->size(), static_cast<size_t>(1 + iter % 7));
  }
}

}  // namespace
}  // namespace db2graph::core
