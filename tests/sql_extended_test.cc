// Tests for the SQL engine extensions: ordered (range) indexes, HAVING,
// and randomized range-scan-vs-full-scan equivalence.

#include <gtest/gtest.h>

#include <random>

#include "sql/database.h"

namespace db2graph::sql {
namespace {

class SqlExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Measurements (
        id BIGINT PRIMARY KEY,
        sensor BIGINT,
        reading BIGINT
      );
      CREATE ORDERED INDEX idx_reading ON Measurements (reading);
    )sql")
                    .ok());
    for (int64_t i = 1; i <= 200; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO Measurements VALUES (" +
                              std::to_string(i) + ", " +
                              std::to_string(i % 7) + ", " +
                              std::to_string((i * 37) % 100) + ")")
                      .ok());
    }
  }

  ResultSet Query(const std::string& sql) {
    Result<ResultSet> rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for " << sql;
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlExtendedTest, RangePredicateUsesOrderedIndex) {
  db_.stats().Reset();
  ResultSet rs =
      Query("SELECT COUNT(*) FROM Measurements WHERE reading > 90");
  EXPECT_GE(db_.stats().Snapshot().range_scans, 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
  // Reference: full scan on an unindexed predicate path gives the same.
  ResultSet ref =
      Query("SELECT COUNT(*) FROM Measurements WHERE reading + 0 > 90");
  EXPECT_EQ(rs.rows[0][0], ref.rows[0][0]);
}

TEST_F(SqlExtendedTest, BetweenUsesBothBounds) {
  db_.stats().Reset();
  ResultSet rs = Query(
      "SELECT COUNT(*) FROM Measurements WHERE reading BETWEEN 10 AND 20");
  EXPECT_GE(db_.stats().Snapshot().range_scans, 1u);
  ResultSet ref = Query(
      "SELECT COUNT(*) FROM Measurements WHERE reading + 0 >= 10 AND "
      "reading + 0 <= 20");
  EXPECT_EQ(rs.rows[0][0], ref.rows[0][0]);
}

TEST_F(SqlExtendedTest, RangeScanSurvivesDeletesAndUpdates) {
  (void)Query("DELETE FROM Measurements WHERE reading > 50");
  (void)Query("UPDATE Measurements SET reading = 99 WHERE id = 1");
  db_.stats().Reset();
  ResultSet rs =
      Query("SELECT COUNT(*) FROM Measurements WHERE reading >= 99");
  EXPECT_GE(db_.stats().Snapshot().range_scans, 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{1}));
}

TEST_F(SqlExtendedTest, OrderedIndexRejectsMultiColumnAndUnique) {
  EXPECT_FALSE(
      db_.Execute("CREATE ORDERED INDEX i2 ON Measurements (id, sensor)")
          .ok());
  EXPECT_FALSE(
      db_.Execute("CREATE UNIQUE ORDERED INDEX i3 ON Measurements (sensor)")
          .ok());
}

TEST_F(SqlExtendedTest, HavingFiltersGroups) {
  ResultSet rs = Query(
      "SELECT sensor, COUNT(*) AS n FROM Measurements GROUP BY sensor "
      "HAVING COUNT(*) > 28 ORDER BY sensor");
  // 200 rows over 7 sensors: sensors 1..4 have 29 rows, 0,5,6 have 28.
  ASSERT_EQ(rs.rows.size(), 4u);
  for (const Row& row : rs.rows) {
    EXPECT_GT(row[1].as_int(), 28);
  }
}

TEST_F(SqlExtendedTest, HavingOnAggregateNotInSelectList) {
  ResultSet rs = Query(
      "SELECT sensor FROM Measurements GROUP BY sensor "
      "HAVING MAX(reading) >= 99");
  EXPECT_GE(rs.rows.size(), 1u);
}

TEST_F(SqlExtendedTest, HavingThroughPreparedStatement) {
  Result<PreparedStatement> prepared = db_.Prepare(
      "SELECT sensor, COUNT(*) FROM Measurements GROUP BY sensor "
      "HAVING COUNT(*) > ?");
  ASSERT_TRUE(prepared.ok());
  Result<ResultSet> rs = prepared->Execute({Value(int64_t{28})});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
  rs = prepared->Execute({Value(int64_t{1000})});
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

// Randomized range-equivalence sweep.
class RangeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeEquivalenceTest, OrderedIndexMatchesFullScan) {
  std::mt19937_64 rng(GetParam() * 271);
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE A (v BIGINT, tag VARCHAR(4));
    CREATE TABLE B (v BIGINT, tag VARCHAR(4));
    CREATE ORDERED INDEX idx_av ON A (v);
  )sql")
                  .ok());
  std::uniform_int_distribution<int64_t> values(-50, 50);
  for (int i = 0; i < 400; ++i) {
    int64_t v = values(rng);
    std::string row = "(" + std::to_string(v) + ", 't')";
    ASSERT_TRUE(db.Execute("INSERT INTO A VALUES " + row).ok());
    ASSERT_TRUE(db.Execute("INSERT INTO B VALUES " + row).ok());
  }
  for (int q = 0; q < 30; ++q) {
    int64_t lo = values(rng);
    int64_t hi = values(rng);
    if (lo > hi) std::swap(lo, hi);
    const char* shapes[] = {"v > %lld", "v >= %lld", "v < %lld",
                            "v <= %lld"};
    char pred[64];
    std::snprintf(pred, sizeof(pred), shapes[q % 4],
                  static_cast<long long>(q % 2 == 0 ? lo : hi));
    std::string predicate = pred;
    if (q % 3 == 0) {
      predicate = "v >= " + std::to_string(lo) + " AND v <= " +
                  std::to_string(hi);
    }
    auto a = db.Execute("SELECT COUNT(*), SUM(v) FROM A WHERE " + predicate);
    auto b = db.Execute("SELECT COUNT(*), SUM(v) FROM B WHERE " + predicate);
    ASSERT_TRUE(a.ok()) << predicate;
    ASSERT_TRUE(b.ok()) << predicate;
    EXPECT_EQ(a->rows[0][0], b->rows[0][0]) << predicate;
    EXPECT_EQ(a->rows[0][1], b->rows[0][1]) << predicate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeEquivalenceTest, ::testing::Range(1, 7));

TEST(ResultSetToStringTest, TruncationReportsHiddenAndTotalRows) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (id BIGINT PRIMARY KEY)").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO T VALUES (" + std::to_string(i) + ")").ok());
  }
  Result<ResultSet> rs = db.Execute("SELECT id FROM T ORDER BY id");
  ASSERT_TRUE(rs.ok());

  std::string truncated = rs->ToString(/*max_rows=*/5);
  EXPECT_NE(truncated.find("... (7 more rows, 12 total)"), std::string::npos)
      << truncated;
  // The hidden rows really are hidden.
  EXPECT_EQ(truncated.find("| 11"), std::string::npos) << truncated;

  std::string full = rs->ToString();
  EXPECT_NE(full.find("12 row(s)"), std::string::npos) << full;
  EXPECT_EQ(full.find("more rows"), std::string::npos) << full;

  // Exactly-at-the-cap is not truncation.
  std::string exact = rs->ToString(/*max_rows=*/12);
  EXPECT_NE(exact.find("12 row(s)"), std::string::npos) << exact;
}

}  // namespace
}  // namespace db2graph::sql
