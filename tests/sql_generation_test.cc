// Asserts the exact SQL the Graph Structure module generates for the
// paper's signature query shapes (Section 6's examples), via the SQL
// Dialect trace. This pins the compile-time strategies and the runtime
// optimizations to concrete statements.

#include <gtest/gtest.h>

#include "core/db2graph.h"

namespace db2graph::core {
namespace {

class SqlGenerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Patient (
        patientID BIGINT PRIMARY KEY, name VARCHAR(40),
        address VARCHAR(40), subscriptionID BIGINT);
      CREATE TABLE Disease (
        diseaseID BIGINT PRIMARY KEY, conceptName VARCHAR(40));
      CREATE TABLE HasDisease (
        patientID BIGINT, diseaseID BIGINT, description VARCHAR(40));
      CREATE INDEX idx_hd_p ON HasDisease (patientID);
      INSERT INTO Patient VALUES (1, 'Alice', 'a', 101);
      INSERT INTO Disease VALUES (11, 't2d');
      INSERT INTO HasDisease VALUES (1, 11, 'dx');
    )sql")
                    .ok());
    auto graph = Db2Graph::Open(&db_, R"json({
      "v_tables": [
        {"table_name": "Patient", "prefixed_id": true,
         "id": "'patient'::patientID", "fix_label": true,
         "label": "'patient'",
         "properties": ["patientID", "name", "address", "subscriptionID"]},
        {"table_name": "Disease", "id": "diseaseID", "fix_label": true,
         "label": "'disease'", "properties": ["diseaseID", "conceptName"]}
      ],
      "e_tables": [
        {"table_name": "HasDisease", "src_v_table": "Patient",
         "src_v": "'patient'::patientID", "dst_v_table": "Disease",
         "dst_v": "diseaseID", "implicit_edge_id": true,
         "fix_label": true, "label": "'hasDisease'"}
      ]
    })json");
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
    graph_->dialect()->EnableTrace();
  }

  std::vector<std::string> Trace(const std::string& gremlin) {
    (void)graph_->dialect()->TakeTrace();
    auto out = graph_->Execute(gremlin);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << " for " << gremlin;
    return graph_->dialect()->TakeTrace();
  }

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(SqlGenerationTest, PredicatePushdownProducesWhereClause) {
  // The paper's Section 6.2 example: g.V().has('name', 'Alice') becomes
  // "SELECT ... WHERE name = 'Alice'" — on the one table having `name`.
  std::vector<std::string> sql = Trace("g.V().has('name', 'Alice')");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0],
            "SELECT \"patientID\", \"name\", \"address\", "
            "\"subscriptionID\" FROM \"Patient\" WHERE \"name\" = 'Alice'");
}

TEST_F(SqlGenerationTest, ProjectionPushdownNarrowsSelectList) {
  // g.V().values('name','address') fetches only id + projected columns.
  std::vector<std::string> sql = Trace("g.V().values('name', 'address')");
  ASSERT_EQ(sql.size(), 1u);  // Disease pruned: has neither property
  EXPECT_EQ(sql[0],
            "SELECT \"patientID\", \"name\", \"address\" FROM \"Patient\"");
}

TEST_F(SqlGenerationTest, AggregatePushdownProducesSelectCount) {
  std::vector<std::string> sql =
      Trace("g.V().hasLabel('disease').count()");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0], "SELECT COUNT(*) FROM \"Disease\"");
}

TEST_F(SqlGenerationTest, MutationSkipsTheVertexFetch) {
  // g.V(id).outE(lbl): exactly one SQL, on the edge table, by source id.
  std::vector<std::string> sql =
      Trace("g.V('patient::1').outE('hasDisease')");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0],
            "SELECT \"patientID\", \"diseaseID\", \"description\" FROM "
            "\"HasDisease\" WHERE \"patientID\" IN (1)");
}

TEST_F(SqlGenerationTest, CombinedGetLinkShape) {
  // The paper's combined example: one SELECT COUNT(*) with src + dst.
  std::vector<std::string> sql = Trace(
      "g.V('patient::1').outE('hasDisease').where(inV().hasId(11))"
      ".count()");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0],
            "SELECT COUNT(*) FROM \"HasDisease\" WHERE \"patientID\" IN (1)"
            " AND \"diseaseID\" IN (11)");
}

TEST_F(SqlGenerationTest, ImplicitEdgeIdBecomesConjunctivePredicates) {
  // Section 6.3: the implicit id decomposes into src/dst conjuncts.
  std::vector<std::string> sql =
      Trace("g.E('patient::1::hasDisease::11')");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0],
            "SELECT \"patientID\", \"diseaseID\", \"description\" FROM "
            "\"HasDisease\" WHERE ((\"patientID\" = 1 AND \"diseaseID\" = "
            "11))");
}

TEST_F(SqlGenerationTest, PrefixedIdPinsOneTableWithUnprefixedColumns) {
  // 'patient'::1 pins Patient and strips the constant prefix.
  std::vector<std::string> sql = Trace("g.V('patient::1')");
  ASSERT_EQ(sql.size(), 1u);
  EXPECT_EQ(sql[0],
            "SELECT \"patientID\", \"name\", \"address\", "
            "\"subscriptionID\" FROM \"Patient\" WHERE \"patientID\" IN "
            "(1)");
}

TEST_F(SqlGenerationTest, EndpointFetchQueriesOnlyTheDeclaredTable) {
  // e.inV(): dst_v_table = Disease, so exactly one vertex query follows
  // the edge query.
  std::vector<std::string> sql =
      Trace("g.V('patient::1').outE('hasDisease').inV()");
  ASSERT_EQ(sql.size(), 2u);
  EXPECT_EQ(sql[1],
            "SELECT \"diseaseID\", \"conceptName\" FROM \"Disease\" WHERE "
            "\"diseaseID\" IN (11)");
}

TEST_F(SqlGenerationTest, NaiveModeQueriesEveryTable) {
  Db2Graph::Options naive;
  naive.strategies = StrategyOptions::AllOff();
  naive.runtime = RuntimeOptions::AllOff();
  auto graph = Db2Graph::Open(&db_, graph_->topology().config());
  // Reuse the same overlay config through the existing graph's topology.
  ASSERT_TRUE(graph.ok());
  auto naive_graph =
      Db2Graph::Open(&db_, graph_->topology().config(), naive);
  ASSERT_TRUE(naive_graph.ok());
  (*naive_graph)->dialect()->EnableTrace();
  auto out = (*naive_graph)->Execute("g.V('patient::1').hasLabel('patient')");
  ASSERT_TRUE(out.ok());
  std::vector<std::string> sql = (*naive_graph)->dialect()->TakeTrace();
  // Both vertex tables queried; the prefixed id cannot pin, so Disease is
  // scanned wholesale and filtered client-side.
  ASSERT_EQ(sql.size(), 2u);
  EXPECT_NE(sql[0].find("FROM \"Patient\""), std::string::npos);
  EXPECT_EQ(sql[1], "SELECT \"diseaseID\", \"conceptName\" FROM \"Disease\"");
}

}  // namespace
}  // namespace db2graph::core
