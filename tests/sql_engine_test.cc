// Unit tests for the MiniDb2 relational engine: DDL, DML, SELECT pipeline,
// indexes, views, table functions, and transactions.

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "sql/database.h"
#include "sql/table.h"

namespace db2graph::sql {
namespace {

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Patient (
        patientID BIGINT PRIMARY KEY,
        name VARCHAR(100),
        address VARCHAR(200),
        subscriptionID BIGINT
      );
      CREATE TABLE Disease (
        diseaseID BIGINT PRIMARY KEY,
        conceptCode VARCHAR(20),
        conceptName VARCHAR(100)
      );
      CREATE TABLE HasDisease (
        patientID BIGINT,
        diseaseID BIGINT,
        description VARCHAR(200),
        FOREIGN KEY (patientID) REFERENCES Patient (patientID),
        FOREIGN KEY (diseaseID) REFERENCES Disease (diseaseID)
      );
      INSERT INTO Patient VALUES
        (1, 'Alice', '1 Main St', 101),
        (2, 'Bob', '2 Oak Ave', 102),
        (3, 'Carol', '3 Pine Rd', 103);
      INSERT INTO Disease VALUES
        (10, 'D10', 'diabetes'),
        (11, 'D11', 'type 2 diabetes'),
        (12, 'D12', 'hypertension');
      INSERT INTO HasDisease VALUES
        (1, 11, 'diagnosed 2019'),
        (2, 12, 'diagnosed 2020'),
        (3, 11, 'diagnosed 2021');
    )sql")
                    .ok());
  }

  ResultSet Query(const std::string& sql) {
    Result<ResultSet> rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for " << sql;
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlEngineTest, SelectStarReturnsAllRowsAndColumns) {
  ResultSet rs = Query("SELECT * FROM Patient");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"patientID", "name", "address",
                                      "subscriptionID"}));
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, WhereEqualityFilters) {
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
}

TEST_F(SqlEngineTest, WhereUsesPrimaryKeyIndex) {
  db_.stats().Reset();
  Query("SELECT name FROM Patient WHERE patientID = 2");
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
}

TEST_F(SqlEngineTest, InListProbesIndexPerValue) {
  db_.stats().Reset();
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID IN (1, 3)");
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_GE(db_.stats().Snapshot().index_probes, 2u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
}

TEST_F(SqlEngineTest, NonIndexedPredicateFallsBackToScan) {
  db_.stats().Reset();
  ResultSet rs = Query("SELECT * FROM Patient WHERE name = 'Alice'");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_GE(db_.stats().Snapshot().full_scans, 1u);
}

TEST_F(SqlEngineTest, SecondaryIndexIsUsedAfterCreation) {
  Query("SELECT 1 FROM Patient");  // warm-up no-op
  ASSERT_TRUE(db_.Execute("CREATE INDEX idx_name ON Patient (name)").ok());
  db_.stats().Reset();
  ResultSet rs = Query("SELECT * FROM Patient WHERE name = 'Alice'");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);
}

TEST_F(SqlEngineTest, JoinOnForeignKey) {
  ResultSet rs = Query(
      "SELECT p.name, d.conceptName FROM HasDisease h "
      "JOIN Patient p ON h.patientID = p.patientID "
      "JOIN Disease d ON h.diseaseID = d.diseaseID "
      "ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  EXPECT_EQ(rs.rows[0][1], Value("type 2 diabetes"));
}

TEST_F(SqlEngineTest, ImplicitJoinViaWhere) {
  ResultSet rs = Query(
      "SELECT p.name FROM Patient p, HasDisease h "
      "WHERE p.patientID = h.patientID AND h.diseaseID = 11 ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  EXPECT_EQ(rs.rows[1][0], Value("Carol"));
}

TEST_F(SqlEngineTest, LeftJoinPreservesUnmatchedRows) {
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (4, 'Dave', '4 Elm', "
                          "104)")
                  .ok());
  ResultSet rs = Query(
      "SELECT p.name, h.diseaseID FROM Patient p "
      "LEFT JOIN HasDisease h ON p.patientID = h.patientID "
      "ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[3][0], Value("Dave"));
  EXPECT_TRUE(rs.rows[3][1].is_null());
}

TEST_F(SqlEngineTest, AggregatesOverWholeTable) {
  ResultSet rs = Query(
      "SELECT COUNT(*), MIN(patientID), MAX(patientID), AVG(patientID) "
      "FROM Patient");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{1}));
  EXPECT_EQ(rs.rows[0][2], Value(int64_t{3}));
  EXPECT_DOUBLE_EQ(rs.rows[0][3].NumericValue(), 2.0);
}

TEST_F(SqlEngineTest, CountOnEmptyResultIsZero) {
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient WHERE patientID = 99");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{0}));
}

TEST_F(SqlEngineTest, GroupByWithAggregate) {
  ResultSet rs = Query(
      "SELECT diseaseID, COUNT(*) AS n FROM HasDisease "
      "GROUP BY diseaseID ORDER BY n DESC, diseaseID");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{11}));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, DistinctRemovesDuplicates) {
  ResultSet rs = Query("SELECT DISTINCT diseaseID FROM HasDisease");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEngineTest, OrderByDescAndLimit) {
  ResultSet rs =
      Query("SELECT patientID FROM Patient ORDER BY patientID DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[1][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, ArithmeticAndStringConcat) {
  ResultSet rs = Query(
      "SELECT patientID * 2 + 1, name || '!' FROM Patient WHERE "
      "patientID = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[0][1], Value("Alice!"));
}

TEST_F(SqlEngineTest, LikePatterns) {
  ResultSet rs = Query("SELECT name FROM Patient WHERE name LIKE 'A%'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  rs = Query("SELECT name FROM Patient WHERE name LIKE '_ob'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
}

TEST_F(SqlEngineTest, IsNullAndIsNotNull) {
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Patient (patientID, name) VALUES (5, 'Eve')")
          .ok());
  ResultSet rs = Query("SELECT name FROM Patient WHERE address IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Eve"));
  rs = Query(
      "SELECT COUNT(*) FROM Patient WHERE address IS NOT NULL");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
}

TEST_F(SqlEngineTest, PrimaryKeyUniquenessEnforced) {
  Result<ResultSet> rs =
      db_.Execute("INSERT INTO Patient VALUES (1, 'Dup', 'x', 1)");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, ForeignKeyEnforcedOnInsert) {
  Result<ResultSet> rs =
      db_.Execute("INSERT INTO HasDisease VALUES (99, 11, 'bad patient')");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, NotNullEnforced) {
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE T (a BIGINT NOT NULL, b VARCHAR(10))").ok());
  Result<ResultSet> rs = db_.Execute("INSERT INTO T (b) VALUES ('x')");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, UpdateChangesMatchingRows) {
  ResultSet rs =
      Query("UPDATE Patient SET address = 'moved' WHERE patientID = 1");
  EXPECT_EQ(rs.affected, 1);
  rs = Query("SELECT address FROM Patient WHERE patientID = 1");
  EXPECT_EQ(rs.rows[0][0], Value("moved"));
}

TEST_F(SqlEngineTest, DeleteRemovesRowsAndIndexEntries) {
  ResultSet rs = Query("DELETE FROM HasDisease WHERE diseaseID = 11");
  EXPECT_EQ(rs.affected, 2);
  rs = Query("SELECT COUNT(*) FROM HasDisease");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{1}));
}

TEST_F(SqlEngineTest, ViewExpandsAtQueryTimeAndSeesUpdates) {
  ASSERT_TRUE(db_.Execute(
                     "CREATE VIEW Diabetics AS SELECT p.patientID, p.name "
                     "FROM Patient p JOIN HasDisease h ON p.patientID = "
                     "h.patientID WHERE h.diseaseID = 11")
                  .ok());
  ResultSet rs = Query("SELECT * FROM Diabetics ORDER BY patientID");
  ASSERT_EQ(rs.rows.size(), 2u);
  // A new base-table row is visible through the view immediately.
  ASSERT_TRUE(
      db_.Execute("INSERT INTO HasDisease VALUES (2, 11, 'later')").ok());
  rs = Query("SELECT * FROM Diabetics");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, ViewSchemaIsDerivedWithoutExecution) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW V AS SELECT name AS who, "
                          "patientID * 2 AS twice FROM Patient")
                  .ok());
  const TableSchema* schema = db_.GetSchema("V");
  ASSERT_NE(schema, nullptr);
  ASSERT_EQ(schema->columns.size(), 2u);
  EXPECT_EQ(schema->columns[0].name, "who");
  EXPECT_EQ(schema->columns[1].name, "twice");
}

TEST_F(SqlEngineTest, SubqueryInFrom) {
  ResultSet rs = Query(
      "SELECT COUNT(*) FROM (SELECT patientID FROM Patient "
      "WHERE patientID > 1) AS sub");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, TableFunctionInFrom) {
  db_.RegisterTableFunction(
      "twoRows", [](const std::vector<Value>& args) -> Result<ResultSet> {
        ResultSet rs;
        rs.columns = {"a", "b"};
        rs.rows.push_back({args.empty() ? Value(int64_t{0}) : args[0],
                           Value("x")});
        rs.rows.push_back({Value(int64_t{2}), Value("y")});
        return rs;
      });
  ResultSet rs = Query(
      "SELECT t.a, t.b FROM TABLE (twoRows(7)) AS t (a BIGINT, b "
      "VARCHAR(5)) ORDER BY a");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
  EXPECT_EQ(rs.rows[1][0], Value(int64_t{7}));
}

TEST_F(SqlEngineTest, PreparedStatementWithParameters) {
  Result<PreparedStatement> prepared =
      db_.Prepare("SELECT name FROM Patient WHERE patientID = ?");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->param_count(), 1);
  Result<ResultSet> rs = prepared->Execute({Value(int64_t{2})});
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value("Bob"));
  rs = prepared->Execute({Value(int64_t{3})});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0], Value("Carol"));
}

TEST_F(SqlEngineTest, PreparedStatementParamCountMismatch) {
  Result<PreparedStatement> prepared =
      db_.Prepare("SELECT name FROM Patient WHERE patientID = ?");
  ASSERT_TRUE(prepared.ok());
  Result<ResultSet> rs = prepared->Execute({});
  EXPECT_FALSE(rs.ok());
}

TEST_F(SqlEngineTest, TransactionRollbackUndoesAllChanges) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (7, 'Tmp', 't', 107)")
                  .ok());
  ASSERT_TRUE(
      db_.Execute("UPDATE Patient SET name = 'Changed' WHERE patientID = 1")
          .ok());
  ASSERT_TRUE(
      db_.Execute("DELETE FROM Patient WHERE patientID = 3").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  rs = Query("SELECT name FROM Patient WHERE patientID = 1");
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  rs = Query("SELECT COUNT(*) FROM Patient WHERE patientID = 3");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{1}));
}

TEST_F(SqlEngineTest, TransactionCommitKeepsChanges) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (8, 'Kept', 'k', 108)")
                  .ok());
  ASSERT_TRUE(db_.Execute("COMMIT").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{4}));
}

TEST_F(SqlEngineTest, RollbackRestoresIndexConsistency) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(
      db_.Execute("DELETE FROM Patient WHERE patientID = 2").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  db_.stats().Reset();
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);  // found via restored index
}

TEST_F(SqlEngineTest, BetweenPredicate) {
  ResultSet rs =
      Query("SELECT COUNT(*) FROM Patient WHERE patientID BETWEEN 1 AND 2");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, ParseErrorsSurfaceAsInvalidArgument) {
  Result<ResultSet> rs = db_.Execute("SELEC * FORM Patient");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlEngineTest, UnknownTableIsNotFound) {
  Result<ResultSet> rs = db_.Execute("SELECT * FROM Nope");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlEngineTest, DropTableRemovesRelation) {
  ASSERT_TRUE(db_.Execute("DROP TABLE HasDisease").ok());
  EXPECT_FALSE(db_.HasRelation("HasDisease"));
  EXPECT_FALSE(db_.Execute("SELECT * FROM HasDisease").ok());
}

TEST_F(SqlEngineTest, ApproxBytesGrowsWithData) {
  size_t before = db_.ApproxBytes();
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (" +
                            std::to_string(i) + ", 'P', 'addr', 1)")
                    .ok());
  }
  EXPECT_GT(db_.ApproxBytes(), before);
}

TEST_F(SqlEngineTest, CatalogListsTablesAndViews) {
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW V1 AS SELECT name FROM Patient").ok());
  std::vector<std::string> tables = db_.TableNames();
  EXPECT_EQ(tables.size(), 3u);
  std::vector<std::string> views = db_.ViewNames();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0], "V1");
}

TEST_F(SqlEngineTest, SchemaExposesPrimaryAndForeignKeys) {
  const TableSchema* schema = db_.GetSchema("HasDisease");
  ASSERT_NE(schema, nullptr);
  EXPECT_FALSE(schema->has_primary_key());
  ASSERT_EQ(schema->foreign_keys.size(), 2u);
  EXPECT_EQ(schema->foreign_keys[0].ref_table, "Patient");
}

// The multi-row VALUES and quoted-identifier paths.
TEST_F(SqlEngineTest, MultiRowInsertAndQuotedIdentifiers) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE \"Mixed\" (\"idCol\" BIGINT)").ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Mixed VALUES (1), (2), (3)").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Mixed");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
}

// ------------------------------------------------------------------
// Columnar storage + vectorized execution
// ------------------------------------------------------------------

// Every statement must produce identical results on the vectorized and
// the scalar path, including over NULL-heavy columns (kernels must drop
// NULL cells exactly where three-valued logic does, and aggregates must
// skip them exactly like AggState does).
TEST_F(SqlEngineTest, VectorizedAndScalarAgreeOnNullHeavyColumns) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Nully (id BIGINT, score DOUBLE, tag VARCHAR(10));
      INSERT INTO Nully VALUES
        (1, 1.5, 'a'), (2, NULL, NULL), (NULL, 2.5, 'b'),
        (4, NULL, 'a'), (5, 7.25, NULL), (NULL, NULL, NULL);
    )sql")
                  .ok());
  const char* const kQueries[] = {
      "SELECT * FROM Nully",
      "SELECT id, tag FROM Nully",
      "SELECT * FROM Nully WHERE id > 1",
      "SELECT * FROM Nully WHERE score >= 2.5",
      "SELECT * FROM Nully WHERE tag = 'a'",
      "SELECT * FROM Nully WHERE id <> 4",
      "SELECT * FROM Nully WHERE 2 < id",
      "SELECT * FROM Nully WHERE id > 0.5",
      "SELECT * FROM Nully WHERE id = 'a'",
      "SELECT * FROM Nully WHERE id IS NULL",
      "SELECT * FROM Nully WHERE tag IS NOT NULL",
      "SELECT * FROM Nully WHERE id > 1 AND tag = 'a'",
      "SELECT * FROM Nully WHERE id + 1 > 2",  // scalar-fallback kernel
      "SELECT COUNT(*), COUNT(id), COUNT(score) FROM Nully",
      "SELECT SUM(id), AVG(score), MIN(id), MAX(score) FROM Nully",
      "SELECT MIN(tag), MAX(tag), SUM(score) FROM Nully",
      "SELECT tag, COUNT(*) FROM Nully GROUP BY tag",
      "SELECT tag, SUM(id), MIN(score) FROM Nully GROUP BY tag",
      "SELECT DISTINCT tag FROM Nully",
  };
  for (const char* q : kQueries) {
    db_.SetExecConfig(db_.exec_config().vectorized(true));
    Result<ResultSet> vectorized = db_.Execute(q);
    db_.SetExecConfig(db_.exec_config().vectorized(false));
    Result<ResultSet> scalar = db_.Execute(q);
    db_.SetExecConfig(db_.exec_config().vectorized(true));
    ASSERT_TRUE(vectorized.ok()) << q << ": " << vectorized.status().ToString();
    ASSERT_TRUE(scalar.ok()) << q << ": " << scalar.status().ToString();
    EXPECT_EQ(vectorized->columns, scalar->columns) << q;
    EXPECT_EQ(vectorized->rows, scalar->rows) << q;
  }
}

TEST_F(SqlEngineTest, ExecModeAttributesVectorizedAndScalarOperators) {
  // Full scan + column projection: pure vectorized.
  ResultSet rs = Query("SELECT name FROM Patient");
  EXPECT_STREQ(rs.exec.ExecMode(), "vectorized");
  EXPECT_EQ(rs.exec.vectorized_rows, 3u);
  EXPECT_EQ(rs.exec.scalar_fallback_rows, 0u);

  // Computed select item: the column scan feeds the scalar projection.
  rs = Query("SELECT patientID + 1 FROM Patient");
  EXPECT_STREQ(rs.exec.ExecMode(), "mixed");

  // Index probes stay on the scalar join machinery.
  rs = Query("SELECT name FROM Patient WHERE patientID = 2");
  EXPECT_STREQ(rs.exec.ExecMode(), "scalar");
  EXPECT_EQ(rs.exec.index_probes, 1u);

  // A predicate without a kernel runs the scalar evaluator inside the
  // vectorized filter, visible as scalar_fallback_rows.
  rs = Query("SELECT name FROM Patient WHERE patientID + 0 = 2");
  EXPECT_STREQ(rs.exec.ExecMode(), "vectorized");
  EXPECT_EQ(rs.exec.scalar_fallback_rows, 3u);

  // The toggle forces everything back onto the row operators.
  db_.SetExecConfig(db_.exec_config().vectorized(false));
  rs = Query("SELECT name FROM Patient");
  EXPECT_STREQ(rs.exec.ExecMode(), "scalar");
  EXPECT_EQ(rs.exec.vectorized_rows, 0u);
  db_.SetExecConfig(db_.exec_config().vectorized(true));
}

// Shim coverage: the deprecated per-flag setters must keep routing
// through the session ExecConfig until callers finish migrating.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(SqlEngineTest, DeprecatedExecutionTogglesRouteThroughExecConfig) {
  db_.set_vectorized_execution(false);
  EXPECT_FALSE(db_.ResolveExecConfig().vectorized());
  EXPECT_FALSE(db_.vectorized_execution());
  ResultSet rs = Query("SELECT name FROM Patient");
  EXPECT_STREQ(rs.exec.ExecMode(), "scalar");

  db_.set_vectorized_execution(true);
  EXPECT_TRUE(db_.ResolveExecConfig().vectorized());

  db_.set_profile_execution(true);
  EXPECT_TRUE(db_.ResolveExecConfig().profile());
  rs = Query("SELECT name FROM Patient");
  EXPECT_FALSE(rs.exec.op_profiles.empty());
  db_.set_profile_execution(false);
  EXPECT_FALSE(db_.ResolveExecConfig().profile());
}
#pragma GCC diagnostic pop

// Deletes leave a recyclable slot; re-inserts reuse it without growing
// the column vectors, and both execution modes keep dead slots invisible.
TEST_F(SqlEngineTest, DeletedSlotsAreRecycledAndStayInvisible) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Slots (id BIGINT PRIMARY KEY, v VARCHAR(10));
      INSERT INTO Slots VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd');
    )sql")
                  .ok());
  Table* table = db_.GetTable("Slots");
  ASSERT_NE(table, nullptr);
  const size_t slots = table->slot_count();
  ASSERT_TRUE(db_.Execute("DELETE FROM Slots WHERE id = 2 OR id = 3").ok());
  EXPECT_EQ(table->row_count(), 2u);
  EXPECT_EQ(table->slot_count(), slots);
  for (bool vectorized : {true, false}) {
    db_.SetExecConfig(db_.exec_config().vectorized(vectorized));
    EXPECT_EQ(Query("SELECT COUNT(*) FROM Slots").rows[0][0],
              Value(int64_t{2}));
  }
  db_.SetExecConfig(db_.exec_config().vectorized(true));
  ASSERT_TRUE(db_.Execute("INSERT INTO Slots VALUES (5, 'e'), (6, 'f')").ok());
  EXPECT_EQ(table->slot_count(), slots);  // free slots recycled, no growth
  EXPECT_EQ(table->row_count(), 4u);
  // The primary-key index probes the recycled slots correctly.
  ResultSet rs = Query("SELECT v FROM Slots WHERE id = 6");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("f"));
  EXPECT_EQ(rs.exec.index_probes, 1u);
}

// Index postings hold stable slot numbers, so in-place column rewrites
// (UPDATE of an unrelated column) must not invalidate them.
TEST_F(SqlEngineTest, IndexPostingsSurviveColumnRewrites) {
  ASSERT_TRUE(
      db_.Execute("CREATE INDEX idx_sub ON Patient (subscriptionID)").ok());
  ASSERT_TRUE(
      db_.Execute("UPDATE Patient SET address = 'moved' WHERE patientID = 2")
          .ok());
  ResultSet rs =
      Query("SELECT name, address FROM Patient WHERE subscriptionID = 102");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
  EXPECT_EQ(rs.rows[0][1], Value("moved"));
  EXPECT_EQ(rs.exec.index_probes, 1u);
  // Rewriting the indexed column itself moves the posting.
  ASSERT_TRUE(
      db_.Execute(
             "UPDATE Patient SET subscriptionID = 202 WHERE patientID = 2")
          .ok());
  EXPECT_TRUE(
      Query("SELECT name FROM Patient WHERE subscriptionID = 102")
          .rows.empty());
  rs = Query("SELECT name FROM Patient WHERE subscriptionID = 202");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
}

TEST_F(SqlEngineTest, ColumnStatsTrackCountsAndMinMax) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Stats (id BIGINT, score DOUBLE);
      INSERT INTO Stats VALUES (1, 2.5), (2, NULL), (7, 9.5), (4, 0.5);
    )sql")
                  .ok());
  const Table* table = db_.GetTable("Stats");
  ASSERT_NE(table, nullptr);
  Table::ColumnStats id_stats = table->GetColumnStats(0);
  EXPECT_EQ(id_stats.row_count, 4u);
  EXPECT_EQ(id_stats.null_count, 0u);
  EXPECT_EQ(id_stats.min, Value(int64_t{1}));
  EXPECT_EQ(id_stats.max, Value(int64_t{7}));
  Table::ColumnStats score_stats = table->GetColumnStats(1);
  EXPECT_EQ(score_stats.null_count, 1u);
  EXPECT_EQ(score_stats.min, Value(0.5));
  EXPECT_EQ(score_stats.max, Value(9.5));
  // Deleting the extreme value forces the lazy min/max rescan.
  ASSERT_TRUE(db_.Execute("DELETE FROM Stats WHERE id = 7").ok());
  id_stats = table->GetColumnStats(0);
  EXPECT_EQ(id_stats.row_count, 3u);
  EXPECT_EQ(id_stats.max, Value(int64_t{4}));
  EXPECT_EQ(table->GetColumnStats(1).max, Value(2.5));
  // The write path published per-column gauges to the global registry.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("sql.colstats.Stats.id.rows")->Value(), 3);
  EXPECT_EQ(registry.GetGauge("sql.colstats.Stats.score.nulls")->Value(), 1);
}

// OrderedIndex::ApproxBytes is driven by actual encoded key widths, not a
// per-entry constant: wider keys cost more bytes, and erases give the
// bytes back.
TEST_F(SqlEngineTest, OrderedIndexBytesTrackActualKeyWidths) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Keys (id BIGINT, sk VARCHAR(8), lk VARCHAR(64));
      CREATE ORDERED INDEX oi_short ON Keys (sk);
      CREATE ORDERED INDEX oi_long ON Keys (lk);
      INSERT INTO Keys VALUES
        (1, 'a', 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa'),
        (2, 'b', 'bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb');
    )sql")
                  .ok());
  const Table* table = db_.GetTable("Keys");
  ASSERT_NE(table, nullptr);
  const TableSchema& schema = table->schema();
  const OrderedIndex* short_index =
      table->FindOrderedIndexOn(*schema.ColumnIndex("sk"));
  const OrderedIndex* long_index =
      table->FindOrderedIndexOn(*schema.ColumnIndex("lk"));
  ASSERT_NE(short_index, nullptr);
  ASSERT_NE(long_index, nullptr);
  // Encoded string keys are length + 2.
  EXPECT_EQ(short_index->key_bytes(), 2u * (1 + 2));
  EXPECT_EQ(long_index->key_bytes(), 2u * (32 + 2));
  EXPECT_GT(long_index->ApproxBytes(), short_index->ApproxBytes());
  size_t before = long_index->ApproxBytes();
  ASSERT_TRUE(db_.Execute("DELETE FROM Keys WHERE id = 2").ok());
  EXPECT_EQ(long_index->key_bytes(), 32u + 2);
  EXPECT_LT(long_index->ApproxBytes(), before);
}

}  // namespace
}  // namespace db2graph::sql
