// Unit tests for the MiniDb2 relational engine: DDL, DML, SELECT pipeline,
// indexes, views, table functions, and transactions.

#include <gtest/gtest.h>

#include "sql/database.h"

namespace db2graph::sql {
namespace {

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Patient (
        patientID BIGINT PRIMARY KEY,
        name VARCHAR(100),
        address VARCHAR(200),
        subscriptionID BIGINT
      );
      CREATE TABLE Disease (
        diseaseID BIGINT PRIMARY KEY,
        conceptCode VARCHAR(20),
        conceptName VARCHAR(100)
      );
      CREATE TABLE HasDisease (
        patientID BIGINT,
        diseaseID BIGINT,
        description VARCHAR(200),
        FOREIGN KEY (patientID) REFERENCES Patient (patientID),
        FOREIGN KEY (diseaseID) REFERENCES Disease (diseaseID)
      );
      INSERT INTO Patient VALUES
        (1, 'Alice', '1 Main St', 101),
        (2, 'Bob', '2 Oak Ave', 102),
        (3, 'Carol', '3 Pine Rd', 103);
      INSERT INTO Disease VALUES
        (10, 'D10', 'diabetes'),
        (11, 'D11', 'type 2 diabetes'),
        (12, 'D12', 'hypertension');
      INSERT INTO HasDisease VALUES
        (1, 11, 'diagnosed 2019'),
        (2, 12, 'diagnosed 2020'),
        (3, 11, 'diagnosed 2021');
    )sql")
                    .ok());
  }

  ResultSet Query(const std::string& sql) {
    Result<ResultSet> rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for " << sql;
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlEngineTest, SelectStarReturnsAllRowsAndColumns) {
  ResultSet rs = Query("SELECT * FROM Patient");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"patientID", "name", "address",
                                      "subscriptionID"}));
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, WhereEqualityFilters) {
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
}

TEST_F(SqlEngineTest, WhereUsesPrimaryKeyIndex) {
  db_.stats().Reset();
  Query("SELECT name FROM Patient WHERE patientID = 2");
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
}

TEST_F(SqlEngineTest, InListProbesIndexPerValue) {
  db_.stats().Reset();
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID IN (1, 3)");
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_GE(db_.stats().Snapshot().index_probes, 2u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
}

TEST_F(SqlEngineTest, NonIndexedPredicateFallsBackToScan) {
  db_.stats().Reset();
  ResultSet rs = Query("SELECT * FROM Patient WHERE name = 'Alice'");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_GE(db_.stats().Snapshot().full_scans, 1u);
}

TEST_F(SqlEngineTest, SecondaryIndexIsUsedAfterCreation) {
  Query("SELECT 1 FROM Patient");  // warm-up no-op
  ASSERT_TRUE(db_.Execute("CREATE INDEX idx_name ON Patient (name)").ok());
  db_.stats().Reset();
  ResultSet rs = Query("SELECT * FROM Patient WHERE name = 'Alice'");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(db_.stats().Snapshot().full_scans, 0u);
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);
}

TEST_F(SqlEngineTest, JoinOnForeignKey) {
  ResultSet rs = Query(
      "SELECT p.name, d.conceptName FROM HasDisease h "
      "JOIN Patient p ON h.patientID = p.patientID "
      "JOIN Disease d ON h.diseaseID = d.diseaseID "
      "ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  EXPECT_EQ(rs.rows[0][1], Value("type 2 diabetes"));
}

TEST_F(SqlEngineTest, ImplicitJoinViaWhere) {
  ResultSet rs = Query(
      "SELECT p.name FROM Patient p, HasDisease h "
      "WHERE p.patientID = h.patientID AND h.diseaseID = 11 ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  EXPECT_EQ(rs.rows[1][0], Value("Carol"));
}

TEST_F(SqlEngineTest, LeftJoinPreservesUnmatchedRows) {
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (4, 'Dave', '4 Elm', "
                          "104)")
                  .ok());
  ResultSet rs = Query(
      "SELECT p.name, h.diseaseID FROM Patient p "
      "LEFT JOIN HasDisease h ON p.patientID = h.patientID "
      "ORDER BY p.name");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[3][0], Value("Dave"));
  EXPECT_TRUE(rs.rows[3][1].is_null());
}

TEST_F(SqlEngineTest, AggregatesOverWholeTable) {
  ResultSet rs = Query(
      "SELECT COUNT(*), MIN(patientID), MAX(patientID), AVG(patientID) "
      "FROM Patient");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{1}));
  EXPECT_EQ(rs.rows[0][2], Value(int64_t{3}));
  EXPECT_DOUBLE_EQ(rs.rows[0][3].NumericValue(), 2.0);
}

TEST_F(SqlEngineTest, CountOnEmptyResultIsZero) {
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient WHERE patientID = 99");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{0}));
}

TEST_F(SqlEngineTest, GroupByWithAggregate) {
  ResultSet rs = Query(
      "SELECT diseaseID, COUNT(*) AS n FROM HasDisease "
      "GROUP BY diseaseID ORDER BY n DESC, diseaseID");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{11}));
  EXPECT_EQ(rs.rows[0][1], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, DistinctRemovesDuplicates) {
  ResultSet rs = Query("SELECT DISTINCT diseaseID FROM HasDisease");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEngineTest, OrderByDescAndLimit) {
  ResultSet rs =
      Query("SELECT patientID FROM Patient ORDER BY patientID DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[1][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, ArithmeticAndStringConcat) {
  ResultSet rs = Query(
      "SELECT patientID * 2 + 1, name || '!' FROM Patient WHERE "
      "patientID = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  EXPECT_EQ(rs.rows[0][1], Value("Alice!"));
}

TEST_F(SqlEngineTest, LikePatterns) {
  ResultSet rs = Query("SELECT name FROM Patient WHERE name LIKE 'A%'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  rs = Query("SELECT name FROM Patient WHERE name LIKE '_ob'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
}

TEST_F(SqlEngineTest, IsNullAndIsNotNull) {
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Patient (patientID, name) VALUES (5, 'Eve')")
          .ok());
  ResultSet rs = Query("SELECT name FROM Patient WHERE address IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Eve"));
  rs = Query(
      "SELECT COUNT(*) FROM Patient WHERE address IS NOT NULL");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
}

TEST_F(SqlEngineTest, PrimaryKeyUniquenessEnforced) {
  Result<ResultSet> rs =
      db_.Execute("INSERT INTO Patient VALUES (1, 'Dup', 'x', 1)");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, ForeignKeyEnforcedOnInsert) {
  Result<ResultSet> rs =
      db_.Execute("INSERT INTO HasDisease VALUES (99, 11, 'bad patient')");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, NotNullEnforced) {
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE T (a BIGINT NOT NULL, b VARCHAR(10))").ok());
  Result<ResultSet> rs = db_.Execute("INSERT INTO T (b) VALUES ('x')");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlEngineTest, UpdateChangesMatchingRows) {
  ResultSet rs =
      Query("UPDATE Patient SET address = 'moved' WHERE patientID = 1");
  EXPECT_EQ(rs.affected, 1);
  rs = Query("SELECT address FROM Patient WHERE patientID = 1");
  EXPECT_EQ(rs.rows[0][0], Value("moved"));
}

TEST_F(SqlEngineTest, DeleteRemovesRowsAndIndexEntries) {
  ResultSet rs = Query("DELETE FROM HasDisease WHERE diseaseID = 11");
  EXPECT_EQ(rs.affected, 2);
  rs = Query("SELECT COUNT(*) FROM HasDisease");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{1}));
}

TEST_F(SqlEngineTest, ViewExpandsAtQueryTimeAndSeesUpdates) {
  ASSERT_TRUE(db_.Execute(
                     "CREATE VIEW Diabetics AS SELECT p.patientID, p.name "
                     "FROM Patient p JOIN HasDisease h ON p.patientID = "
                     "h.patientID WHERE h.diseaseID = 11")
                  .ok());
  ResultSet rs = Query("SELECT * FROM Diabetics ORDER BY patientID");
  ASSERT_EQ(rs.rows.size(), 2u);
  // A new base-table row is visible through the view immediately.
  ASSERT_TRUE(
      db_.Execute("INSERT INTO HasDisease VALUES (2, 11, 'later')").ok());
  rs = Query("SELECT * FROM Diabetics");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, ViewSchemaIsDerivedWithoutExecution) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW V AS SELECT name AS who, "
                          "patientID * 2 AS twice FROM Patient")
                  .ok());
  const TableSchema* schema = db_.GetSchema("V");
  ASSERT_NE(schema, nullptr);
  ASSERT_EQ(schema->columns.size(), 2u);
  EXPECT_EQ(schema->columns[0].name, "who");
  EXPECT_EQ(schema->columns[1].name, "twice");
}

TEST_F(SqlEngineTest, SubqueryInFrom) {
  ResultSet rs = Query(
      "SELECT COUNT(*) FROM (SELECT patientID FROM Patient "
      "WHERE patientID > 1) AS sub");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, TableFunctionInFrom) {
  db_.RegisterTableFunction(
      "twoRows", [](const std::vector<Value>& args) -> Result<ResultSet> {
        ResultSet rs;
        rs.columns = {"a", "b"};
        rs.rows.push_back({args.empty() ? Value(int64_t{0}) : args[0],
                           Value("x")});
        rs.rows.push_back({Value(int64_t{2}), Value("y")});
        return rs;
      });
  ResultSet rs = Query(
      "SELECT t.a, t.b FROM TABLE (twoRows(7)) AS t (a BIGINT, b "
      "VARCHAR(5)) ORDER BY a");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
  EXPECT_EQ(rs.rows[1][0], Value(int64_t{7}));
}

TEST_F(SqlEngineTest, PreparedStatementWithParameters) {
  Result<PreparedStatement> prepared =
      db_.Prepare("SELECT name FROM Patient WHERE patientID = ?");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->param_count(), 1);
  Result<ResultSet> rs = prepared->Execute({Value(int64_t{2})});
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value("Bob"));
  rs = prepared->Execute({Value(int64_t{3})});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0], Value("Carol"));
}

TEST_F(SqlEngineTest, PreparedStatementParamCountMismatch) {
  Result<PreparedStatement> prepared =
      db_.Prepare("SELECT name FROM Patient WHERE patientID = ?");
  ASSERT_TRUE(prepared.ok());
  Result<ResultSet> rs = prepared->Execute({});
  EXPECT_FALSE(rs.ok());
}

TEST_F(SqlEngineTest, TransactionRollbackUndoesAllChanges) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (7, 'Tmp', 't', 107)")
                  .ok());
  ASSERT_TRUE(
      db_.Execute("UPDATE Patient SET name = 'Changed' WHERE patientID = 1")
          .ok());
  ASSERT_TRUE(
      db_.Execute("DELETE FROM Patient WHERE patientID = 3").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
  rs = Query("SELECT name FROM Patient WHERE patientID = 1");
  EXPECT_EQ(rs.rows[0][0], Value("Alice"));
  rs = Query("SELECT COUNT(*) FROM Patient WHERE patientID = 3");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{1}));
}

TEST_F(SqlEngineTest, TransactionCommitKeepsChanges) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (8, 'Kept', 'k', 108)")
                  .ok());
  ASSERT_TRUE(db_.Execute("COMMIT").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Patient");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{4}));
}

TEST_F(SqlEngineTest, RollbackRestoresIndexConsistency) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(
      db_.Execute("DELETE FROM Patient WHERE patientID = 2").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  db_.stats().Reset();
  ResultSet rs = Query("SELECT name FROM Patient WHERE patientID = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value("Bob"));
  EXPECT_GE(db_.stats().Snapshot().index_probes, 1u);  // found via restored index
}

TEST_F(SqlEngineTest, BetweenPredicate) {
  ResultSet rs =
      Query("SELECT COUNT(*) FROM Patient WHERE patientID BETWEEN 1 AND 2");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{2}));
}

TEST_F(SqlEngineTest, ParseErrorsSurfaceAsInvalidArgument) {
  Result<ResultSet> rs = db_.Execute("SELEC * FORM Patient");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlEngineTest, UnknownTableIsNotFound) {
  Result<ResultSet> rs = db_.Execute("SELECT * FROM Nope");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlEngineTest, DropTableRemovesRelation) {
  ASSERT_TRUE(db_.Execute("DROP TABLE HasDisease").ok());
  EXPECT_FALSE(db_.HasRelation("HasDisease"));
  EXPECT_FALSE(db_.Execute("SELECT * FROM HasDisease").ok());
}

TEST_F(SqlEngineTest, ApproxBytesGrowsWithData) {
  size_t before = db_.ApproxBytes();
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO Patient VALUES (" +
                            std::to_string(i) + ", 'P', 'addr', 1)")
                    .ok());
  }
  EXPECT_GT(db_.ApproxBytes(), before);
}

TEST_F(SqlEngineTest, CatalogListsTablesAndViews) {
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW V1 AS SELECT name FROM Patient").ok());
  std::vector<std::string> tables = db_.TableNames();
  EXPECT_EQ(tables.size(), 3u);
  std::vector<std::string> views = db_.ViewNames();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0], "V1");
}

TEST_F(SqlEngineTest, SchemaExposesPrimaryAndForeignKeys) {
  const TableSchema* schema = db_.GetSchema("HasDisease");
  ASSERT_NE(schema, nullptr);
  EXPECT_FALSE(schema->has_primary_key());
  ASSERT_EQ(schema->foreign_keys.size(), 2u);
  EXPECT_EQ(schema->foreign_keys[0].ref_table, "Patient");
}

// The multi-row VALUES and quoted-identifier paths.
TEST_F(SqlEngineTest, MultiRowInsertAndQuotedIdentifiers) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE \"Mixed\" (\"idCol\" BIGINT)").ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO Mixed VALUES (1), (2), (3)").ok());
  ResultSet rs = Query("SELECT COUNT(*) FROM Mixed");
  EXPECT_EQ(rs.rows[0][0], Value(int64_t{3}));
}

}  // namespace
}  // namespace db2graph::sql
