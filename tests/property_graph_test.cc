// Property-based tests for the graph layers: randomized traversals must
// return identical results (a) across all three back ends, (b) under
// every combination of traversal strategies, and (c) under every
// combination of runtime optimizations; plus concurrent-reader safety.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "baselines/janus_like.h"
#include "baselines/native_graph.h"
#include "core/db2graph.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"

namespace db2graph {
namespace {

using core::Db2Graph;
using core::RuntimeOptions;
using core::StrategyOptions;
using gremlin::Traverser;

// ------------------------------------------------------------------
// Random graph + random traversal machinery
// ------------------------------------------------------------------

struct RandomGraph {
  // Two vertex kinds (user/item) and three edge kinds; mirrors a small
  // heterogeneous overlay with one table per kind.
  struct V {
    int64_t id;
    bool is_user;
    int64_t score;
    std::string name;
  };
  struct E {
    int64_t id;
    std::string label;  // follows (u->u), likes (u->i), related (i->i)
    int64_t src;
    int64_t dst;
    int64_t weight;
  };
  std::vector<V> vertices;
  std::vector<E> edges;
};

RandomGraph MakeRandomGraph(uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomGraph g;
  int users = 6 + rng() % 8;
  int items = 6 + rng() % 8;
  for (int i = 1; i <= users; ++i) {
    g.vertices.push_back({i, true, static_cast<int64_t>(rng() % 50),
                          "u" + std::to_string(i)});
  }
  for (int i = 1; i <= items; ++i) {
    g.vertices.push_back({100 + i, false, static_cast<int64_t>(rng() % 50),
                          "i" + std::to_string(i)});
  }
  int64_t eid = 1000;
  std::set<std::tuple<std::string, int64_t, int64_t>> seen;
  int edge_count = 20 + rng() % 30;
  for (int i = 0; i < edge_count; ++i) {
    RandomGraph::E e;
    int kind = rng() % 3;
    e.label = kind == 0 ? "follows" : kind == 1 ? "likes" : "related";
    if (kind == 0) {
      e.src = 1 + rng() % users;
      e.dst = 1 + rng() % users;
    } else if (kind == 1) {
      e.src = 1 + rng() % users;
      e.dst = 101 + rng() % items;
    } else {
      e.src = 101 + rng() % items;
      e.dst = 101 + rng() % items;
    }
    if (e.src == e.dst) continue;
    if (!seen.insert({e.label, e.src, e.dst}).second) continue;
    e.id = eid++;
    e.weight = static_cast<int64_t>(rng() % 100);
    g.edges.push_back(std::move(e));
  }
  return g;
}

// Loads the random graph into a relational database (one table per kind).
void LoadRelational(const RandomGraph& g, sql::Database* db) {
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE Users (id BIGINT PRIMARY KEY, score BIGINT,
                        name VARCHAR(10));
    CREATE TABLE Items (id BIGINT PRIMARY KEY, score BIGINT,
                        name VARCHAR(10));
    CREATE TABLE Follows (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT,
                          weight BIGINT);
    CREATE TABLE Likes (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT,
                        weight BIGINT);
    CREATE TABLE Related (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT,
                          weight BIGINT);
    CREATE INDEX idx_f_src ON Follows (src);
    CREATE INDEX idx_f_dst ON Follows (dst);
    CREATE INDEX idx_l_src ON Likes (src);
    CREATE INDEX idx_l_dst ON Likes (dst);
    CREATE INDEX idx_r_src ON Related (src);
    CREATE INDEX idx_r_dst ON Related (dst);
  )sql")
                  .ok());
  for (const auto& v : g.vertices) {
    sql::Table* table = db->GetTable(v.is_user ? "Users" : "Items");
    ASSERT_TRUE(
        table->Insert({Value(v.id), Value(v.score), Value(v.name)}).ok());
  }
  for (const auto& e : g.edges) {
    sql::Table* table = db->GetTable(
        e.label == "follows" ? "Follows"
                             : e.label == "likes" ? "Likes" : "Related");
    ASSERT_TRUE(table
                    ->Insert({Value(e.id), Value(e.src), Value(e.dst),
                              Value(e.weight)})
                    .ok());
  }
}

const char* kRandomOverlay = R"json({
  "v_tables": [
    {"table_name": "Users", "id": "id", "fix_label": true,
     "label": "'user'", "properties": ["score", "name"]},
    {"table_name": "Items", "id": "id", "fix_label": true,
     "label": "'item'", "properties": ["score", "name"]}
  ],
  "e_tables": [
    {"table_name": "Follows", "src_v_table": "Users", "src_v": "src",
     "dst_v_table": "Users", "dst_v": "dst", "id": "'f'::eid",
     "prefixed_edge_id": true, "fix_label": true, "label": "'follows'"},
    {"table_name": "Likes", "src_v_table": "Users", "src_v": "src",
     "dst_v_table": "Items", "dst_v": "dst", "id": "'l'::eid",
     "prefixed_edge_id": true, "fix_label": true, "label": "'likes'"},
    {"table_name": "Related", "src_v_table": "Items", "src_v": "src",
     "dst_v_table": "Items", "dst_v": "dst", "id": "'r'::eid",
     "prefixed_edge_id": true, "fix_label": true, "label": "'related'"}
  ]
})json";

template <typename Db>
void LoadBaseline(const RandomGraph& g, Db* db) {
  for (const auto& v : g.vertices) {
    ASSERT_TRUE(db->AddVertex(Value(v.id), v.is_user ? "user" : "item",
                              {{"score", Value(v.score)},
                               {"name", Value(v.name)}})
                    .ok());
  }
  for (const auto& e : g.edges) {
    ASSERT_TRUE(db->AddEdge(Value(e.id), e.label, Value(e.src),
                            Value(e.dst), {{"weight", Value(e.weight)}})
                    .ok());
  }
  ASSERT_TRUE(db->Open().ok());
}

// Generates a random traversal within the supported grammar.
std::string RandomTraversal(std::mt19937_64* rng, const RandomGraph& g) {
  std::string q = "g.V(";
  // Random start: everything, a random id, or a couple of ids.
  switch ((*rng)() % 3) {
    case 0:
      break;
    case 1:
      q += std::to_string(g.vertices[(*rng)() % g.vertices.size()].id);
      break;
    default:
      q += std::to_string(g.vertices[(*rng)() % g.vertices.size()].id);
      q += ", ";
      q += std::to_string(g.vertices[(*rng)() % g.vertices.size()].id);
  }
  q += ")";
  const char* labels[] = {"follows", "likes", "related"};
  int hops = (*rng)() % 4;
  bool on_edges = false;
  for (int h = 0; h < hops; ++h) {
    switch ((*rng)() % 8) {
      case 0:
        q += on_edges ? ".inV()" : ".out('" +
                                       std::string(labels[(*rng)() % 3]) +
                                       "')";
        on_edges = false;
        break;
      case 1:
        q += on_edges ? ".outV()" : ".in('" +
                                        std::string(labels[(*rng)() % 3]) +
                                        "')";
        on_edges = false;
        break;
      case 2:
        if (!on_edges) {
          q += ".outE('" + std::string(labels[(*rng)() % 3]) + "')";
          on_edges = true;
        } else {
          q += ".inV()";
          on_edges = false;
        }
        break;
      case 3:
        if (!on_edges) {
          q += ".hasLabel('" +
               std::string((*rng)() % 2 == 0 ? "user" : "item") + "')";
        } else {
          q += ".has('weight', gt(" + std::to_string((*rng)() % 100) + "))";
        }
        break;
      case 4:
        q += on_edges ? ".has('weight', lt(" +
                            std::to_string((*rng)() % 100) + "))"
                      : ".has('score', gte(" +
                            std::to_string((*rng)() % 50) + "))";
        break;
      case 5:
        q += ".dedup()";
        break;
      case 6:
        q += ".order()";
        break;
      default:
        if (!on_edges) {
          q += ".both('" + std::string(labels[(*rng)() % 3]) + "')";
        } else {
          q += ".outV()";
          on_edges = false;
        }
    }
  }
  // Terminal: ids/values/count. Edge ids are system-specific (Db2 Graph
  // composes them from the overlay), so .id() only terminates vertex
  // streams.
  switch ((*rng)() % 3) {
    case 0:
      q += on_edges ? ".count()" : ".id()";
      break;
    case 1:
      q += on_edges ? ".values('weight')" : ".values('score')";
      break;
    default:
      q += ".count()";
  }
  return q;
}

std::multiset<std::string> Normalize(const std::vector<Traverser>& ts) {
  std::multiset<std::string> out;
  for (const Traverser& t : ts) {
    if (t.kind == Traverser::Kind::kEdge) {
      out.insert(t.edge->src_id.ToString() + "|" + t.edge->label + "|" +
                 t.edge->dst_id.ToString());
    } else {
      out.insert(t.ToString());
    }
  }
  return out;
}

// ------------------------------------------------------------------
// (a) Cross-backend equivalence on random traversals.
// ------------------------------------------------------------------

class CrossBackendTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackendTest, RandomTraversalsAgreeEverywhere) {
  std::mt19937_64 rng(GetParam() * 7919);
  RandomGraph g = MakeRandomGraph(GetParam());
  sql::Database db;
  LoadRelational(g, &db);
  auto graph = Db2Graph::Open(&db, kRandomOverlay);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  baselines::NativeGraphDb native;
  LoadBaseline(g, &native);
  baselines::JanusLikeDb janus;
  LoadBaseline(g, &janus);
  gremlin::Interpreter native_interp(&native);
  gremlin::Interpreter janus_interp(&janus);

  for (int i = 0; i < 60; ++i) {
    std::string q = RandomTraversal(&rng, g);
    auto a = (*graph)->Execute(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status().ToString();
    auto script = gremlin::ParseGremlin(q);
    ASSERT_TRUE(script.ok()) << q;
    auto b = native_interp.RunScript(*script);
    ASSERT_TRUE(b.ok()) << q;
    auto c = janus_interp.RunScript(*script);
    ASSERT_TRUE(c.ok()) << q;
    EXPECT_EQ(Normalize(*a), Normalize(*b)) << q;
    EXPECT_EQ(Normalize(*a), Normalize(*c)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendTest, ::testing::Range(1, 11));

// ------------------------------------------------------------------
// (b) Every strategy combination preserves results.
// ------------------------------------------------------------------

class StrategyCombinationTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyCombinationTest, AllSixteenCombinationsAgree) {
  int mask = GetParam();
  StrategyOptions options;
  options.predicate_pushdown = mask & 1;
  options.projection_pushdown = mask & 2;
  options.aggregate_pushdown = mask & 4;
  options.graphstep_vertexstep_mutation = mask & 8;

  RandomGraph g = MakeRandomGraph(99);
  sql::Database db;
  LoadRelational(g, &db);
  Db2Graph::Options reference_options;
  reference_options.strategies = StrategyOptions::AllOff();
  auto reference = Db2Graph::Open(&db, kRandomOverlay, reference_options);
  ASSERT_TRUE(reference.ok());
  Db2Graph::Options variant_options;
  variant_options.strategies = options;
  auto variant = Db2Graph::Open(&db, kRandomOverlay, variant_options);
  ASSERT_TRUE(variant.ok());

  std::mt19937_64 rng(2024);
  for (int i = 0; i < 40; ++i) {
    std::string q = RandomTraversal(&rng, g);
    auto a = (*reference)->Execute(q);
    auto b = (*variant)->Execute(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(Normalize(*a), Normalize(*b)) << q << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, StrategyCombinationTest,
                         ::testing::Range(0, 16));

// ------------------------------------------------------------------
// (c) Every runtime-optimization combination preserves results.
// ------------------------------------------------------------------

class RuntimeCombinationTest : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeCombinationTest, AllCombinationsAgree) {
  int mask = GetParam();
  RuntimeOptions options;
  options.label_pruning = mask & 1;
  options.prefixed_id_pinning = mask & 2;
  options.property_pruning = mask & 4;
  options.endpoint_table_pruning = mask & 8;
  options.vertex_from_edge_shortcut = mask & 16;
  options.implicit_edge_id_decomposition = mask & 32;

  RandomGraph g = MakeRandomGraph(123);
  sql::Database db;
  LoadRelational(g, &db);
  auto reference = Db2Graph::Open(&db, kRandomOverlay);
  ASSERT_TRUE(reference.ok());
  Db2Graph::Options variant_options;
  variant_options.runtime = options;
  auto variant = Db2Graph::Open(&db, kRandomOverlay, variant_options);
  ASSERT_TRUE(variant.ok());

  std::mt19937_64 rng(4242);
  for (int i = 0; i < 25; ++i) {
    std::string q = RandomTraversal(&rng, g);
    auto a = (*reference)->Execute(q);
    auto b = (*variant)->Execute(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(Normalize(*a), Normalize(*b)) << q << " mask=" << mask;
  }
}

// 64 combinations exist; sample the extremes plus every single-bit and
// neighbouring pair to keep runtime modest.
INSTANTIATE_TEST_SUITE_P(Masks, RuntimeCombinationTest,
                         ::testing::Values(0, 1, 2, 4, 8, 16, 32, 3, 12, 48,
                                           21, 42, 63));

// ------------------------------------------------------------------
// Concurrency: readers race a writer without torn results.
// ------------------------------------------------------------------

TEST(ConcurrencyTest, ConcurrentReadersSeeConsistentCounts) {
  RandomGraph g = MakeRandomGraph(7);
  sql::Database db;
  LoadRelational(g, &db);
  auto graph = Db2Graph::Open(&db, kRandomOverlay);
  ASSERT_TRUE(graph.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto out = (*graph)->Execute("g.V().hasLabel('user').count()");
        if (!out.ok() || out->size() != 1) {
          ++errors;
          continue;
        }
        // Count must be between the initial and final user counts.
        int64_t count = (*out)[0].value.as_int();
        if (count < 6 || count > 2000) ++errors;
      }
    });
  }
  // Writer inserts new users while readers run.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO Users VALUES (" +
                           std::to_string(5000 + i) + ", 1, 'w')")
                    .ok());
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  auto out = (*graph)->Execute("g.V(5299).values('name')");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
}

TEST(ConcurrencyTest, ConcurrentGraphQueriesOnBaselines) {
  RandomGraph g = MakeRandomGraph(8);
  baselines::NativeGraphDb native;
  LoadBaseline(g, &native);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      gremlin::Interpreter interp(&native);
      std::mt19937_64 rng(t);
      for (int i = 0; i < 200; ++i) {
        int64_t id = g.vertices[rng() % g.vertices.size()].id;
        auto script = gremlin::ParseGremlin(
            "g.V(" + std::to_string(id) + ").both('follows').count()");
        auto out = interp.RunScript(*script);
        if (!out.ok()) ++errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace db2graph
