// Copyright (c) 2026 The db2graph-repro Authors.
//
// Observability coverage: the metrics registry primitives, the QueryTrace
// spans and renderings, Db2Graph::Explain() / the profile() terminal, the
// slow-query log, stats Snapshot()/Reset(), and the GremlinService
// queue-depth / shutdown surface.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/db2graph.h"
#include "core/gremlin_service.h"
#include "linkbench/linkbench.h"
#include "linkbench/partitioned.h"

namespace db2graph::core {
namespace {

using gremlin::Traverser;

// Deterministic clock: every NowMicros() call advances by a fixed step,
// so any Begin/End pair is at least one step apart.
class FakeClock : public TraceClock {
 public:
  explicit FakeClock(uint64_t step) : step_(step) {}
  uint64_t NowMicros() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed) + step_;
  }

 private:
  uint64_t step_;
  mutable std::atomic<uint64_t> now_{0};
};

// ----------------------------------------------------------------------
// Metrics primitives
// ----------------------------------------------------------------------

TEST(MetricsTest, CounterMirrorsAtomicSurface) {
  metrics::Counter c;
  EXPECT_EQ(c.load(), 0u);
  c.fetch_add(3);
  c.fetch_add(4, std::memory_order_relaxed);
  EXPECT_EQ(c.load(std::memory_order_relaxed), 7u);
  c = 0;
  EXPECT_EQ(c.load(), 0u);
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  metrics::Gauge g;
  g.Set(5);
  g.Add(3);
  g.Sub(10);
  EXPECT_EQ(g.Value(), -2);
}

TEST(MetricsTest, HistogramPercentilesFromBucketBounds) {
  metrics::Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  for (uint64_t i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.Sum(), 5050u);
  // Exponential buckets: the p50 sample (rank 50) lands in (32,64],
  // p95/p99 in (64,128].
  EXPECT_EQ(h.Percentile(0.5), 64u);
  EXPECT_EQ(h.Percentile(0.95), 128u);
  EXPECT_EQ(h.Percentile(0.99), 128u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(MetricsTest, RegistryRendersTextAndJson) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("trace_test.counter")->fetch_add(3);
  registry.GetGauge("trace_test.gauge")->Set(-2);
  registry.GetHistogram("trace_test.histogram")->Observe(5);

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("counter trace_test.counter 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge trace_test.gauge -2"), std::string::npos);
  EXPECT_NE(text.find("histogram trace_test.histogram"), std::string::npos);

  Json json = registry.RenderJson();
  const Json* counters = json.Find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* counter = counters->Find("trace_test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->as_int(), 3);
  const Json* histograms = json.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* histogram = histograms->Find("trace_test.histogram");
  ASSERT_NE(histogram, nullptr);
  ASSERT_NE(histogram->Find("count"), nullptr);
  EXPECT_EQ(histogram->Find("count")->as_int(), 1);

  // Stable pointers: a second lookup returns the same metric.
  EXPECT_EQ(registry.GetCounter("trace_test.counter")->load(), 3u);
}

// ----------------------------------------------------------------------
// QueryTrace mechanics
// ----------------------------------------------------------------------

TEST(QueryTraceTest, SpansNestAndCollectRecords) {
  FakeClock clock(10);
  QueryTrace trace(&clock);
  trace.SetScript("g.V(1)");
  int outer = trace.BeginStep("GraphStep", "V(1)", 1);
  trace.AddTableConsulted("Patient");
  trace.AddTablePruned("Disease");
  trace.AddCacheMiss();
  trace.AddFanout(1, 4);
  SqlTraceRecord record;
  record.table = "Patient";
  record.sql = "SELECT * FROM \"Patient\"";
  record.access_path = "index";
  record.rows_returned = 1;
  trace.RecordSql(record);
  int inner = trace.BeginStep("ValuesStep", "values(name)", 1);
  trace.EndStep(inner, 1);
  trace.EndStep(outer, 1);
  trace.Finish(123);

  std::vector<StepTraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[0].tables_consulted,
            std::vector<std::string>{"Patient"});
  EXPECT_EQ(spans[0].tables_pruned, std::vector<std::string>{"Disease"});
  EXPECT_EQ(spans[0].cache_misses, 1u);
  EXPECT_EQ(spans[0].fanout_tasks, 4u);
  ASSERT_EQ(spans[0].statements.size(), 1u);
  EXPECT_EQ(spans[0].statements[0].access_path, "index");
  EXPECT_GE(spans[0].micros, 10u);  // fake clock: >= one step per pair
  EXPECT_EQ(trace.total_micros(), 123u);

  std::string text = trace.RenderText();
  EXPECT_NE(text.find("GraphStep V(1)"), std::string::npos) << text;
  EXPECT_NE(text.find("sql[Patient, index]"), std::string::npos);
  EXPECT_NE(text.find("total: 123us"), std::string::npos);

  Json json = trace.ToJson();
  EXPECT_EQ(json.Find("script")->as_string(), "g.V(1)");
  EXPECT_EQ(json.Find("steps")->items().size(), 2u);
}

TEST(QueryTraceTest, RecordsOutsideOpenSpansAreDropped) {
  QueryTrace trace;
  trace.AddTableConsulted("Orphan");  // no open span
  trace.AddCacheHit();
  EXPECT_TRUE(trace.Spans().empty());
}

TEST(QueryTraceTest, ChromeTraceExportsCompleteEvents) {
  FakeClock clock(10);
  QueryTrace trace(&clock);
  trace.SetScript("g.V(1).out()");
  trace.SetPlanSource("compiled");
  int outer = trace.BeginStep("GraphStep", "V(1)", 1);
  SqlTraceRecord record;
  record.table = "Person";
  record.sql = "SELECT * FROM \"Person\"";
  record.access_path = "index";
  record.micros = 5;
  trace.RecordSql(record);
  trace.EndStep(outer, 1);
  trace.Finish(100);

  Json chrome = trace.ToChromeTrace();
  const Json* events = chrome.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One step span, one SQL statement.
  ASSERT_GE(events->items().size(), 2u);
  const Json* meta = chrome.Find("metadata");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->Find("script")->as_string(), "g.V(1).out()");
  EXPECT_EQ(meta->Find("plan")->as_string(), "compiled");
  EXPECT_EQ(meta->Find("total_micros")->as_int(), 100);
  bool saw_step = false, saw_sql = false;
  for (const Json& ev : events->items()) {
    const Json* ph = ev.Find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const std::string& name = ev.Find("name")->as_string();
    // Complete events carry timestamps and durations in micros.
    EXPECT_NE(ev.Find("ts"), nullptr);
    EXPECT_NE(ev.Find("dur"), nullptr);
    EXPECT_NE(ev.Find("tid"), nullptr);
    if (name.find("GraphStep") != std::string::npos) saw_step = true;
    if (name.find("SELECT") != std::string::npos ||
        name.find("Person") != std::string::npos) {
      saw_sql = true;
    }
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_sql);
  // Round-trips through the JSON parser (loadable by chrome://tracing).
  Result<Json> reparsed = Json::Parse(chrome.Dump(0));
  EXPECT_TRUE(reparsed.ok());
}

TEST(SlowQueryLogTest, RingWrapsAtCapacityDroppingOldest) {
  SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    SlowQueryLog::Entry e;
    e.script = "q" + std::to_string(i);
    e.elapsed_micros = static_cast<uint64_t>(i);
    log.Record(std::move(e));
  }
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);  // oldest two (q0, q1) dropped
  EXPECT_EQ(entries[0].script, "q2");
  EXPECT_EQ(entries[2].script, "q4");
}

TEST(SlowQueryLogTest, SetCapacityShrinksAndGrows) {
  SlowQueryLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    SlowQueryLog::Entry e;
    e.script = "q" + std::to_string(i);
    log.Record(std::move(e));
  }
  log.SetCapacity(2);  // shrink drops the oldest entries
  EXPECT_EQ(log.capacity(), 2u);
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].script, "q2");
  EXPECT_EQ(entries[1].script, "q3");

  log.SetCapacity(0);  // clamped to >= 1
  EXPECT_EQ(log.capacity(), 1u);
  EXPECT_EQ(log.Entries().size(), 1u);
}

TEST(SlowQueryLogTest, ThresholdAndClear) {
  SlowQueryLog log(8);
  EXPECT_EQ(log.threshold_ms(), 0);
  log.SetThresholdMs(25);
  EXPECT_EQ(log.threshold_ms(), 25);
  SlowQueryLog::Entry e;
  e.script = "slow";
  log.Record(std::move(e));
  EXPECT_EQ(log.Entries().size(), 1u);
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.threshold_ms(), 25);  // Clear drops entries, not config
  log.SetThresholdMs(0);
}

// ----------------------------------------------------------------------
// Explain / profile() end-to-end (the acceptance traversal)
// ----------------------------------------------------------------------

constexpr char kSocialConfig[] = R"json({
  "v_tables": [
    {
      "table_name": "Person",
      "id": "id",
      "fix_label": true,
      "label": "'person'",
      "properties": ["id", "name", "age"]
    }
  ],
  "e_tables": [
    {
      "table_name": "Follows",
      "src_v_table": "Person",
      "src_v": "src",
      "dst_v_table": "Person",
      "dst_v": "dst",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'follows'"
    }
  ]
})json";

class ExplainProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Person (
        id BIGINT PRIMARY KEY,
        name VARCHAR(100),
        age BIGINT
      );
      CREATE TABLE Follows (
        src BIGINT,
        dst BIGINT,
        FOREIGN KEY (src) REFERENCES Person (id),
        FOREIGN KEY (dst) REFERENCES Person (id)
      );
      CREATE INDEX idx_follows_src ON Follows (src);
      INSERT INTO Person VALUES
        (5, 'Eve', 44), (6, 'Frank', 28), (7, 'Grace', 35);
      INSERT INTO Follows VALUES (5, 6), (5, 7), (6, 7);
    )sql")
                    .ok());
    Result<std::unique_ptr<Db2Graph>> graph =
        Db2Graph::Open(&db_, kSocialConfig);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  static constexpr char kQuery[] =
      "g.V(5).out('follows').has('age', gt(30)).values('name')";

  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(ExplainProfileTest, ExplainEmitsStrategiesSqlAndAccessPaths) {
  Result<Db2Graph::ExplainResult> explain = graph_->Explain(kQuery);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();

  // Strategy rewrites are attributed by name.
  const Json* strategies = explain->json.Find("strategies");
  ASSERT_NE(strategies, nullptr);
  std::vector<std::string> names;
  for (const Json& s : strategies->items()) {
    names.push_back(s.Find("strategy")->as_string());
    EXPECT_NE(s.Find("before")->as_string(), s.Find("after")->as_string());
  }
  auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("GraphStepVertexStepMutation")) << explain->text;
  EXPECT_TRUE(has("PredicatePushdown")) << explain->text;
  EXPECT_TRUE(has("ProjectionPushdown")) << explain->text;

  // Every GSA step carries its generated SQL with predicted access path
  // and a row-count bound.
  const Json* steps = explain->json.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_FALSE(steps->items().empty());
  size_t statements_seen = 0;
  bool saw_index_probe = false;
  for (const Json& step : steps->items()) {
    ASSERT_NE(step.Find("step"), nullptr);
    const Json* statements = step.Find("statements");
    ASSERT_NE(statements, nullptr);
    for (const Json& stmt : statements->items()) {
      ++statements_seen;
      EXPECT_NE(stmt.Find("sql")->as_string().find("SELECT"),
                std::string::npos);
      EXPECT_FALSE(stmt.Find("access_path")->as_string().empty());
      ASSERT_NE(stmt.Find("rows_estimated"), nullptr);
      saw_index_probe |=
          stmt.Find("access_path")->as_string() == "index probe";
    }
  }
  EXPECT_GE(statements_seen, 2u) << explain->text;
  // The mutated edge lookup constrains indexed "src": predicted probe.
  EXPECT_TRUE(saw_index_probe) << explain->text;
  EXPECT_NE(explain->text.find("sql["), std::string::npos);
}

TEST_F(ExplainProfileTest, ProfileReturnsPerStepTimingsMatchingExplain) {
  FakeClock clock(10);
  graph_->SetTraceClockForTesting(&clock);
  Result<std::vector<Traverser>> out =
      graph_->Execute(std::string(kQuery) + ".profile()");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  ASSERT_EQ((*out)[0].kind, Traverser::Kind::kValue);

  Result<Json> profile = Json::Parse((*out)[0].value.as_string());
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(profile->Find("total_micros")->as_int(), 0);
  const Json* steps = profile->Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_FALSE(steps->items().empty());
  std::vector<std::string> profiled_kinds;
  for (const Json& step : steps->items()) {
    // Fake clock: every span is at least one 10us tick wide.
    EXPECT_GE(step.Find("micros")->as_int(), 10);
    ASSERT_NE(step.Find("in"), nullptr);
    ASSERT_NE(step.Find("out"), nullptr);
    profiled_kinds.push_back(step.Find("step")->as_string());
  }

  // profile() executed the same compiled plan Explain previews: the step
  // sequences match.
  Result<Db2Graph::ExplainResult> explain = graph_->Explain(kQuery);
  ASSERT_TRUE(explain.ok());
  std::vector<std::string> explained_kinds;
  for (const Json& step : explain->json.Find("steps")->items()) {
    explained_kinds.push_back(step.Find("step")->as_string());
  }
  EXPECT_EQ(profiled_kinds, explained_kinds);

  // The executed trace additionally carries real row counts.
  bool saw_rows = false;
  for (const Json& step : steps->items()) {
    for (const Json& stmt : step.Find("statements")->items()) {
      saw_rows |= stmt.Find("rows_returned")->as_int() > 0;
    }
  }
  EXPECT_TRUE(saw_rows);
}

TEST_F(ExplainProfileTest, SlowQueryLogCapturesOffendersWithTraces) {
  SlowQueryLog::Global().Clear();
  SlowQueryLog::Global().SetThresholdMs(1);
  // 1ms-per-tick clock: any query's wall time crosses the 1ms threshold.
  FakeClock clock(1000);
  graph_->SetTraceClockForTesting(&clock);
  ASSERT_TRUE(graph_->Execute("g.V(5).values('name')").ok());
  SlowQueryLog::Global().SetThresholdMs(0);

  std::vector<SlowQueryLog::Entry> entries = SlowQueryLog::Global().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].script, "g.V(5).values('name')");
  EXPECT_GE(entries[0].elapsed_micros, 1000u);
  Result<Json> trace = Json::Parse(entries[0].trace_json);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->Find("steps")->items().empty());
  SlowQueryLog::Global().Clear();
}

TEST_F(ExplainProfileTest, UntracedExecutionRecordsNothing) {
  SlowQueryLog::Global().Clear();
  ASSERT_TRUE(graph_->Execute("g.V(5).values('name')").ok());
  EXPECT_TRUE(SlowQueryLog::Global().Entries().empty());
}

TEST_F(ExplainProfileTest, ProfileInsideSubTraversalIsRejected) {
  Result<std::vector<Traverser>> out =
      graph_->Execute("g.V(5).where(__.profile())");
  EXPECT_FALSE(out.ok());
}

// ----------------------------------------------------------------------
// Trace correctness on a partitioned overlay
// ----------------------------------------------------------------------

class PartitionedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    linkbench::Config config;
    config.num_vertices = 500;
    dataset_ = linkbench::GeneratePartitioned(config);
    ASSERT_TRUE(linkbench::LoadIntoPartitionedDatabase(&db_, dataset_).ok());
    Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(
        &db_, linkbench::MakePartitionedOverlay(/*prefixed_ids=*/false));
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  linkbench::Dataset dataset_;
  sql::Database db_;
  std::unique_ptr<Db2Graph> graph_;
};

TEST_F(PartitionedTraceTest, TraceShowsTablesConsultedAndCacheTransitions) {
  // Plain integer ids cannot pin a table: the lookup consults all 10
  // partitions, recording one SQL statement per partition, and misses the
  // cold cache.
  QueryTrace cold;
  ExecOptions cold_opts;
  cold_opts.trace = &cold;
  Result<std::vector<Traverser>> first = graph_->Execute("g.V(17)", cold_opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), 1u);
  std::vector<StepTraceSpan> spans = cold.Spans();
  ASSERT_FALSE(spans.empty());
  const StepTraceSpan& lookup = spans[0];
  EXPECT_EQ(lookup.tables_consulted.size(), 10u);
  EXPECT_EQ(lookup.tables_pruned.size(), 0u);
  EXPECT_EQ(lookup.cache_misses, 1u);
  EXPECT_EQ(lookup.cache_hits, 0u);
  EXPECT_EQ(lookup.statements.size(), 10u);
  EXPECT_GT(lookup.fanout_tasks, 0u);

  // Warm repeat: served from the cache, no SQL at all.
  QueryTrace warm;
  ExecOptions warm_opts;
  warm_opts.trace = &warm;
  Result<std::vector<Traverser>> second = graph_->Execute("g.V(17)", warm_opts);
  ASSERT_TRUE(second.ok());
  spans = warm.Spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].cache_hits, 1u);
  EXPECT_TRUE(spans[0].statements.empty());
}

TEST_F(PartitionedTraceTest, PrefixPinnedLookupTracesPrunedTables) {
  // The paper-config shape: a prefixed id pins the exact table, so the
  // trace shows one consulted table and the rest pruned.
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE Patient (
      patientID BIGINT PRIMARY KEY,
      name VARCHAR(100)
    );
    CREATE TABLE Disease (
      diseaseID BIGINT PRIMARY KEY,
      conceptName VARCHAR(100)
    );
    INSERT INTO Patient VALUES (1, 'Alice');
    INSERT INTO Disease VALUES (10, 'diabetes');
  )sql")
                  .ok());
  constexpr char kConfig[] = R"json({
    "v_tables": [
      {
        "table_name": "Patient",
        "prefixed_id": true,
        "id": "'patient'::patientID",
        "fix_label": true,
        "label": "'patient'",
        "properties": ["patientID", "name"]
      },
      {
        "table_name": "Disease",
        "id": "diseaseID",
        "fix_label": true,
        "label": "'disease'",
        "properties": ["diseaseID", "conceptName"]
      }
    ],
    "e_tables": []
  })json";
  Result<std::unique_ptr<Db2Graph>> graph = Db2Graph::Open(&db, kConfig);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  QueryTrace trace;
  ExecOptions trace_opts;
  trace_opts.trace = &trace;
  Result<std::vector<Traverser>> out =
      (*graph)->Execute("g.V('patient::1')", trace_opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  std::vector<StepTraceSpan> spans = trace.Spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].tables_consulted,
            std::vector<std::string>{"Patient"});
  EXPECT_EQ(spans[0].tables_pruned, std::vector<std::string>{"Disease"});
  ASSERT_EQ(spans[0].statements.size(), 1u);
  EXPECT_EQ(spans[0].statements[0].table, "Patient");
}

// ----------------------------------------------------------------------
// Stats snapshots
// ----------------------------------------------------------------------

TEST(StatsSnapshotTest, ExecStatsSnapshotAndReset) {
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE T (id BIGINT PRIMARY KEY, v BIGINT);
    INSERT INTO T VALUES (1, 10), (2, 20);
  )sql")
                  .ok());
  db.stats().Reset();
  ASSERT_TRUE(db.Execute("SELECT v FROM T WHERE id = 1").ok());
  sql::ExecStats::Counts counts = db.stats().Snapshot();
  EXPECT_EQ(counts.selects, 1u);
  EXPECT_GE(counts.index_probes, 1u);
  EXPECT_EQ(counts.full_scans, 0u);
  EXPECT_EQ(counts.rows_returned, 1u);
  db.stats().Reset();
  counts = db.stats().Snapshot();
  EXPECT_EQ(counts.selects, 0u);
  EXPECT_EQ(counts.index_probes, 0u);
  EXPECT_EQ(counts.rows_returned, 0u);
}

TEST_F(PartitionedTraceTest, ProviderStatsSnapshotAndReset) {
  graph_->provider()->stats().Reset();
  ASSERT_TRUE(graph_->Execute("g.V(23)").ok());
  Db2GraphProvider::Stats::Counts counts =
      graph_->provider()->stats().Snapshot();
  EXPECT_EQ(counts.vertex_tables_queried, 10u);
  EXPECT_EQ(counts.cache_misses, 1u);
  graph_->provider()->stats().Reset();
  counts = graph_->provider()->stats().Snapshot();
  EXPECT_EQ(counts.vertex_tables_queried, 0u);
  EXPECT_EQ(counts.cache_misses, 0u);
}

// ----------------------------------------------------------------------
// GremlinService observability surface
// ----------------------------------------------------------------------

TEST_F(PartitionedTraceTest, ServiceExposesQueueDepthAndRejectsAfterShutdown) {
  auto service = std::make_unique<GremlinService>(
      graph_.get(), GremlinService::Options::WithWorkers(2));
  EXPECT_EQ(service->queue_depth(), 0u);

  std::future<GremlinService::Response> ok_future =
      service->Submit("g.V(31)");
  GremlinService::Response ok_response = ok_future.get();
  ASSERT_TRUE(ok_response.ok()) << ok_response.status().ToString();
  EXPECT_EQ(ok_response->size(), 1u);

  // The service maintains its registry metrics.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  EXPECT_GE(
      registry.GetCounter(GremlinService::kRequestsCounter)->load(), 1u);
  EXPECT_GE(
      registry.GetHistogram(GremlinService::kRequestLatencyHistogram)
          ->Count(),
      1u);

  service->Shutdown();
  EXPECT_EQ(service->queue_depth(), 0u);
  std::future<GremlinService::Response> rejected =
      service->Submit("g.V(32)");
  GremlinService::Response response = rejected.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);

  std::future<GremlinService::Response> rejected_session =
      service->SubmitSession("s1", "g.V(33)");
  EXPECT_FALSE(rejected_session.get().ok());
  // Idempotent: destruction after explicit Shutdown is safe.
  service.reset();
}

TEST_F(PartitionedTraceTest, ServiceRunsProfileTerminals) {
  GremlinService service(graph_.get(),
                         GremlinService::Options::WithWorkers(1));
  GremlinService::Response response =
      service.Submit("g.V(19).profile()").get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->size(), 1u);
  Result<Json> json = Json::Parse((*response)[0].value.as_string());
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(json->Find("steps")->items().empty());
}

}  // namespace
}  // namespace db2graph::core
