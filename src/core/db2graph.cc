#include "core/db2graph.h"

#include "common/exec_config.h"
#include "common/query_log.h"
#include "common/strings.h"
#include "common/workload_governor.h"
#include "overlay/auto_overlay.h"
#include "overlay/topology.h"
#include "sql/table.h"
#include "sql/virtual_table.h"

namespace db2graph::core {

using gremlin::Environment;
using gremlin::Script;
using gremlin::StepKind;
using gremlin::Traverser;

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const overlay::OverlayConfig& config,
    Options options) {
  Result<overlay::Topology> topology = overlay::Topology::Build(*db, config);
  if (!topology.ok()) return topology.status();
  // Session execution config: Options::exec, with the deprecated
  // RuntimeOptions execution flags folded in underneath (only when they
  // were changed from their defaults, and only for fields exec leaves
  // unset — the new API wins on conflict). Installed on the database so
  // SQL issued through any path resolves the same session layer.
  {
    ExecConfig session;
    const RuntimeOptions defaults;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
    if (options.runtime.vectorized_execution !=
        defaults.vectorized_execution) {
      session = session.vectorized(options.runtime.vectorized_execution);
    }
    if (options.runtime.streaming_execution !=
        defaults.streaming_execution) {
      session = session.streaming(options.runtime.streaming_execution);
    }
    if (options.runtime.streaming_block_rows !=
        defaults.streaming_block_rows) {
      session = session.block_rows(options.runtime.streaming_block_rows);
    }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
    db->SetExecConfig(session.OverlaidBy(options.exec));
  }
  std::unique_ptr<Db2Graph> graph(new Db2Graph(db, options));
  graph->ddl_version_at_open_ = db->ddl_version();
  graph->dialect_ = std::make_unique<SqlDialect>(db);
  graph->provider_ = std::make_unique<Db2GraphProvider>(
      graph->dialect_.get(), std::move(*topology), options.runtime);
  graph->plan_cache_ = std::make_shared<PlanCache>(options.plan_cache_entries);
  // sysmon.plan_cache: the core layer owns the plan cache, so it (not the
  // SQL layer) contributes this SYSMON table. The fill holds a weak_ptr —
  // a graph closed before its database simply renders an empty table.
  {
    sql::VirtualTableDef def;
    def.schema.name = "sysmon.plan_cache";
    def.schema.columns = {{"hits", sql::ColumnType::kInt},
                          {"misses", sql::ColumnType::kInt},
                          {"invalidations", sql::ColumnType::kInt},
                          {"evictions", sql::ColumnType::kInt},
                          {"entries", sql::ColumnType::kInt}};
    std::weak_ptr<PlanCache> cache = graph->plan_cache_;
    def.fill = [cache](sql::Table* out) -> Status {
      std::shared_ptr<PlanCache> locked = cache.lock();
      if (locked == nullptr) return Status::OK();
      PlanCache::Counts c = locked->Snapshot();
      return out
          ->Insert({static_cast<int64_t>(c.hits),
                    static_cast<int64_t>(c.misses),
                    static_cast<int64_t>(c.invalidations),
                    static_cast<int64_t>(c.evictions),
                    static_cast<int64_t>(locked->size())})
          .status();
    };
    db->RegisterVirtualTable(std::move(def));
  }
  graph->optimizer_log_ = std::make_shared<OptimizerLog>();
  // sysmon.optimizer: one row per recent collapse decision — what the
  // optimizer attempted, whether it chose the join, why it bailed, and
  // (once executed) actual rows next to the compile-time estimate.
  {
    sql::VirtualTableDef def;
    def.schema.name = "sysmon.optimizer";
    def.schema.columns = {{"id", sql::ColumnType::kInt},
                          {"chain", sql::ColumnType::kString},
                          {"chosen", sql::ColumnType::kBool},
                          {"bail_reason", sql::ColumnType::kString},
                          {"hops", sql::ColumnType::kInt},
                          {"join_order", sql::ColumnType::kString},
                          {"est_rows", sql::ColumnType::kInt},
                          {"actual_rows", sql::ColumnType::kInt},
                          {"executions", sql::ColumnType::kInt},
                          {"fallbacks", sql::ColumnType::kInt}};
    std::weak_ptr<OptimizerLog> log = graph->optimizer_log_;
    def.fill = [log](sql::Table* out) -> Status {
      std::shared_ptr<OptimizerLog> locked = log.lock();
      if (locked == nullptr) return Status::OK();
      for (const OptimizerLog::Decision& d : locked->Snapshot()) {
        DB2G_RETURN_NOT_OK(
            out->Insert({static_cast<int64_t>(d.id), d.chain, d.chosen,
                         d.bail_reason, static_cast<int64_t>(d.hops),
                         d.join_order, static_cast<int64_t>(d.est_rows),
                         static_cast<int64_t>(d.actual_rows),
                         static_cast<int64_t>(d.executions),
                         static_cast<int64_t>(d.fallbacks)})
                .status());
      }
      return Status::OK();
    };
    db->RegisterVirtualTable(std::move(def));
  }
  // Strategy toggles change what a script compiles to, so they join the
  // cache key (the cache is per-graph, but Options could someday be
  // per-execution; cheap insurance). The optimizer master switch joins
  // them for the same reason.
  const StrategyOptions& s = options.strategies;
  graph->plan_key_prefix_ =
      std::string("s") + (s.predicate_pushdown ? '1' : '0') +
      (s.projection_pushdown ? '1' : '0') +
      (s.aggregate_pushdown ? '1' : '0') +
      (s.graphstep_vertexstep_mutation ? '1' : '0') +
      (s.limit_pushdown ? '1' : '0') +
      (options.optimizer.multi_hop_collapse ? '1' : '0') + '\x01';
  return graph;
}

namespace {

// The interpreter's execution knobs, derived from the resolved ExecConfig
// so every execution path (Execute, graphQuery) runs the same pipeline
// shape. Unset block_rows keeps the interpreter's own default.
gremlin::Interpreter::Options InterpreterOptions(const ExecConfig& cfg) {
  gremlin::Interpreter::Options o;
  o.streaming = cfg.streaming();
  if (cfg.block_rows() > 0) o.block_size = cfg.block_rows();
  o.parallelism = cfg.parallelism();
  return o;
}

// Total hops folded into MultiHopSteps anywhere in `steps` (the collapsed
// steps' bodies hold the preserved fallback plan, so they don't count).
uint64_t CountCollapsedHops(const std::vector<gremlin::Step>& steps) {
  uint64_t hops = 0;
  for (const gremlin::Step& step : steps) {
    if (step.kind == StepKind::kMultiHop) {
      if (step.multi_hop != nullptr) hops += step.multi_hop->hops.size();
      continue;
    }
    hops += CountCollapsedHops(step.body);
    for (const auto& branch : step.branches) {
      hops += CountCollapsedHops(branch);
    }
  }
  return hops;
}

uint64_t CountCollapsedHops(const Script& script) {
  uint64_t hops = 0;
  for (const gremlin::ScriptStatement& stmt : script.statements) {
    hops += CountCollapsedHops(stmt.traversal.steps);
  }
  return hops;
}

}  // namespace

OptimizerContext Db2Graph::MakeOptimizerContext() const {
  OptimizerContext ctx;
  ctx.topology = &provider_->topology();
  ctx.db = db_;
  ctx.runtime = &options_.runtime;
  ctx.options = options_.optimizer;
  ctx.log = optimizer_log_;
  return ctx;
}

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const std::string& config_json, Options options) {
  Result<overlay::OverlayConfig> config =
      overlay::OverlayConfig::Parse(config_json);
  if (!config.ok()) return config.status();
  return Open(db, *config, options);
}

Result<Script> Db2Graph::Compile(const std::string& script_text) const {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  ApplyStrategies(&*script, options_.strategies);
  CollapseMultiHops(&*script, MakeOptimizerContext());
  return script;
}

Result<std::shared_ptr<const CompiledPlan>> Db2Graph::GetOrCompile(
    const std::string& script_text, bool use_cache, bool* was_cached) {
  // The catalog version is read before compiling: DDL racing the compile
  // makes the plan stale (conservatively), never silently current.
  uint64_t ddl_version = db_->ddl_version();
  // Like the catalog version, the stats epoch is read before compiling so
  // racing mutations make a stats-sensitive plan stale, never silently
  // current.
  uint64_t stats_epoch = db_->stats_epoch();
  const std::string key = plan_key_prefix_ + script_text;
  if (use_cache) {
    if (std::shared_ptr<const CompiledPlan> hit =
            plan_cache_->Lookup(key, ddl_version)) {
      // A plan whose shape the multi-hop optimizer decided from the live
      // statistics expires once the stats epoch drifts far enough that
      // the costing could choose differently; fall through to recompile
      // (Insert below replaces the entry).
      if (hit->stats_sensitive && stats_epoch > hit->stats_epoch &&
          stats_epoch - hit->stats_epoch >
              options_.optimizer.stats_drift_limit) {
        metrics::MetricsRegistry::Global()
            .GetCounter(PlanCache::kStaleStatsRecompilesCounter)
            ->fetch_add(1);
      } else {
        *was_cached = true;
        return hit;
      }
    }
  }
  *was_cached = false;
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  auto plan = std::make_shared<CompiledPlan>();
  plan->script_text = script_text;
  plan->ddl_version = ddl_version;
  for (const gremlin::ScriptStatement& stmt : script->statements) {
    plan->has_profile |= stmt.terminal_profile;
  }
  {
    // Strategies run once, at compile time, inside a scratch trace so the
    // rewrites they make are captured on the plan (traced executions
    // replay them instead of re-running the passes).
    QueryTrace compile_trace(trace_clock_);
    ScopedTrace scoped(&compile_trace);
    ApplyStrategies(&*script, options_.strategies);
    plan->rewrites = compile_trace.Rewrites();
  }
  // The multi-hop collapse runs after the strategies (it consumes the
  // pushed-down predicate/projection shapes they produce). A plan the
  // pass examined at all is statistics-sensitive: its shape was decided
  // from the live cardinalities/NDVs, so it expires on stats drift.
  CollapseSummary collapse = CollapseMultiHops(&*script, MakeOptimizerContext());
  plan->stats_epoch = stats_epoch;
  plan->stats_sensitive = collapse.attempted > 0;
  plan->collapsed_hops = CountCollapsedHops(*script);
  plan->script = std::move(*script);
  plan->binds = CollectBindSlots(plan->script);
  if (use_cache) plan_cache_->Insert(key, plan);
  return std::shared_ptr<const CompiledPlan>(std::move(plan));
}

namespace {

const std::vector<Value>* FindBinding(const ExecOptions& options,
                                      const std::string& name) {
  auto it = options.bindings.find(name);
  if (it != options.bindings.end()) return &it->second;
  if (options.session_env != nullptr) {
    auto sit = options.session_env->find(name);
    if (sit != options.session_env->end()) return &sit->second;
  }
  return nullptr;
}

// Files one sysmon.query_log entry for a Gremlin execution. With a trace,
// row totals come from the statements the query issued; untraced, the
// traverser count stands in for rows_emitted.
void RecordGremlinQueryLog(const CompiledPlan& plan, bool plan_cached,
                           const Result<std::vector<Traverser>>& out,
                           uint64_t micros, const QueryTrace* trace,
                           uint64_t dop) {
  QueryLog& log = QueryLog::Global();
  if (!log.enabled()) return;
  QueryLog::Entry entry;
  entry.layer = "gremlin";
  entry.script = plan.script_text;
  entry.plan_source = plan_cached ? "cached" : "compiled";
  entry.dop = dop;
  entry.collapsed_hops = plan.collapsed_hops;
  entry.micros = micros;
  if (trace != nullptr) {
    QueryTrace::RowTotals totals = trace->SqlRowTotals();
    entry.rows_scanned = totals.rows_scanned;
    entry.rows_emitted = totals.rows_emitted;
  } else if (out.ok()) {
    entry.rows_emitted = out->size();
  }
  if (!out.ok()) {
    entry.error = true;
    entry.error_message = out.status().message();
  }
  entry.reason = governor::TerminationReason(out.status());
  log.Record(std::move(entry));
}

}  // namespace

Status Db2Graph::ValidateBindings(const CompiledPlan& plan,
                                  const ExecOptions& options) const {
  for (const CompiledPlan::BindSlot& slot : plan.binds) {
    const std::vector<Value>* values = FindBinding(options, slot.name);
    if (values == nullptr) {
      return Status::NotFound("Gremlin: unbound variable '" + slot.name +
                              "'");
    }
    if (slot.use == CompiledPlan::BindSlot::Use::kId) {
      for (const Value& v : *values) {
        if (!v.is_int() && !v.is_string()) {
          return Status::InvalidArgument(
              "Gremlin: bind variable '" + slot.name + "' has type " +
              ValueTypeName(v.type()) +
              " where an element id (BIGINT or VARCHAR) is required");
        }
      }
    } else {
      const bool scalar_op =
          slot.op != gremlin::PropPredicate::Op::kWithin &&
          slot.op != gremlin::PropPredicate::Op::kWithout;
      if (scalar_op && values->size() != 1) {
        return Status::InvalidArgument(
            "Gremlin: bind variable '" + slot.name + "' supplies " +
            std::to_string(values->size()) +
            " values; a scalar comparison needs exactly one");
      }
      for (const Value& v : *values) {
        if (v.is_null()) {
          return Status::InvalidArgument("Gremlin: bind variable '" +
                                         slot.name +
                                         "' is NULL; predicates need a "
                                         "comparable value");
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Traverser>> Db2Graph::ExecutePlan(
    std::shared_ptr<const CompiledPlan> plan, const ExecOptions& options,
    bool plan_cached) {
  // A PreparedQuery outliving DDL recompiles transparently — the same
  // staleness rule the cache itself enforces.
  if (plan->ddl_version != db_->ddl_version()) {
    Result<std::shared_ptr<const CompiledPlan>> fresh =
        GetOrCompile(plan->script_text, options.use_plan_cache, &plan_cached);
    if (!fresh.ok()) return fresh.status();
    plan = std::move(*fresh);
  }
  DB2G_RETURN_NOT_OK(ValidateBindings(*plan, options));

  // Bindings land in the session environment when one is given (they
  // persist like assignments); otherwise they seed a per-execution one.
  Environment local_env;
  Environment* env = options.session_env;
  if (env != nullptr) {
    for (const auto& [name, values] : options.bindings) {
      (*env)[name] = values;
    }
  } else {
    local_env = options.bindings;
    env = &local_env;
  }

  // Per-query execution config: process defaults <- database session
  // (Options::exec / SetExecConfig) <- this call's overrides. Installed
  // thread-locally so every SQL statement this execution issues — provider
  // lookups, graphQuery bodies — resolves the same dop / vectorized /
  // block-size settings (Executor::Compile reads ExecConfig::Current()).
  const ExecConfig exec_cfg = ExecConfig::ProcessDefault()
                                  .OverlaidBy(db_->exec_config())
                                  .OverlaidBy(options.config);
  ScopedExecConfig scoped_exec(exec_cfg);

  // Workload governance: any effective limit (per-call or inherited
  // process default) or a live cancel token puts the execution under a
  // QueryContext — registered for sysmon.active_queries / KillQuery and
  // installed thread-locally for the duration, so every layer's block-
  // boundary checks observe it. Ungoverned queries allocate nothing and
  // every downstream CheckCurrent() stays a thread-local null test.
  // Legacy per-call ExecOptions limits win when nonzero; otherwise the
  // ExecConfig limits feed the same resolution chain.
  governor::GovernorLimits limits = governor::ResolveLimits(
      options.timeout_ms != 0 ? options.timeout_ms : exec_cfg.timeout_ms(),
      options.max_result_rows != 0 ? options.max_result_rows
                                   : exec_cfg.max_result_rows(),
      options.max_memory_bytes != 0 ? options.max_memory_bytes
                                    : exec_cfg.max_memory_bytes());
  std::shared_ptr<governor::QueryContext> query_ctx;
  if (limits.any() || options.cancel_token.valid()) {
    query_ctx = std::make_shared<governor::QueryContext>(
        plan->script_text, limits, options.cancel_token);
  }
  governor::ScopedActiveQuery governed(query_ctx);

  gremlin::Interpreter interpreter(provider_.get(),
                                   InterpreterOptions(exec_cfg));
  const int64_t slow_ms = SlowQueryLog::Global().threshold_ms();
  const bool traced =
      options.trace != nullptr || plan->has_profile || slow_ms > 0;
  if (!traced) {
    // Untraced hot path: no QueryTrace exists, so every record site below
    // is a thread-local null check and nothing more. The query log adds
    // one relaxed atomic read, and when enabled two clock reads plus a
    // guarded deque push.
    if (!QueryLog::Global().enabled()) {
      Result<std::vector<Traverser>> out =
          interpreter.RunScript(plan->script, env);
      governor::CountTermination(out.status());
      return out;
    }
    uint64_t begin = trace_clock_->NowMicros();
    Result<std::vector<Traverser>> out =
        interpreter.RunScript(plan->script, env);
    governor::CountTermination(out.status());
    RecordGremlinQueryLog(*plan, plan_cached, out,
                          trace_clock_->NowMicros() - begin, nullptr,
                          exec_cfg.parallelism());
    return out;
  }

  QueryTrace local_trace(trace_clock_);
  QueryTrace* trace = options.trace != nullptr ? options.trace : &local_trace;
  trace->SetScript(plan->script_text);
  trace->SetPlanSource(plan_cached ? "cached" : "compiled");
  // Strategies already ran at compile time; replay their rewrites so a
  // cached plan's trace still explains how the plan came to be.
  for (const StrategyRewrite& r : plan->rewrites) {
    trace->AddRewrite(r.strategy, r.before, r.after);
  }
  uint64_t start = trace->clock()->NowMicros();
  Result<std::vector<Traverser>> out =
      [&]() -> Result<std::vector<Traverser>> {
    ScopedTrace scoped(trace);
    return interpreter.RunScript(plan->script, env);
  }();
  uint64_t elapsed = trace->clock()->NowMicros() - start;
  governor::CountTermination(out.status());
  trace->SetTermination(governor::TerminationReason(out.status()));
  trace->Finish(elapsed);
  if (slow_ms > 0 && elapsed >= static_cast<uint64_t>(slow_ms) * 1000) {
    SlowQueryLog::Entry entry;
    entry.script = plan->script_text;
    entry.elapsed_micros = elapsed;
    QueryTrace::RowTotals totals = trace->SqlRowTotals();
    entry.rows_scanned = totals.rows_scanned;
    entry.rows_emitted = totals.rows_emitted;
    entry.reason = governor::TerminationReason(out.status());
    entry.trace_json = trace->ToJson().Dump(2);
    SlowQueryLog::Global().Record(std::move(entry));
  }
  RecordGremlinQueryLog(*plan, plan_cached, out, elapsed, trace,
                        exec_cfg.parallelism());
  if (!out.ok()) return out.status();
  if (plan->has_profile) {
    std::vector<Traverser> result;
    result.push_back(Traverser::OfValue(Value(trace->ToJson().Dump(2))));
    return result;
  }
  return out;
}

Result<std::vector<Traverser>> Db2Graph::Execute(
    const std::string& script_text, const ExecOptions& options) {
  bool was_cached = false;
  Result<std::shared_ptr<const CompiledPlan>> plan =
      GetOrCompile(script_text, options.use_plan_cache, &was_cached);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(std::move(*plan), options, was_cached);
}

Result<std::vector<Traverser>> Db2Graph::Execute(
    const std::string& script_text) {
  return Execute(script_text, ExecOptions{});
}

Result<PreparedQuery> Db2Graph::Prepare(const std::string& script_text) {
  bool was_cached = false;
  Result<std::shared_ptr<const CompiledPlan>> plan =
      GetOrCompile(script_text, /*use_cache=*/true, &was_cached);
  if (!plan.ok()) return plan.status();
  return PreparedQuery(this, std::move(*plan));
}

Result<std::vector<Traverser>> PreparedQuery::Execute(
    const gremlin::Environment& bindings) const {
  ExecOptions options;
  options.bindings = bindings;
  return Execute(options);
}

Result<std::vector<Traverser>> PreparedQuery::Execute(
    const ExecOptions& options) const {
  if (graph_ == nullptr || plan_ == nullptr) {
    return Status::InvalidArgument("PreparedQuery: not prepared");
  }
  return graph_->ExecutePlan(plan_, options, /*plan_cached=*/true);
}

std::vector<std::string> PreparedQuery::unbound_variables() const {
  std::vector<std::string> names;
  if (plan_ == nullptr) return names;
  for (const CompiledPlan::BindSlot& slot : plan_->binds) {
    names.push_back(slot.name);
  }
  return names;
}

bool PreparedQuery::IsStale() const {
  return graph_ != nullptr && plan_ != nullptr &&
         plan_->ddl_version != graph_->db_->ddl_version();
}

namespace {

using gremlin::GremlinArg;
using gremlin::LookupSpec;
using gremlin::Step;

// Files one provider plan preview into the trace's innermost open span.
void AddPreviews(QueryTrace* trace,
                 const std::vector<Db2GraphProvider::SqlPreview>& previews) {
  for (const Db2GraphProvider::SqlPreview& p : previews) {
    if (p.pruned) {
      trace->AddTablePruned(p.table);
      continue;
    }
    trace->AddTableConsulted(p.table);
    SqlTraceRecord record;
    record.table = p.table;
    record.sql = p.sql;
    record.access_path = p.access_path;
    record.rows_estimated = p.estimated_rows;
    trace->RecordSql(std::move(record));
  }
}

// Opens a span per step and previews the SQL each GSA step would issue.
// Anchor sets are unknown at compile time, so VertexStep previews show
// the per-table plans the spec alone determines (label/property pruning);
// script-variable id arguments stay unresolved.
Status ExplainSteps(const Db2GraphProvider* provider,
                    const std::vector<Step>& steps, QueryTrace* trace) {
  for (const Step& step : steps) {
    int span = trace->BeginStep(gremlin::StepKindName(step.kind),
                                step.ToString(), 0);
    Status st = Status::OK();
    std::vector<Db2GraphProvider::SqlPreview> previews;
    if (step.kind == StepKind::kGraph) {
      LookupSpec spec = step.spec;
      for (const GremlinArg& a : step.start_ids) {
        if (!a.is_var()) spec.ids.push_back(a.literal);
      }
      for (const GremlinArg& a : step.src_id_args) {
        if (!a.is_var()) spec.src_ids.push_back(a.literal);
      }
      for (const GremlinArg& a : step.dst_id_args) {
        if (!a.is_var()) spec.dst_ids.push_back(a.literal);
      }
      st = step.graph_emits_edges ? provider->ExplainEdges(spec, &previews)
                                  : provider->ExplainVertices(spec, &previews);
      if (st.ok()) AddPreviews(trace, previews);
    } else if (step.kind == StepKind::kVertex) {
      // Mirror the interpreter's edge spec: labels always constrain the
      // edge fetch; pushdown payload applies to edges only for outE/inE.
      LookupSpec edge_spec;
      edge_spec.labels = step.edge_labels;
      if (!step.to_vertex) {
        edge_spec.predicates = step.spec.predicates;
        edge_spec.projection = step.spec.projection;
        edge_spec.has_projection = step.spec.has_projection;
      }
      st = provider->ExplainEdges(edge_spec, &previews);
      if (st.ok() && step.to_vertex) {
        AddPreviews(trace, previews);
        previews.clear();
        st = provider->ExplainVertices(step.spec, &previews);
      }
      if (st.ok()) AddPreviews(trace, previews);
    } else if (step.kind == StepKind::kEdgeVertex) {
      st = provider->ExplainVertices(step.spec, &previews);
      if (st.ok()) AddPreviews(trace, previews);
    } else if (step.kind == StepKind::kMultiHop &&
               step.multi_hop != nullptr) {
      st = provider->ExplainMultiHop(*step.multi_hop, &previews);
      if (st.ok()) AddPreviews(trace, previews);
    }
    // A MultiHopStep's body is the preserved step-at-a-time fallback, not
    // the plan execution is expected to take — its per-hop SQL would
    // double-count against the join preview above.
    if (st.ok() && !step.body.empty() &&
        step.kind != StepKind::kMultiHop) {
      st = ExplainSteps(provider, step.body, trace);
    }
    for (const auto& branch : step.branches) {
      if (!st.ok()) break;
      st = ExplainSteps(provider, branch, trace);
    }
    trace->EndStep(span, 0);
    DB2G_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace

Result<Db2Graph::ExplainResult> Db2Graph::Explain(
    const std::string& script_text) {
  bool was_cached = false;
  Result<std::shared_ptr<const CompiledPlan>> plan =
      GetOrCompile(script_text, /*use_cache=*/true, &was_cached);
  if (!plan.ok()) return plan.status();
  QueryTrace trace(trace_clock_);
  trace.SetScript(script_text);
  trace.SetPlanSource(was_cached ? "cached" : "compiled");
  for (const StrategyRewrite& r : (*plan)->rewrites) {
    trace.AddRewrite(r.strategy, r.before, r.after);
  }
  {
    ScopedTrace scoped(&trace);
    for (const gremlin::ScriptStatement& stmt : (*plan)->script.statements) {
      DB2G_RETURN_NOT_OK(
          ExplainSteps(provider_.get(), stmt.traversal.steps, &trace));
    }
  }
  ExplainResult result;
  result.text = trace.RenderText();
  result.json = trace.ToJson();
  return result;
}

Status Db2Graph::RegisterGraphQueryFunction() {
  Db2Graph* self = this;
  db_->RegisterTableFunction(
      "graphQuery",
      [self](const std::vector<Value>& args) -> Result<sql::ResultSet> {
        if (args.size() != 2 || !args[0].is_string() ||
            !args[1].is_string()) {
          return Status::InvalidArgument(
              "graphQuery expects (language, query) string arguments");
        }
        if (!EqualsIgnoreCase(args[0].as_string(), "gremlin")) {
          return Status::Unsupported("graphQuery language must be 'gremlin'");
        }
        // Compile through the plan cache: a graphQuery embedded in a
        // repeatedly-executed SQL statement parses its script once.
        bool was_cached = false;
        Result<std::shared_ptr<const CompiledPlan>> plan =
            self->GetOrCompile(args[1].as_string(), /*use_cache=*/true,
                               &was_cached);
        if (!plan.ok()) return plan.status();
        const Script& script = (*plan)->script;
        // Row arity: a trailing values(k1..kn) yields n columns; anything
        // else yields single-column rows (element ids / scalar values).
        size_t arity = 1;
        if (!script.statements.empty()) {
          const auto& steps = script.statements.back().traversal.steps;
          for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
            if (it->kind == StepKind::kValues && !it->keys.empty()) {
              arity = it->keys.size();
              break;
            }
            // Look through trailing order/dedup/limit steps only.
            if (it->kind != StepKind::kOrder &&
                it->kind != StepKind::kDedup &&
                it->kind != StepKind::kLimit &&
                it->kind != StepKind::kRange) {
              break;
            }
          }
        }
        // Run the plan directly (not ExecutePlan): a graphQuery inside a
        // traced outer query must keep recording into the caller's
        // thread-local trace, not open one of its own. The exec config
        // resolves through the database session plus any thread-local
        // scope an outer execution installed.
        gremlin::Interpreter interpreter(
            self->provider(),
            InterpreterOptions(self->db()->ResolveExecConfig()));
        Result<std::vector<Traverser>> out = interpreter.RunScript(script);
        if (!out.ok()) return out.status();
        Result<std::vector<Row>> rows =
            gremlin::TraversersToRows(*out, arity);
        if (!rows.ok()) return rows.status();
        sql::ResultSet rs;
        for (size_t i = 0; i < arity; ++i) {
          rs.columns.push_back("c" + std::to_string(i + 1));
        }
        rs.rows = std::move(*rows);
        return rs;
      });
  return Status::OK();
}

Result<AutoGraph> AutoGraph::Open(sql::Database* db,
                                  Db2Graph::Options options) {
  AutoGraph auto_graph(db, options);
  DB2G_RETURN_NOT_OK(auto_graph.Reopen());
  return auto_graph;
}

Status AutoGraph::Reopen() {
  Result<overlay::OverlayConfig> config = overlay::AutoOverlay(*db_);
  if (!config.ok()) return config.status();
  Result<std::unique_ptr<Db2Graph>> graph =
      Db2Graph::Open(db_, *config, options_);
  if (!graph.ok()) return graph.status();
  graph_ = std::move(*graph);
  return Status::OK();
}

Result<Db2Graph*> AutoGraph::Get() {
  if (graph_ == nullptr || graph_->OverlayMayBeStale()) {
    DB2G_RETURN_NOT_OK(Reopen());
  }
  return graph_.get();
}

Result<std::vector<Traverser>> AutoGraph::Execute(const std::string& script) {
  return Execute(script, ExecOptions{});
}

Result<std::vector<Traverser>> AutoGraph::Execute(
    const std::string& script, const ExecOptions& options) {
  Result<Db2Graph*> graph = Get();
  if (!graph.ok()) return graph.status();
  return (*graph)->Execute(script, options);
}

}  // namespace db2graph::core
