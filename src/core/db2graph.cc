#include "core/db2graph.h"

#include "common/strings.h"
#include "overlay/auto_overlay.h"
#include "overlay/topology.h"

namespace db2graph::core {

using gremlin::Script;
using gremlin::StepKind;
using gremlin::Traverser;

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const overlay::OverlayConfig& config,
    Options options) {
  Result<overlay::Topology> topology = overlay::Topology::Build(*db, config);
  if (!topology.ok()) return topology.status();
  std::unique_ptr<Db2Graph> graph(new Db2Graph(db, options));
  graph->ddl_version_at_open_ = db->ddl_version();
  graph->dialect_ = std::make_unique<SqlDialect>(db);
  graph->provider_ = std::make_unique<Db2GraphProvider>(
      graph->dialect_.get(), std::move(*topology), options.runtime);
  return graph;
}

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const std::string& config_json, Options options) {
  Result<overlay::OverlayConfig> config =
      overlay::OverlayConfig::Parse(config_json);
  if (!config.ok()) return config.status();
  return Open(db, *config, options);
}

Result<Script> Db2Graph::Compile(const std::string& script_text) const {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  ApplyStrategies(&*script, options_.strategies);
  return script;
}

Result<std::vector<Traverser>> Db2Graph::Execute(
    const std::string& script_text) {
  return Run(script_text, nullptr);
}

Result<std::vector<Traverser>> Db2Graph::Run(const std::string& script_text,
                                             gremlin::Environment* env) {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  bool profile = false;
  for (const gremlin::ScriptStatement& stmt : script->statements) {
    profile |= stmt.terminal_profile;
  }
  int64_t slow_ms = SlowQueryLog::Global().threshold_ms();
  if (!profile && slow_ms <= 0) {
    // Untraced hot path: no QueryTrace exists, so every record site below
    // is a thread-local null check and nothing more.
    ApplyStrategies(&*script, options_.strategies);
    gremlin::Interpreter interpreter(provider_.get());
    return interpreter.RunScript(*script, env);
  }
  QueryTrace trace(trace_clock_);
  trace.SetScript(script_text);
  uint64_t start = trace_clock_->NowMicros();
  gremlin::Interpreter interpreter(provider_.get());
  Result<std::vector<Traverser>> out =
      [&]() -> Result<std::vector<Traverser>> {
    ScopedTrace scoped(&trace);
    // Strategies run inside the trace so each rewrite is recorded.
    ApplyStrategies(&*script, options_.strategies);
    return interpreter.RunScript(*script, env);
  }();
  uint64_t elapsed = trace_clock_->NowMicros() - start;
  trace.Finish(elapsed);
  if (slow_ms > 0 && elapsed >= static_cast<uint64_t>(slow_ms) * 1000) {
    SlowQueryLog::Entry entry;
    entry.script = script_text;
    entry.elapsed_micros = elapsed;
    entry.trace_json = trace.ToJson().Dump(2);
    SlowQueryLog::Global().Record(std::move(entry));
  }
  if (!out.ok()) return out.status();
  if (profile) {
    std::vector<Traverser> result;
    result.push_back(Traverser::OfValue(Value(trace.ToJson().Dump(2))));
    return result;
  }
  return out;
}

Result<std::vector<Traverser>> Db2Graph::ExecuteTraced(
    const std::string& script_text, QueryTrace* trace) {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  trace->SetScript(script_text);
  uint64_t start = trace->clock()->NowMicros();
  gremlin::Interpreter interpreter(provider_.get());
  Result<std::vector<Traverser>> out =
      [&]() -> Result<std::vector<Traverser>> {
    ScopedTrace scoped(trace);
    ApplyStrategies(&*script, options_.strategies);
    return interpreter.RunScript(*script);
  }();
  trace->Finish(trace->clock()->NowMicros() - start);
  return out;
}

namespace {

using gremlin::GremlinArg;
using gremlin::LookupSpec;
using gremlin::Step;

// Files one provider plan preview into the trace's innermost open span.
void AddPreviews(QueryTrace* trace,
                 const std::vector<Db2GraphProvider::SqlPreview>& previews) {
  for (const Db2GraphProvider::SqlPreview& p : previews) {
    if (p.pruned) {
      trace->AddTablePruned(p.table);
      continue;
    }
    trace->AddTableConsulted(p.table);
    SqlTraceRecord record;
    record.table = p.table;
    record.sql = p.sql;
    record.access_path = p.access_path;
    record.rows_estimated = p.estimated_rows;
    trace->RecordSql(std::move(record));
  }
}

// Opens a span per step and previews the SQL each GSA step would issue.
// Anchor sets are unknown at compile time, so VertexStep previews show
// the per-table plans the spec alone determines (label/property pruning);
// script-variable id arguments stay unresolved.
Status ExplainSteps(const Db2GraphProvider* provider,
                    const std::vector<Step>& steps, QueryTrace* trace) {
  for (const Step& step : steps) {
    int span = trace->BeginStep(gremlin::StepKindName(step.kind),
                                step.ToString(), 0);
    Status st = Status::OK();
    std::vector<Db2GraphProvider::SqlPreview> previews;
    if (step.kind == StepKind::kGraph) {
      LookupSpec spec = step.spec;
      for (const GremlinArg& a : step.start_ids) {
        if (!a.is_var()) spec.ids.push_back(a.literal);
      }
      for (const GremlinArg& a : step.src_id_args) {
        if (!a.is_var()) spec.src_ids.push_back(a.literal);
      }
      for (const GremlinArg& a : step.dst_id_args) {
        if (!a.is_var()) spec.dst_ids.push_back(a.literal);
      }
      st = step.graph_emits_edges ? provider->ExplainEdges(spec, &previews)
                                  : provider->ExplainVertices(spec, &previews);
      if (st.ok()) AddPreviews(trace, previews);
    } else if (step.kind == StepKind::kVertex) {
      // Mirror the interpreter's edge spec: labels always constrain the
      // edge fetch; pushdown payload applies to edges only for outE/inE.
      LookupSpec edge_spec;
      edge_spec.labels = step.edge_labels;
      if (!step.to_vertex) {
        edge_spec.predicates = step.spec.predicates;
        edge_spec.projection = step.spec.projection;
        edge_spec.has_projection = step.spec.has_projection;
      }
      st = provider->ExplainEdges(edge_spec, &previews);
      if (st.ok() && step.to_vertex) {
        AddPreviews(trace, previews);
        previews.clear();
        st = provider->ExplainVertices(step.spec, &previews);
      }
      if (st.ok()) AddPreviews(trace, previews);
    } else if (step.kind == StepKind::kEdgeVertex) {
      st = provider->ExplainVertices(step.spec, &previews);
      if (st.ok()) AddPreviews(trace, previews);
    }
    if (st.ok() && !step.body.empty()) {
      st = ExplainSteps(provider, step.body, trace);
    }
    for (const auto& branch : step.branches) {
      if (!st.ok()) break;
      st = ExplainSteps(provider, branch, trace);
    }
    trace->EndStep(span, 0);
    DB2G_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace

Result<Db2Graph::ExplainResult> Db2Graph::Explain(
    const std::string& script_text) {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  QueryTrace trace(trace_clock_);
  trace.SetScript(script_text);
  {
    ScopedTrace scoped(&trace);
    ApplyStrategies(&*script, options_.strategies);
    for (const gremlin::ScriptStatement& stmt : script->statements) {
      DB2G_RETURN_NOT_OK(
          ExplainSteps(provider_.get(), stmt.traversal.steps, &trace));
    }
  }
  ExplainResult result;
  result.text = trace.RenderText();
  result.json = trace.ToJson();
  return result;
}

Result<std::vector<Traverser>> Db2Graph::ExecuteScript(const Script& script) {
  gremlin::Interpreter interpreter(provider_.get());
  return interpreter.RunScript(script);
}

Status Db2Graph::RegisterGraphQueryFunction() {
  Db2Graph* self = this;
  db_->RegisterTableFunction(
      "graphQuery",
      [self](const std::vector<Value>& args) -> Result<sql::ResultSet> {
        if (args.size() != 2 || !args[0].is_string() ||
            !args[1].is_string()) {
          return Status::InvalidArgument(
              "graphQuery expects (language, query) string arguments");
        }
        if (!EqualsIgnoreCase(args[0].as_string(), "gremlin")) {
          return Status::Unsupported("graphQuery language must be 'gremlin'");
        }
        Result<Script> script = self->Compile(args[1].as_string());
        if (!script.ok()) return script.status();
        // Row arity: a trailing values(k1..kn) yields n columns; anything
        // else yields single-column rows (element ids / scalar values).
        size_t arity = 1;
        if (!script->statements.empty()) {
          const auto& steps = script->statements.back().traversal.steps;
          for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
            if (it->kind == StepKind::kValues && !it->keys.empty()) {
              arity = it->keys.size();
              break;
            }
            // Look through trailing order/dedup/limit steps only.
            if (it->kind != StepKind::kOrder &&
                it->kind != StepKind::kDedup &&
                it->kind != StepKind::kLimit &&
                it->kind != StepKind::kRange) {
              break;
            }
          }
        }
        Result<std::vector<Traverser>> out = self->ExecuteScript(*script);
        if (!out.ok()) return out.status();
        Result<std::vector<Row>> rows =
            gremlin::TraversersToRows(*out, arity);
        if (!rows.ok()) return rows.status();
        sql::ResultSet rs;
        for (size_t i = 0; i < arity; ++i) {
          rs.columns.push_back("c" + std::to_string(i + 1));
        }
        rs.rows = std::move(*rows);
        return rs;
      });
  return Status::OK();
}

Result<AutoGraph> AutoGraph::Open(sql::Database* db,
                                  Db2Graph::Options options) {
  AutoGraph auto_graph(db, options);
  DB2G_RETURN_NOT_OK(auto_graph.Reopen());
  return auto_graph;
}

Status AutoGraph::Reopen() {
  Result<overlay::OverlayConfig> config = overlay::AutoOverlay(*db_);
  if (!config.ok()) return config.status();
  Result<std::unique_ptr<Db2Graph>> graph =
      Db2Graph::Open(db_, *config, options_);
  if (!graph.ok()) return graph.status();
  graph_ = std::move(*graph);
  return Status::OK();
}

Result<Db2Graph*> AutoGraph::Get() {
  if (graph_ == nullptr || graph_->OverlayMayBeStale()) {
    DB2G_RETURN_NOT_OK(Reopen());
  }
  return graph_.get();
}

Result<std::vector<Traverser>> AutoGraph::Execute(
    const std::string& script) {
  Result<Db2Graph*> graph = Get();
  if (!graph.ok()) return graph.status();
  return (*graph)->Execute(script);
}

}  // namespace db2graph::core
