#include "core/db2graph.h"

#include "common/strings.h"
#include "overlay/auto_overlay.h"
#include "overlay/topology.h"

namespace db2graph::core {

using gremlin::Script;
using gremlin::StepKind;
using gremlin::Traverser;

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const overlay::OverlayConfig& config,
    Options options) {
  Result<overlay::Topology> topology = overlay::Topology::Build(*db, config);
  if (!topology.ok()) return topology.status();
  std::unique_ptr<Db2Graph> graph(new Db2Graph(db, options));
  graph->ddl_version_at_open_ = db->ddl_version();
  graph->dialect_ = std::make_unique<SqlDialect>(db);
  graph->provider_ = std::make_unique<Db2GraphProvider>(
      graph->dialect_.get(), std::move(*topology), options.runtime);
  return graph;
}

Result<std::unique_ptr<Db2Graph>> Db2Graph::Open(
    sql::Database* db, const std::string& config_json, Options options) {
  Result<overlay::OverlayConfig> config =
      overlay::OverlayConfig::Parse(config_json);
  if (!config.ok()) return config.status();
  return Open(db, *config, options);
}

Result<Script> Db2Graph::Compile(const std::string& script_text) const {
  Result<Script> script = gremlin::ParseGremlin(script_text);
  if (!script.ok()) return script.status();
  ApplyStrategies(&*script, options_.strategies);
  return script;
}

Result<std::vector<Traverser>> Db2Graph::Execute(
    const std::string& script_text) {
  Result<Script> script = Compile(script_text);
  if (!script.ok()) return script.status();
  gremlin::Interpreter interpreter(provider_.get());
  return interpreter.RunScript(*script);
}

Result<std::vector<Traverser>> Db2Graph::ExecuteScript(const Script& script) {
  gremlin::Interpreter interpreter(provider_.get());
  return interpreter.RunScript(script);
}

Status Db2Graph::RegisterGraphQueryFunction() {
  Db2Graph* self = this;
  db_->RegisterTableFunction(
      "graphQuery",
      [self](const std::vector<Value>& args) -> Result<sql::ResultSet> {
        if (args.size() != 2 || !args[0].is_string() ||
            !args[1].is_string()) {
          return Status::InvalidArgument(
              "graphQuery expects (language, query) string arguments");
        }
        if (!EqualsIgnoreCase(args[0].as_string(), "gremlin")) {
          return Status::Unsupported("graphQuery language must be 'gremlin'");
        }
        Result<Script> script = self->Compile(args[1].as_string());
        if (!script.ok()) return script.status();
        // Row arity: a trailing values(k1..kn) yields n columns; anything
        // else yields single-column rows (element ids / scalar values).
        size_t arity = 1;
        if (!script->statements.empty()) {
          const auto& steps = script->statements.back().traversal.steps;
          for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
            if (it->kind == StepKind::kValues && !it->keys.empty()) {
              arity = it->keys.size();
              break;
            }
            // Look through trailing order/dedup/limit steps only.
            if (it->kind != StepKind::kOrder &&
                it->kind != StepKind::kDedup &&
                it->kind != StepKind::kLimit &&
                it->kind != StepKind::kRange) {
              break;
            }
          }
        }
        Result<std::vector<Traverser>> out = self->ExecuteScript(*script);
        if (!out.ok()) return out.status();
        Result<std::vector<Row>> rows =
            gremlin::TraversersToRows(*out, arity);
        if (!rows.ok()) return rows.status();
        sql::ResultSet rs;
        for (size_t i = 0; i < arity; ++i) {
          rs.columns.push_back("c" + std::to_string(i + 1));
        }
        rs.rows = std::move(*rows);
        return rs;
      });
  return Status::OK();
}

Result<AutoGraph> AutoGraph::Open(sql::Database* db,
                                  Db2Graph::Options options) {
  AutoGraph auto_graph(db, options);
  DB2G_RETURN_NOT_OK(auto_graph.Reopen());
  return auto_graph;
}

Status AutoGraph::Reopen() {
  Result<overlay::OverlayConfig> config = overlay::AutoOverlay(*db_);
  if (!config.ok()) return config.status();
  Result<std::unique_ptr<Db2Graph>> graph =
      Db2Graph::Open(db_, *config, options_);
  if (!graph.ok()) return graph.status();
  graph_ = std::move(*graph);
  return Status::OK();
}

Result<Db2Graph*> AutoGraph::Get() {
  if (graph_ == nullptr || graph_->OverlayMayBeStale()) {
    DB2G_RETURN_NOT_OK(Reopen());
  }
  return graph_.get();
}

Result<std::vector<Traverser>> AutoGraph::Execute(
    const std::string& script) {
  Result<Db2Graph*> graph = Get();
  if (!graph.ok()) return graph.status();
  return (*graph)->Execute(script);
}

}  // namespace db2graph::core
