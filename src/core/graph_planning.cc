#include "core/graph_planning.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"
#include "core/graph_structure.h"

namespace db2graph::core {

using gremlin::LookupSpec;
using gremlin::PropPredicate;
using overlay::ResolvedEdgeTable;
using overlay::ResolvedField;
using overlay::ResolvedVertexTable;

// ----------------------------------------------------------------------
// SQL construction
// ----------------------------------------------------------------------

namespace {

std::string QualifiedColumn(const SqlCond& cond) {
  if (cond.alias.empty()) return "\"" + cond.column + "\"";
  return "\"" + cond.alias + "\".\"" + cond.column + "\"";
}

}  // namespace

void RenderCond(const SqlCond& cond, std::string* sql,
                std::vector<Value>* params) {
  if (!cond.ref_column.empty()) {
    *sql += QualifiedColumn(cond) + " " + cond.op + " \"" + cond.ref_alias +
            "\".\"" + cond.ref_column + "\"";
    return;
  }
  if (cond.op == "NOTNULL") {
    *sql += QualifiedColumn(cond) + " IS NOT NULL";
    return;
  }
  if (cond.op == "IN") {
    *sql += QualifiedColumn(cond) + " IN (";
    for (size_t i = 0; i < cond.params.size(); ++i) {
      if (i > 0) *sql += ", ";
      *sql += "?";
      params->push_back(cond.params[i]);
    }
    *sql += ")";
    return;
  }
  *sql += QualifiedColumn(cond) + " " + cond.op + " ?";
  params->push_back(cond.params[0]);
}

std::string BuildSql(const std::string& table, const std::string& select,
                     const QueryConds& conds, std::vector<Value>* params,
                     int64_t limit) {
  std::string sql = "SELECT " + select + " FROM \"" + table + "\"";
  std::vector<std::string> where_parts;
  for (const SqlCond& cond : conds.conjuncts) {
    std::string part;
    RenderCond(cond, &part, params);
    where_parts.push_back(std::move(part));
  }
  for (const auto& group : conds.or_groups) {
    std::string part = "(";
    for (size_t g = 0; g < group.size(); ++g) {
      if (g > 0) part += " OR ";
      part += "(";
      for (size_t c = 0; c < group[g].size(); ++c) {
        if (c > 0) part += " AND ";
        RenderCond(group[g][c], &part, params);
      }
      part += ")";
    }
    part += ")";
    where_parts.push_back(std::move(part));
  }
  if (!where_parts.empty()) {
    sql += " WHERE " + Join(where_parts, " AND ");
  }
  if (limit >= 0) {
    sql += " LIMIT " + std::to_string(limit);
  }
  return sql;
}

void CollectParams(const QueryConds& conds, std::vector<Value>* params) {
  auto one = [params](const SqlCond& cond) {
    if (!cond.ref_column.empty()) return;
    if (cond.op == "NOTNULL") return;
    if (cond.op == "IN") {
      for (const Value& v : cond.params) params->push_back(v);
      return;
    }
    params->push_back(cond.params[0]);
  };
  for (const SqlCond& cond : conds.conjuncts) one(cond);
  for (const auto& group : conds.or_groups) {
    for (const auto& conjunction : group) {
      for (const SqlCond& cond : conjunction) one(cond);
    }
  }
}

std::string ShapeKey(const std::string& table, const std::string& select,
                     const QueryConds& conds, int64_t limit) {
  std::string key = table + "\x01" + select;
  if (limit >= 0) {
    key += "\x06";
    key += std::to_string(limit);
  }
  auto one = [&key](const SqlCond& cond) {
    key += "\x04";
    if (!cond.alias.empty()) {
      key += cond.alias;
      key += "\x07";
    }
    key += cond.column;
    key += "\x05";
    key += cond.op;
    if (!cond.ref_column.empty()) {
      key += "\x08";
      key += cond.ref_alias;
      key += "\x07";
      key += cond.ref_column;
    } else if (cond.op == "IN") {
      key += std::to_string(cond.params.size());
    }
  };
  for (const SqlCond& cond : conds.conjuncts) {
    key += "\x02";
    one(cond);
  }
  for (const auto& group : conds.or_groups) {
    key += "\x03";
    for (const auto& conjunction : group) {
      key += "\x02";
      for (const SqlCond& cond : conjunction) one(cond);
    }
  }
  return key;
}

const char* SqlOpFor(PropPredicate::Op op) {
  switch (op) {
    case PropPredicate::Op::kEq:
      return "=";
    case PropPredicate::Op::kNeq:
      return "<>";
    case PropPredicate::Op::kLt:
      return "<";
    case PropPredicate::Op::kLte:
      return "<=";
    case PropPredicate::Op::kGt:
      return ">";
    case PropPredicate::Op::kGte:
      return ">=";
    default:
      return nullptr;  // within / without / exists handled separately
  }
}

namespace {

void AppendCondParts(const QueryConds& conds, std::vector<std::string>* parts,
                     std::vector<Value>* params) {
  for (const SqlCond& cond : conds.conjuncts) {
    std::string part;
    RenderCond(cond, &part, params);
    parts->push_back(std::move(part));
  }
  for (const auto& group : conds.or_groups) {
    std::string part = "(";
    for (size_t g = 0; g < group.size(); ++g) {
      if (g > 0) part += " OR ";
      part += "(";
      for (size_t c = 0; c < group[g].size(); ++c) {
        if (c > 0) part += " AND ";
        RenderCond(group[g][c], &part, params);
      }
      part += ")";
    }
    part += ")";
    parts->push_back(std::move(part));
  }
}

}  // namespace

std::string BuildJoinSql(const std::vector<JoinStage>& stages,
                         const std::string& select,
                         std::vector<Value>* params) {
  std::string sql = "SELECT " + select + " FROM ";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "\"" + stages[i].table + "\" AS " + stages[i].alias;
  }
  std::vector<std::string> where_parts;
  for (const JoinStage& stage : stages) {
    AppendCondParts(stage.conds, &where_parts, params);
  }
  if (!where_parts.empty()) {
    sql += " WHERE " + Join(where_parts, " AND ");
  }
  return sql;
}

std::string JoinShapeKey(const std::vector<JoinStage>& stages,
                         const std::string& select) {
  std::string key = "join\x01" + select;
  for (const JoinStage& stage : stages) {
    key += "\x06";
    key += ShapeKey(stage.table + "\x07" + stage.alias, "", stage.conds);
  }
  return key;
}

void CollectJoinParams(const std::vector<JoinStage>& stages,
                       std::vector<Value>* params) {
  for (const JoinStage& stage : stages) {
    CollectParams(stage.conds, params);
  }
}

size_t JoinCondPosition(const QueryConds& conds,
                        const sql::TableSchema& schema,
                        const std::optional<size_t>& label_column) {
  if (label_column && !conds.conjuncts.empty()) {
    std::optional<size_t> idx = schema.ColumnIndex(conds.conjuncts[0].column);
    if (idx && *idx == *label_column) return 1;
  }
  return 0;
}

// ----------------------------------------------------------------------
// Fetch layout
// ----------------------------------------------------------------------

FetchLayout MakeLayout(const sql::TableSchema& schema,
                       std::vector<size_t> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  FetchLayout layout;
  layout.schema_cols = cols;
  layout.positions_of_schema.assign(schema.columns.size(), SIZE_MAX);
  for (size_t i = 0; i < cols.size(); ++i) {
    layout.positions_of_schema[cols[i]] = i;
  }
  return layout;
}

std::string SelectListFor(const sql::TableSchema& schema,
                          const FetchLayout& layout) {
  std::vector<std::string> names;
  for (size_t c : layout.schema_cols) {
    names.push_back("\"" + schema.columns[c].name + "\"");
  }
  return Join(names, ", ");
}

Value ComposeField(const ResolvedField& field, const FetchLayout& layout,
                   const Row& fetched) {
  if (field.def.SingleColumn()) {
    return fetched[layout.PosOf(field.column_indexes[0])];
  }
  std::string out;
  size_t col = 0;
  for (size_t i = 0; i < field.def.parts.size(); ++i) {
    if (i > 0) out += kIdSeparator;
    if (field.def.parts[i].is_constant) {
      out += field.def.parts[i].text;
    } else {
      out += fetched[layout.PosOf(field.column_indexes[col++])].ToString();
    }
  }
  return Value(std::move(out));
}

// ----------------------------------------------------------------------
// Id decomposition
// ----------------------------------------------------------------------

bool TypeCompatible(const Value& v, sql::ColumnType column_type) {
  if (v.is_null()) return false;
  switch (column_type) {
    case sql::ColumnType::kInt:
    case sql::ColumnType::kDouble:
      return v.is_numeric();
    case sql::ColumnType::kString:
      return v.is_string();
    case sql::ColumnType::kBool:
      return v.is_bool();
  }
  return true;
}

IdCondResult BuildIdConds(const ResolvedField& field,
                          const sql::TableSchema& schema,
                          const std::vector<Value>& ids, QueryConds* conds) {
  IdCondResult result;
  std::vector<std::vector<Value>> decomposed;
  for (const Value& id : ids) {
    if (auto values = field.Decompose(id)) {
      bool compatible = true;
      for (size_t i = 0; i < values->size(); ++i) {
        compatible &= TypeCompatible(
            (*values)[i],
            schema.columns[field.column_indexes[i]].type);
      }
      if (compatible) decomposed.push_back(std::move(*values));
    }
  }
  if (decomposed.empty()) return result;
  result.any_match = true;
  if (field.column_indexes.size() == 1) {
    SqlCond cond;
    cond.column = schema.columns[field.column_indexes[0]].name;
    cond.op = "IN";
    for (auto& values : decomposed) cond.params.push_back(values[0]);
    conds->conjuncts.push_back(std::move(cond));
    return result;
  }
  std::vector<std::vector<SqlCond>> group;
  for (auto& values : decomposed) {
    std::vector<SqlCond> conjunction;
    for (size_t i = 0; i < field.column_indexes.size(); ++i) {
      SqlCond cond;
      cond.column = schema.columns[field.column_indexes[i]].name;
      cond.op = "=";
      cond.params.push_back(values[i]);
      conjunction.push_back(std::move(cond));
    }
    group.push_back(std::move(conjunction));
  }
  conds->or_groups.push_back(std::move(group));
  return result;
}

bool MatchesEdgeSpec(const gremlin::Edge& e, const LookupSpec& spec) {
  if (!gremlin::MatchesSpec(e, spec)) return false;
  if (!spec.src_ids.empty() &&
      std::find(spec.src_ids.begin(), spec.src_ids.end(), e.src_id) ==
          spec.src_ids.end()) {
    return false;
  }
  if (!spec.dst_ids.empty() &&
      std::find(spec.dst_ids.begin(), spec.dst_ids.end(), e.dst_id) ==
          spec.dst_ids.end()) {
    return false;
  }
  return true;
}

std::optional<ImplicitIdParts> DecomposeImplicitEdgeId(
    const ResolvedEdgeTable& table, const Value& id) {
  if (!id.is_string()) return std::nullopt;
  std::vector<std::string> parts = DecomposeId(id.as_string());
  size_t s = table.src_v.def.parts.size();
  size_t d = table.dst_v.def.parts.size();
  if (parts.size() != s + 1 + d) return std::nullopt;
  auto extract = [&](const overlay::FieldDef& def, size_t offset)
      -> std::optional<std::vector<Value>> {
    std::vector<Value> out;
    for (size_t i = 0; i < def.parts.size(); ++i) {
      const std::string& text = parts[offset + i];
      if (def.parts[i].is_constant) {
        if (text != def.parts[i].text) return std::nullopt;
      } else {
        char* end = nullptr;
        long long n = std::strtoll(text.c_str(), &end, 10);
        if (!text.empty() && end != nullptr && *end == '\0') {
          out.emplace_back(static_cast<int64_t>(n));
        } else {
          out.emplace_back(text);
        }
      }
    }
    return out;
  };
  ImplicitIdParts result;
  auto src = extract(table.src_v.def, 0);
  if (!src) return std::nullopt;
  result.src_values = std::move(*src);
  result.label = parts[s];
  auto dst = extract(table.dst_v.def, s + 1);
  if (!dst) return std::nullopt;
  result.dst_values = std::move(*dst);
  return result;
}

// ----------------------------------------------------------------------
// Per-table lookup plans
// ----------------------------------------------------------------------

VertexPlan PlanVertexTable(const ResolvedVertexTable& t,
                           const LookupSpec& spec,
                           const RuntimeOptions& options) {
  VertexPlan plan;
  const sql::TableSchema& schema = *t.schema;

  // Fixed-label pruning (Section 6.3 "Using Label Values").
  if (!spec.labels.empty()) {
    if (t.conf.label.fixed) {
      bool matches = std::find(spec.labels.begin(), spec.labels.end(),
                               t.conf.label.value) != spec.labels.end();
      if (!matches) {
        if (options.label_pruning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      }
    } else {
      SqlCond cond;
      cond.column = schema.columns[*t.label_column].name;
      cond.op = "IN";
      cond.params.reserve(spec.labels.size());
      for (const std::string& l : spec.labels) cond.params.emplace_back(l);
      plan.conds.conjuncts.push_back(cond);
      plan.predicate_columns.push_back(cond.column);
    }
  }

  // Prefixed-id pinning / composite-id decomposition.
  if (!spec.ids.empty()) {
    QueryConds id_conds;
    IdCondResult r = BuildIdConds(t.id, schema, spec.ids, &id_conds);
    if (!r.any_match) {
      if (options.prefixed_id_pinning) {
        plan.skip = true;
        return plan;
      }
      plan.client_filter = true;
    } else {
      for (auto& c : id_conds.conjuncts) {
        plan.predicate_columns.push_back(c.column);
        plan.conds.conjuncts.push_back(std::move(c));
      }
      for (auto& g : id_conds.or_groups) {
        if (!g.empty() && !g[0].empty()) {
          for (const SqlCond& c : g[0]) {
            plan.predicate_columns.push_back(c.column);
          }
        }
        plan.conds.or_groups.push_back(std::move(g));
      }
    }
  }

  // Property predicates: pushdown + property-name pruning.
  for (const PropPredicate& pred : spec.predicates) {
    if (pred.key == gremlin::kIdKey || pred.key == gremlin::kLabelKey) {
      plan.client_filter = true;  // rare; resolved after materialization
      continue;
    }
    if (!t.HasProperty(pred.key)) {
      if (options.property_pruning) {
        plan.skip = true;  // no row of this table can have the property
        return plan;
      }
      plan.client_filter = true;
      continue;
    }
    // Locate the schema column behind the property.
    size_t column = 0;
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (EqualsIgnoreCase(t.properties[i], pred.key)) {
        column = t.property_columns[i];
        break;
      }
    }
    const std::string& column_name = schema.columns[column].name;
    SqlCond cond;
    cond.column = column_name;
    if (pred.op == PropPredicate::Op::kExists) {
      cond.op = "NOTNULL";
    } else if (pred.op == PropPredicate::Op::kWithin) {
      cond.op = "IN";
      cond.params = pred.values;
    } else if (pred.op == PropPredicate::Op::kWithout) {
      plan.client_filter = true;  // NOT IN needs null care; keep client-side
      continue;
    } else {
      const char* op = SqlOpFor(pred.op);
      if (op == nullptr) {
        plan.client_filter = true;
        continue;
      }
      cond.op = op;
      cond.params = pred.values;
    }
    plan.predicate_columns.push_back(column_name);
    plan.conds.conjuncts.push_back(std::move(cond));
  }

  // Projection-based pruning: a traversal that only consumes projected
  // properties gets nothing from a table having none of them.
  if (spec.has_projection && !spec.projection.empty() &&
      options.property_pruning) {
    bool any = false;
    for (const std::string& key : spec.projection) {
      if (t.HasProperty(key)) {
        any = true;
        break;
      }
    }
    if (!any) {
      plan.skip = true;
      return plan;
    }
  }
  return plan;
}

std::vector<size_t> VertexFetchColumns(const ResolvedVertexTable& t,
                                       const LookupSpec& spec) {
  std::vector<size_t> cols = t.id.column_indexes;
  if (t.label_column) cols.push_back(*t.label_column);
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (spec.has_projection) {
      bool wanted = false;
      for (const std::string& key : spec.projection) {
        if (EqualsIgnoreCase(key, t.properties[i])) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    cols.push_back(t.property_columns[i]);
  }
  return cols;
}

EdgePlan PlanEdgeTable(const ResolvedEdgeTable& t, const LookupSpec& spec,
                       const RuntimeOptions& options) {
  EdgePlan plan;
  const sql::TableSchema& schema = *t.schema;

  // Fixed-label pruning.
  if (!spec.labels.empty()) {
    if (t.conf.label.fixed) {
      bool matches = std::find(spec.labels.begin(), spec.labels.end(),
                               t.conf.label.value) != spec.labels.end();
      if (!matches) {
        if (options.label_pruning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      }
    } else {
      SqlCond cond;
      cond.column = schema.columns[*t.label_column].name;
      cond.op = "IN";
      cond.params.reserve(spec.labels.size());
      for (const std::string& l : spec.labels) cond.params.emplace_back(l);
      plan.predicate_columns.push_back(cond.column);
      plan.conds.conjuncts.push_back(std::move(cond));
    }
  }

  // Endpoint constraints via src/dst id decomposition.
  auto endpoint = [&](const ResolvedField& field,
                      const std::vector<Value>& ids) {
    if (ids.empty() || plan.skip) return;
    QueryConds conds;
    IdCondResult r = BuildIdConds(field, schema, ids, &conds);
    if (!r.any_match) {
      if (options.prefixed_id_pinning) {
        plan.skip = true;
        return;
      }
      plan.client_filter = true;
      return;
    }
    for (auto& c : conds.conjuncts) {
      plan.predicate_columns.push_back(c.column);
      plan.conds.conjuncts.push_back(std::move(c));
    }
    for (auto& g : conds.or_groups) {
      if (!g.empty()) {
        for (const SqlCond& c : g[0]) {
          plan.predicate_columns.push_back(c.column);
        }
      }
      plan.conds.or_groups.push_back(std::move(g));
    }
  };
  endpoint(t.src_v, spec.src_ids);
  if (plan.skip) return plan;
  endpoint(t.dst_v, spec.dst_ids);
  if (plan.skip) return plan;

  // Edge-id constraints: explicit ids decompose like vertex ids; implicit
  // ids decompose into src + label + dst conjunctive predicates.
  if (!spec.ids.empty()) {
    if (!t.conf.implicit_edge_id) {
      QueryConds conds;
      IdCondResult r = BuildIdConds(t.id, schema, spec.ids, &conds);
      if (!r.any_match) {
        if (options.prefixed_id_pinning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      } else {
        for (auto& c : conds.conjuncts) {
          plan.predicate_columns.push_back(c.column);
          plan.conds.conjuncts.push_back(std::move(c));
        }
        for (auto& g : conds.or_groups) {
          plan.conds.or_groups.push_back(std::move(g));
        }
      }
    } else {
      std::vector<std::vector<SqlCond>> group;
      for (const Value& id : spec.ids) {
        auto parts = DecomposeImplicitEdgeId(t, id);
        if (!parts) continue;
        if (t.conf.label.fixed && parts->label != t.conf.label.value) {
          continue;  // label encoded in the id does not match this table
        }
        std::vector<SqlCond> conjunction;
        for (size_t i = 0; i < t.src_v.column_indexes.size(); ++i) {
          SqlCond c;
          c.column = schema.columns[t.src_v.column_indexes[i]].name;
          c.op = "=";
          c.params = {parts->src_values[i]};
          conjunction.push_back(std::move(c));
        }
        for (size_t i = 0; i < t.dst_v.column_indexes.size(); ++i) {
          SqlCond c;
          c.column = schema.columns[t.dst_v.column_indexes[i]].name;
          c.op = "=";
          c.params = {parts->dst_values[i]};
          conjunction.push_back(std::move(c));
        }
        if (!t.conf.label.fixed) {
          SqlCond c;
          c.column = schema.columns[*t.label_column].name;
          c.op = "=";
          c.params = {Value(parts->label)};
          conjunction.push_back(std::move(c));
        }
        group.push_back(std::move(conjunction));
      }
      if (group.empty()) {
        if (options.implicit_edge_id_decomposition) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      } else {
        if (!group[0].empty()) {
          for (const SqlCond& c : group[0]) {
            plan.predicate_columns.push_back(c.column);
          }
        }
        plan.conds.or_groups.push_back(std::move(group));
      }
    }
  }

  // Property predicates.
  for (const PropPredicate& pred : spec.predicates) {
    if (pred.key == gremlin::kIdKey || pred.key == gremlin::kLabelKey) {
      plan.client_filter = true;
      continue;
    }
    if (!t.HasProperty(pred.key)) {
      if (options.property_pruning) {
        plan.skip = true;
        return plan;
      }
      plan.client_filter = true;
      continue;
    }
    size_t column = 0;
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (EqualsIgnoreCase(t.properties[i], pred.key)) {
        column = t.property_columns[i];
        break;
      }
    }
    const std::string& column_name = schema.columns[column].name;
    SqlCond cond;
    cond.column = column_name;
    if (pred.op == PropPredicate::Op::kExists) {
      cond.op = "NOTNULL";
    } else if (pred.op == PropPredicate::Op::kWithin) {
      cond.op = "IN";
      cond.params = pred.values;
    } else if (pred.op == PropPredicate::Op::kWithout) {
      plan.client_filter = true;
      continue;
    } else {
      const char* op = SqlOpFor(pred.op);
      if (op == nullptr) {
        plan.client_filter = true;
        continue;
      }
      cond.op = op;
      cond.params = pred.values;
    }
    plan.predicate_columns.push_back(column_name);
    plan.conds.conjuncts.push_back(std::move(cond));
  }

  if (spec.has_projection && !spec.projection.empty() &&
      options.property_pruning) {
    bool any = false;
    for (const std::string& key : spec.projection) {
      if (t.HasProperty(key)) {
        any = true;
        break;
      }
    }
    if (!any) {
      plan.skip = true;
      return plan;
    }
  }
  return plan;
}

std::vector<size_t> EdgeFetchColumns(const ResolvedEdgeTable& t,
                                     const LookupSpec& spec) {
  std::vector<size_t> cols = t.src_v.column_indexes;
  cols.insert(cols.end(), t.dst_v.column_indexes.begin(),
              t.dst_v.column_indexes.end());
  if (!t.conf.implicit_edge_id) {
    cols.insert(cols.end(), t.id.column_indexes.begin(),
                t.id.column_indexes.end());
  }
  if (t.label_column) cols.push_back(*t.label_column);
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (spec.has_projection) {
      bool wanted = false;
      for (const std::string& key : spec.projection) {
        if (EqualsIgnoreCase(key, t.properties[i])) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    cols.push_back(t.property_columns[i]);
  }
  return cols;
}

std::string PredictAccessPath(const sql::Database* db,
                              const std::string& table,
                              const QueryConds& conds) {
  const sql::Table* base = db->GetTable(table);
  bool has_conds = !conds.conjuncts.empty() || !conds.or_groups.empty();
  if (base != nullptr) {
    for (const SqlCond& cond : conds.conjuncts) {
      auto idx = base->schema().ColumnIndex(cond.column);
      if (!idx || base->FindIndexOn({*idx}) == nullptr) continue;
      if (cond.op == "=" || cond.op == "IN") return "index probe";
      if (cond.op == "<" || cond.op == "<=" || cond.op == ">" ||
          cond.op == ">=") {
        return "range scan";
      }
    }
  }
  return has_conds ? "full scan+filter" : "full scan";
}

}  // namespace db2graph::core
