// Copyright (c) 2026 The db2graph-repro Authors.

#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "core/graph_planning.h"
#include "core/graph_structure.h"
#include "gremlin/graph_api.h"
#include "sql/table.h"

namespace db2graph::core {

// ----------------------------------------------------------------------
// OptimizerLog
// ----------------------------------------------------------------------

uint64_t OptimizerLog::Record(Decision d) {
  // Process-wide mirrors for sysmon.metrics (per-instance counts stay on
  // this log for precise test assertions).
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("optimizer.attempted")->fetch_add(1);
  registry.GetCounter(d.chosen ? "optimizer.chosen" : "optimizer.bailed")
      ->fetch_add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  d.id = next_id_++;
  counters_.attempted++;
  if (d.chosen) {
    counters_.chosen++;
  } else {
    counters_.bailed++;
  }
  if (ring_.size() >= kCapacity) ring_.pop_front();
  ring_.push_back(std::move(d));
  return ring_.back().id;
}

void OptimizerLog::RecordExecution(uint64_t id, uint64_t actual_rows,
                                   bool fell_back) {
  metrics::MetricsRegistry::Global()
      .GetCounter(fell_back ? "optimizer.fallbacks" : "optimizer.executions")
      ->fetch_add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fell_back) {
    counters_.fallbacks++;
  } else {
    counters_.executions++;
  }
  for (Decision& d : ring_) {
    if (d.id != id) continue;
    if (fell_back) {
      d.fallbacks++;
    } else {
      d.executions++;
      d.actual_rows += actual_rows;
    }
    return;
  }
}

OptimizerLog::Counters OptimizerLog::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<OptimizerLog::Decision> OptimizerLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

// ----------------------------------------------------------------------
// Hop extraction
// ----------------------------------------------------------------------

namespace {

using gremlin::AggOp;
using gremlin::Direction;
using gremlin::LookupSpec;
using gremlin::MultiHopHop;
using gremlin::MultiHopSpec;
using gremlin::PropPredicate;
using gremlin::Step;
using gremlin::StepKind;

bool PredicatesBindable(const std::vector<PropPredicate>& preds) {
  for (const PropPredicate& p : preds) {
    if (!p.var.empty()) return false;
  }
  return true;
}

/// A lookup spec the collapse can carry: no aggregate/limit pushdown, no
/// id or endpoint constraints (those never appear mid-chain), no pending
/// variables (never pushed down), and a projection only where the caller
/// allows one (the chain's final vertex lookup).
bool SpecCollapsible(const LookupSpec& spec, bool allow_projection) {
  return spec.agg == AggOp::kNone && spec.limit < 0 && spec.ids.empty() &&
         spec.src_ids.empty() && spec.dst_ids.empty() &&
         (allow_projection || !spec.has_projection) &&
         PredicatesBindable(spec.predicates);
}

/// One candidate hop and how many plan steps it covers (1 for out()/in(),
/// 2 for an outE().inV() / inE().outV() pair).
struct CandidateHop {
  MultiHopHop hop;
  size_t step_count = 1;
};

/// Tries to read one collapsible hop starting at steps[i].
bool ExtractHop(const std::vector<Step>& steps, size_t i, CandidateHop* out) {
  const Step& s = steps[i];
  if (s.kind != StepKind::kVertex || s.direction == Direction::kBoth) {
    return false;
  }
  if (s.to_vertex) {
    // out(labels...) — the interpreter queries edges by label only and
    // applies the step spec to the far vertices.
    if (!SpecCollapsible(s.spec, /*allow_projection=*/true)) return false;
    out->hop = MultiHopHop{};
    out->hop.direction = s.direction;
    out->hop.edge_labels = s.edge_labels;
    out->hop.edge_spec.labels = s.edge_labels;
    out->hop.vertex_spec = s.spec;
    out->hop.emit_edge_id = false;
    out->step_count = 1;
    return true;
  }
  // outE(labels...) — collapsible only as a pair with the matching
  // far-endpoint step (outE().inV() / inE().outV()); the intermediate
  // edge traversers then only contribute their ids to the path.
  if (i + 1 >= steps.size()) return false;
  const Step& n = steps[i + 1];
  Direction far =
      s.direction == Direction::kOut ? Direction::kIn : Direction::kOut;
  if (n.kind != StepKind::kEdgeVertex || n.direction != far) return false;
  if (s.spec.has_projection || !SpecCollapsible(s.spec, false)) return false;
  if (!SpecCollapsible(n.spec, /*allow_projection=*/true)) return false;
  out->hop = MultiHopHop{};
  out->hop.direction = s.direction;
  out->hop.edge_labels = s.edge_labels;
  out->hop.edge_spec.labels = s.edge_labels;
  out->hop.edge_spec.predicates = s.spec.predicates;
  out->hop.vertex_spec = n.spec;
  out->hop.emit_edge_id = true;
  out->step_count = 2;
  return true;
}

/// True when `s` emits vertex traversers a hop chain can start from.
bool EmitsVertices(const Step& s) {
  switch (s.kind) {
    case StepKind::kGraph:
      return !s.graph_emits_edges && s.spec.agg == AggOp::kNone;
    case StepKind::kVertex:
      return s.to_vertex && s.spec.agg == AggOp::kNone;
    case StepKind::kEdgeVertex:
      return s.spec.agg == AggOp::kNone;
    case StepKind::kMultiHop:
      return true;
    default:
      return false;
  }
}

std::string DescribeHops(const std::vector<CandidateHop>& hops) {
  std::vector<std::string> parts;
  parts.reserve(hops.size());
  for (const CandidateHop& h : hops) {
    bool outward = h.hop.direction == Direction::kOut;
    std::string p = h.hop.emit_edge_id ? (outward ? "outE" : "inE")
                                       : (outward ? "out" : "in");
    p += "(" + Join(h.hop.edge_labels, ",") + ")";
    if (h.hop.emit_edge_id) p += outward ? ".inV()" : ".outV()";
    parts.push_back(std::move(p));
  }
  return Join(parts, ".");
}

// ----------------------------------------------------------------------
// Costing
// ----------------------------------------------------------------------

/// One SnapshotTableStats per table per pass.
class StatsCache {
 public:
  explicit StatsCache(const sql::Database* db) : db_(db) {}

  const sql::Database::TableStats* Get(const std::string& name) {
    auto it = cache_.find(name);
    if (it == cache_.end()) {
      sql::Database::TableStats st;
      bool ok = db_->SnapshotTableStats(name, &st);
      it = cache_
               .emplace(name, ok ? std::optional<sql::Database::TableStats>(
                                       std::move(st))
                                 : std::nullopt)
               .first;
    }
    return it->second ? &*it->second : nullptr;
  }

 private:
  const sql::Database* db_;
  std::unordered_map<std::string, std::optional<sql::Database::TableStats>>
      cache_;
};

constexpr double kRangeSelectivity = 1.0 / 3.0;

double CondSelectivity(const SqlCond& c, const sql::TableSchema& schema,
                       const sql::Database::TableStats* st) {
  if (!c.ref_column.empty()) return 1.0;  // join terms cost via ndv below
  std::optional<size_t> idx = schema.ColumnIndex(c.column);
  if (st == nullptr || !idx || *idx >= st->columns.size()) {
    return kRangeSelectivity;
  }
  const sql::Table::ColumnStats& cs = st->columns[*idx];
  double rows = std::max<double>(1.0, static_cast<double>(st->row_count));
  double ndv = std::max<double>(1.0, static_cast<double>(cs.ndv));
  if (c.op == "=") return 1.0 / ndv;
  if (c.op == "IN") {
    return std::min(1.0, static_cast<double>(c.params.size()) / ndv);
  }
  if (c.op == "NOTNULL") {
    return std::max(0.0, 1.0 - static_cast<double>(cs.null_count) / rows);
  }
  if (c.op == "<>") return std::max(0.0, 1.0 - 1.0 / ndv);
  return kRangeSelectivity;
}

double CondsSelectivity(const QueryConds& conds,
                        const sql::TableSchema& schema,
                        const sql::Database::TableStats* st) {
  double sel = 1.0;
  for (const SqlCond& c : conds.conjuncts) {
    sel *= CondSelectivity(c, schema, st);
  }
  for (const auto& group : conds.or_groups) {
    double g = 0.0;
    for (const auto& alt : group) {
      double a = 1.0;
      for (const SqlCond& c : alt) a *= CondSelectivity(c, schema, st);
      g += a;
    }
    sel *= std::min(1.0, g);
  }
  return sel;
}

double ColumnNdv(const sql::Database::TableStats* st, size_t column) {
  if (st == nullptr || column >= st->columns.size()) return 1.0;
  return std::max<double>(1.0, static_cast<double>(st->columns[column].ndv));
}

// ----------------------------------------------------------------------
// Probe parity
// ----------------------------------------------------------------------

/// Simulates the executor's probe-index choice for one join stage: the
/// plan's equality conjuncts in statement order with the join term (near
/// column = previous stage) spliced in at its runtime position. The
/// step-at-a-time counterpart of the join term is an IN over however many
/// ids the previous hop produced, so its candidate multiplicity varies at
/// runtime; requiring the SAME index under value_count 1 and 2 proves the
/// choice — and with it the per-key enumeration order — is insensitive to
/// that multiplicity.
bool ProbeParity(const sql::Database* db, const std::string& table_name,
                 const sql::TableSchema& schema, const QueryConds& conds,
                 const std::optional<size_t>& label_column,
                 size_t join_column) {
  const sql::Table* table = db->GetTable(table_name);
  if (table == nullptr) return false;
  std::vector<sql::ProbeCandidate> base;
  for (const SqlCond& c : conds.conjuncts) {
    if (c.op != "=" && c.op != "IN") continue;
    std::optional<size_t> idx = schema.ColumnIndex(c.column);
    if (!idx) return false;
    sql::ProbeCandidate pc;
    pc.column_index = *idx;
    pc.value_count = c.op == "=" ? 1 : c.params.size();
    base.push_back(pc);
  }
  size_t pos = JoinCondPosition(conds, schema, label_column);
  auto choose = [&](size_t join_count) {
    std::vector<sql::ProbeCandidate> cands = base;
    sql::ProbeCandidate join;
    join.column_index = join_column;
    join.value_count = join_count;
    cands.insert(cands.begin() + static_cast<ptrdiff_t>(
                                     std::min(pos, cands.size())),
                 join);
    return sql::ChooseProbeIndex(*table, cands).index;
  };
  const sql::Index* one = choose(1);
  return one != nullptr && one == choose(2);
}

/// True when `column` is covered by a single-column unique index (the
/// auto-created primary-key index, typically). The collapsed join emits
/// one row per matching vertex row while step-at-a-time execution keys
/// vertices by id, so id uniqueness must be enforced by the catalog.
bool UniqueOn(const sql::Database* db, const std::string& table_name,
              size_t column) {
  const sql::Table* table = db->GetTable(table_name);
  if (table == nullptr) return false;
  const sql::Index* idx = table->FindIndexOn({column});
  return idx != nullptr && idx->unique();
}

// ----------------------------------------------------------------------
// Chain analysis
// ----------------------------------------------------------------------

struct ChainResult {
  int hops_used = 0;        // legal + cheap prefix length
  std::string stop_reason;  // why the prefix ended early (diagnostic)
  std::vector<MultiHopProviderPlan::HopTables> first_hop;
  std::vector<MultiHopProviderPlan::HopTables> later_hops;
  std::string join_order;
  double est_rows = 1.0;  // per-source estimate for the prefix
};

/// Walks the candidate hops front to back, proving per hop that the join
/// restriction of the chain enumerates exactly what step-at-a-time
/// execution would (DESIGN.md §15), and costing the fan-out from the
/// catalog statistics. Stops at the first hop that fails either test;
/// the surviving prefix collapses when it still covers >= 2 hops.
ChainResult AnalyzeChain(const std::vector<CandidateHop>& hops,
                         const OptimizerContext& ctx, StatsCache* stats) {
  ChainResult r;
  if (!ctx.runtime->endpoint_table_pruning) {
    // Without endpoint pinning the provider cannot classify endpoints to
    // one vertex table, and the chain-per-table decomposition is invalid.
    r.stop_reason = "endpoint table pruning disabled";
    return r;
  }
  const auto& etables = ctx.topology->edge_tables();
  const auto& vtables = ctx.topology->vertex_tables();
  std::vector<int> prev_far;  // far vertex tables of the previous hop
  std::vector<std::string> order_parts;
  double cumulative = 1.0;

  for (size_t k = 0; k < hops.size(); ++k) {
    const MultiHopHop& hop = hops[k].hop;
    const bool outward = hop.direction == Direction::kOut;
    const std::string at_hop = " at hop " + std::to_string(k + 1);

    struct Cand {
      int edge = -1;
      int far = -1;
      const overlay::ResolvedEdgeTable* et = nullptr;
      const overlay::ResolvedVertexTable* vt = nullptr;
      EdgePlan eplan;
      VertexPlan vplan;
    };
    std::vector<Cand> cands;
    std::string fail;

    for (size_t ti = 0; ti < etables.size() && fail.empty(); ++ti) {
      const overlay::ResolvedEdgeTable& t = etables[ti];
      EdgePlan ep = PlanEdgeTable(t, hop.edge_spec, *ctx.runtime);
      if (ep.skip) continue;
      if (ep.client_filter) {
        fail = "client-side edge predicate on \"" + t.conf.table_name + "\"";
        break;
      }
      int near = outward ? t.src_vertex_table : t.dst_vertex_table;
      if (k > 0 && near >= 0 &&
          std::find(prev_far.begin(), prev_far.end(), near) ==
              prev_far.end()) {
        continue;  // runtime endpoint pruning drops it for every source
      }
      int far = outward ? t.dst_vertex_table : t.src_vertex_table;
      if (far < 0) {
        fail = "far endpoint of \"" + t.conf.table_name +
               "\" not pinned to a vertex table";
        break;
      }
      const overlay::ResolvedVertexTable& vt =
          vtables[static_cast<size_t>(far)];
      VertexPlan vp = PlanVertexTable(vt, hop.vertex_spec, *ctx.runtime);
      if (vp.client_filter) {
        fail =
            "client-side vertex predicate on \"" + vt.conf.table_name + "\"";
        break;
      }
      if (vp.skip) {
        // Step-at-a-time execution prunes the pinned vertex fetch the
        // same way, so every emission through this table is dropped: at
        // hop 1 the chain just disappears; deeper it kills the hop.
        if (k == 0) continue;
        fail = "pruned far vertex table" + at_hop;
        break;
      }
      Cand c;
      c.edge = static_cast<int>(ti);
      c.far = far;
      c.et = &t;
      c.vt = &vt;
      c.eplan = std::move(ep);
      c.vplan = std::move(vp);
      cands.push_back(std::move(c));
    }

    if (fail.empty() && cands.empty()) {
      fail = "no candidate edge table" + at_hop;
    }
    if (fail.empty() && k > 0 && cands.size() != 1) {
      fail = "multiple candidate edge tables" + at_hop;
    }
    if (fail.empty() && k > 0) {
      const Cand& c = cands[0];
      int near = outward ? c.et->src_vertex_table : c.et->dst_vertex_table;
      if (near >= 0) {
        // With a pinned near endpoint, runtime pruning keys off the
        // actual source tables; that only matches the per-chain join
        // when every previous chain ends at exactly that table.
        for (int pf : prev_far) {
          if (pf != near) {
            fail = "depends on runtime endpoint pruning" + at_hop;
            break;
          }
        }
      }
      if (fail.empty()) {
        const overlay::ResolvedField& nearf =
            outward ? c.et->src_v : c.et->dst_v;
        if (!nearf.def.SingleColumn()) {
          fail =
              "composite near endpoint on \"" + c.et->conf.table_name + "\"";
        }
        for (int pf : prev_far) {
          if (!fail.empty()) break;
          const overlay::ResolvedVertexTable& pvt =
              vtables[static_cast<size_t>(pf)];
          if (!pvt.id.def.SingleColumn()) {
            fail = "composite vertex id on \"" + pvt.conf.table_name + "\"";
          }
        }
        if (fail.empty() &&
            !ProbeParity(ctx.db, c.et->conf.table_name, *c.et->schema,
                         c.eplan.conds, c.et->label_column,
                         nearf.column_indexes[0])) {
          fail =
              "no stable probe index on \"" + c.et->conf.table_name + "\"";
        }
      }
    }

    // Per-candidate checks that apply at every hop: the far-side join
    // (vertex id = edge far column) must be a single-column equality on
    // a unique, stably-indexed vertex id.
    for (const Cand& c : cands) {
      if (!fail.empty()) break;
      const overlay::ResolvedField& farf = outward ? c.et->dst_v : c.et->src_v;
      if (!farf.def.SingleColumn() || !c.vt->id.def.SingleColumn()) {
        fail = "composite far endpoint on \"" + c.et->conf.table_name + "\"";
        break;
      }
      if (!UniqueOn(ctx.db, c.vt->conf.table_name,
                    c.vt->id.column_indexes[0])) {
        fail = "vertex id not unique on \"" + c.vt->conf.table_name + "\"";
        break;
      }
      if (!ProbeParity(ctx.db, c.vt->conf.table_name, *c.vt->schema,
                       c.vplan.conds, c.vt->label_column,
                       c.vt->id.column_indexes[0])) {
        fail = "no stable probe index on \"" + c.vt->conf.table_name + "\"";
        break;
      }
      if (hop.vertex_spec.has_projection &&
          ctx.runtime->vertex_from_edge_shortcut &&
          EqualsIgnoreCase(c.et->conf.table_name, c.vt->conf.table_name)) {
        // The vertex-from-edge shortcut materializes full-property
        // vertices straight from the edge row; under a projection the
        // collapsed fetch would return narrower vertices.
        fail = "projection with vertex-from-edge shortcut on \"" +
               c.vt->conf.table_name + "\"";
        break;
      }
    }

    if (fail.empty()) {
      // Cost: per-source fan-out of this hop.
      double fanout = 0.0;
      for (const Cand& c : cands) {
        const sql::Database::TableStats* est =
            stats->Get(c.et->conf.table_name);
        const sql::Database::TableStats* vst =
            stats->Get(c.vt->conf.table_name);
        double rows = est ? static_cast<double>(est->row_count) : 1024.0;
        double esel = CondsSelectivity(c.eplan.conds, *c.et->schema, est);
        const overlay::ResolvedField& nearf =
            outward ? c.et->src_v : c.et->dst_v;
        double near_ndv = nearf.column_indexes.empty()
                              ? 1.0
                              : ColumnNdv(est, nearf.column_indexes[0]);
        double vsel = CondsSelectivity(c.vplan.conds, *c.vt->schema, vst);
        fanout += rows * esel / near_ndv * vsel;
      }
      if (fanout > ctx.options.max_fanout) {
        fail = "fan-out estimate " + std::to_string(fanout) + " exceeds cap" +
               at_hop;
      } else if (cumulative * fanout > ctx.options.max_est_rows) {
        fail = "cumulative row estimate exceeds cap" + at_hop;
      } else {
        cumulative *= std::max(fanout, 1e-9);
      }
    }

    if (!fail.empty()) {
      r.stop_reason = fail;
      break;
    }

    // Hop accepted: record its tables and enumeration order.
    std::vector<std::string> part;
    std::vector<int> far_set;
    for (const Cand& c : cands) {
      MultiHopProviderPlan::HopTables ht;
      ht.edge_table = c.edge;
      ht.vertex_table = c.far;
      if (k == 0) {
        r.first_hop.push_back(ht);
      } else {
        r.later_hops.push_back(ht);
      }
      part.push_back(c.et->conf.table_name + ">" + c.vt->conf.table_name);
      if (std::find(far_set.begin(), far_set.end(), c.far) == far_set.end()) {
        far_set.push_back(c.far);
      }
    }
    order_parts.push_back(part.size() == 1 ? part[0]
                                           : "(" + Join(part, "|") + ")");
    prev_far = std::move(far_set);
    r.hops_used = static_cast<int>(k) + 1;
    r.est_rows = cumulative;
  }

  r.join_order = Join(order_parts, ">");
  return r;
}

// ----------------------------------------------------------------------
// The pass
// ----------------------------------------------------------------------

void Merge(CollapseSummary* into, const CollapseSummary& from) {
  into->collapsed += from.collapsed;
  into->attempted += from.attempted;
}

CollapseSummary CollapseInSteps(std::vector<Step>* steps,
                                const OptimizerContext& ctx,
                                StatsCache* stats) {
  CollapseSummary sum;
  for (Step& s : *steps) {
    if (s.kind == StepKind::kMultiHop) continue;  // body is the fallback
    if (!s.body.empty()) Merge(&sum, CollapseInSteps(&s.body, ctx, stats));
    for (std::vector<Step>& b : s.branches) {
      Merge(&sum, CollapseInSteps(&b, ctx, stats));
    }
  }

  for (size_t i = 1; i < steps->size();) {
    if (!EmitsVertices((*steps)[i - 1])) {
      ++i;
      continue;
    }
    std::vector<CandidateHop> hops;
    size_t pos = i;
    while (pos < steps->size() &&
           hops.size() <
               static_cast<size_t>(std::max(ctx.options.max_hops, 0))) {
      CandidateHop ch;
      if (!ExtractHop(*steps, pos, &ch)) break;
      bool final_projection = ch.hop.vertex_spec.has_projection;
      pos += ch.step_count;
      hops.push_back(std::move(ch));
      if (final_projection) break;  // projected vertices end the chain
    }
    if (hops.size() < 2) {
      ++i;
      continue;
    }

    sum.attempted++;
    ChainResult chain = AnalyzeChain(hops, ctx, stats);
    const bool chosen = chain.hops_used >= 2;

    OptimizerLog::Decision d;
    d.chain = DescribeHops(hops);
    d.chosen = chosen;
    d.hops = chosen ? chain.hops_used : static_cast<int>(hops.size());
    if (chosen) {
      d.join_order = chain.join_order;
      d.est_rows =
          static_cast<uint64_t>(std::llround(std::max(chain.est_rows, 0.0)));
      if (chain.hops_used < static_cast<int>(hops.size())) {
        d.bail_reason = "truncated: " + chain.stop_reason;
      }
    } else {
      d.bail_reason = chain.stop_reason;
    }
    uint64_t decision_id = ctx.log ? ctx.log->Record(std::move(d)) : 0;

    if (!chosen) {
      i = pos;  // a shorter sub-run would fail the same legality checks
      continue;
    }

    size_t span = 0;
    for (int h = 0; h < chain.hops_used; ++h) {
      span += hops[static_cast<size_t>(h)].step_count;
    }
    auto spec = std::make_shared<MultiHopSpec>();
    for (int h = 0; h < chain.hops_used; ++h) {
      spec->hops.push_back(hops[static_cast<size_t>(h)].hop);
    }
    spec->est_rows =
        static_cast<uint64_t>(std::llround(std::max(chain.est_rows, 0.0)));
    spec->join_order = chain.join_order;
    auto pplan = std::make_shared<MultiHopProviderPlan>();
    pplan->first_hop = std::move(chain.first_hop);
    pplan->later_hops = std::move(chain.later_hops);
    pplan->log = ctx.log;
    pplan->decision_id = decision_id;
    spec->provider_plan = std::static_pointer_cast<const void>(
        std::shared_ptr<const MultiHopProviderPlan>(std::move(pplan)));

    Step collapsed;
    collapsed.kind = StepKind::kMultiHop;
    collapsed.body.assign(steps->begin() + static_cast<ptrdiff_t>(i),
                          steps->begin() + static_cast<ptrdiff_t>(i + span));
    collapsed.multi_hop = std::move(spec);
    steps->erase(steps->begin() + static_cast<ptrdiff_t>(i),
                 steps->begin() + static_cast<ptrdiff_t>(i + span));
    steps->insert(steps->begin() + static_cast<ptrdiff_t>(i),
                  std::move(collapsed));
    sum.collapsed++;
    ++i;  // the collapsed step emits vertices; a new run may start after it
  }
  return sum;
}

bool ContextUsable(const OptimizerContext& ctx) {
  return ctx.options.multi_hop_collapse && ctx.topology != nullptr &&
         ctx.db != nullptr && ctx.runtime != nullptr;
}

}  // namespace

CollapseSummary CollapseMultiHops(gremlin::Script* script,
                                  const OptimizerContext& ctx) {
  CollapseSummary sum;
  if (script == nullptr || !ContextUsable(ctx)) return sum;
  StatsCache stats(ctx.db);
  for (gremlin::ScriptStatement& stmt : script->statements) {
    Merge(&sum, CollapseInSteps(&stmt.traversal.steps, ctx, &stats));
  }
  return sum;
}

CollapseSummary CollapseMultiHopsInTraversal(gremlin::Traversal* traversal,
                                             const OptimizerContext& ctx) {
  CollapseSummary sum;
  if (traversal == nullptr || !ContextUsable(ctx)) return sum;
  StatsCache stats(ctx.db);
  return CollapseInSteps(&traversal->steps, ctx, &stats);
}

}  // namespace db2graph::core
