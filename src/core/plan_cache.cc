#include "core/plan_cache.h"

#include <functional>
#include <unordered_set>

namespace db2graph::core {

namespace {

using gremlin::GremlinArg;
using gremlin::PropPredicate;
using gremlin::Step;

// Walks one step tree, adding a kId slot for every unassigned variable in
// an id position and a kPredicate slot for every has(key, var) binding.
void CollectFromSteps(const std::vector<Step>& steps,
                      const std::unordered_set<std::string>& assigned,
                      std::unordered_set<std::string>* seen,
                      std::vector<CompiledPlan::BindSlot>* out) {
  auto add_id = [&](const std::vector<GremlinArg>& args) {
    for (const GremlinArg& arg : args) {
      if (!arg.is_var() || assigned.count(arg.var) > 0) continue;
      if (!seen->insert(arg.var + "\x01id").second) continue;
      CompiledPlan::BindSlot slot;
      slot.name = arg.var;
      slot.use = CompiledPlan::BindSlot::Use::kId;
      out->push_back(std::move(slot));
    }
  };
  for (const Step& step : steps) {
    add_id(step.start_ids);
    add_id(step.src_id_args);
    add_id(step.dst_id_args);
    add_id(step.id_args);
    for (const PropPredicate& pred : step.predicates) {
      if (pred.var.empty() || assigned.count(pred.var) > 0) continue;
      if (!seen->insert(pred.var + "\x01pred").second) continue;
      CompiledPlan::BindSlot slot;
      slot.name = pred.var;
      slot.use = CompiledPlan::BindSlot::Use::kPredicate;
      slot.op = pred.op;
      out->push_back(std::move(slot));
    }
    // Strategies may fold var predicates into GSA specs only when
    // resolved; unresolved ones stay on kHas steps — but sweep the spec
    // too so a future fold cannot silently drop a slot.
    for (const PropPredicate& pred : step.spec.predicates) {
      if (pred.var.empty() || assigned.count(pred.var) > 0) continue;
      if (!seen->insert(pred.var + "\x01pred").second) continue;
      CompiledPlan::BindSlot slot;
      slot.name = pred.var;
      slot.use = CompiledPlan::BindSlot::Use::kPredicate;
      slot.op = pred.op;
      out->push_back(std::move(slot));
    }
    CollectFromSteps(step.body, assigned, seen, out);
    for (const std::vector<Step>& branch : step.branches) {
      CollectFromSteps(branch, assigned, seen, out);
    }
  }
}

}  // namespace

std::vector<CompiledPlan::BindSlot> CollectBindSlots(
    const gremlin::Script& script) {
  std::vector<CompiledPlan::BindSlot> out;
  std::unordered_set<std::string> assigned;
  std::unordered_set<std::string> seen;
  for (const gremlin::ScriptStatement& stmt : script.statements) {
    CollectFromSteps(stmt.traversal.steps, assigned, &seen, &out);
    if (!stmt.assign_to.empty()) assigned.insert(stmt.assign_to);
  }
  return out;
}

PlanCache::PlanCache(size_t capacity, size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity < shards) capacity = shards;
  shard_capacity_ = capacity / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  registry_hits_ = registry.GetCounter(kHitsCounter);
  registry_misses_ = registry.GetCounter(kMissesCounter);
  registry_invalidations_ = registry.GetCounter(kInvalidationsCounter);
  registry_evictions_ = registry.GetCounter(kEvictionsCounter);
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(
    const std::string& key, uint64_t current_ddl_version) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1);
    registry_misses_->fetch_add(1);
    return nullptr;
  }
  if (it->second->second->ddl_version != current_ddl_version) {
    // Compiled under a different catalog: the overlay mapping (and thus
    // the plan's implied SQL) may no longer hold. Drop and recompile.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    invalidations_.fetch_add(1);
    registry_invalidations_->fetch_add(1);
    misses_.fetch_add(1);
    registry_misses_->fetch_add(1);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1);
  registry_hits_->fetch_add(1);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CompiledPlan> plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_ && !shard.lru.empty()) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1);
    registry_evictions_->fetch_add(1);
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.map.emplace(key, shard.lru.begin());
}

void PlanCache::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

PlanCache::Counts PlanCache::Snapshot() const {
  Counts c;
  c.hits = hits_.load();
  c.misses = misses_.load();
  c.invalidations = invalidations_.load();
  c.evictions = evictions_.load();
  return c;
}

}  // namespace db2graph::core
