#include "core/sql_dialect.h"

#include <algorithm>

#include "common/strings.h"
#include "common/trace.h"

namespace db2graph::core {

namespace {

// Table name between FROM "..." for trace attribution; the graph layer
// only ever generates single-table statements of that shape.
std::string TableFromSql(const std::string& sql) {
  size_t from = sql.find(" FROM \"");
  if (from == std::string::npos) return "";
  // Multi-hop join statements list several tables: FROM "A" AS e0, "B" AS
  // v1, ... — label the trace record with the whole chain, '>'-joined.
  std::string tables;
  size_t begin = from + 7;
  while (true) {
    size_t end = sql.find('"', begin);
    if (end == std::string::npos) return tables;
    if (!tables.empty()) tables += '>';
    tables += sql.substr(begin, end - begin);
    size_t next = sql.find(", \"", end);
    if (next == std::string::npos) return tables;
    // Stop at the WHERE clause: a quoted column reference there would
    // otherwise read as another table.
    size_t where = sql.find(" WHERE ", end);
    if (where != std::string::npos && where < next) return tables;
    begin = next + 3;
  }
}

}  // namespace

std::string SqlDialect::RenderSql(const std::string& sql,
                                  const std::vector<Value>& params) {
  std::string out;
  size_t next = 0;
  for (char c : sql) {
    if (c == '?' && next < params.size()) {
      out += params[next++].ToSqlLiteral();
    } else {
      out += c;
    }
  }
  return out;
}

Result<sql::ResultSet> SqlDialect::Query(const std::string& sql,
                                         const std::vector<Value>& params) {
  queries_issued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trace_enabled_) trace_.push_back(RenderSql(sql, params));
  }
  QueryTrace* query_trace = CurrentTrace();
  uint64_t start = query_trace != nullptr
                       ? query_trace->clock()->NowMicros()
                       : 0;
  Result<sql::ResultSet> result = QueryUntraced(sql, params);
  if (query_trace != nullptr) {
    SqlTraceRecord record;
    record.table = TableFromSql(sql);
    record.sql = RenderSql(sql, params);
    record.micros = query_trace->clock()->NowMicros() - start;
    if (result.ok()) {
      record.access_path = result->exec.AccessPath();
      record.exec_mode = result->exec.ExecMode();
      record.rows_scanned = result->exec.rows_scanned;
      record.rows_returned = result->rows.size();
      record.rows_emitted = result->exec.rows_emitted;
    } else {
      record.access_path = "error: " + result.status().ToString();
    }
    query_trace->RecordSql(std::move(record));
  }
  return result;
}

Result<sql::ResultSet> SqlDialect::QueryShaped(
    const std::string& shape_key,
    const std::function<std::string()>& build_sql,
    const std::vector<Value>& params) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = skeletons_.find(shape_key);
    if (it != skeletons_.end()) sql = it->second;
  }
  if (sql.empty()) {
    skeleton_misses_.fetch_add(1, std::memory_order_relaxed);
    registry_skeleton_misses_->fetch_add(1);
    sql = build_sql();
    std::lock_guard<std::mutex> lock(mutex_);
    skeletons_.emplace(shape_key, sql);
  } else {
    skeleton_hits_.fetch_add(1, std::memory_order_relaxed);
    registry_skeleton_hits_->fetch_add(1);
  }
  return Query(sql, params);
}

Result<sql::PreparedStatement> SqlDialect::PrepareCached(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = templates_.find(sql);
    if (it != templates_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;  // copy out of the lock: cheap shared handle
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  Result<sql::PreparedStatement> prepared = db_->Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    templates_.emplace(sql, *prepared);
  }
  return prepared;
}

Result<sql::ResultSet> SqlDialect::QueryUntraced(
    const std::string& sql, const std::vector<Value>& params) {
  Result<sql::PreparedStatement> stmt = PrepareCached(sql);
  if (!stmt.ok()) return stmt.status();
  // Execute outside the cache lock: statement execution takes database
  // locks and may run long.
  return stmt->Execute(params);
}

DialectRowStream::DialectRowStream(std::unique_ptr<sql::RowStream> stream,
                                   QueryTrace* trace, SqlTraceRecord record,
                                   uint64_t start_micros)
    : stream_(std::move(stream)),
      trace_(trace),
      record_(std::move(record)),
      start_micros_(start_micros) {}

DialectRowStream::~DialectRowStream() { Close(); }

bool DialectRowStream::Next(sql::RowBlock* out) {
  bool ok = stream_->Next(out);
  if (ok) {
    rows_seen_ += out->rows.size();
  } else {
    FileRecord();  // exhausted (or failed): final counters are in
  }
  return ok;
}

void DialectRowStream::Close() {
  FileRecord();  // file *before* releasing: Close wipes the stream's plan
  stream_->Close();
}

void DialectRowStream::FileRecord() {
  if (trace_ == nullptr || filed_) return;
  filed_ = true;
  const sql::ExecInfo& exec = stream_->exec();
  record_.micros = trace_->clock()->NowMicros() - start_micros_;
  if (stream_->status().ok()) {
    record_.access_path = exec.AccessPath();
    record_.exec_mode = exec.ExecMode();
    record_.rows_scanned = exec.rows_scanned;
    record_.rows_returned = rows_seen_;
    record_.rows_emitted = exec.rows_emitted;
  } else {
    record_.access_path = "error: " + stream_->status().ToString();
  }
  trace_->RecordSql(std::move(record_));
}

Result<std::unique_ptr<DialectRowStream>> SqlDialect::QueryStreaming(
    const std::string& sql, const std::vector<Value>& params,
    size_t block_rows) {
  queries_issued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trace_enabled_) trace_.push_back(RenderSql(sql, params));
  }
  QueryTrace* query_trace = CurrentTrace();
  uint64_t start =
      query_trace != nullptr ? query_trace->clock()->NowMicros() : 0;
  Result<sql::PreparedStatement> stmt = PrepareCached(sql);
  if (!stmt.ok()) return stmt.status();
  Result<std::unique_ptr<sql::RowStream>> stream =
      stmt->ExecuteStreaming(params, block_rows);
  if (!stream.ok()) {
    if (query_trace != nullptr) {
      SqlTraceRecord record;
      record.table = TableFromSql(sql);
      record.sql = RenderSql(sql, params);
      record.access_path = "error: " + stream.status().ToString();
      record.micros = query_trace->clock()->NowMicros() - start;
      query_trace->RecordSql(std::move(record));
    }
    return stream.status();
  }
  SqlTraceRecord record;
  if (query_trace != nullptr) {
    record.table = TableFromSql(sql);
    record.sql = RenderSql(sql, params);
  }
  return std::unique_ptr<DialectRowStream>(new DialectRowStream(
      std::move(*stream), query_trace, std::move(record), start));
}

Result<std::unique_ptr<DialectRowStream>> SqlDialect::QueryShapedStreaming(
    const std::string& shape_key,
    const std::function<std::string()>& build_sql,
    const std::vector<Value>& params, size_t block_rows) {
  std::string sql;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = skeletons_.find(shape_key);
    if (it != skeletons_.end()) sql = it->second;
  }
  if (sql.empty()) {
    skeleton_misses_.fetch_add(1, std::memory_order_relaxed);
    registry_skeleton_misses_->fetch_add(1);
    sql = build_sql();
    std::lock_guard<std::mutex> lock(mutex_);
    skeletons_.emplace(shape_key, sql);
  } else {
    skeleton_hits_.fetch_add(1, std::memory_order_relaxed);
    registry_skeleton_hits_->fetch_add(1);
  }
  return QueryStreaming(sql, params, block_rows);
}

void SqlDialect::RecordPattern(const std::string& table,
                               std::vector<std::string> predicate_columns) {
  if (predicate_columns.empty()) return;
  // Sampled: pattern statistics do not need every query, and the map
  // update would otherwise sit on the per-query hot path.
  thread_local uint64_t counter = 0;
  if ((counter++ & 0x7) != 0) return;
  for (std::string& c : predicate_columns) c = ToLower(c);
  std::sort(predicate_columns.begin(), predicate_columns.end());
  predicate_columns.erase(
      std::unique(predicate_columns.begin(), predicate_columns.end()),
      predicate_columns.end());
  std::lock_guard<std::mutex> lock(mutex_);
  ++pattern_counts_[{ToLower(table), std::move(predicate_columns)}];
}

std::vector<SqlDialect::IndexSuggestion> SqlDialect::SuggestIndexes() const {
  std::vector<IndexSuggestion> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, count] : pattern_counts_) {
    if (count < options_.frequent_pattern_threshold) continue;
    const auto& [table, columns] = key;
    const sql::Table* base = db_->GetTable(table);
    if (base == nullptr) continue;  // views cannot be indexed
    // Resolve to column indexes; skip when an index already covers them.
    std::vector<size_t> idxs;
    bool resolvable = true;
    for (const std::string& c : columns) {
      auto idx = base->schema().ColumnIndex(c);
      if (!idx) {
        resolvable = false;
        break;
      }
      idxs.push_back(*idx);
    }
    if (!resolvable || base->FindIndexOn(idxs) != nullptr) continue;
    IndexSuggestion suggestion;
    suggestion.table = base->schema().name;
    for (size_t i : idxs) {
      suggestion.columns.push_back(base->schema().columns[i].name);
    }
    suggestion.occurrences = count;
    suggestion.ddl = "CREATE INDEX idx_" + suggestion.table + "_" +
                     Join(suggestion.columns, "_") + " ON " +
                     suggestion.table + " (" +
                     Join(suggestion.columns, ", ") + ")";
    out.push_back(std::move(suggestion));
  }
  std::sort(out.begin(), out.end(),
            [](const IndexSuggestion& a, const IndexSuggestion& b) {
              return a.occurrences > b.occurrences;
            });
  return out;
}

}  // namespace db2graph::core
