// Copyright (c) 2026 The db2graph-repro Authors.
//
// Compile-once/execute-many support for the Gremlin pipeline: a compiled
// plan (parsed + strategy-mutated script with its bind-variable slots) and
// a sharded LRU cache of such plans keyed on script text, so LinkBench-
// style serving traffic — a small set of query shapes executed millions of
// times with different ids — pays ParseGremlin and strategy application
// once per shape instead of once per request. Mirrors Gremlin Server's
// parameterized-script compilation cache and GRAPHITE's plan/execute
// separation (PAPERS.md).
//
// Staleness: each entry records the catalog ddl_version it was compiled
// under; a lookup under a newer version evicts the entry and reports a
// miss (the same mechanism Db2Graph::OverlayMayBeStale() uses), so DDL can
// never serve a stale plan.

#ifndef DB2GRAPH_CORE_PLAN_CACHE_H_
#define DB2GRAPH_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "gremlin/step.h"

namespace db2graph::core {

/// An immutable, shareable compiled query: the parsed + strategy-mutated
/// script, the strategy rewrites that produced it (replayed into traces),
/// and the bind-variable slots executions must supply. Execution never
/// mutates a plan — the interpreter copies per-execution state — so one
/// plan serves unlimited concurrent executions.
struct CompiledPlan {
  std::string script_text;
  gremlin::Script script;  // strategies already applied
  /// Catalog version this plan was compiled under (stale when the
  /// database's ddl_version has moved past it).
  uint64_t ddl_version = 0;
  /// Statistics epoch at compile time. Plans whose shape the multi-hop
  /// optimizer decided from the live statistics (stats_sensitive) are
  /// recompiled once the epoch drifts past OptimizerOptions::
  /// stats_drift_limit — counted as plan_cache.stale_stats_recompiles.
  uint64_t stats_epoch = 0;
  bool stats_sensitive = false;
  /// Total hops folded into MultiHopSteps (0 = fully step-at-a-time);
  /// surfaced in sysmon.query_log.
  uint64_t collapsed_hops = 0;
  /// Any statement carries a .profile() terminal.
  bool has_profile = false;
  /// Strategy rewrites recorded at compile time, replayed into the trace
  /// of each traced execution (strategies do not re-run on cached plans).
  std::vector<StrategyRewrite> rewrites;

  /// One variable the script references without assigning first — a bind
  /// placeholder the execution must supply (e.g. `vid` in g.V(vid)).
  struct BindSlot {
    enum class Use {
      kId,         // element-id position: V()/E()/hasId()/endpoint args
      kPredicate,  // has(key, var) / has(key, gt(var)) value position
    };
    std::string name;
    Use use = Use::kId;
    /// For kPredicate: the comparison the binding feeds.
    gremlin::PropPredicate::Op op = gremlin::PropPredicate::Op::kEq;
  };
  std::vector<BindSlot> binds;
};

/// Collects the bind slots of a parsed script: every variable referenced
/// before (or without) an assignment by an earlier statement.
std::vector<CompiledPlan::BindSlot> CollectBindSlots(
    const gremlin::Script& script);

/// Sharded LRU cache of compiled plans. Thread-safe; lookups and inserts
/// on different shards never contend. Hit/miss/invalidation/eviction
/// counts are kept both per instance (precise test assertions) and in the
/// process metrics registry (operational visibility).
class PlanCache {
 public:
  /// Registry metric names.
  static constexpr const char* kHitsCounter = "plan_cache.hits";
  static constexpr const char* kMissesCounter = "plan_cache.misses";
  static constexpr const char* kInvalidationsCounter =
      "plan_cache.invalidations";
  static constexpr const char* kEvictionsCounter = "plan_cache.evictions";
  /// Bumped by Db2Graph when a statistics-sensitive cache hit is thrown
  /// away because the stats epoch drifted past the plan's compile-time
  /// epoch (the cache itself has no stats visibility).
  static constexpr const char* kStaleStatsRecompilesCounter =
      "plan_cache.stale_stats_recompiles";

  explicit PlanCache(size_t capacity = 1024, size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key`, or nullptr. An entry compiled
  /// under an older ddl_version is erased (counted as an invalidation)
  /// and reported as a miss.
  std::shared_ptr<const CompiledPlan> Lookup(const std::string& key,
                                             uint64_t current_ddl_version);

  /// Inserts (or replaces) the plan for `key`, evicting the shard's least
  /// recently used entry when full.
  void Insert(const std::string& key,
              std::shared_ptr<const CompiledPlan> plan);

  /// Drops every entry (tests).
  void Clear();

  size_t size() const;

  /// Plain-value copy of the per-instance counters.
  struct Counts {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
  };
  Counts Snapshot() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CompiledPlan>>>;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;  // front = most recently used
    std::unordered_map<std::string, LruList::iterator> map;
  };

  Shard& ShardFor(const std::string& key);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-instance counters.
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter invalidations_;
  metrics::Counter evictions_;
  // Registry counters (process-wide, aggregated across instances).
  metrics::Counter* registry_hits_;
  metrics::Counter* registry_misses_;
  metrics::Counter* registry_invalidations_;
  metrics::Counter* registry_evictions_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_PLAN_CACHE_H_
