#include "core/strategies.h"

#include <algorithm>

#include "common/trace.h"

namespace db2graph::core {

using gremlin::AggOp;
using gremlin::Direction;
using gremlin::GremlinArg;
using gremlin::PropPredicate;
using gremlin::Step;
using gremlin::StepKind;

namespace {

bool IsPlainVertexGraphStep(const Step& step) {
  return step.kind == StepKind::kGraph && !step.graph_emits_edges &&
         step.spec.labels.empty() && step.spec.predicates.empty() &&
         step.spec.src_ids.empty() && step.spec.dst_ids.empty() &&
         step.src_id_args.empty() && step.dst_id_args.empty() &&
         step.spec.agg == AggOp::kNone;
}

// Whether a GSA step emits edges (its spec describes edges).
bool EmitsEdges(const Step& step) {
  if (step.kind == StepKind::kGraph) return step.graph_emits_edges;
  if (step.kind == StepKind::kVertex) return !step.to_vertex;
  return false;
}

// ---- Strategy 4: GraphStep::VertexStep mutation ------------------------

void ApplyMutation(std::vector<Step>* steps) {
  for (size_t i = 0; i + 1 < steps->size(); ++i) {
    Step& graph = (*steps)[i];
    Step& vertex = (*steps)[i + 1];
    if (!IsPlainVertexGraphStep(graph)) continue;
    if (vertex.kind != StepKind::kVertex) continue;
    if (vertex.direction == Direction::kBoth) continue;  // not expressible

    Step mutated;
    mutated.kind = StepKind::kGraph;
    mutated.graph_emits_edges = true;
    mutated.spec = vertex.spec;  // any pushdown info the step carried
    mutated.spec.labels = vertex.edge_labels;
    if (vertex.direction == Direction::kOut) {
      mutated.src_id_args = graph.start_ids;
    } else {
      mutated.dst_id_args = graph.start_ids;
    }
    bool to_vertex = vertex.to_vertex;
    Direction dir = vertex.direction;

    steps->erase(steps->begin() + i, steps->begin() + i + 2);
    steps->insert(steps->begin() + i, std::move(mutated));
    if (to_vertex) {
      // g.V(ids).out() -> edges + the far-endpoint EdgeVertexStep.
      Step endpoint;
      endpoint.kind = StepKind::kEdgeVertex;
      endpoint.direction = dir == Direction::kOut ? Direction::kIn
                                                  : Direction::kOut;
      steps->insert(steps->begin() + i + 1, std::move(endpoint));
    }
  }
}

// ---- Strategy 1: predicate pushdown -----------------------------------

// Tries to fold the filter step at index `j` into the GSA step at `i`.
// Returns true when folded (the caller erases step j).
bool FoldFilterInto(Step* gsa, const Step& filter) {
  const bool edges = EmitsEdges(*gsa);
  gremlin::LookupSpec* spec = &gsa->spec;

  if (filter.kind == StepKind::kHas) {
    // hasId: fold into the GraphStep's start ids when none are set.
    if (!filter.id_args.empty()) {
      if (gsa->kind == StepKind::kGraph && !gsa->graph_emits_edges &&
          gsa->start_ids.empty() && spec->ids.empty()) {
        gsa->start_ids = filter.id_args;
        return true;
      }
      if (gsa->kind == StepKind::kVertex && gsa->to_vertex &&
          spec->ids.empty()) {
        // ids on the emitted vertices; only literal ids fit LookupSpec.
        bool all_literals = true;
        for (const GremlinArg& arg : filter.id_args) {
          all_literals &= !arg.is_var();
        }
        if (!all_literals) return false;
        for (const GremlinArg& arg : filter.id_args) {
          spec->ids.push_back(arg.literal);
        }
        return true;
      }
      return false;
    }
    // Bind placeholders have no values until execution; folding one into
    // a LookupSpec would generate SQL with a dangling '?'. Leave the whole
    // filter step client-side (the interpreter resolves it per execution).
    for (const PropPredicate& pred : filter.predicates) {
      if (!pred.var.empty()) return false;
    }
    // hasLabel: fold into the spec's (or adjacency step's) label list.
    for (const PropPredicate& pred : filter.predicates) {
      if (pred.key == gremlin::kLabelKey &&
          (pred.op == PropPredicate::Op::kWithin ||
           pred.op == PropPredicate::Op::kEq)) {
        std::vector<std::string>* labels =
            (gsa->kind == StepKind::kVertex && !gsa->to_vertex)
                ? &gsa->edge_labels
                : &spec->labels;
        if (!labels->empty()) return false;  // avoid intersection logic
        for (const Value& v : pred.values) {
          if (!v.is_string()) return false;
          labels->push_back(v.as_string());
        }
      } else if (pred.key == gremlin::kIdKey) {
        return false;  // ids handled above via id_args
      } else {
        spec->predicates.push_back(pred);
      }
    }
    return true;
  }

  // where(inV().hasId(x)) / where(outV().hasId(x)) on an edge stream folds
  // into the endpoint constraint — the shape of LinkBench's getLink.
  if (filter.kind == StepKind::kWhere && edges && filter.body.size() == 2 &&
      filter.body[0].kind == StepKind::kEdgeVertex &&
      filter.body[0].direction != Direction::kBoth &&
      filter.body[1].kind == StepKind::kHas &&
      !filter.body[1].id_args.empty() &&
      filter.body[1].predicates.empty()) {
    const bool on_dst = filter.body[0].direction == Direction::kIn;
    if (gsa->kind == StepKind::kGraph) {
      auto* args = on_dst ? &gsa->dst_id_args : &gsa->src_id_args;
      auto* fixed = on_dst ? &gsa->spec.dst_ids : &gsa->spec.src_ids;
      if (!args->empty() || !fixed->empty()) return false;
      *args = filter.body[1].id_args;
      return true;
    }
    if (gsa->kind == StepKind::kVertex && !gsa->to_vertex) {
      bool all_literals = true;
      for (const GremlinArg& arg : filter.body[1].id_args) {
        all_literals &= !arg.is_var();
      }
      if (!all_literals) return false;
      auto* fixed = on_dst ? &gsa->spec.dst_ids : &gsa->spec.src_ids;
      if (!fixed->empty()) return false;
      for (const GremlinArg& arg : filter.body[1].id_args) {
        fixed->push_back(arg.literal);
      }
      return true;
    }
  }
  return false;
}

void ApplyPredicatePushdown(std::vector<Step>* steps) {
  for (size_t i = 0; i < steps->size(); ++i) {
    if (!(*steps)[i].IsGsa()) continue;
    while (i + 1 < steps->size() &&
           FoldFilterInto(&(*steps)[i], (*steps)[i + 1])) {
      steps->erase(steps->begin() + i + 1);
    }
  }
}

// ---- Strategy 2: projection pushdown -----------------------------------

void ApplyProjectionPushdown(std::vector<Step>* steps) {
  for (size_t i = 0; i + 1 < steps->size(); ++i) {
    Step& gsa = (*steps)[i];
    if (!gsa.IsGsa()) continue;
    const Step& next = (*steps)[i + 1];
    if (next.kind == StepKind::kValues && !next.keys.empty()) {
      gsa.spec.has_projection = true;
      gsa.spec.projection = next.keys;
    } else if (next.kind == StepKind::kId ||
               next.kind == StepKind::kLabel ||
               (next.kind == StepKind::kAggregate &&
                next.agg == AggOp::kCount)) {
      // Only required fields are consumed downstream.
      gsa.spec.has_projection = true;
      gsa.spec.projection.clear();
    }
  }
}

// ---- Strategy 3: aggregate pushdown -------------------------------------

void ApplyAggregatePushdown(std::vector<Step>* steps) {
  for (size_t i = 0; i < steps->size(); ++i) {
    Step& gsa = (*steps)[i];
    // Foldable targets: GraphSteps, and adjacency steps that emit edges
    // (out()/in() emit vertices via EdgeEndpoints and cannot carry an
    // aggregate through).
    bool foldable = gsa.kind == StepKind::kGraph ||
                    (gsa.kind == StepKind::kVertex && !gsa.to_vertex);
    if (!foldable) continue;
    if (gsa.spec.agg != AggOp::kNone) continue;
    // GSA + count().
    if (i + 1 < steps->size() &&
        (*steps)[i + 1].kind == StepKind::kAggregate &&
        (*steps)[i + 1].agg == AggOp::kCount) {
      gsa.spec.agg = AggOp::kCount;
      steps->erase(steps->begin() + i + 1);
      continue;
    }
    // GSA + values(key) + sum()/mean()/min()/max()/count().
    if (i + 2 < steps->size() && (*steps)[i + 1].kind == StepKind::kValues &&
        (*steps)[i + 1].keys.size() == 1 &&
        (*steps)[i + 2].kind == StepKind::kAggregate) {
      gsa.spec.agg = (*steps)[i + 2].agg;
      gsa.spec.agg_key = (*steps)[i + 1].keys[0];
      steps->erase(steps->begin() + i + 1, steps->begin() + i + 3);
      continue;
    }
  }
}

// ---- Strategy 5: limit pushdown -----------------------------------------

// A GraphStep immediately followed by limit(n) / range(lo, hi) needs at
// most `high` elements from each consulted table: nothing between them can
// drop rows, so every fetched element reaches the limit and each table's
// SQL may stop after `high` matching rows (rendered as LIMIT by the
// provider). The limit step is kept — LookupSpec::limit is a per-table
// fetch budget, not the cross-table bound the step enforces. Adjacency
// (kVertex) steps are excluded: their output interleaves per-source-vertex
// groups, and a per-table truncation could drop edges of one source while
// keeping a later source's, changing which elements survive the limit.
void ApplyLimitPushdown(std::vector<Step>* steps) {
  for (size_t i = 0; i + 1 < steps->size(); ++i) {
    Step& gsa = (*steps)[i];
    if (gsa.kind != StepKind::kGraph) continue;
    if (gsa.spec.agg != AggOp::kNone || gsa.spec.limit >= 0) continue;
    const Step& next = (*steps)[i + 1];
    if (next.kind != StepKind::kLimit && next.kind != StepKind::kRange) {
      continue;
    }
    if (next.high < 0) continue;  // unbounded range: nothing to push
    gsa.spec.limit = next.high;
  }
}

// path()/simplePath() read the traverser history; the
// GraphStep::VertexStep mutation changes that history (the skipped vertex
// no longer appears), so it must not run in path-observing traversals.
bool ObservesPaths(const std::vector<Step>& steps) {
  for (const Step& step : steps) {
    if (step.kind == StepKind::kPath || step.kind == StepKind::kSimplePath) {
      return true;
    }
    if (ObservesPaths(step.body)) return true;
    for (const auto& branch : step.branches) {
      if (ObservesPaths(branch)) return true;
    }
  }
  return false;
}

void ApplyToSteps(std::vector<Step>* steps, const StrategyOptions& options) {
  // Recurse into sub-plans first (repeat bodies benefit from folding too).
  for (Step& step : *steps) {
    if (!step.body.empty() && step.kind == StepKind::kRepeat) {
      ApplyToSteps(&step.body, options);
    }
    for (auto& branch : step.branches) {
      ApplyToSteps(&branch, options);
    }
  }
  if (options.graphstep_vertexstep_mutation && !ObservesPaths(*steps)) {
    ApplyMutation(steps);
  }
  if (options.predicate_pushdown) ApplyPredicatePushdown(steps);
  if (options.projection_pushdown) ApplyProjectionPushdown(steps);
  if (options.aggregate_pushdown) ApplyAggregatePushdown(steps);
  if (options.limit_pushdown) ApplyLimitPushdown(steps);
}

}  // namespace

void ApplyStrategies(gremlin::Traversal* traversal,
                     const StrategyOptions& options) {
  QueryTrace* trace = CurrentTrace();
  if (trace == nullptr) {
    ApplyToSteps(&traversal->steps, options);
    return;
  }
  // Traced compilation runs the passes one at a time (same paper order
  // ApplyToSteps uses) so each rewrite is attributed to the strategy that
  // made it. The end state is identical to the combined application.
  struct Pass {
    const char* name;
    bool StrategyOptions::*flag;
  };
  static constexpr Pass kPasses[] = {
      {"GraphStepVertexStepMutation",
       &StrategyOptions::graphstep_vertexstep_mutation},
      {"PredicatePushdown", &StrategyOptions::predicate_pushdown},
      {"ProjectionPushdown", &StrategyOptions::projection_pushdown},
      {"AggregatePushdown", &StrategyOptions::aggregate_pushdown},
      {"LimitPushdown", &StrategyOptions::limit_pushdown},
  };
  for (const Pass& pass : kPasses) {
    if (!(options.*(pass.flag))) continue;
    std::string before = traversal->ToString();
    StrategyOptions single = StrategyOptions::AllOff();
    single.*(pass.flag) = true;
    ApplyToSteps(&traversal->steps, single);
    std::string after = traversal->ToString();
    if (after != before) {
      trace->AddRewrite(pass.name, std::move(before), std::move(after));
    }
  }
}

void ApplyStrategies(gremlin::Script* script,
                     const StrategyOptions& options) {
  for (gremlin::ScriptStatement& stmt : script->statements) {
    ApplyStrategies(&stmt.traversal, options);
  }
}

}  // namespace db2graph::core
