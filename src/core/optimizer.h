// Copyright (c) 2026 The db2graph-repro Authors.
//
// The cost-based multi-hop join optimizer: a compile-time pass over the
// strategy-mutated step plan that folds runs of consecutive adjacency
// hops — out()/in(), and outE().inV() / inE().outV() pairs — into one
// MultiHopStep the provider executes as a single N-way join per
// (edge-table × vertex-table) chain, instead of one SQL round-trip per
// hop. The pass is conservative by construction: it collapses only when
// it can prove the join enumerates exactly the rows, in exactly the
// order, the step-at-a-time plans would produce (see DESIGN.md §15), and
// the replaced steps are preserved in the step body so the interpreter
// falls back whenever the provider declines at runtime.
//
// Costing uses the live catalog statistics (table cardinalities and the
// per-column KMV distinct-value estimates): per-hop fan-out is
// rows(E) · sel(edge predicates) / ndv(join column), scaled by the far
// vertex predicates' selectivity. A hop whose estimated fan-out exceeds
// the cap — or a chain whose cumulative estimate does — stays
// step-at-a-time, where each hop's intermediate result bounds the next
// lookup. Every attempt lands in the OptimizerLog (surfaced as the
// sysmon.optimizer virtual table) with its decision, bail reason, and —
// once executed — actual row count next to the estimate.

#ifndef DB2GRAPH_CORE_OPTIMIZER_H_
#define DB2GRAPH_CORE_OPTIMIZER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gremlin/step.h"
#include "overlay/topology.h"
#include "sql/database.h"

namespace db2graph::core {

struct RuntimeOptions;  // core/graph_structure.h

/// Tuning for the multi-hop collapse pass.
struct OptimizerOptions {
  /// Master switch; off compiles every plan step-at-a-time.
  bool multi_hop_collapse = true;
  /// Longest chain one MultiHopStep may cover.
  int max_hops = 4;
  /// Per-hop estimated fan-out (output rows per input row) above which
  /// the collapse bails: a high-fan-out join materializes the cross
  /// product inside SQL, while step-at-a-time execution re-deduplicates
  /// sources between hops.
  double max_fanout = 4096.0;
  /// Cumulative per-source row estimate cap for the whole chain.
  double max_est_rows = 1e7;
  /// Collapsed plans are statistics-sensitive: when the catalog stats
  /// epoch has drifted this many mutations past the plan's compile-time
  /// epoch, the cached plan is invalidated and recompiled (counted as
  /// plan_cache.stale_stats_recompiles).
  uint64_t stats_drift_limit = 256;
};

/// Ring of collapse decisions, shared between the compiler (records
/// attempts) and the provider (records executed row counts). Exposed as
/// the sysmon.optimizer virtual table.
class OptimizerLog {
 public:
  struct Decision {
    uint64_t id = 0;
    std::string chain;        // rendering of the candidate hop chain
    bool chosen = false;      // collapse applied to the plan
    std::string bail_reason;  // why not, when !chosen
    int hops = 0;
    std::string join_order;
    uint64_t est_rows = 0;     // per-source estimate at compile time
    uint64_t actual_rows = 0;  // total emissions, once executed
    uint64_t executions = 0;   // collapsed runs of this decision
    uint64_t fallbacks = 0;    // runtime declines (step-at-a-time reruns)
  };

  struct Counters {
    uint64_t attempted = 0;
    uint64_t chosen = 0;
    uint64_t bailed = 0;
    uint64_t executions = 0;
    uint64_t fallbacks = 0;
  };

  /// Files a compile-time decision; returns its id.
  uint64_t Record(Decision d);
  /// Adds one execution outcome to decision `id`.
  void RecordExecution(uint64_t id, uint64_t actual_rows, bool fell_back);

  Counters counters() const;
  std::vector<Decision> Snapshot() const;

 private:
  static constexpr size_t kCapacity = 256;

  mutable std::mutex mutex_;
  uint64_t next_id_ = 1;
  Counters counters_;
  std::deque<Decision> ring_;
};

/// The provider-side payload of a MultiHopSpec (carried through the
/// gremlin layer as an opaque pointer): which overlay tables each stage
/// of the join touches. Hop 1 may fan out over several edge tables (one
/// chain per table, executed in table-index order); every later hop was
/// proven to resolve to exactly one.
struct MultiHopProviderPlan {
  struct HopTables {
    int edge_table = -1;    // index into Topology::edge_tables()
    int vertex_table = -1;  // far endpoint's pinned vertex table
  };
  std::vector<HopTables> first_hop;   // candidate chains, table order
  std::vector<HopTables> later_hops;  // hops 2..N
  /// Execution feedback channel (est vs actual in sysmon.optimizer).
  std::weak_ptr<OptimizerLog> log;
  uint64_t decision_id = 0;
};

/// Everything the pass needs from the graph it compiles for.
struct OptimizerContext {
  const overlay::Topology* topology = nullptr;
  const sql::Database* db = nullptr;
  const RuntimeOptions* runtime = nullptr;
  OptimizerOptions options;
  std::shared_ptr<OptimizerLog> log;  // optional
};

/// What the pass did: how many MultiHopSteps it introduced and how many
/// candidate chains it examined. A plan with attempted > 0 is
/// statistics-sensitive (its shape was decided from the live stats).
struct CollapseSummary {
  int collapsed = 0;
  int attempted = 0;
};

/// Runs the collapse pass over every traversal of the script (including
/// repeat/where/union bodies).
CollapseSummary CollapseMultiHops(gremlin::Script* script,
                                  const OptimizerContext& ctx);

/// Single-traversal entry point (tests).
CollapseSummary CollapseMultiHopsInTraversal(gremlin::Traversal* traversal,
                                             const OptimizerContext& ctx);

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_OPTIMIZER_H_
