// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Db2 Graph facade: opens a property graph over a relational database
// through an overlay configuration, compiles and optimizes Gremlin
// queries, and executes them through the Graph Structure module. Also
// registers the graphQuery polymorphic table function so graph queries
// can be embedded inside SQL (paper Section 4).

#ifndef DB2GRAPH_CORE_DB2GRAPH_H_
#define DB2GRAPH_CORE_DB2GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/graph_structure.h"
#include "core/sql_dialect.h"
#include "core/strategies.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"
#include "overlay/config.h"
#include "sql/database.h"

namespace db2graph::core {

/// A property graph opened over relational tables. Thread-safe for
/// concurrent Execute() calls (mirroring Gremlin Server handling many
/// clients over one graph).
class Db2Graph {
 public:
  struct Options {
    /// The Section 6.2 compile-time strategies (Fig. 4 toggles all).
    StrategyOptions strategies;
    /// The Section 6.3 data-dependent runtime optimizations.
    RuntimeOptions runtime;
  };

  /// Opens the graph: resolves the overlay against the catalog (this is
  /// the seconds-scale "Open Graph" step of Table 3 — no data is copied).
  static Result<std::unique_ptr<Db2Graph>> Open(
      sql::Database* db, const overlay::OverlayConfig& config,
      Options options = {});

  /// Same, with the configuration given as JSON text.
  static Result<std::unique_ptr<Db2Graph>> Open(sql::Database* db,
                                                const std::string& config_json,
                                                Options options = {});

  /// Compiles (parse + strategy mutation) and runs a Gremlin script.
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script);

  /// Execute() with script-variable bindings shared across calls (the
  /// session path GremlinService routes through). Also the tracing entry
  /// point: a trailing .profile() terminal, or a nonzero slow-query
  /// threshold, runs the query traced. profile() replaces the result with
  /// one traverser holding the trace rendered as JSON text.
  Result<std::vector<gremlin::Traverser>> Run(const std::string& script,
                                              gremlin::Environment* env);

  /// Compiles and runs `script` with `trace` installed for its duration
  /// (spans, rewrites, SQL records land in it; Finish() is stamped).
  Result<std::vector<gremlin::Traverser>> ExecuteTraced(
      const std::string& script, QueryTrace* trace);

  /// Runs an already-parsed script (strategies applied to a copy).
  Result<std::vector<gremlin::Traverser>> ExecuteScript(
      const gremlin::Script& script);

  /// Compiles a script without executing (plan inspection / tests).
  Result<gremlin::Script> Compile(const std::string& script) const;

  /// Compile-time EXPLAIN: parses, applies strategies (recording each
  /// rewrite), then walks the plan previewing the SQL every
  /// Graph-Structure-Accessing step would generate — which tables prune,
  /// the predicted access path, and the table-cardinality row estimate.
  /// No data is read.
  struct ExplainResult {
    std::string text;  // human-readable rendering
    Json json;         // machine-readable rendering
  };
  Result<ExplainResult> Explain(const std::string& script);

  /// Clock used for traced executions (tests inject a fake).
  void SetTraceClockForTesting(TraceClock* clock) { trace_clock_ = clock; }

  /// Registers the `graphQuery` polymorphic table function on the
  /// database: TABLE (graphQuery('gremlin', '<script>')) AS t (cols...).
  /// Results convert to rows per the declared column list; a trailing
  /// values(k1..kn) projection yields n-column rows (Section 4 footnote).
  Status RegisterGraphQueryFunction();

  /// True when DDL ran after this graph was opened, so the overlay may no
  /// longer reflect the catalog (re-open, or use AutoGraph below).
  bool OverlayMayBeStale() const {
    return db_->ddl_version() != ddl_version_at_open_;
  }

  Db2GraphProvider* provider() { return provider_.get(); }
  const overlay::Topology& topology() const { return provider_->topology(); }
  SqlDialect* dialect() { return dialect_.get(); }
  sql::Database* db() { return db_; }
  const Options& options() const { return options_; }

 private:
  Db2Graph(sql::Database* db, Options options)
      : db_(db), options_(options) {}

  sql::Database* db_;
  Options options_;
  uint64_t ddl_version_at_open_ = 0;
  TraceClock* trace_clock_ = TraceClock::Default();
  std::unique_ptr<SqlDialect> dialect_;
  std::unique_ptr<Db2GraphProvider> provider_;
};

/// A self-refreshing AutoOverlay graph: the overlay is derived from the
/// catalog (Algorithms 1 & 2) and regenerated transparently whenever DDL
/// has run — the catalog integration the paper lists as future work.
class AutoGraph {
 public:
  static Result<AutoGraph> Open(sql::Database* db,
                                Db2Graph::Options options = {});

  /// The current graph, regenerating the overlay first when stale.
  Result<Db2Graph*> Get();

  /// Convenience: refresh-if-needed, then execute.
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script);

 private:
  AutoGraph(sql::Database* db, Db2Graph::Options options)
      : db_(db), options_(options) {}

  Status Reopen();

  sql::Database* db_;
  Db2Graph::Options options_;
  std::unique_ptr<Db2Graph> graph_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_DB2GRAPH_H_
