// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Db2 Graph facade: opens a property graph over a relational database
// through an overlay configuration, compiles and optimizes Gremlin
// queries, and executes them through the Graph Structure module. Also
// registers the graphQuery polymorphic table function so graph queries
// can be embedded inside SQL (paper Section 4).
//
// Execution API: one core entry point, Execute(script, ExecOptions),
// carrying bind variables, the session environment, and trace settings.
// Every path — text, PreparedQuery, GremlinService, AutoGraph, graphQuery
// — funnels through the same compiled-plan cache, so repeated query
// shapes parse and optimize once (Gremlin Server's parameterized-script
// compilation cache, brought inside the RDBMS).

#ifndef DB2GRAPH_CORE_DB2GRAPH_H_
#define DB2GRAPH_CORE_DB2GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/exec_config.h"
#include "common/trace.h"
#include "common/workload_governor.h"
#include "core/graph_structure.h"
#include "core/optimizer.h"
#include "core/plan_cache.h"
#include "core/sql_dialect.h"
#include "core/strategies.h"
#include "gremlin/interpreter.h"
#include "gremlin/parser.h"
#include "overlay/config.h"
#include "sql/database.h"

namespace db2graph::core {

class Db2Graph;

/// Everything one execution can carry beyond the script itself.
struct ExecOptions {
  /// Bind-variable values for the script's placeholders (g.V(vid) with
  /// bindings {"vid": [5]}). With a session environment, bindings are
  /// installed into it (and persist like assignments); otherwise they
  /// seed a per-execution environment.
  gremlin::Environment bindings;
  /// Session-scoped variables shared across calls (the GremlinService
  /// session path); assignments in the script persist into it. The caller
  /// must serialize access — one execution per environment at a time.
  gremlin::Environment* session_env = nullptr;
  /// When set, the execution runs traced and spans/rewrites/SQL records
  /// land here (Finish() is stamped). Otherwise tracing is decided by the
  /// script (.profile() terminal) and the slow-query threshold.
  QueryTrace* trace = nullptr;
  /// Consult/fill the compiled-plan cache. Disabled by benchmarks to
  /// measure the re-parsing text path.
  bool use_plan_cache = true;
  /// Per-call execution tuning, overlaid on the session config (set at
  /// Open via Db2Graph::Options::exec / Database::SetExecConfig) which in
  /// turn overlays ExecConfig::ProcessDefault(). Unset fields inherit.
  /// The resolved config travels thread-locally (ScopedExecConfig) into
  /// every SQL statement the execution issues, so `.parallelism(4)` here
  /// parallelizes the scans deep inside the provider.
  ExecConfig config;

  // -- workload governor ---------------------------------------------------
  // Each limit: 0 = inherit the process-wide default (Db2Graph::SetDefault*
  // / DB2G_* env vars), negative = explicitly unlimited for this execution,
  // positive = that value. A query over its deadline fails with kTimeout,
  // over a budget with kResourceExhausted — both cooperatively, at the next
  // block boundary in whichever layer is running.

  /// Wall-clock deadline for the whole execution, in milliseconds.
  int64_t timeout_ms = 0;
  /// Cap on traversers materialized by any step (and rows accumulated by a
  /// streaming segment).
  int64_t max_result_rows = 0;
  /// Approximate memory budget for intermediate state, in bytes.
  int64_t max_memory_bytes = 0;
  /// Cooperative cancellation handle: Cancel() makes the execution fail
  /// with kCancelled at its next check. Default-constructed = detached
  /// (never fires). GremlinService installs its shutdown token here.
  governor::CancelToken cancel_token;
};

/// A handle to a compiled plan, cheap to copy and safe to execute from
/// many threads at once. The plan is immutable; if DDL runs after
/// Prepare(), Execute() transparently recompiles through the cache (same
/// staleness rule as Db2Graph::OverlayMayBeStale).
class PreparedQuery {
 public:
  PreparedQuery() = default;

  /// Executes with per-call bind-variable values.
  Result<std::vector<gremlin::Traverser>> Execute(
      const gremlin::Environment& bindings = {}) const;
  /// Full-control execution (trace, session environment, ...).
  Result<std::vector<gremlin::Traverser>> Execute(
      const ExecOptions& options) const;

  const std::string& script_text() const { return plan_->script_text; }
  /// Names of the bind placeholders executions must supply.
  std::vector<std::string> unbound_variables() const;
  /// True when DDL ran after this plan was compiled (the next Execute()
  /// recompiles transparently).
  bool IsStale() const;

 private:
  friend class Db2Graph;
  PreparedQuery(Db2Graph* graph, std::shared_ptr<const CompiledPlan> plan)
      : graph_(graph), plan_(std::move(plan)) {}

  Db2Graph* graph_ = nullptr;
  std::shared_ptr<const CompiledPlan> plan_;
};

/// A property graph opened over relational tables. Thread-safe for
/// concurrent Execute() calls (mirroring Gremlin Server handling many
/// clients over one graph).
class Db2Graph {
 public:
  struct Options {
    /// The Section 6.2 compile-time strategies (Fig. 4 toggles all).
    StrategyOptions strategies;
    /// The Section 6.3 data-dependent runtime optimizations.
    RuntimeOptions runtime;
    /// The cost-based multi-hop join collapse (core/optimizer.h).
    OptimizerOptions optimizer;
    /// Session-level execution tuning, installed on the database at Open
    /// (Database::SetExecConfig). Per-call ExecOptions::config overlays
    /// it. Supersedes the deprecated RuntimeOptions streaming/vectorized
    /// flags, which are folded in underneath when they were changed from
    /// their defaults.
    ExecConfig exec;
    /// Compiled-plan cache sizing (entries across all shards).
    size_t plan_cache_entries;
    // Member-init-list constructor rather than a default member
    // initializer: an NSDMI here would break the in-class `= Options()`
    // default arguments of Open() (GCC PR88165).
    Options() : plan_cache_entries(1024) {}
  };

  /// Opens the graph: resolves the overlay against the catalog (this is
  /// the seconds-scale "Open Graph" step of Table 3 — no data is copied).
  static Result<std::unique_ptr<Db2Graph>> Open(
      sql::Database* db, const overlay::OverlayConfig& config,
      Options options = Options());

  /// Same, with the configuration given as JSON text.
  static Result<std::unique_ptr<Db2Graph>> Open(
      sql::Database* db, const std::string& config_json,
      Options options = Options());

  /// THE execution entry point: compiles `script` (through the plan
  /// cache), validates and applies bindings, and runs it. A .profile()
  /// terminal, an options.trace, or a nonzero slow-query threshold runs
  /// the query traced; profile() replaces the result with one traverser
  /// holding the trace rendered as JSON text.
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script,
                                                  const ExecOptions& options);

  /// Convenience: Execute(script, {}).
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script);

  /// Compiles `script` once (through the plan cache) and returns a
  /// shareable handle for repeated execution with different bindings.
  Result<PreparedQuery> Prepare(const std::string& script);

  /// Compiles a script without executing (plan inspection / tests).
  Result<gremlin::Script> Compile(const std::string& script) const;

  /// Compile-time EXPLAIN: compiles through the plan cache (recording
  /// whether the plan was cached), then walks the plan previewing the SQL
  /// every Graph-Structure-Accessing step would generate — which tables
  /// prune, the predicted access path, and the table-cardinality row
  /// estimate. No data is read.
  struct ExplainResult {
    std::string text;  // human-readable rendering
    Json json;         // machine-readable rendering
  };
  Result<ExplainResult> Explain(const std::string& script);

  /// Clock used for traced executions (tests inject a fake).
  void SetTraceClockForTesting(TraceClock* clock) { trace_clock_ = clock; }

  // Process-wide governor defaults, applied to every execution whose
  // ExecOptions leaves the corresponding limit at 0. Also seeded from the
  // DB2G_QUERY_TIMEOUT_MS / DB2G_MAX_RESULT_ROWS / DB2G_MAX_MEMORY_BYTES
  // environment variables at first use. 0 or negative disables.
  static void SetDefaultTimeoutMs(int64_t ms) {
    governor::GovernorDefaults::Global().SetTimeoutMs(ms);
  }
  static void SetDefaultMaxResultRows(int64_t rows) {
    governor::GovernorDefaults::Global().SetMaxResultRows(rows);
  }
  static void SetDefaultMaxMemoryBytes(int64_t bytes) {
    governor::GovernorDefaults::Global().SetMaxMemoryBytes(bytes);
  }

  /// Cancels the running query with this id (see sysmon.active_queries);
  /// it fails with kCancelled at its next cooperative check. False = no
  /// such query is active.
  static bool KillQuery(uint64_t id, const std::string& reason = {}) {
    return governor::ActiveQueryRegistry::Global().Kill(id, reason);
  }

  /// Registers the `graphQuery` polymorphic table function on the
  /// database: TABLE (graphQuery('gremlin', '<script>')) AS t (cols...).
  /// Results convert to rows per the declared column list; a trailing
  /// values(k1..kn) projection yields n-column rows (Section 4 footnote).
  Status RegisterGraphQueryFunction();

  /// True when DDL ran after this graph was opened, so the overlay may no
  /// longer reflect the catalog (re-open, or use AutoGraph below).
  bool OverlayMayBeStale() const {
    return db_->ddl_version() != ddl_version_at_open_;
  }

  Db2GraphProvider* provider() { return provider_.get(); }
  const overlay::Topology& topology() const { return provider_->topology(); }
  SqlDialect* dialect() { return dialect_.get(); }
  sql::Database* db() { return db_; }
  const Options& options() const { return options_; }
  PlanCache* plan_cache() { return plan_cache_.get(); }
  /// Collapse-decision ring shared with the provider and sysmon.optimizer.
  const std::shared_ptr<OptimizerLog>& optimizer_log() const {
    return optimizer_log_;
  }

 private:
  friend class PreparedQuery;

  Db2Graph(sql::Database* db, Options options)
      : db_(db), options_(options) {}

  /// Plan-cache lookup (keyed on options fingerprint + script text,
  /// ddl-version checked) or compile-and-insert. `was_cached` reports
  /// which happened.
  Result<std::shared_ptr<const CompiledPlan>> GetOrCompile(
      const std::string& script_text, bool use_cache, bool* was_cached);

  /// The execution core every public path funnels into.
  Result<std::vector<gremlin::Traverser>> ExecutePlan(
      std::shared_ptr<const CompiledPlan> plan, const ExecOptions& options,
      bool plan_cached);

  /// Bind validation: every slot supplied (NotFound otherwise) with a
  /// usable type/shape (InvalidArgument otherwise).
  Status ValidateBindings(const CompiledPlan& plan,
                          const ExecOptions& options) const;

  /// Context the multi-hop collapse pass compiles against.
  OptimizerContext MakeOptimizerContext() const;

  sql::Database* db_;
  Options options_;
  uint64_t ddl_version_at_open_ = 0;
  TraceClock* trace_clock_ = TraceClock::Default();
  std::unique_ptr<SqlDialect> dialect_;
  std::unique_ptr<Db2GraphProvider> provider_;
  // shared_ptr: sysmon.plan_cache (registered on the database at Open)
  // holds a weak_ptr so the virtual table survives graph teardown.
  std::shared_ptr<PlanCache> plan_cache_;
  // Same ownership story for sysmon.optimizer.
  std::shared_ptr<OptimizerLog> optimizer_log_;
  /// Options part of the cache key (strategy toggles change the plan).
  std::string plan_key_prefix_;
};

/// A self-refreshing AutoOverlay graph: the overlay is derived from the
/// catalog (Algorithms 1 & 2) and regenerated transparently whenever DDL
/// has run — the catalog integration the paper lists as future work.
class AutoGraph {
 public:
  static Result<AutoGraph> Open(sql::Database* db,
                                Db2Graph::Options options = Db2Graph::Options());

  /// The current graph, regenerating the overlay first when stale.
  Result<Db2Graph*> Get();

  /// Convenience: refresh-if-needed, then execute through the unified
  /// path (profile(), the slow-query log, and the plan cache all apply).
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script);
  Result<std::vector<gremlin::Traverser>> Execute(const std::string& script,
                                                  const ExecOptions& options);

 private:
  AutoGraph(sql::Database* db, Db2Graph::Options options)
      : db_(db), options_(options) {}

  Status Reopen();

  sql::Database* db_;
  Db2Graph::Options options_;
  std::unique_ptr<Db2Graph> graph_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_DB2GRAPH_H_
