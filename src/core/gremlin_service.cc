#include "core/gremlin_service.h"

#include "common/fault_injection.h"
#include "common/trace.h"
#include "common/workload_governor.h"

namespace db2graph::core {

// The deprecated constructor predates admission control; WithWorkers
// keeps its queue unbounded so callers that batch-submit far ahead of
// the workers (load generators, tests) see no behavior change.
GremlinService::GremlinService(Db2Graph* graph, int workers)
    : GremlinService(graph, Options::WithWorkers(workers)) {}

GremlinService::GremlinService(Db2Graph* graph, const Options& options)
    : graph_(graph),
      options_(options),
      shutdown_token_(governor::CancelToken::Make()) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue_depth == 0) {
    max_queue_depth_ = static_cast<size_t>(options_.workers) * 4;
  } else if (options_.max_queue_depth > 0) {
    max_queue_depth_ = static_cast<size_t>(options_.max_queue_depth);
  }  // negative: stays 0 = unbounded
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge(kQueueDepthGauge);
  request_latency_ = registry.GetHistogram(kRequestLatencyHistogram);
  requests_total_ = registry.GetCounter(kRequestsCounter);
  sessions_opened_ = registry.GetCounter(kSessionsCounter);
  workers_.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GremlinService::~GremlinService() { Shutdown(); }

void GremlinService::FailPendingLocked(Session* session) {
  for (Request& r : session->pending) {
    r.promise.set_value(Status::Unavailable("session closed"));
  }
  pending_count_ -= session->pending.size();
  session->pending.clear();
}

bool GremlinService::KillQuery(uint64_t id, const std::string& reason) {
  return governor::ActiveQueryRegistry::Global().Kill(
      id, reason.empty() ? "killed via GremlinService" : reason);
}

bool GremlinService::ShedLocked(Request* request) {
  if (max_queue_depth_ == 0 ||
      queue_.size() + pending_count_ < max_queue_depth_) {
    return false;
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  metrics::MetricsRegistry::Global()
      .GetCounter(governor::kShedCounter)
      ->fetch_add(1);
  request->promise.set_value(Status::Overloaded(
      "service overloaded: " +
      std::to_string(queue_.size() + pending_count_) +
      " requests already queued (bound " +
      std::to_string(max_queue_depth_) + "); retry after current load "
      "drains"));
  return true;
}

void GremlinService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down
    stopping_ = true;
  }
  // In-flight queries observe the shared token at their next block
  // boundary and unwind with kCancelled — shutdown waits for cooperative
  // exits, not for full traversals to run their course.
  shutdown_token_.Cancel("service shutting down");
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // The workers drained the queue (including promoted session requests)
  // before exiting; fail anything that still made it in, then any session
  // requests that never got their turn.
  for (Request& r : queue_) {
    r.promise.set_value(Status::Unavailable("service shut down"));
  }
  queue_.clear();
  for (auto& [id, session] : sessions_) {
    FailPendingLocked(session.get());
  }
  queue_depth_gauge_->Set(0);
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script) {
  return Submit(std::move(script), gremlin::Environment{});
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script, gremlin::Environment bindings) {
  Request request;
  request.script = std::move(script);
  request.bindings = std::move(bindings);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    if (ShedLocked(&request)) return future;
    queue_.push_back(std::move(request));
    queue_depth_gauge_->Set(
        static_cast<int64_t>(queue_.size() + pending_count_));
  }
  cv_.notify_one();
  return future;
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script) {
  return SubmitSession(session_id, std::move(script),
                       gremlin::Environment{});
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script,
    gremlin::Environment bindings) {
  Request request;
  request.script = std::move(script);
  request.bindings = std::move(bindings);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    if (ShedLocked(&request)) return future;
    std::shared_ptr<Session>& session = sessions_[session_id];
    if (session == nullptr) {
      session = std::make_shared<Session>();
      sessions_opened_->fetch_add(1);
    }
    if (session->active) {
      // The session already has a request queued or executing; park this
      // one (session pointer stays null until promotion).
      session->pending.push_back(std::move(request));
      ++pending_count_;
    } else {
      session->active = true;
      request.session = session;
      queue_.push_back(std::move(request));
    }
    queue_depth_gauge_->Set(
        static_cast<int64_t>(queue_.size() + pending_count_));
  }
  cv_.notify_one();
  return future;
}

void GremlinService::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  // An in-flight request keeps the Session object alive through its own
  // shared_ptr and completes normally; its completion finds no pending
  // work and simply deactivates the orphaned session.
  FailPendingLocked(it->second.get());
  sessions_.erase(it);
  queue_depth_gauge_->Set(
      static_cast<int64_t>(queue_.size() + pending_count_));
}

void GremlinService::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(
          static_cast<int64_t>(queue_.size() + pending_count_));
    }

    // Route through the unified Execute so service requests pick up the
    // plan cache and tracing (profile() terminals, the slow-query log)
    // exactly like direct calls. A sessioned request has exclusive use of
    // its session's environment — the session admits one request at a
    // time — so no lock is held during execution.
    uint64_t start = TraceClock::Default()->NowMicros();
    ExecOptions options;
    options.bindings = std::move(request.bindings);
    if (request.session != nullptr) {
      options.session_env = &request.session->env;
    }
    // Governance: the service's default limits plus the shared shutdown
    // token, so Shutdown() cancels this execution cooperatively.
    options.timeout_ms = options_.timeout_ms;
    options.max_result_rows = options_.max_result_rows;
    options.max_memory_bytes = options_.max_memory_bytes;
    options.cancel_token = shutdown_token_;
    // Execution tuning: the service-level ExecConfig overlays the graph's
    // session config per request (e.g. intra-query parallelism).
    options.config = options_.exec;
    Status injected = Status::OK();
    DB2G_FAILPOINT_STATUS("service.before_execute", injected);
    Response response = injected.ok()
                            ? graph_->Execute(request.script, options)
                            : Response(injected);
    request_latency_->Observe(TraceClock::Default()->NowMicros() - start);

    if (request.session != nullptr) {
      // Promote the session's next pending request, if any.
      std::lock_guard<std::mutex> lock(mutex_);
      Session* session = request.session.get();
      if (!session->pending.empty()) {
        Request next = std::move(session->pending.front());
        session->pending.pop_front();
        --pending_count_;
        next.session = request.session;
        queue_.push_back(std::move(next));
        queue_depth_gauge_->Set(
            static_cast<int64_t>(queue_.size() + pending_count_));
        cv_.notify_one();
      } else {
        session->active = false;
      }
    }

    // Count before fulfilling the promise: a client that synchronizes on
    // the future must observe its own request in completed().
    completed_.fetch_add(1, std::memory_order_release);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace db2graph::core
