#include "core/gremlin_service.h"

#include "gremlin/parser.h"

namespace db2graph::core {

GremlinService::GremlinService(Db2Graph* graph, int workers)
    : graph_(graph) {
  if (workers < 1) workers = 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GremlinService::~GremlinService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Fail any requests still queued.
  for (Request& r : queue_) {
    r.promise.set_value(Status::Internal("service shut down"));
  }
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script) {
  Request request;
  request.script = std::move(script);
  std::future<Response> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script) {
  Request request;
  request.script = std::move(script);
  std::future<Response> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Session>& session = sessions_[session_id];
    if (session == nullptr) session = std::make_shared<Session>();
    request.session = session;
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

void GremlinService::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(session_id);
}

void GremlinService::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
    }

    Result<gremlin::Script> script = graph_->Compile(request.script);
    if (!script.ok()) {
      // Count before fulfilling the promise: a client that synchronizes
      // on the future must observe its own request in completed().
      completed_.fetch_add(1, std::memory_order_release);
      request.promise.set_value(script.status());
      continue;
    }
    gremlin::Interpreter interpreter(graph_->provider());
    Response response = Status::Internal("unset");
    if (request.session != nullptr) {
      // Per-session serialization + persistent bindings.
      std::lock_guard<std::mutex> session_lock(request.session->mutex);
      response = interpreter.RunScript(*script, &request.session->env);
    } else {
      response = interpreter.RunScript(*script);
    }
    completed_.fetch_add(1, std::memory_order_release);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace db2graph::core
