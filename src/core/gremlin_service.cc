#include "core/gremlin_service.h"

#include "common/trace.h"

namespace db2graph::core {

GremlinService::GremlinService(Db2Graph* graph, int workers)
    : graph_(graph) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge(kQueueDepthGauge);
  request_latency_ = registry.GetHistogram(kRequestLatencyHistogram);
  requests_total_ = registry.GetCounter(kRequestsCounter);
  sessions_opened_ = registry.GetCounter(kSessionsCounter);
  if (workers < 1) workers = 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GremlinService::~GremlinService() { Shutdown(); }

void GremlinService::FailPendingLocked(Session* session) {
  for (Request& r : session->pending) {
    r.promise.set_value(Status::Unavailable("session closed"));
  }
  pending_count_ -= session->pending.size();
  session->pending.clear();
}

void GremlinService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // The workers drained the queue (including promoted session requests)
  // before exiting; fail anything that still made it in, then any session
  // requests that never got their turn.
  for (Request& r : queue_) {
    r.promise.set_value(Status::Unavailable("service shut down"));
  }
  queue_.clear();
  for (auto& [id, session] : sessions_) {
    FailPendingLocked(session.get());
  }
  queue_depth_gauge_->Set(0);
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script) {
  return Submit(std::move(script), gremlin::Environment{});
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script, gremlin::Environment bindings) {
  Request request;
  request.script = std::move(script);
  request.bindings = std::move(bindings);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    queue_.push_back(std::move(request));
    queue_depth_gauge_->Set(
        static_cast<int64_t>(queue_.size() + pending_count_));
  }
  cv_.notify_one();
  return future;
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script) {
  return SubmitSession(session_id, std::move(script),
                       gremlin::Environment{});
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script,
    gremlin::Environment bindings) {
  Request request;
  request.script = std::move(script);
  request.bindings = std::move(bindings);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    std::shared_ptr<Session>& session = sessions_[session_id];
    if (session == nullptr) {
      session = std::make_shared<Session>();
      sessions_opened_->fetch_add(1);
    }
    if (session->active) {
      // The session already has a request queued or executing; park this
      // one (session pointer stays null until promotion).
      session->pending.push_back(std::move(request));
      ++pending_count_;
    } else {
      session->active = true;
      request.session = session;
      queue_.push_back(std::move(request));
    }
    queue_depth_gauge_->Set(
        static_cast<int64_t>(queue_.size() + pending_count_));
  }
  cv_.notify_one();
  return future;
}

void GremlinService::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  // An in-flight request keeps the Session object alive through its own
  // shared_ptr and completes normally; its completion finds no pending
  // work and simply deactivates the orphaned session.
  FailPendingLocked(it->second.get());
  sessions_.erase(it);
  queue_depth_gauge_->Set(
      static_cast<int64_t>(queue_.size() + pending_count_));
}

void GremlinService::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(
          static_cast<int64_t>(queue_.size() + pending_count_));
    }

    // Route through the unified Execute so service requests pick up the
    // plan cache and tracing (profile() terminals, the slow-query log)
    // exactly like direct calls. A sessioned request has exclusive use of
    // its session's environment — the session admits one request at a
    // time — so no lock is held during execution.
    uint64_t start = TraceClock::Default()->NowMicros();
    ExecOptions options;
    options.bindings = std::move(request.bindings);
    if (request.session != nullptr) {
      options.session_env = &request.session->env;
    }
    Response response = graph_->Execute(request.script, options);
    request_latency_->Observe(TraceClock::Default()->NowMicros() - start);

    if (request.session != nullptr) {
      // Promote the session's next pending request, if any.
      std::lock_guard<std::mutex> lock(mutex_);
      Session* session = request.session.get();
      if (!session->pending.empty()) {
        Request next = std::move(session->pending.front());
        session->pending.pop_front();
        --pending_count_;
        next.session = request.session;
        queue_.push_back(std::move(next));
        queue_depth_gauge_->Set(
            static_cast<int64_t>(queue_.size() + pending_count_));
        cv_.notify_one();
      } else {
        session->active = false;
      }
    }

    // Count before fulfilling the promise: a client that synchronizes on
    // the future must observe its own request in completed().
    completed_.fetch_add(1, std::memory_order_release);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace db2graph::core
