#include "core/gremlin_service.h"

#include "common/trace.h"

namespace db2graph::core {

GremlinService::GremlinService(Db2Graph* graph, int workers)
    : graph_(graph) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge(kQueueDepthGauge);
  request_latency_ = registry.GetHistogram(kRequestLatencyHistogram);
  requests_total_ = registry.GetCounter(kRequestsCounter);
  sessions_opened_ = registry.GetCounter(kSessionsCounter);
  if (workers < 1) workers = 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

GremlinService::~GremlinService() { Shutdown(); }

void GremlinService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Fail any requests still queued.
  for (Request& r : queue_) {
    r.promise.set_value(Status::Unavailable("service shut down"));
  }
  queue_.clear();
  queue_depth_gauge_->Set(0);
}

std::future<GremlinService::Response> GremlinService::Submit(
    std::string script) {
  Request request;
  request.script = std::move(script);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    queue_.push_back(std::move(request));
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

std::future<GremlinService::Response> GremlinService::SubmitSession(
    const std::string& session_id, std::string script) {
  Request request;
  request.script = std::move(script);
  std::future<Response> future = request.promise.get_future();
  requests_total_->fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      request.promise.set_value(Status::Unavailable("service shut down"));
      return future;
    }
    std::shared_ptr<Session>& session = sessions_[session_id];
    if (session == nullptr) {
      session = std::make_shared<Session>();
      sessions_opened_->fetch_add(1);
    }
    request.session = session;
    queue_.push_back(std::move(request));
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void GremlinService::CloseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(session_id);
}

void GremlinService::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }

    // Route through Db2Graph::Run so service requests pick up tracing
    // (profile() terminals, the slow-query log) exactly like direct calls.
    uint64_t start = TraceClock::Default()->NowMicros();
    Response response = Status::Internal("unset");
    if (request.session != nullptr) {
      // Per-session serialization + persistent bindings.
      std::lock_guard<std::mutex> session_lock(request.session->mutex);
      response = graph_->Run(request.script, &request.session->env);
    } else {
      response = graph_->Run(request.script, nullptr);
    }
    request_latency_->Observe(TraceClock::Default()->NowMicros() - start);
    // Count before fulfilling the promise: a client that synchronizes on
    // the future must observe its own request in completed().
    completed_.fetch_add(1, std::memory_order_release);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace db2graph::core
