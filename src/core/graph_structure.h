// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Graph Structure module (paper Section 6): implements the TinkerPop
// provider API over relational tables through the graph overlay, turning
// every Graph-Structure-Accessing step into SQL. All of Section 6.3's
// data-dependent runtime optimizations live here, individually toggleable
// for the ablation benchmarks:
//
//  * fixed-label table pruning,
//  * prefixed-id table pinning (+ composite-id decomposition into
//    conjunctive predicates),
//  * property-name table pruning from pushdown predicates/projections,
//  * src_v_table / dst_v_table endpoint pruning,
//  * the vertex-table-is-also-edge-table shortcut (construct the vertex
//    from the edge row, no SQL at all),
//  * implicit-edge-id decomposition (src::label::dst) into predicates.

#ifndef DB2GRAPH_CORE_GRAPH_STRUCTURE_H_
#define DB2GRAPH_CORE_GRAPH_STRUCTURE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/sql_dialect.h"
#include "gremlin/graph_api.h"
#include "overlay/topology.h"

namespace db2graph::core {

/// Toggles for the Section 6.3 data-dependent runtime optimizations.
struct RuntimeOptions {
  bool label_pruning = true;
  bool prefixed_id_pinning = true;
  bool property_pruning = true;
  bool endpoint_table_pruning = true;
  bool vertex_from_edge_shortcut = true;
  bool implicit_edge_id_decomposition = true;

  static RuntimeOptions AllOff() {
    RuntimeOptions o;
    o.label_pruning = o.prefixed_id_pinning = o.property_pruning =
        o.endpoint_table_pruning = o.vertex_from_edge_shortcut =
            o.implicit_edge_id_decomposition = false;
    return o;
  }
};

/// GraphProvider over a relational database + overlay topology.
class Db2GraphProvider : public gremlin::GraphProvider {
 public:
  Db2GraphProvider(SqlDialect* dialect, overlay::Topology topology,
                   RuntimeOptions options = {});

  std::string name() const override { return "Db2Graph"; }
  bool SupportsPushdown() const override { return true; }

  Status Vertices(const gremlin::LookupSpec& spec,
                  std::vector<gremlin::VertexPtr>* out) override;
  Status Edges(const gremlin::LookupSpec& spec,
               std::vector<gremlin::EdgePtr>* out) override;
  Status AdjacentEdges(const std::vector<gremlin::VertexPtr>& from,
                       gremlin::Direction dir,
                       const gremlin::LookupSpec& spec,
                       std::vector<gremlin::EdgePtr>* out) override;
  Status EdgeEndpoints(const std::vector<gremlin::EdgePtr>& edges,
                       gremlin::Direction endpoint,
                       const gremlin::LookupSpec& spec,
                       std::vector<gremlin::VertexPtr>* out) override;
  Result<Value> AggregateVertices(const gremlin::LookupSpec& spec) override;
  Result<Value> AggregateEdges(const gremlin::LookupSpec& spec) override;

  const overlay::Topology& topology() const { return topology_; }
  const RuntimeOptions& options() const { return options_; }
  SqlDialect* dialect() const { return dialect_; }

  /// Optimization-visible counters for tests and ablations.
  struct Stats {
    std::atomic<uint64_t> vertex_tables_queried{0};
    std::atomic<uint64_t> vertex_tables_pruned{0};
    std::atomic<uint64_t> edge_tables_queried{0};
    std::atomic<uint64_t> edge_tables_pruned{0};
    std::atomic<uint64_t> shortcut_vertices{0};  // built from edge rows

    void Reset() {
      vertex_tables_queried = 0;
      vertex_tables_pruned = 0;
      edge_tables_queried = 0;
      edge_tables_pruned = 0;
      shortcut_vertices = 0;
    }
  };
  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  /// Edges() restricted to a subset of edge-table indexes (used by
  /// AdjacentEdges after endpoint pruning); empty = all.
  Status EdgesOnTables(const gremlin::LookupSpec& spec,
                       const std::vector<int>& tables,
                       std::vector<gremlin::EdgePtr>* out);
  Result<Value> AggregateEdgesOnTables(const gremlin::LookupSpec& spec,
                                       const std::vector<int>& tables);

  gremlin::VertexPtr MaterializeVertex(int table_index, const Row& row) const;

  SqlDialect* dialect_;
  overlay::Topology topology_;
  RuntimeOptions options_;
  Stats stats_;
};

/// Provenance payload attached to elements produced by Db2GraphProvider:
/// the overlay-table index and the originating relational row.
struct RowProvenance {
  int table_index;
  Row row;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GRAPH_STRUCTURE_H_
