// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Graph Structure module (paper Section 6): implements the TinkerPop
// provider API over relational tables through the graph overlay, turning
// every Graph-Structure-Accessing step into SQL. All of Section 6.3's
// data-dependent runtime optimizations live here, individually toggleable
// for the ablation benchmarks:
//
//  * fixed-label table pruning,
//  * prefixed-id table pinning (+ composite-id decomposition into
//    conjunctive predicates),
//  * property-name table pruning from pushdown predicates/projections,
//  * src_v_table / dst_v_table endpoint pruning,
//  * the vertex-table-is-also-edge-table shortcut (construct the vertex
//    from the edge row, no SQL at all),
//  * implicit-edge-id decomposition (src::label::dst) into predicates.

#ifndef DB2GRAPH_CORE_GRAPH_STRUCTURE_H_
#define DB2GRAPH_CORE_GRAPH_STRUCTURE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sql_dialect.h"
#include "core/vertex_cache.h"
#include "gremlin/graph_api.h"
#include "overlay/topology.h"

namespace db2graph::core {

/// Toggles for the Section 6.3 data-dependent runtime optimizations, plus
/// the execution-layer knobs (parallel fan-out, hot-vertex cache) that sit
/// on top of them.
struct RuntimeOptions {
  bool label_pruning = true;
  bool prefixed_id_pinning = true;
  bool property_pruning = true;
  bool endpoint_table_pruning = true;
  bool vertex_from_edge_shortcut = true;
  bool implicit_edge_id_decomposition = true;

  /// Fan per-table SQL of one lookup out across the shared thread pool
  /// whenever more than one table survives pruning. Skipped when the
  /// calling thread already holds the database read lock (graphQuery
  /// inside a SELECT) — see DESIGN.md "Concurrency & caching".
  bool parallel_fanout = true;
  /// Sharded LRU cache of fully-materialized vertices by id, invalidated
  /// via the database write epoch. Bypassed under access control.
  bool vertex_cache = true;
  size_t vertex_cache_entries = 65536;

  // The execution-tuning flags below are superseded by ExecConfig
  // (Db2Graph::Options::exec / ExecOptions::config); Open() folds
  // non-default values into the session config underneath it. They carry
  // no default member initializers — a deprecated member's NSDMI would
  // warn from every synthesized constructor — so the user-provided
  // constructor below initializes them under a pragma.

  /// Streaming Gremlin execution: linear step chains run block-at-a-time
  /// under a pull cursor, so a saturated limit()/range() stops issuing
  /// per-table SQL (see Interpreter::Options). Off = one materialized
  /// pass per step, the pre-streaming behavior.
  [[deprecated("use ExecConfig().streaming(on) — Db2Graph::Options::exec")]]
  bool streaming_execution;
  /// Traversers per block in streaming segments.
  [[deprecated("use ExecConfig().block_rows(n) — Db2Graph::Options::exec")]]
  size_t streaming_block_rows;

  /// Column-at-a-time SQL execution for eligible single-table scans.
  /// Off = every SELECT runs on the row-at-a-time operators.
  [[deprecated("use ExecConfig().vectorized(on) — Db2Graph::Options::exec")]]
  bool vectorized_execution;

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  RuntimeOptions()
      : streaming_execution(true),
        streaming_block_rows(256),
        vectorized_execution(true) {}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

  static RuntimeOptions AllOff() {
    RuntimeOptions o;
    o.label_pruning = o.prefixed_id_pinning = o.property_pruning =
        o.endpoint_table_pruning = o.vertex_from_edge_shortcut =
            o.implicit_edge_id_decomposition = o.parallel_fanout =
                o.vertex_cache = false;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
    o.streaming_execution = o.vectorized_execution = false;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
    return o;
  }
};

/// GraphProvider over a relational database + overlay topology.
class Db2GraphProvider : public gremlin::GraphProvider {
 public:
  Db2GraphProvider(SqlDialect* dialect, overlay::Topology topology,
                   RuntimeOptions options = {});

  std::string name() const override { return "Db2Graph"; }
  bool SupportsPushdown() const override { return true; }

  Status Vertices(const gremlin::LookupSpec& spec,
                  std::vector<gremlin::VertexPtr>* out) override;
  Status Edges(const gremlin::LookupSpec& spec,
               std::vector<gremlin::EdgePtr>* out) override;

  /// True streaming vertex lookup: per-table SQL runs block-at-a-time, so
  /// a consumer that stops pulling (a downstream limit) never pays for the
  /// tables — or table suffixes — it did not reach. Single-table lookups
  /// stream lazily in table order; when the parallel fan-out applies, the
  /// per-table producers feed bounded block queues that the stream drains
  /// in deterministic table order, and Close() cancels producers that have
  /// not started yet. Point lookups eligible for the vertex cache fall
  /// back to the materialized path so cache semantics are preserved.
  Result<std::unique_ptr<gremlin::VertexStream>> VerticesStreaming(
      const gremlin::LookupSpec& spec) override;
  Status AdjacentEdges(const std::vector<gremlin::VertexPtr>& from,
                       gremlin::Direction dir,
                       const gremlin::LookupSpec& spec,
                       std::vector<gremlin::EdgePtr>* out) override;
  Status EdgeEndpoints(const std::vector<gremlin::EdgePtr>& edges,
                       gremlin::Direction endpoint,
                       const gremlin::LookupSpec& spec,
                       std::vector<gremlin::VertexPtr>* out) override;
  Result<Value> AggregateVertices(const gremlin::LookupSpec& spec) override;
  Result<Value> AggregateEdges(const gremlin::LookupSpec& spec) override;

  /// Executes an optimizer-collapsed hop chain as one N-way join per
  /// (edge-table × vertex-table) chain, in chain order, appending each
  /// chain's emissions to the per-source buckets — which reproduces the
  /// table-major per-source order of step-at-a-time execution. Returns
  /// Unsupported (after logging a fallback against the plan's optimizer
  /// decision) whenever a runtime condition breaks the compile-time
  /// legality assumptions; the interpreter then re-runs the preserved
  /// step-at-a-time body.
  Status MultiHopTraverse(const std::vector<gremlin::VertexPtr>& sources,
                          const gremlin::MultiHopSpec& spec,
                          gremlin::MultiHopBuckets* out) override;

  const overlay::Topology& topology() const { return topology_; }
  const RuntimeOptions& options() const { return options_; }
  SqlDialect* dialect() const { return dialect_; }

  /// Optimization-visible counters for tests and ablations. Readers
  /// should take a Snapshot() for assertions/reporting rather than load
  /// the live counters field by field.
  struct Stats {
    metrics::Counter vertex_tables_queried;
    metrics::Counter vertex_tables_pruned;
    metrics::Counter edge_tables_queried;
    metrics::Counter edge_tables_pruned;
    metrics::Counter shortcut_vertices;  // built from edge rows
    metrics::Counter parallel_batches;   // fan-outs dispatched
    metrics::Counter parallel_tasks;     // per-table jobs in them
    metrics::Counter cache_hits;         // vertex-cache hits
    metrics::Counter cache_misses;       // vertex-cache misses

    /// Plain-value copy of every counter.
    struct Counts {
      uint64_t vertex_tables_queried = 0;
      uint64_t vertex_tables_pruned = 0;
      uint64_t edge_tables_queried = 0;
      uint64_t edge_tables_pruned = 0;
      uint64_t shortcut_vertices = 0;
      uint64_t parallel_batches = 0;
      uint64_t parallel_tasks = 0;
      uint64_t cache_hits = 0;
      uint64_t cache_misses = 0;
    };

    Counts Snapshot() const {
      Counts c;
      c.vertex_tables_queried = vertex_tables_queried.load();
      c.vertex_tables_pruned = vertex_tables_pruned.load();
      c.edge_tables_queried = edge_tables_queried.load();
      c.edge_tables_pruned = edge_tables_pruned.load();
      c.shortcut_vertices = shortcut_vertices.load();
      c.parallel_batches = parallel_batches.load();
      c.parallel_tasks = parallel_tasks.load();
      c.cache_hits = cache_hits.load();
      c.cache_misses = cache_misses.load();
      return c;
    }

    void Reset() {
      vertex_tables_queried = 0;
      vertex_tables_pruned = 0;
      edge_tables_queried = 0;
      edge_tables_pruned = 0;
      shortcut_vertices = 0;
      parallel_batches = 0;
      parallel_tasks = 0;
      cache_hits = 0;
      cache_misses = 0;
    }
  };
  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

  /// One per-table entry of a compile-time plan preview (Explain): the SQL
  /// a lookup spec would generate against this table, the access path the
  /// executor is predicted to choose (from index availability), and the
  /// table cardinality as a row-count upper bound. Pruned tables appear
  /// with pruned=true and no SQL.
  struct SqlPreview {
    std::string table;
    std::string sql;
    std::string access_path;  // "index probe" | "full scan" | "full scan+filter" | "pruned"
    uint64_t estimated_rows = 0;
    bool pruned = false;
  };

  /// Plan previews for a vertex/edge lookup, without touching any data.
  /// Previews run the same per-table planner as execution, so they show
  /// exactly which tables pruning would skip.
  Status ExplainVertices(const gremlin::LookupSpec& spec,
                         std::vector<SqlPreview>* out) const;
  Status ExplainEdges(const gremlin::LookupSpec& spec,
                      std::vector<SqlPreview>* out) const;
  /// Preview of a collapsed multi-hop chain: one entry per table chain
  /// with the rendered N-way join SQL (without the runtime source-id
  /// conditions) and the optimizer's output-cardinality estimate.
  Status ExplainMultiHop(const gremlin::MultiHopSpec& spec,
                         std::vector<SqlPreview>* out) const;

 private:
  /// Edges() restricted to a subset of edge-table indexes (used by
  /// AdjacentEdges after endpoint pruning); empty = all.
  Status EdgesOnTables(const gremlin::LookupSpec& spec,
                       const std::vector<int>& tables,
                       std::vector<gremlin::EdgePtr>* out);
  Result<Value> AggregateEdgesOnTables(const gremlin::LookupSpec& spec,
                                       const std::vector<int>& tables);

  gremlin::VertexPtr MaterializeVertex(int table_index, const Row& row) const;

  /// Runs fn(0..n-1): on the shared thread pool when fan-out applies
  /// (enabled, n > 1, caller not inside a database read lock), serially
  /// otherwise. Counts dispatched batches/tasks.
  void ExecuteJobs(size_t n, const std::function<void(size_t)>& fn);

  /// Cache is consulted only for pure single-id point lookups that fetch
  /// full rows (no projection, no aggregate) outside access control.
  bool CacheUsable(const gremlin::LookupSpec& spec) const;
  /// Entries may only be *filled* from fetches whose result is the
  /// complete vertex set for the id: no label/predicate restriction (those
  /// prune or filter tables a later lookup might need).
  bool CacheFillEligible(const gremlin::LookupSpec& spec) const;

  SqlDialect* dialect_;
  overlay::Topology topology_;
  RuntimeOptions options_;
  Stats stats_;
  std::unique_ptr<VertexCache> cache_;
};

/// Provenance payload attached to elements produced by Db2GraphProvider:
/// the overlay-table index and the originating relational row.
struct RowProvenance {
  int table_index;
  Row row;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GRAPH_STRUCTURE_H_
