// Copyright (c) 2026 The db2graph-repro Authors.
//
// The SQL Dialect module (paper Section 6.1): everything Db2-facing.
// It executes the SQL the Graph Structure module generates, keeps a cache
// of pre-compiled statement templates, tracks frequent query patterns, and
// suggests indexes that would speed the translated queries up.

#ifndef DB2GRAPH_CORE_SQL_DIALECT_H_
#define DB2GRAPH_CORE_SQL_DIALECT_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "sql/database.h"

namespace db2graph::core {

class SqlDialect;

/// A live streaming query handed out by SqlDialect::QueryStreaming: wraps
/// the database RowStream and, when a QueryTrace is installed, files the
/// statement's SqlTraceRecord once — when the stream is exhausted or
/// closed — so a short-circuited query reports the rows it actually
/// scanned, not the full materialized cost.
class DialectRowStream : public sql::RowSource {
 public:
  ~DialectRowStream() override;
  bool Next(sql::RowBlock* out) override;
  void Close() override;

  const std::vector<std::string>& columns() const {
    return stream_->columns();
  }
  const Status& status() const { return stream_->status(); }
  const sql::ExecInfo& exec() const { return stream_->exec(); }

 private:
  friend class SqlDialect;
  DialectRowStream(std::unique_ptr<sql::RowStream> stream, QueryTrace* trace,
                   SqlTraceRecord record, uint64_t start_micros);
  void FileRecord();

  std::unique_ptr<sql::RowStream> stream_;
  QueryTrace* trace_;  // nullptr when untraced
  SqlTraceRecord record_;
  uint64_t start_micros_;
  uint64_t rows_seen_ = 0;
  bool filed_ = false;
};

class SqlDialect {
 public:
  struct Options {
    /// A (table, predicate-columns) pattern seen at least this many times
    /// is considered frequent and produces an index suggestion when no
    /// matching index exists.
    uint64_t frequent_pattern_threshold = 16;
  };

  /// Registry metric names for the SQL-skeleton cache.
  static constexpr const char* kSkeletonHitsCounter =
      "sql_dialect.skeleton_hits";
  static constexpr const char* kSkeletonMissesCounter =
      "sql_dialect.skeleton_misses";

  explicit SqlDialect(sql::Database* db) : SqlDialect(db, Options()) {}
  SqlDialect(sql::Database* db, Options options)
      : db_(db),
        options_(options),
        registry_skeleton_hits_(metrics::MetricsRegistry::Global().GetCounter(
            kSkeletonHitsCounter)),
        registry_skeleton_misses_(
            metrics::MetricsRegistry::Global().GetCounter(
                kSkeletonMissesCounter)) {}

  sql::Database* db() const { return db_; }

  /// Executes a parameterized SELECT, preparing it on first use and
  /// reusing the compiled statement afterwards (the pre-compiled SQL
  /// template cache of Section 6.1).
  Result<sql::ResultSet> Query(const std::string& sql,
                               const std::vector<Value>& params);

  /// Executes a query identified by its *shape*: `build_sql` runs only
  /// the first time `shape_key` is seen and the produced SQL text is
  /// cached, so steady-state execution of a repeated query shape skips
  /// string assembly entirely — per-execution values arrive through
  /// `params`. The cached text then flows through Query(), reusing its
  /// compiled statement template as well. Callers must guarantee the key
  /// uniquely determines the text `build_sql` would produce.
  Result<sql::ResultSet> QueryShaped(
      const std::string& shape_key,
      const std::function<std::string()>& build_sql,
      const std::vector<Value>& params);

  /// Streaming variant of Query(): compiles (reusing the statement
  /// template cache) and returns a live block stream instead of a
  /// materialized result. See sql::RowStream for lock/lifetime rules.
  Result<std::unique_ptr<DialectRowStream>> QueryStreaming(
      const std::string& sql, const std::vector<Value>& params,
      size_t block_rows = sql::kDefaultBlockRows);

  /// Streaming variant of QueryShaped().
  Result<std::unique_ptr<DialectRowStream>> QueryShapedStreaming(
      const std::string& shape_key,
      const std::function<std::string()>& build_sql,
      const std::vector<Value>& params,
      size_t block_rows = sql::kDefaultBlockRows);

  /// Records that a query against `table` constrained these columns.
  void RecordPattern(const std::string& table,
                     std::vector<std::string> predicate_columns);

  /// Renders a parameterized statement with '?' placeholders substituted
  /// by SQL literals (trace/EXPLAIN display; never executed).
  static std::string RenderSql(const std::string& sql,
                               const std::vector<Value>& params);

  /// Index advisor output: frequent patterns that have no backing index.
  struct IndexSuggestion {
    std::string table;
    std::vector<std::string> columns;
    uint64_t occurrences = 0;
    /// CREATE INDEX statement implementing the suggestion.
    std::string ddl;
  };
  std::vector<IndexSuggestion> SuggestIndexes() const;

  // -- tracing ------------------------------------------------------------
  /// When enabled, records every executed statement with its parameters
  /// substituted (tests assert the exact SQL the graph layer generates).
  void EnableTrace() {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_enabled_ = true;
    trace_.clear();
  }
  /// Returns and clears the trace.
  std::vector<std::string> TakeTrace() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out = std::move(trace_);
    trace_.clear();
    return out;
  }

  uint64_t queries_issued() const { return queries_issued_.load(); }
  uint64_t template_cache_hits() const { return cache_hits_.load(); }
  uint64_t template_cache_misses() const { return cache_misses_.load(); }
  uint64_t skeleton_cache_hits() const { return skeleton_hits_.load(); }
  uint64_t skeleton_cache_misses() const { return skeleton_misses_.load(); }
  void ResetCounters() {
    queries_issued_ = 0;
    cache_hits_ = 0;
    cache_misses_ = 0;
    skeleton_hits_ = 0;
    skeleton_misses_ = 0;
  }

 private:
  /// Query() minus the per-statement trace bookkeeping.
  Result<sql::ResultSet> QueryUntraced(const std::string& sql,
                                       const std::vector<Value>& params);

  /// Looks the statement up in (or inserts it into) the template cache.
  Result<sql::PreparedStatement> PrepareCached(const std::string& sql);

  sql::Database* db_;
  Options options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, sql::PreparedStatement> templates_;
  /// shape key -> generated SQL text (the skeleton).
  std::unordered_map<std::string, std::string> skeletons_;
  std::map<std::pair<std::string, std::vector<std::string>>, uint64_t>
      pattern_counts_;

  std::atomic<uint64_t> queries_issued_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> skeleton_hits_{0};
  std::atomic<uint64_t> skeleton_misses_{0};
  metrics::Counter* registry_skeleton_hits_;
  metrics::Counter* registry_skeleton_misses_;

  bool trace_enabled_ = false;
  std::vector<std::string> trace_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_SQL_DIALECT_H_
