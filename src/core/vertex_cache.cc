#include "core/vertex_cache.h"

#include <algorithm>
#include <utility>

namespace db2graph::core {

VertexCache::VertexCache(const Options& options) {
  int shards = std::max(1, options.shards);
  size_t capacity = std::max<size_t>(1, options.capacity);
  shard_capacity_ = std::max<size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VertexCache::Shard& VertexCache::ShardFor(const Value& id) {
  return *shards_[id.Hash() % shards_.size()];
}

bool VertexCache::Get(const Value& id, uint64_t epoch,
                      std::vector<gremlin::VertexPtr>* out) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return false;
  if (it->second->epoch != epoch) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->vertices;
  return true;
}

void VertexCache::Put(const Value& id, std::vector<gremlin::VertexPtr> vertices,
                      uint64_t epoch) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->vertices = std::move(vertices);
    it->second->epoch = epoch;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{id, std::move(vertices), epoch});
  shard.index[id] = shard.lru.begin();
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().id);
    shard.lru.pop_back();
  }
}

size_t VertexCache::ApproxEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace db2graph::core
