// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Traversal Strategy module (paper Section 6.2): data-independent
// plan rewrites applied at query-compilation time, before any data access.
// Each strategy is individually toggleable (Fig. 4 turns them all off;
// the ablation bench flips them one at a time):
//
//  1. Predicate pushdown — fold trailing filter steps (has/hasLabel/hasId
//     and the where(inV().hasId(x)) endpoint shape) into the preceding
//     GSA step's LookupSpec.
//  2. Projection pushdown — a GSA step followed by values(keys...) fetches
//     only those properties.
//  3. Aggregate pushdown — a GSA step followed by count()/sum()/... folds
//     the aggregate into the spec ("SELECT COUNT(*) ...").
//  4. GraphStep::VertexStep mutation — g.V(ids).outE() skips the vertex
//     fetch and becomes an edge GraphStep constrained by src ids;
//     g.V(ids).out() additionally appends an EdgeVertexStep.
//  5. Limit pushdown — a GraphStep immediately followed by limit(n) /
//     range(lo, hi) carries the bound as a per-table row budget
//     (LookupSpec::limit -> SQL LIMIT); the limit step itself stays, as
//     it still enforces the exact cross-table bound.

#ifndef DB2GRAPH_CORE_STRATEGIES_H_
#define DB2GRAPH_CORE_STRATEGIES_H_

#include "gremlin/step.h"

namespace db2graph::core {

struct StrategyOptions {
  bool predicate_pushdown = true;
  bool projection_pushdown = true;
  bool aggregate_pushdown = true;
  bool graphstep_vertexstep_mutation = true;
  bool limit_pushdown = true;

  static StrategyOptions AllOff() {
    StrategyOptions o;
    o.predicate_pushdown = o.projection_pushdown = o.aggregate_pushdown =
        o.graphstep_vertexstep_mutation = o.limit_pushdown = false;
    return o;
  }
};

/// Applies the enabled strategies to `traversal` in the paper's order
/// (mutation, then predicate, then projection, then aggregate pushdown),
/// recursing into repeat() bodies. The rewritten plan computes identical
/// results; only the generated SQL changes.
void ApplyStrategies(gremlin::Traversal* traversal,
                     const StrategyOptions& options = {});

/// Same, applied to every traversal in a script.
void ApplyStrategies(gremlin::Script* script,
                     const StrategyOptions& options = {});

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_STRATEGIES_H_
