// Copyright (c) 2026 The db2graph-repro Authors.
//
// A sharded, size-bounded LRU cache for vertex-by-id lookups — the
// g.V(id) / edge-endpoint-resolution hot path. LinkBench-style workloads
// are Zipfian, so a small cache of fully-materialized hot vertices avoids
// the dominant cost of a lookup on multi-vertex-table overlays: one SQL
// statement per candidate table.
//
// An entry is the *complete* answer for one vertex id — every vertex in
// the overlay carrying that id (usually one; an empty vector is a valid
// "no such vertex" answer). Completeness is the caller's contract: only
// fetches that consulted every table that could hold the id may Put.
// Label/predicate-restricted lookups can still be *served* from a
// complete entry by filtering client-side.
//
// Invalidation is lazy via sql::Database::write_epoch(): entries are
// tagged with the epoch observed before their fetch and discarded on Get
// when the tag no longer matches the current epoch, so any committed
// write flushes the cache without a cross-layer callback.

#ifndef DB2GRAPH_CORE_VERTEX_CACHE_H_
#define DB2GRAPH_CORE_VERTEX_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "gremlin/graph_api.h"

namespace db2graph::core {

class VertexCache {
 public:
  struct Options {
    size_t capacity = 65536;  // max cached ids across all shards
    int shards = 8;           // lock-striping granularity
  };

  explicit VertexCache(const Options& options);

  VertexCache(const VertexCache&) = delete;
  VertexCache& operator=(const VertexCache&) = delete;

  /// Returns true and fills *out when a current-epoch entry for `id`
  /// exists (an empty *out is a cached "no such vertex"). A stale entry
  /// is erased and reported as a miss.
  bool Get(const Value& id, uint64_t epoch,
           std::vector<gremlin::VertexPtr>* out);

  /// Stores the complete vertex set for `id` as observed at `epoch`
  /// (the database write epoch read *before* the fetch). Replaces any
  /// existing entry; evicts least-recently-used ids beyond capacity.
  void Put(const Value& id, std::vector<gremlin::VertexPtr> vertices,
           uint64_t epoch);

  /// Current number of cached ids (approximate under concurrency).
  size_t ApproxEntries() const;

 private:
  struct Entry {
    Value id;
    std::vector<gremlin::VertexPtr> vertices;
    uint64_t epoch = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Value, std::list<Entry>::iterator, ValueHash> index;
  };

  Shard& ShardFor(const Value& id);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_VERTEX_CACHE_H_
