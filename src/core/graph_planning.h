// Copyright (c) 2026 The db2graph-repro Authors.
//
// Per-table SQL planning shared by the Graph Structure module (step-at-a-
// time lookups, paper Section 6) and the multi-hop join optimizer (which
// collapses hop chains into one N-way join). Everything here is pure
// planning — condition construction, select-list layout, shape keys for
// the SQL-skeleton cache, access-path prediction — with no data access,
// so the optimizer can cost and render candidate joins at compile time
// using exactly the logic execution will use.

#ifndef DB2GRAPH_CORE_GRAPH_PLANNING_H_
#define DB2GRAPH_CORE_GRAPH_PLANNING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "gremlin/graph_api.h"
#include "overlay/topology.h"
#include "sql/database.h"

namespace db2graph::core {

struct RuntimeOptions;  // core/graph_structure.h

// ----------------------------------------------------------------------
// SQL construction
// ----------------------------------------------------------------------

/// One SQL condition on a column. `alias` qualifies the column reference
/// ("alias"."col") inside multi-table join statements; empty for the
/// single-table lookups. When `ref_column` is non-empty the condition is
/// a column-to-column join predicate ("alias"."col" op
/// "ref_alias"."ref_col") and contributes no parameters.
struct SqlCond {
  std::string column;
  std::string op;  // "=", "<>", "<", "<=", ">", ">=", "IN", "NOTNULL"
  std::vector<Value> params;
  std::string alias;
  std::string ref_alias;
  std::string ref_column;
};

/// Conjunction of simple conditions plus OR-groups of conjunctions (used
/// for multi-column composite ids: (a=? AND b=?) OR (a=? AND b=?)).
struct QueryConds {
  std::vector<SqlCond> conjuncts;
  std::vector<std::vector<std::vector<SqlCond>>> or_groups;
};

/// Renders one condition into `*sql`, pushing its parameters.
void RenderCond(const SqlCond& cond, std::string* sql,
                std::vector<Value>* params);

/// Renders "SELECT <select> FROM <table> WHERE ... [LIMIT n]" with
/// parameters. A non-negative `limit` is the LookupSpec's per-table row
/// budget; rendering it lets the SQL executor's streaming scan stop after
/// `limit` matching rows instead of draining the table.
std::string BuildSql(const std::string& table, const std::string& select,
                     const QueryConds& conds, std::vector<Value>* params,
                     int64_t limit = -1);

/// Extracts the parameter values of `conds` in exactly the order
/// BuildSql/RenderCond would push them (NOTNULL contributes none, IN all
/// of its values, a scalar comparison its first) — so a cached SQL
/// skeleton can execute with fresh values and no string assembly.
void CollectParams(const QueryConds& conds, std::vector<Value>* params);

/// A key that uniquely determines the SQL text BuildSql would produce:
/// table, select list, the structure (aliases, columns, operators, IN
/// arities) of the conditions, and the LIMIT value — everything except
/// the parameter values.
std::string ShapeKey(const std::string& table, const std::string& select,
                     const QueryConds& conds, int64_t limit = -1);

/// SQL comparison operator for a scalar predicate op; nullptr for
/// within/without/exists (handled separately).
const char* SqlOpFor(gremlin::PropPredicate::Op op);

/// One table of a multi-hop collapsed join: base table, statement alias,
/// and the conditions whose leftmost binding scope is this table (the
/// per-stage predicate order the step-at-a-time plans would use).
struct JoinStage {
  std::string table;
  std::string alias;
  QueryConds conds;
};

/// Renders "SELECT <select> FROM "T0" AS a0, "T1" AS a1, ... WHERE ..."
/// for a collapsed hop chain. Conditions render stage by stage (all of
/// stage 0's, then stage 1's, ...) so the SQL executor assigns each one
/// to the earliest join stage that covers its aliases — mirroring the
/// per-table WHERE clauses of the equivalent step-at-a-time statements.
std::string BuildJoinSql(const std::vector<JoinStage>& stages,
                         const std::string& select,
                         std::vector<Value>* params);

/// Shape key uniquely determining BuildJoinSql's text (everything except
/// parameter values), for the SQL-skeleton cache.
std::string JoinShapeKey(const std::vector<JoinStage>& stages,
                         const std::string& select);

/// Parameter values of `stages` in BuildJoinSql render order.
void CollectJoinParams(const std::vector<JoinStage>& stages,
                       std::vector<Value>* params);

/// Position a runtime-injected id/endpoint/join condition takes among a
/// plan's conjuncts: PlanVertexTable/PlanEdgeTable place the label
/// condition first, then id/endpoint conditions, then property
/// conditions. Shared between the multi-hop optimizer's probe-parity
/// simulation and the provider's join-stage construction so both agree
/// with the step-at-a-time statement layout.
size_t JoinCondPosition(const QueryConds& conds,
                        const sql::TableSchema& schema,
                        const std::optional<size_t>& label_column);

// ----------------------------------------------------------------------
// Fetch layout: which schema columns a query selects, and where the
// element's required fields and properties land in the fetched row.
// ----------------------------------------------------------------------

struct FetchLayout {
  std::vector<size_t> schema_cols;  // schema column index per SELECT column
  std::vector<size_t> positions_of_schema;  // schema idx -> fetched pos

  size_t PosOf(size_t schema_col) const {
    return positions_of_schema[schema_col];
  }
  bool Has(size_t schema_col) const {
    return schema_col < positions_of_schema.size() &&
           positions_of_schema[schema_col] != SIZE_MAX;
  }
};

FetchLayout MakeLayout(const sql::TableSchema& schema,
                       std::vector<size_t> cols);

std::string SelectListFor(const sql::TableSchema& schema,
                          const FetchLayout& layout);

/// Composes a ResolvedField value from a *fetched* row through the layout.
Value ComposeField(const overlay::ResolvedField& field,
                   const FetchLayout& layout, const Row& fetched);

// ----------------------------------------------------------------------
// Id decomposition into conditions
// ----------------------------------------------------------------------

struct IdCondResult {
  bool any_match = false;
};

/// A decomposed id component can only match rows when its runtime type is
/// compatible with the column's declared type; a string id like
/// "patient::1" can never live in a BIGINT key column. This is what makes
/// prefixed (and otherwise type-distinct) ids pin down the exact table.
bool TypeCompatible(const Value& v, sql::ColumnType column_type);

/// Builds conditions constraining `field` to one of `ids` (single-column
/// fields become an IN conjunct, multi-column fields an OR-group).
/// any_match=false means no id can belong to this definition.
IdCondResult BuildIdConds(const overlay::ResolvedField& field,
                          const sql::TableSchema& schema,
                          const std::vector<Value>& ids, QueryConds* conds);

/// Extends gremlin::MatchesSpec with edge endpoint checks, for the naive
/// (client-filter) execution paths.
bool MatchesEdgeSpec(const gremlin::Edge& e, const gremlin::LookupSpec& spec);

/// Splits an implicit edge id "srcParts::label::dstParts" against an edge
/// table's definitions; nullopt when it cannot belong to this table.
struct ImplicitIdParts {
  std::vector<Value> src_values;
  std::string label;
  std::vector<Value> dst_values;
};
std::optional<ImplicitIdParts> DecomposeImplicitEdgeId(
    const overlay::ResolvedEdgeTable& table, const Value& id);

// ----------------------------------------------------------------------
// Per-table lookup plans
// ----------------------------------------------------------------------

/// Per-table vertex query plan shared by Vertices, the aggregates, and
/// the multi-hop optimizer's legality checks.
struct VertexPlan {
  bool skip = false;
  bool client_filter = false;  // fetch everything, filter in the provider
  QueryConds conds;
  std::vector<std::string> predicate_columns;  // for the index advisor
};

VertexPlan PlanVertexTable(const overlay::ResolvedVertexTable& t,
                           const gremlin::LookupSpec& spec,
                           const RuntimeOptions& options);

/// Columns a vertex fetch needs under `spec` (projection-aware).
std::vector<size_t> VertexFetchColumns(const overlay::ResolvedVertexTable& t,
                                       const gremlin::LookupSpec& spec);

struct EdgePlan {
  bool skip = false;
  bool client_filter = false;
  QueryConds conds;
  std::vector<std::string> predicate_columns;
};

EdgePlan PlanEdgeTable(const overlay::ResolvedEdgeTable& t,
                       const gremlin::LookupSpec& spec,
                       const RuntimeOptions& options);

std::vector<size_t> EdgeFetchColumns(const overlay::ResolvedEdgeTable& t,
                                     const gremlin::LookupSpec& spec);

/// Predicts the access path the executor would pick for `conds` against
/// `table` from index availability: an equality/IN conjunct backed by an
/// index probes it, an ordered comparison backed by an index range-scans
/// it, anything else falls back to a table scan (with residual filtering
/// when conditions exist).
std::string PredictAccessPath(const sql::Database* db,
                              const std::string& table,
                              const QueryConds& conds);

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GRAPH_PLANNING_H_
