#include "core/graph_structure.h"

#include "core/graph_planning.h"
#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/workload_governor.h"

namespace db2graph::core {

using gremlin::AggOp;
using gremlin::Direction;
using gremlin::Edge;
using gremlin::EdgePtr;
using gremlin::LookupSpec;
using gremlin::PropPredicate;
using gremlin::Vertex;
using gremlin::VertexPtr;
using overlay::ResolvedEdgeTable;
using overlay::ResolvedField;
using overlay::ResolvedVertexTable;

// ----------------------------------------------------------------------

Db2GraphProvider::Db2GraphProvider(SqlDialect* dialect,
                                   overlay::Topology topology,
                                   RuntimeOptions options)
    : dialect_(dialect), topology_(std::move(topology)), options_(options) {
  if (options_.vertex_cache) {
    VertexCache::Options cache_options;
    cache_options.capacity = options_.vertex_cache_entries;
    cache_ = std::make_unique<VertexCache>(cache_options);
  }
}

void Db2GraphProvider::ExecuteJobs(size_t n,
                                   const std::function<void(size_t)>& fn) {
  // Fanning out while this thread already holds the database's shared
  // read lock (a graphQuery table function inside a SELECT) is unsafe:
  // pool workers would queue for fresh shared locks behind any waiting
  // writer, which in turn waits on this thread — a deadlock. Reentrant
  // calls run serially instead; the outer statement still parallelizes.
  if (n > 1 && options_.parallel_fanout &&
      !dialect_->db()->ReadLockHeldByThisThread()) {
    stats_.parallel_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.parallel_tasks.fetch_add(n, std::memory_order_relaxed);
    QueryTrace* trace = CurrentTrace();
    // Pool workers have no thread-local trace or governor context; install
    // this query's for the duration of each job so per-table SQL lands in
    // the right trace (never a concurrent query's) and deadline /
    // cancellation checks inside the job observe the right budgets.
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    if (trace != nullptr || qctx != nullptr) {
      if (trace != nullptr) trace->AddFanout(1, n);
      ThreadPool::Shared().RunBatch(n, [&fn, trace, qctx](size_t i) {
        ScopedTrace scoped(trace);
        governor::ScopedQueryContext governed(qctx);
        fn(i);
      });
      return;
    }
    ThreadPool::Shared().RunBatch(n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) fn(i);
}

bool Db2GraphProvider::CacheUsable(const LookupSpec& spec) const {
  // Single-id point lookups only: multi-id answers would interleave
  // cached and fetched rows and break the deterministic table-major
  // result order. Projections fetch partial rows (never cacheable), and
  // under access control every lookup must reach SQL so grants apply.
  return cache_ != nullptr && options_.vertex_cache && spec.ids.size() == 1 &&
         spec.agg == AggOp::kNone && !spec.has_projection &&
         !dialect_->db()->access_control_enabled();
}

bool Db2GraphProvider::CacheFillEligible(const LookupSpec& spec) const {
  // Labels prune tables and predicates are pushed into WHERE: either one
  // makes the fetched set a subset of "all vertices with this id", which
  // is what a cache entry must hold. (Id-type pinning is fine — a table
  // skipped because the id cannot decompose into its key columns cannot
  // contain the vertex at all.) A limit truncates the fetch, so a limited
  // lookup can never populate an entry either.
  return spec.labels.empty() && spec.predicates.empty() && spec.limit < 0;
}

VertexPtr Db2GraphProvider::MaterializeVertex(int table_index,
                                              const Row& row) const {
  // Only used with full-row fetches (client-filter paths).
  const ResolvedVertexTable& t = topology_.vertex_tables()[table_index];
  auto v = std::make_shared<Vertex>();
  v->id = t.id.Compose(row);
  v->label = t.conf.label.fixed ? t.conf.label.value
                                : row[*t.label_column].ToString();
  for (size_t i = 0; i < t.properties.size(); ++i) {
    const Value& value = row[t.property_columns[i]];
    if (!value.is_null()) v->properties.emplace_back(t.properties[i], value);
  }
  v->source_table = t.conf.table_name;
  auto prov = std::make_shared<RowProvenance>();
  prov->table_index = table_index;
  prov->row = row;
  v->provenance = std::move(prov);
  return v;
}

// ----------------------------------------------------------------------
// Vertices
// ----------------------------------------------------------------------

namespace {

VertexPtr BuildVertexFromFetched(const ResolvedVertexTable& t, int table_index,
                                 const FetchLayout& layout, Row row) {
  auto v = std::make_shared<Vertex>();
  v->id = ComposeField(t.id, layout, row);
  v->label = t.conf.label.fixed
                 ? t.conf.label.value
                 : row[layout.PosOf(*t.label_column)].ToString();
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (!layout.Has(t.property_columns[i])) continue;
    const Value& value = row[layout.PosOf(t.property_columns[i])];
    if (!value.is_null()) {
      v->properties.emplace_back(t.properties[i], value);
    }
  }
  v->source_table = t.conf.table_name;
  auto prov = std::make_shared<RowProvenance>();
  prov->table_index = table_index;
  prov->row = std::move(row);
  v->provenance = std::move(prov);
  return v;
}

// One per-table vertex fetch: the unit of work the fan-out parallelizes.
// Everything it touches is either private to the call or internally
// synchronized (dialect template cache, database shared lock, atomics).
Status FetchVertexTable(SqlDialect* dialect, const ResolvedVertexTable& t,
                        int table_index, const LookupSpec& spec,
                        const VertexPlan& plan, std::vector<VertexPtr>* out) {
  // A cancelled / timed-out query skips the tables it has not fetched
  // yet; with fan-out, workers past this check finish their one statement
  // and the batch unwinds at the merge.
  DB2G_RETURN_NOT_OK(governor::CheckCurrent());
  DB2G_FAILPOINT("provider.fetch_vertex_table");
  const sql::TableSchema& schema = *t.schema;
  // The naive path fetches full rows (needed for client-side filtering);
  // the pushdown path fetches only the projected layout.
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = VertexFetchColumns(t, spec);
  }
  FetchLayout layout = MakeLayout(schema, std::move(cols));

  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  // The per-table row budget holds only when SQL sees every filter; a
  // client-filtered fetch must not be truncated before filtering.
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  Result<sql::ResultSet> rs = dialect->QueryShaped(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
  if (!rs.ok()) return rs.status();

  for (Row& row : rs->rows) {
    VertexPtr v = BuildVertexFromFetched(t, table_index, layout,
                                         std::move(row));
    if (plan.client_filter && !gremlin::MatchesSpec(*v, spec)) continue;
    out->push_back(std::move(v));
  }
  return Status::OK();
}

// One surviving table of a streaming vertex lookup.
struct VertexJob {
  int table_index;
  VertexPlan plan;
};

// Opens the per-table SQL stream FetchVertexTable would have executed
// materialized. `layout` receives the fetched-column layout the caller
// needs to build vertices from the stream's rows.
Result<std::unique_ptr<DialectRowStream>> OpenVertexTableStream(
    SqlDialect* dialect, const ResolvedVertexTable& t, const LookupSpec& spec,
    const VertexPlan& plan, FetchLayout* layout) {
  DB2G_FAILPOINT("provider.open_vertex_stream");
  const sql::TableSchema& schema = *t.schema;
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = VertexFetchColumns(t, spec);
  }
  *layout = MakeLayout(schema, std::move(cols));
  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, *layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  return dialect->QueryShapedStreaming(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
}

// Bounded handoff of vertex blocks from one per-table producer to the
// consuming stream: producers block when their queue is full (backpressure
// instead of materializing the table), the consumer blocks until the
// producer delivers or finishes, and cancellation wakes both sides.
class VertexBlockQueue {
 public:
  explicit VertexBlockQueue(size_t capacity) : capacity_(capacity) {}

  // Producer side. False = the consumer cancelled; stop fetching.
  bool Push(std::vector<VertexPtr> block) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return cancelled_ || blocks_.size() < capacity_;
    });
    if (cancelled_) return false;
    blocks_.push_back(std::move(block));
    not_empty_.notify_one();
    return true;
  }
  void MarkDone(Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    status_ = std::move(status);
    not_empty_.notify_all();
  }

  // Consumer side. False = producer finished; check TakeStatus().
  bool Pop(std::vector<VertexPtr>* block) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return done_ || !blocks_.empty(); });
    if (blocks_.empty()) return false;
    *block = std::move(blocks_.front());
    blocks_.pop_front();
    not_full_.notify_one();
    return true;
  }
  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
  }
  void Cancel() {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<VertexPtr>> blocks_;
  bool done_ = false;
  bool cancelled_ = false;
  Status status_ = Status::OK();
};

// Live streaming vertex lookup over the surviving tables.
//
// Serial mode keeps at most one per-table SQL stream open and pulls
// exactly the vertices the consumer asks for. Parallel mode (fan-out
// eligible) starts a coordinator thread that fans the per-table producers
// out on the shared pool; each producer streams its table into a bounded
// VertexBlockQueue and the consumer drains the queues in table order, so
// results match the materialized table-major merge exactly. Close()
// cancels: producers stop at their next push, and ones that have not
// started observe the flag and never open their SQL stream.
class Db2VertexStream : public gremlin::VertexStream {
 public:
  static constexpr size_t kQueueBlocks = 4;  // per-table backpressure bound

  Db2VertexStream(SqlDialect* dialect, const overlay::Topology* topology,
                  LookupSpec spec, std::vector<VertexJob> jobs, bool parallel)
      : dialect_(dialect),
        topology_(topology),
        spec_(std::move(spec)),
        jobs_(std::move(jobs)) {
    if (parallel && jobs_.size() > 1) StartParallel();
  }

  ~Db2VertexStream() override { Close(); }

  bool Next(std::vector<VertexPtr>* out, size_t max) override {
    out->clear();
    if (closed_ || !status_.ok()) return false;
    if (max == 0) max = 1;
    return parallel_mode_ ? NextParallel(out, max) : NextSerial(out, max);
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    if (serial_stream_ != nullptr) {
      serial_stream_->Close();
      serial_stream_.reset();
    }
    if (parallel_mode_) {
      cancel_.store(true, std::memory_order_release);
      for (auto& q : queues_) q->Cancel();
      if (coordinator_.joinable()) coordinator_.join();
    }
  }

  const Status& status() const override { return status_; }

 private:
  // -- serial: lazy per-table SQL streams, opened in table order ----------
  bool NextSerial(std::vector<VertexPtr>* out, size_t max) {
    while (true) {
      Status gst = governor::CheckCurrent();
      if (!gst.ok()) {
        status_ = std::move(gst);
        return false;
      }
      if (serial_stream_ == nullptr) {
        if (job_pos_ >= jobs_.size()) return false;
        Result<std::unique_ptr<DialectRowStream>> stream =
            OpenVertexTableStream(
                dialect_, topology_->vertex_tables()[jobs_[job_pos_].table_index],
                spec_, jobs_[job_pos_].plan, &layout_);
        if (!stream.ok()) {
          status_ = stream.status();
          return false;
        }
        serial_stream_ = std::move(*stream);
      }
      block_.capacity = max;
      if (!serial_stream_->Next(&block_)) {
        status_ = serial_stream_->status();
        serial_stream_->Close();
        serial_stream_.reset();
        if (!status_.ok()) return false;
        ++job_pos_;
        continue;
      }
      const VertexJob& job = jobs_[job_pos_];
      const ResolvedVertexTable& t =
          topology_->vertex_tables()[job.table_index];
      for (Row& row : block_.rows) {
        VertexPtr v = BuildVertexFromFetched(t, job.table_index, layout_,
                                             std::move(row));
        if (job.plan.client_filter && !gremlin::MatchesSpec(*v, spec_)) {
          continue;
        }
        out->push_back(std::move(v));
      }
      if (!out->empty()) return true;  // all-filtered block: keep pulling
    }
  }

  // -- parallel: bounded queues fed by pool workers -----------------------
  void StartParallel() {
    parallel_mode_ = true;
    queues_.reserve(jobs_.size());
    for (size_t i = 0; i < jobs_.size(); ++i) {
      queues_.push_back(std::make_unique<VertexBlockQueue>(kQueueBlocks));
    }
    QueryTrace* trace = CurrentTrace();
    if (trace != nullptr) trace->AddFanout(1, jobs_.size());
    // Producers inherit the consumer's governor context so a deadline or
    // kill observed mid-table stops the fetch from inside the producer,
    // not only when the consumer gets around to calling Close().
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    // RunBatch blocks its caller until every task finished, which must not
    // be the consumer: a dedicated coordinator submits the batch and is
    // joined on Close(). The consumer only ever waits on queue pops.
    coordinator_ = std::thread([this, trace, qctx] {
      ThreadPool::Shared().RunBatch(jobs_.size(),
                                    [this, trace, qctx](size_t j) {
        ScopedTrace scoped(trace);
        governor::ScopedQueryContext governed(qctx);
        ProduceTable(j);
      });
    });
  }

  void ProduceTable(size_t j) {
    VertexBlockQueue& queue = *queues_[j];
    // Early termination: a task that has not opened its SQL stream when
    // the consumer closes never runs it at all.
    if (cancel_.load(std::memory_order_acquire)) {
      queue.MarkDone(Status::OK());
      return;
    }
    const VertexJob& job = jobs_[j];
    const ResolvedVertexTable& t = topology_->vertex_tables()[job.table_index];
    FetchLayout layout;
    Result<std::unique_ptr<DialectRowStream>> stream =
        OpenVertexTableStream(dialect_, t, spec_, job.plan, &layout);
    if (!stream.ok()) {
      queue.MarkDone(stream.status());
      return;
    }
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    Status final_status = Status::OK();
    sql::RowBlock block;
    while (!cancel_.load(std::memory_order_acquire)) {
      // The governor check makes an expired deadline stop the fetch from
      // inside the producer; the consumer's unwind (Close) still runs, but
      // the SQL stream stops pulling rows immediately.
      if (qctx != nullptr) {
        final_status = qctx->Check();
        if (!final_status.ok()) break;
      }
      DB2G_FAILPOINT_STATUS("provider.producer_block", final_status);
      if (!final_status.ok()) break;
      block.capacity = sql::kDefaultBlockRows;
      if (!(*stream)->Next(&block)) {
        final_status = (*stream)->status();
        break;
      }
      std::vector<VertexPtr> vertices;
      vertices.reserve(block.rows.size());
      for (Row& row : block.rows) {
        VertexPtr v = BuildVertexFromFetched(t, job.table_index, layout,
                                             std::move(row));
        if (job.plan.client_filter && !gremlin::MatchesSpec(*v, spec_)) {
          continue;
        }
        vertices.push_back(std::move(v));
      }
      if (vertices.empty()) continue;
      if (qctx != nullptr) {
        // Blocks parked in the bounded queue count against the query's
        // memory budget; the consumer releases the charge on pop. Charges
        // stranded by cancellation die with the query context.
        final_status = qctx->ChargeMemory(vertices.size() *
                                          governor::kApproxVertexBytes);
        if (!final_status.ok()) break;
      }
      if (!queue.Push(std::move(vertices))) break;
    }
    (*stream)->Close();
    queue.MarkDone(std::move(final_status));
  }

  bool NextParallel(std::vector<VertexPtr>* out, size_t max) {
    while (true) {
      if (pending_pos_ < pending_.size()) {
        size_t n = std::min(max, pending_.size() - pending_pos_);
        for (size_t i = 0; i < n; ++i) {
          out->push_back(std::move(pending_[pending_pos_ + i]));
        }
        pending_pos_ += n;
        if (pending_pos_ >= pending_.size()) {
          pending_.clear();
          pending_pos_ = 0;
        }
        return true;
      }
      if (queue_pos_ >= queues_.size()) return false;
      std::vector<VertexPtr> block;
      if (!queues_[queue_pos_]->Pop(&block)) {
        Status st = queues_[queue_pos_]->TakeStatus();
        if (!st.ok()) {
          status_ = std::move(st);
          return false;
        }
        ++queue_pos_;  // table drained; move to the next in order
        continue;
      }
      if (governor::QueryContext* qctx = governor::CurrentQueryContext()) {
        qctx->ReleaseMemory(block.size() * governor::kApproxVertexBytes);
      }
      pending_ = std::move(block);
      pending_pos_ = 0;
    }
  }

  SqlDialect* dialect_;
  const overlay::Topology* topology_;
  LookupSpec spec_;
  std::vector<VertexJob> jobs_;
  Status status_ = Status::OK();
  bool closed_ = false;

  // Serial state.
  size_t job_pos_ = 0;
  std::unique_ptr<DialectRowStream> serial_stream_;
  FetchLayout layout_;
  sql::RowBlock block_;

  // Parallel state.
  bool parallel_mode_ = false;
  std::atomic<bool> cancel_{false};
  std::vector<std::unique_ptr<VertexBlockQueue>> queues_;
  std::thread coordinator_;
  size_t queue_pos_ = 0;
  std::vector<VertexPtr> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace

Status Db2GraphProvider::Vertices(const LookupSpec& spec,
                                  std::vector<VertexPtr>* out) {
  const bool cache_on = CacheUsable(spec);
  uint64_t epoch = 0;
  if (cache_on) {
    // Epoch read *before* the lookup: a write racing with the fetch makes
    // the entry stale-by-construction rather than stale-but-current.
    epoch = dialect_->db()->write_epoch();
    std::vector<VertexPtr> cached;
    if (cache_->Get(spec.ids[0], epoch, &cached)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) trace->AddCacheHit();
      for (VertexPtr& v : cached) {
        if (gremlin::MatchesSpec(*v, spec)) out->push_back(std::move(v));
      }
      return Status::OK();
    }
    stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    if (QueryTrace* trace = CurrentTrace()) trace->AddCacheMiss();
  }

  struct Job {
    int table_index;
    VertexPlan plan;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan)});
  }

  // Per-job result slots keep the merge deterministic in table order no
  // matter which worker finishes first.
  std::vector<std::vector<VertexPtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchVertexTable(
        dialect_, topology_.vertex_tables()[jobs[j].table_index],
        jobs[j].table_index, spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  std::vector<VertexPtr> fetched;
  for (auto& slot : slots) {
    for (VertexPtr& v : slot) fetched.push_back(std::move(v));
  }
  if (cache_on && CacheFillEligible(spec)) {
    // Every surviving table was consulted and nothing was filtered, so
    // `fetched` is the complete vertex set for this id (possibly empty —
    // a cached negative).
    cache_->Put(spec.ids[0], fetched, epoch);
  }
  for (VertexPtr& v : fetched) out->push_back(std::move(v));
  return Status::OK();
}

Result<std::unique_ptr<gremlin::VertexStream>>
Db2GraphProvider::VerticesStreaming(const LookupSpec& spec) {
  // Aggregates produce no element stream, and cache-eligible point
  // lookups answer from (and fill) the vertex cache only on the
  // materialized path — both fall back to materialize-and-chunk.
  if (spec.agg != AggOp::kNone || CacheUsable(spec)) {
    return GraphProvider::VerticesStreaming(spec);
  }

  QueryTrace* trace = CurrentTrace();
  std::vector<VertexJob> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(VertexJob{static_cast<int>(ti), std::move(plan)});
  }

  // Same fan-out eligibility rule as ExecuteJobs: never spawn workers
  // when this thread already holds the database read lock.
  bool parallel = jobs.size() > 1 && options_.parallel_fanout &&
                  !dialect_->db()->ReadLockHeldByThisThread();
  if (parallel) {
    stats_.parallel_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.parallel_tasks.fetch_add(jobs.size(), std::memory_order_relaxed);
  }
  return std::unique_ptr<gremlin::VertexStream>(new Db2VertexStream(
      dialect_, &topology_, spec, std::move(jobs), parallel));
}

Result<Value> Db2GraphProvider::AggregateVertices(const LookupSpec& spec) {
  if (spec.agg == AggOp::kNone) {
    return Status::Unsupported("no aggregate in spec");
  }
  struct Job {
    int table_index;
    VertexPlan plan;
    std::string select;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.client_filter) {
      return Status::Unsupported(
          "aggregate requires client-side filtering; falling back");
    }
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    // Locate the aggregated property column (count(*) needs none).
    std::string agg_column;
    if (spec.agg != AggOp::kCount || !spec.agg_key.empty()) {
      bool found = false;
      for (size_t i = 0; i < t.properties.size(); ++i) {
        if (EqualsIgnoreCase(t.properties[i], spec.agg_key)) {
          agg_column = t.schema->columns[t.property_columns[i]].name;
          found = true;
          break;
        }
      }
      if (!found) continue;  // table contributes nothing
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    std::string select;
    switch (spec.agg) {
      case AggOp::kCount:
        select = agg_column.empty() ? "COUNT(*)"
                                    : "COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        select = "SUM(\"" + agg_column + "\"), COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kMin:
        select = "MIN(\"" + agg_column + "\")";
        break;
      case AggOp::kMax:
        select = "MAX(\"" + agg_column + "\")";
        break;
      case AggOp::kNone:
        return Status::Internal("unreachable");
    }
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan),
                       std::move(select)});
  }

  struct Partial {
    Status status = Status::OK();
    bool has_row = false;
    Row row;
  };
  std::vector<Partial> partials(jobs.size());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    const ResolvedVertexTable& t =
        topology_.vertex_tables()[jobs[j].table_index];
    std::vector<Value> params;
    CollectParams(jobs[j].plan.conds, &params);
    dialect_->RecordPattern(t.conf.table_name, jobs[j].plan.predicate_columns);
    Result<sql::ResultSet> rs = dialect_->QueryShaped(
        ShapeKey(t.conf.table_name, jobs[j].select, jobs[j].plan.conds),
        [&] {
          std::vector<Value> ignored;
          return BuildSql(t.conf.table_name, jobs[j].select,
                          jobs[j].plan.conds, &ignored);
        },
        params);
    if (!rs.ok()) {
      partials[j].status = rs.status();
      return;
    }
    if (!rs->rows.empty()) {
      partials[j].has_row = true;
      partials[j].row = std::move(rs->rows[0]);
    }
  });

  int64_t total_count = 0;
  double total_sum = 0;
  bool sum_is_int = true;
  int64_t total_isum = 0;
  Value min_v;
  Value max_v;
  for (Partial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    if (!partial.has_row) continue;
    const Row& row = partial.row;
    switch (spec.agg) {
      case AggOp::kCount:
        total_count += row[0].is_null() ? 0 : row[0].as_int();
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        if (!row[0].is_null()) {
          total_sum += row[0].NumericValue();
          if (row[0].is_int()) {
            total_isum += row[0].as_int();
          } else {
            sum_is_int = false;
          }
          total_count += row[1].as_int();
        }
        break;
      case AggOp::kMin:
        if (!row[0].is_null() && (min_v.is_null() || row[0] < min_v)) {
          min_v = row[0];
        }
        break;
      case AggOp::kMax:
        if (!row[0].is_null() && (max_v.is_null() || row[0] > max_v)) {
          max_v = row[0];
        }
        break;
      case AggOp::kNone:
        break;
    }
  }
  switch (spec.agg) {
    case AggOp::kCount:
      return Value(total_count);
    case AggOp::kSum:
      if (total_count == 0) return Value::Null();
      return sum_is_int ? Value(total_isum) : Value(total_sum);
    case AggOp::kMean:
      if (total_count == 0) return Value::Null();
      return Value(total_sum / static_cast<double>(total_count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    case AggOp::kNone:
      break;
  }
  return Status::Internal("unreachable");
}

// ----------------------------------------------------------------------
// Edges
// ----------------------------------------------------------------------

namespace {

// One per-table edge fetch: the parallel fan-out unit for Edges /
// AdjacentEdges. Same thread-safety contract as FetchVertexTable.
Status FetchEdgeTable(SqlDialect* dialect, const ResolvedEdgeTable& t,
                      int table_index, const LookupSpec& spec,
                      const EdgePlan& plan, std::vector<EdgePtr>* out) {
  DB2G_RETURN_NOT_OK(governor::CheckCurrent());
  DB2G_FAILPOINT("provider.fetch_edge_table");
  const sql::TableSchema& schema = *t.schema;
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = EdgeFetchColumns(t, spec);
  }
  FetchLayout layout = MakeLayout(schema, std::move(cols));

  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  Result<sql::ResultSet> rs = dialect->QueryShaped(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
  if (!rs.ok()) return rs.status();

  for (Row& row : rs->rows) {
    auto e = std::make_shared<Edge>();
    e->src_id = ComposeField(t.src_v, layout, row);
    e->dst_id = ComposeField(t.dst_v, layout, row);
    e->label = t.conf.label.fixed
                   ? t.conf.label.value
                   : row[layout.PosOf(*t.label_column)].ToString();
    if (t.conf.implicit_edge_id) {
      e->id = Value(e->src_id.ToString() + kIdSeparator + e->label +
                    kIdSeparator + e->dst_id.ToString());
    } else {
      e->id = ComposeField(t.id, layout, row);
    }
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (!layout.Has(t.property_columns[i])) continue;
      const Value& value = row[layout.PosOf(t.property_columns[i])];
      if (!value.is_null()) {
        e->properties.emplace_back(t.properties[i], value);
      }
    }
    e->source_table = t.conf.table_name;
    auto prov = std::make_shared<RowProvenance>();
    prov->table_index = table_index;
    prov->row = std::move(row);
    e->provenance = std::move(prov);
    if (plan.client_filter && !MatchesEdgeSpec(*e, spec)) continue;
    out->push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace

Status Db2GraphProvider::Edges(const LookupSpec& spec,
                               std::vector<EdgePtr>* out) {
  return EdgesOnTables(spec, {}, out);
}

Status Db2GraphProvider::EdgesOnTables(const LookupSpec& spec,
                                       const std::vector<int>& tables,
                                       std::vector<EdgePtr>* out) {
  struct Job {
    int table_index;
    EdgePlan plan;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    if (!tables.empty() &&
        std::find(tables.begin(), tables.end(), static_cast<int>(ti)) ==
            tables.end()) {
      continue;
    }
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    if (plan.skip) {
      stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.edge_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan)});
  }

  // Edge order matters downstream (per-source emission order in the
  // interpreter), so per-job slots are merged in table order.
  std::vector<std::vector<EdgePtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchEdgeTable(
        dialect_, topology_.edge_tables()[jobs[j].table_index],
        jobs[j].table_index, spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (auto& slot : slots) {
    for (EdgePtr& e : slot) out->push_back(std::move(e));
  }
  return Status::OK();
}

Result<Value> Db2GraphProvider::AggregateEdges(const LookupSpec& spec) {
  return AggregateEdgesOnTables(spec, {});
}

Result<Value> Db2GraphProvider::AggregateEdgesOnTables(
    const LookupSpec& spec, const std::vector<int>& tables) {
  if (spec.agg == AggOp::kNone) {
    return Status::Unsupported("no aggregate in spec");
  }
  struct Job {
    int table_index;
    EdgePlan plan;
    std::string select;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    if (!tables.empty() &&
        std::find(tables.begin(), tables.end(), static_cast<int>(ti)) ==
            tables.end()) {
      continue;
    }
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    if (plan.client_filter) {
      return Status::Unsupported("aggregate needs client-side filtering");
    }
    if (plan.skip) {
      stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    std::string agg_column;
    if (spec.agg != AggOp::kCount || !spec.agg_key.empty()) {
      bool found = false;
      for (size_t i = 0; i < t.properties.size(); ++i) {
        if (EqualsIgnoreCase(t.properties[i], spec.agg_key)) {
          agg_column = t.schema->columns[t.property_columns[i]].name;
          found = true;
          break;
        }
      }
      if (!found) continue;
    }
    stats_.edge_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    std::string select;
    switch (spec.agg) {
      case AggOp::kCount:
        select = agg_column.empty() ? "COUNT(*)"
                                    : "COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        select = "SUM(\"" + agg_column + "\"), COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kMin:
        select = "MIN(\"" + agg_column + "\")";
        break;
      case AggOp::kMax:
        select = "MAX(\"" + agg_column + "\")";
        break;
      case AggOp::kNone:
        return Status::Internal("unreachable");
    }
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan),
                       std::move(select)});
  }

  struct Partial {
    Status status = Status::OK();
    bool has_row = false;
    Row row;
  };
  std::vector<Partial> partials(jobs.size());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[jobs[j].table_index];
    std::vector<Value> params;
    CollectParams(jobs[j].plan.conds, &params);
    dialect_->RecordPattern(t.conf.table_name, jobs[j].plan.predicate_columns);
    Result<sql::ResultSet> rs = dialect_->QueryShaped(
        ShapeKey(t.conf.table_name, jobs[j].select, jobs[j].plan.conds),
        [&] {
          std::vector<Value> ignored;
          return BuildSql(t.conf.table_name, jobs[j].select,
                          jobs[j].plan.conds, &ignored);
        },
        params);
    if (!rs.ok()) {
      partials[j].status = rs.status();
      return;
    }
    if (!rs->rows.empty()) {
      partials[j].has_row = true;
      partials[j].row = std::move(rs->rows[0]);
    }
  });

  int64_t total_count = 0;
  double total_sum = 0;
  bool sum_is_int = true;
  int64_t total_isum = 0;
  Value min_v;
  Value max_v;
  for (Partial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    if (!partial.has_row) continue;
    const Row& row = partial.row;
    switch (spec.agg) {
      case AggOp::kCount:
        total_count += row[0].is_null() ? 0 : row[0].as_int();
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        if (!row[0].is_null()) {
          total_sum += row[0].NumericValue();
          if (row[0].is_int()) {
            total_isum += row[0].as_int();
          } else {
            sum_is_int = false;
          }
          total_count += row[1].as_int();
        }
        break;
      case AggOp::kMin:
        if (!row[0].is_null() && (min_v.is_null() || row[0] < min_v)) {
          min_v = row[0];
        }
        break;
      case AggOp::kMax:
        if (!row[0].is_null() && (max_v.is_null() || row[0] > max_v)) {
          max_v = row[0];
        }
        break;
      case AggOp::kNone:
        break;
    }
  }
  switch (spec.agg) {
    case AggOp::kCount:
      return Value(total_count);
    case AggOp::kSum:
      if (total_count == 0) return Value::Null();
      return sum_is_int ? Value(total_isum) : Value(total_sum);
    case AggOp::kMean:
      if (total_count == 0) return Value::Null();
      return Value(total_sum / static_cast<double>(total_count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    case AggOp::kNone:
      break;
  }
  return Status::Internal("unreachable");
}

// ----------------------------------------------------------------------
// Adjacency with endpoint-table pruning
// ----------------------------------------------------------------------

Status Db2GraphProvider::AdjacentEdges(const std::vector<VertexPtr>& from,
                                       Direction dir, const LookupSpec& spec,
                                       std::vector<EdgePtr>* out) {
  // Which vertex tables do the anchors come from?
  std::unordered_set<std::string> source_tables;
  std::vector<Value> ids;
  ids.reserve(from.size());
  for (const VertexPtr& v : from) {
    ids.push_back(v->id);
    if (!v->source_table.empty()) source_tables.insert(v->source_table);
  }
  // Candidate edge tables: drop those whose declared endpoint vertex table
  // cannot contain any anchor (Section 6.3 "Using Source/Destination
  // Vertex Tables").
  QueryTrace* trace = CurrentTrace();
  std::vector<int> candidates;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    if (options_.endpoint_table_pruning && !source_tables.empty()) {
      auto endpoint_possible = [&](int vertex_table) {
        if (vertex_table < 0) return true;  // endpoint table unknown
        return source_tables.count(
                   topology_.vertex_tables()[vertex_table].conf.table_name) >
               0;
      };
      bool possible = false;
      if (dir == Direction::kOut || dir == Direction::kBoth) {
        possible |= endpoint_possible(t.src_vertex_table);
      }
      if (dir == Direction::kIn || dir == Direction::kBoth) {
        possible |= endpoint_possible(t.dst_vertex_table);
      }
      if (!possible) {
        stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
        continue;
      }
    }
    candidates.push_back(static_cast<int>(ti));
  }

  LookupSpec edge_spec = spec;
  if (dir == Direction::kOut) {
    edge_spec.src_ids = ids;
    return EdgesOnTables(edge_spec, candidates, out);
  }
  if (dir == Direction::kIn) {
    edge_spec.dst_ids = ids;
    return EdgesOnTables(edge_spec, candidates, out);
  }
  edge_spec.src_ids = ids;
  DB2G_RETURN_NOT_OK(EdgesOnTables(edge_spec, candidates, out));
  edge_spec.src_ids.clear();
  edge_spec.dst_ids = ids;
  std::vector<EdgePtr> in_edges;
  DB2G_RETURN_NOT_OK(EdgesOnTables(edge_spec, candidates, &in_edges));
  for (EdgePtr& e : in_edges) {
    if (!(e->src_id == e->dst_id)) out->push_back(std::move(e));
  }
  return Status::OK();
}

Status Db2GraphProvider::EdgeEndpoints(const std::vector<EdgePtr>& edges,
                                       Direction endpoint,
                                       const LookupSpec& spec,
                                       std::vector<VertexPtr>* out) {
  // Downstream the interpreter joins endpoints back to edges through an
  // id-keyed map, so result order here is free — cache hits can be
  // emitted immediately during classification.
  const bool cache_on = cache_ != nullptr && options_.vertex_cache &&
                        spec.agg == AggOp::kNone && !spec.has_projection &&
                        !dialect_->db()->access_control_enabled();
  uint64_t epoch = cache_on ? dialect_->db()->write_epoch() : 0;
  // The pinned paths below replace spec.ids with the endpoint ids, so
  // cached vertices are filtered against labels/predicates only.
  LookupSpec cached_check = spec;
  cached_check.ids.clear();

  // Partition endpoint ids by the vertex table they are pinned to.
  std::unordered_map<int, std::vector<Value>> pinned;  // vertex table -> ids
  std::vector<Value> unpinned;
  std::unordered_set<Value, ValueHash> seen;

  auto classify = [&](const EdgePtr& e, bool source_side) -> bool {
    const Value& id = source_side ? e->src_id : e->dst_id;
    if (!seen.insert(id).second) return true;  // already handled
    const auto* prov = static_cast<const RowProvenance*>(e->provenance.get());
    int vertex_table = -1;
    if (prov != nullptr && options_.endpoint_table_pruning) {
      const ResolvedEdgeTable& t = topology_.edge_tables()[prov->table_index];
      vertex_table =
          source_side ? t.src_vertex_table : t.dst_vertex_table;
      // The vertex-table-is-also-edge-table shortcut: when the pinned
      // vertex table IS the edge's own table, the vertex's columns are in
      // the very row we already fetched — construct it without SQL.
      if (vertex_table >= 0 && options_.vertex_from_edge_shortcut) {
        const ResolvedVertexTable& vt =
            topology_.vertex_tables()[vertex_table];
        if (EqualsIgnoreCase(vt.conf.table_name, t.conf.table_name) &&
            prov->row.size() == vt.schema->columns.size()) {
          VertexPtr v = MaterializeVertex(vertex_table, prov->row);
          if (gremlin::MatchesSpec(*v, spec)) {
            out->push_back(std::move(v));
          }
          stats_.shortcut_vertices.fetch_add(1, std::memory_order_relaxed);
          if (QueryTrace* trace = CurrentTrace()) {
            trace->AddShortcutVertices(1);
          }
          return true;
        }
      }
    }
    if (cache_on) {
      std::vector<VertexPtr> cached;
      if (cache_->Get(id, epoch, &cached)) {
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        if (QueryTrace* trace = CurrentTrace()) trace->AddCacheHit();
        for (VertexPtr& v : cached) {
          if (gremlin::MatchesSpec(*v, cached_check)) {
            out->push_back(std::move(v));
          }
        }
        return true;
      }
      stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) trace->AddCacheMiss();
    }
    if (vertex_table >= 0) {
      pinned[vertex_table].push_back(id);
    } else {
      unpinned.push_back(id);
    }
    return true;
  };

  for (const EdgePtr& e : edges) {
    if (endpoint == Direction::kOut || endpoint == Direction::kBoth) {
      classify(e, /*source_side=*/true);
    }
    if (endpoint == Direction::kIn || endpoint == Direction::kBoth) {
      classify(e, /*source_side=*/false);
    }
  }

  // One job per pinned vertex table, in table-index order so the merge
  // (and any trace) is deterministic under fan-out.
  struct Job {
    int vertex_table;
    LookupSpec vertex_spec;
    VertexPlan plan;
  };
  std::vector<std::pair<int, std::vector<Value>>> groups(pinned.begin(),
                                                         pinned.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Job> jobs;
  for (auto& [vertex_table, ids] : groups) {
    LookupSpec vertex_spec = spec;
    vertex_spec.ids = std::move(ids);
    // Query exactly the pinned table.
    const ResolvedVertexTable& t = topology_.vertex_tables()[vertex_table];
    VertexPlan plan = PlanVertexTable(t, vertex_spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) {
        trace->AddTablePruned(t.conf.table_name);
      }
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (QueryTrace* trace = CurrentTrace()) {
      trace->AddTableConsulted(t.conf.table_name);
    }
    jobs.push_back(Job{vertex_table, std::move(vertex_spec), std::move(plan)});
  }

  std::vector<std::vector<VertexPtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchVertexTable(
        dialect_, topology_.vertex_tables()[jobs[j].vertex_table],
        jobs[j].vertex_table, jobs[j].vertex_spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (auto& slot : slots) {
    for (VertexPtr& v : slot) out->push_back(std::move(v));
  }

  if (!unpinned.empty()) {
    LookupSpec vertex_spec = spec;
    vertex_spec.ids = std::move(unpinned);
    DB2G_RETURN_NOT_OK(Vertices(vertex_spec, out));
  }
  return Status::OK();
}

// ----------------------------------------------------------------------
// Multi-hop collapsed traversal
// ----------------------------------------------------------------------

namespace {

void SetCondAlias(QueryConds* conds, const std::string& alias) {
  for (SqlCond& c : conds->conjuncts) c.alias = alias;
  for (auto& group : conds->or_groups) {
    for (auto& alt : group) {
      for (SqlCond& c : alt) c.alias = alias;
    }
  }
}

/// One table of a built multi-hop join, with everything emission needs:
/// the stage's fetched-column layout and its column offset in the joined
/// result row (stages are concatenated in SELECT order).
struct ChainStageMeta {
  FetchLayout layout;
  size_t offset = 0;
};

/// A fully-rendered join plan for one (edge-table × vertex-table) chain.
/// Stage order is e0, v1, e1, v2, ... — hop h contributes edge stage
/// 2h and vertex stage 2h+1.
struct JoinChainPlan {
  std::vector<JoinStage> stages;
  std::vector<ChainStageMeta> meta;
  std::vector<std::vector<std::string>> patterns;  // per-stage pred columns
  std::vector<const ResolvedEdgeTable*> edge_tables;     // per hop
  std::vector<const ResolvedVertexTable*> vertex_tables; // per hop
  std::vector<int> vertex_table_indexes;                 // per hop
  std::string select;
};

/// Builds the collapsed N-way join for chain `chain` of the provider
/// plan. `first_plan` is hop 1's edge plan — with the source-endpoint
/// conditions for execution, without them for Explain. Any violation of
/// the compile-time legality assumptions returns Unsupported so the
/// caller can fall back to step-at-a-time execution.
Status BuildJoinChainPlan(const overlay::Topology& topology,
                          const RuntimeOptions& options,
                          const gremlin::MultiHopSpec& spec,
                          const MultiHopProviderPlan& plan, size_t chain,
                          const EdgePlan& first_plan, JoinChainPlan* out) {
  const size_t hops = spec.hops.size();
  if (hops == 0 || plan.later_hops.size() + 1 != hops ||
      chain >= plan.first_hop.size()) {
    return Status::Unsupported("malformed multi-hop plan");
  }
  size_t offset = 0;
  int prev_vt = -1;
  for (size_t h = 0; h < hops; ++h) {
    const MultiHopProviderPlan::HopTables& ht =
        h == 0 ? plan.first_hop[chain] : plan.later_hops[h - 1];
    if (ht.edge_table < 0 ||
        static_cast<size_t>(ht.edge_table) >= topology.edge_tables().size() ||
        ht.vertex_table < 0 ||
        static_cast<size_t>(ht.vertex_table) >=
            topology.vertex_tables().size()) {
      return Status::Unsupported("multi-hop plan references unknown tables");
    }
    const ResolvedEdgeTable& et =
        topology.edge_tables()[static_cast<size_t>(ht.edge_table)];
    const ResolvedVertexTable& vt =
        topology.vertex_tables()[static_cast<size_t>(ht.vertex_table)];
    const gremlin::MultiHopHop& hop = spec.hops[h];
    if (hop.direction == Direction::kBoth) {
      return Status::Unsupported("multi-hop over both()");
    }
    const bool outward = hop.direction == Direction::kOut;
    const ResolvedField& nearf = outward ? et.src_v : et.dst_v;
    const ResolvedField& farf = outward ? et.dst_v : et.src_v;
    if (!farf.def.SingleColumn() || !vt.id.def.SingleColumn()) {
      return Status::Unsupported("composite multi-hop join field");
    }
    const std::string ealias = "e" + std::to_string(h);
    const std::string valias = "v" + std::to_string(h + 1);

    // Edge stage.
    EdgePlan ep = h == 0 ? first_plan
                         : PlanEdgeTable(et, hop.edge_spec, options);
    if (ep.skip || ep.client_filter) {
      return Status::Unsupported("multi-hop edge plan not pushable");
    }
    QueryConds econds = ep.conds;
    if (h > 0) {
      if (!nearf.def.SingleColumn() || prev_vt < 0) {
        return Status::Unsupported("composite multi-hop join field");
      }
      const ResolvedVertexTable& pvt =
          topology.vertex_tables()[static_cast<size_t>(prev_vt)];
      if (!pvt.id.def.SingleColumn()) {
        return Status::Unsupported("composite multi-hop join field");
      }
      SqlCond join;
      join.column = et.schema->columns[nearf.column_indexes[0]].name;
      join.op = "=";
      join.ref_alias = "v" + std::to_string(h);
      join.ref_column = pvt.schema->columns[pvt.id.column_indexes[0]].name;
      econds.conjuncts.insert(
          econds.conjuncts.begin() +
              static_cast<ptrdiff_t>(
                  JoinCondPosition(ep.conds, *et.schema, et.label_column)),
          std::move(join));
    }
    SetCondAlias(&econds, ealias);
    std::vector<size_t> ecols = nearf.column_indexes;
    ecols.insert(ecols.end(), farf.column_indexes.begin(),
                 farf.column_indexes.end());
    if (et.label_column) ecols.push_back(*et.label_column);
    if (hop.emit_edge_id && !et.conf.implicit_edge_id) {
      ecols.insert(ecols.end(), et.id.column_indexes.begin(),
                   et.id.column_indexes.end());
    }
    FetchLayout elayout = MakeLayout(*et.schema, std::move(ecols));
    JoinStage estage;
    estage.table = et.conf.table_name;
    estage.alias = ealias;
    estage.conds = std::move(econds);
    out->stages.push_back(std::move(estage));
    ChainStageMeta emeta;
    emeta.layout = elayout;
    emeta.offset = offset;
    offset += elayout.schema_cols.size();
    out->meta.push_back(std::move(emeta));
    out->patterns.push_back(ep.predicate_columns);

    // Vertex stage.
    VertexPlan vp = PlanVertexTable(vt, hop.vertex_spec, options);
    if (vp.skip || vp.client_filter) {
      return Status::Unsupported("multi-hop vertex plan not pushable");
    }
    QueryConds vconds = vp.conds;
    SqlCond vjoin;
    vjoin.column = vt.schema->columns[vt.id.column_indexes[0]].name;
    vjoin.op = "=";
    vjoin.ref_alias = ealias;
    vjoin.ref_column = et.schema->columns[farf.column_indexes[0]].name;
    vconds.conjuncts.insert(
        vconds.conjuncts.begin() +
            static_cast<ptrdiff_t>(
                JoinCondPosition(vp.conds, *vt.schema, vt.label_column)),
        std::move(vjoin));
    SetCondAlias(&vconds, valias);
    std::vector<size_t> vcols = h + 1 == hops
                                    ? VertexFetchColumns(vt, hop.vertex_spec)
                                    : vt.id.column_indexes;
    FetchLayout vlayout = MakeLayout(*vt.schema, std::move(vcols));
    JoinStage vstage;
    vstage.table = vt.conf.table_name;
    vstage.alias = valias;
    vstage.conds = std::move(vconds);
    out->stages.push_back(std::move(vstage));
    ChainStageMeta vmeta;
    vmeta.layout = vlayout;
    vmeta.offset = offset;
    offset += vlayout.schema_cols.size();
    out->meta.push_back(std::move(vmeta));
    out->patterns.push_back(vp.predicate_columns);

    out->edge_tables.push_back(&et);
    out->vertex_tables.push_back(&vt);
    out->vertex_table_indexes.push_back(ht.vertex_table);
    prev_vt = ht.vertex_table;
  }

  std::vector<std::string> select_parts;
  for (size_t s = 0; s < out->stages.size(); ++s) {
    const sql::TableSchema& schema =
        s % 2 == 0 ? *out->edge_tables[s / 2]->schema
                   : *out->vertex_tables[s / 2]->schema;
    for (size_t ci : out->meta[s].layout.schema_cols) {
      select_parts.push_back("\"" + out->stages[s].alias + "\".\"" +
                             schema.columns[ci].name + "\"");
    }
  }
  out->select = Join(select_parts, ", ");
  return Status::OK();
}

/// Sub-row of one stage in the joined result row.
Row StageRow(const Row& row, const ChainStageMeta& meta) {
  return Row(row.begin() + static_cast<ptrdiff_t>(meta.offset),
             row.begin() + static_cast<ptrdiff_t>(meta.offset +
                                                  meta.layout.schema_cols
                                                      .size()));
}

/// The edge id FetchEdgeTable would assign for this edge row.
Value ComposeEdgeId(const ResolvedEdgeTable& et, const FetchLayout& layout,
                    const Row& erow) {
  std::string label = et.conf.label.fixed
                          ? et.conf.label.value
                          : erow[layout.PosOf(*et.label_column)].ToString();
  if (et.conf.implicit_edge_id) {
    Value src = ComposeField(et.src_v, layout, erow);
    Value dst = ComposeField(et.dst_v, layout, erow);
    return Value(src.ToString() + kIdSeparator + label + kIdSeparator +
                 dst.ToString());
  }
  return ComposeField(et.id, layout, erow);
}

}  // namespace

Status Db2GraphProvider::MultiHopTraverse(const std::vector<VertexPtr>& sources,
                                          const gremlin::MultiHopSpec& spec,
                                          gremlin::MultiHopBuckets* out) {
  auto plan = std::static_pointer_cast<const MultiHopProviderPlan>(
      spec.provider_plan);
  auto decline = [&](const char* why) {
    if (plan != nullptr) {
      if (auto log = plan->log.lock()) {
        log->RecordExecution(plan->decision_id, 0, /*fell_back=*/true);
      }
    }
    return Status::Unsupported(why);
  };
  if (plan == nullptr || spec.hops.empty() || plan->first_hop.empty() ||
      plan->later_hops.size() + 1 != spec.hops.size() ||
      !options_.endpoint_table_pruning) {
    return decline("no executable multi-hop plan");
  }
  if (sources.empty()) return Status::OK();

  // Hop 1 repeats the step-at-a-time endpoint handling exactly: the
  // sources' ids become endpoint conditions and their source tables
  // drive the same endpoint pruning AdjacentEdges would apply.
  const gremlin::MultiHopHop& first = spec.hops[0];
  LookupSpec espec = first.edge_spec;
  std::vector<Value>& endpoint_ids =
      first.direction == Direction::kOut ? espec.src_ids : espec.dst_ids;
  endpoint_ids.reserve(sources.size());
  for (const VertexPtr& v : sources) endpoint_ids.push_back(v->id);
  std::unordered_set<std::string> source_tables;
  for (const VertexPtr& v : sources) {
    if (!v->source_table.empty()) source_tables.insert(v->source_table);
  }

  QueryTrace* trace = CurrentTrace();
  uint64_t total = 0;
  for (size_t ci = 0; ci < plan->first_hop.size(); ++ci) {
    const MultiHopProviderPlan::HopTables& ht = plan->first_hop[ci];
    if (ht.edge_table < 0 ||
        static_cast<size_t>(ht.edge_table) >=
            topology_.edge_tables().size()) {
      return decline("multi-hop plan references unknown tables");
    }
    const ResolvedEdgeTable& et =
        topology_.edge_tables()[static_cast<size_t>(ht.edge_table)];
    if (!source_tables.empty()) {
      int near = first.direction == Direction::kOut ? et.src_vertex_table
                                                    : et.dst_vertex_table;
      if (near >= 0 &&
          source_tables.count(
              topology_.vertex_tables()[static_cast<size_t>(near)]
                  .conf.table_name) == 0) {
        continue;  // no source can live in this chain's near table
      }
    }
    EdgePlan ep = PlanEdgeTable(et, espec, options_);
    if (ep.client_filter) return decline("multi-hop edge plan not pushable");
    if (ep.skip) {
      stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(et.conf.table_name);
      continue;
    }

    JoinChainPlan cp;
    Status built =
        BuildJoinChainPlan(topology_, options_, spec, *plan, ci, ep, &cp);
    if (built.code() == StatusCode::kUnsupported) {
      return decline(built.message().c_str());
    }
    DB2G_RETURN_NOT_OK(built);

    stats_.edge_tables_queried.fetch_add(1, std::memory_order_relaxed);
    for (size_t s = 0; s < cp.stages.size(); ++s) {
      if (trace != nullptr) trace->AddTableConsulted(cp.stages[s].table);
      dialect_->RecordPattern(cp.stages[s].table, cp.patterns[s]);
    }
    std::vector<Value> params;
    CollectJoinParams(cp.stages, &params);
    Result<std::unique_ptr<DialectRowStream>> stream =
        dialect_->QueryShapedStreaming(
            JoinShapeKey(cp.stages, cp.select),
            [&] {
              std::vector<Value> ignored;
              return BuildJoinSql(cp.stages, cp.select, &ignored);
            },
            params);
    if (!stream.ok()) return stream.status();

    const size_t hops = spec.hops.size();
    const ResolvedField& near0 = first.direction == Direction::kOut
                                     ? et.src_v
                                     : et.dst_v;
    sql::RowBlock block;
    while ((*stream)->Next(&block)) {
      Status governed = governor::CheckCurrent();
      if (!governed.ok()) {
        (*stream)->Close();
        return governed;
      }
      for (Row& row : block.rows) {
        Row e0row = StageRow(row, cp.meta[0]);
        Value source_id = ComposeField(near0, cp.meta[0].layout, e0row);
        gremlin::MultiHopEmission emission;
        for (size_t h = 0; h < hops; ++h) {
          const ChainStageMeta& emeta = cp.meta[2 * h];
          const ChainStageMeta& vmeta = cp.meta[2 * h + 1];
          const ResolvedEdgeTable& het = *cp.edge_tables[h];
          const bool outward =
              spec.hops[h].direction == Direction::kOut;
          Row erow = h == 0 ? e0row : StageRow(row, emeta);
          if (spec.hops[h].emit_edge_id) {
            emission.path_ids.push_back(
                ComposeEdgeId(het, emeta.layout, erow));
          }
          // The hop's vertex id enters the path as the edge row's far
          // endpoint value — exactly the value step-at-a-time emission
          // uses (the join guarantees it matches the vertex row's id).
          const ResolvedField& farf = outward ? het.dst_v : het.src_v;
          emission.path_ids.push_back(
              ComposeField(farf, emeta.layout, erow));
          if (h + 1 == hops) {
            emission.vertex = BuildVertexFromFetched(
                *cp.vertex_tables[h], cp.vertex_table_indexes[h],
                vmeta.layout, StageRow(row, vmeta));
          }
        }
        ++total;
        (*out)[source_id].push_back(std::move(emission));
      }
    }
    if (!(*stream)->status().ok()) return (*stream)->status();
  }

  if (auto log = plan->log.lock()) {
    log->RecordExecution(plan->decision_id, total, /*fell_back=*/false);
  }
  return Status::OK();
}

// ----------------------------------------------------------------------
// Compile-time plan previews (Explain)
// ----------------------------------------------------------------------

Status Db2GraphProvider::ExplainVertices(const LookupSpec& spec,
                                         std::vector<SqlPreview>* out) const {
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    SqlPreview preview;
    preview.table = t.conf.table_name;
    const sql::Table* base = dialect_->db()->GetTable(t.conf.table_name);
    preview.estimated_rows = base != nullptr ? base->row_count() : 0;
    if (plan.skip) {
      preview.pruned = true;
      preview.access_path = "pruned";
      out->push_back(std::move(preview));
      continue;
    }
    const sql::TableSchema& schema = *t.schema;
    std::vector<size_t> cols;
    if (plan.client_filter) {
      for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
    } else {
      cols = VertexFetchColumns(t, spec);
    }
    FetchLayout layout = MakeLayout(schema, std::move(cols));
    std::vector<Value> params;
    QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
    std::string sql = BuildSql(t.conf.table_name,
                               SelectListFor(schema, layout), conds, &params,
                               plan.client_filter ? -1 : spec.limit);
    preview.sql = SqlDialect::RenderSql(sql, params);
    preview.access_path =
        PredictAccessPath(dialect_->db(), t.conf.table_name, conds);
    out->push_back(std::move(preview));
  }
  return Status::OK();
}

Status Db2GraphProvider::ExplainEdges(const LookupSpec& spec,
                                      std::vector<SqlPreview>* out) const {
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    SqlPreview preview;
    preview.table = t.conf.table_name;
    const sql::Table* base = dialect_->db()->GetTable(t.conf.table_name);
    preview.estimated_rows = base != nullptr ? base->row_count() : 0;
    if (plan.skip) {
      preview.pruned = true;
      preview.access_path = "pruned";
      out->push_back(std::move(preview));
      continue;
    }
    const sql::TableSchema& schema = *t.schema;
    std::vector<size_t> cols;
    if (plan.client_filter) {
      for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
    } else {
      cols = EdgeFetchColumns(t, spec);
    }
    FetchLayout layout = MakeLayout(schema, std::move(cols));
    std::vector<Value> params;
    QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
    std::string sql = BuildSql(t.conf.table_name,
                               SelectListFor(schema, layout), conds, &params,
                               plan.client_filter ? -1 : spec.limit);
    preview.sql = SqlDialect::RenderSql(sql, params);
    preview.access_path =
        PredictAccessPath(dialect_->db(), t.conf.table_name, conds);
    out->push_back(std::move(preview));
  }
  return Status::OK();
}

Status Db2GraphProvider::ExplainMultiHop(const gremlin::MultiHopSpec& spec,
                                         std::vector<SqlPreview>* out) const {
  auto plan = std::static_pointer_cast<const MultiHopProviderPlan>(
      spec.provider_plan);
  if (plan == nullptr || spec.hops.empty()) return Status::OK();
  const gremlin::MultiHopHop& first = spec.hops[0];
  for (size_t ci = 0; ci < plan->first_hop.size(); ++ci) {
    const MultiHopProviderPlan::HopTables& ht = plan->first_hop[ci];
    if (ht.edge_table < 0 ||
        static_cast<size_t>(ht.edge_table) >=
            topology_.edge_tables().size()) {
      continue;
    }
    const ResolvedEdgeTable& et =
        topology_.edge_tables()[static_cast<size_t>(ht.edge_table)];
    SqlPreview preview;
    EdgePlan ep = PlanEdgeTable(et, first.edge_spec, options_);
    JoinChainPlan cp;
    if (ep.skip || ep.client_filter ||
        !BuildJoinChainPlan(topology_, options_, spec, *plan, ci, ep, &cp)
             .ok()) {
      preview.table = et.conf.table_name;
      preview.pruned = true;
      preview.access_path = "pruned";
      out->push_back(std::move(preview));
      continue;
    }
    std::vector<std::string> chain_tables;
    chain_tables.reserve(cp.stages.size());
    for (const JoinStage& stage : cp.stages) {
      chain_tables.push_back(stage.table);
    }
    preview.table = Join(chain_tables, ">");
    std::vector<Value> params;
    std::string sql = BuildJoinSql(cp.stages, cp.select, &params);
    preview.sql = SqlDialect::RenderSql(sql, params);
    preview.access_path =
        "multi-hop join (" + std::to_string(cp.stages.size()) + " stages)";
    preview.estimated_rows = spec.est_rows;
    out->push_back(std::move(preview));
  }
  return Status::OK();
}

}  // namespace db2graph::core
