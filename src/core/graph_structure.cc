#include "core/graph_structure.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/workload_governor.h"

namespace db2graph::core {

using gremlin::AggOp;
using gremlin::Direction;
using gremlin::Edge;
using gremlin::EdgePtr;
using gremlin::LookupSpec;
using gremlin::PropPredicate;
using gremlin::Vertex;
using gremlin::VertexPtr;
using overlay::ResolvedEdgeTable;
using overlay::ResolvedField;
using overlay::ResolvedVertexTable;

namespace {

// ----------------------------------------------------------------------
// SQL construction helpers
// ----------------------------------------------------------------------

// One SQL condition on a column.
struct SqlCond {
  std::string column;
  std::string op;  // "=", "<>", "<", "<=", ">", ">=", "IN", "NOTNULL"
  std::vector<Value> params;
};

// Conjunction of simple conditions plus OR-groups of conjunctions (used
// for multi-column composite ids: (a=? AND b=?) OR (a=? AND b=?)).
struct QueryConds {
  std::vector<SqlCond> conjuncts;
  std::vector<std::vector<std::vector<SqlCond>>> or_groups;
};

void RenderCond(const SqlCond& cond, std::string* sql,
                std::vector<Value>* params) {
  if (cond.op == "NOTNULL") {
    *sql += "\"" + cond.column + "\" IS NOT NULL";
    return;
  }
  if (cond.op == "IN") {
    *sql += "\"" + cond.column + "\" IN (";
    for (size_t i = 0; i < cond.params.size(); ++i) {
      if (i > 0) *sql += ", ";
      *sql += "?";
      params->push_back(cond.params[i]);
    }
    *sql += ")";
    return;
  }
  *sql += "\"" + cond.column + "\" " + cond.op + " ?";
  params->push_back(cond.params[0]);
}

// Renders "SELECT <select> FROM <table> WHERE ... [LIMIT n]" with
// parameters. A non-negative `limit` is the LookupSpec's per-table row
// budget; rendering it lets the SQL executor's streaming scan stop after
// `limit` matching rows instead of draining the table.
std::string BuildSql(const std::string& table, const std::string& select,
                     const QueryConds& conds, std::vector<Value>* params,
                     int64_t limit = -1) {
  std::string sql = "SELECT " + select + " FROM \"" + table + "\"";
  std::vector<std::string> where_parts;
  for (const SqlCond& cond : conds.conjuncts) {
    std::string part;
    RenderCond(cond, &part, params);
    where_parts.push_back(std::move(part));
  }
  for (const auto& group : conds.or_groups) {
    std::string part = "(";
    for (size_t g = 0; g < group.size(); ++g) {
      if (g > 0) part += " OR ";
      part += "(";
      for (size_t c = 0; c < group[g].size(); ++c) {
        if (c > 0) part += " AND ";
        RenderCond(group[g][c], &part, params);
      }
      part += ")";
    }
    part += ")";
    where_parts.push_back(std::move(part));
  }
  if (!where_parts.empty()) {
    sql += " WHERE " + Join(where_parts, " AND ");
  }
  if (limit >= 0) {
    sql += " LIMIT " + std::to_string(limit);
  }
  return sql;
}

// Extracts the parameter values of `conds` in exactly the order
// BuildSql/RenderCond would push them (NOTNULL contributes none, IN all of
// its values, a scalar comparison its first) — so a cached SQL skeleton
// can execute with fresh values and no string assembly.
void CollectParams(const QueryConds& conds, std::vector<Value>* params) {
  auto one = [params](const SqlCond& cond) {
    if (cond.op == "NOTNULL") return;
    if (cond.op == "IN") {
      for (const Value& v : cond.params) params->push_back(v);
      return;
    }
    params->push_back(cond.params[0]);
  };
  for (const SqlCond& cond : conds.conjuncts) one(cond);
  for (const auto& group : conds.or_groups) {
    for (const auto& conjunction : group) {
      for (const SqlCond& cond : conjunction) one(cond);
    }
  }
}

// A key that uniquely determines the SQL text BuildSql would produce:
// table, select list, the structure (columns, operators, IN arities) of
// the conditions, and the LIMIT value — everything except the parameter
// values. (LIMIT is part of the key, not a parameter: it is rendered as a
// literal into the cached skeleton.)
std::string ShapeKey(const std::string& table, const std::string& select,
                     const QueryConds& conds, int64_t limit = -1) {
  std::string key = table + "\x01" + select;
  if (limit >= 0) {
    key += "\x06";
    key += std::to_string(limit);
  }
  auto one = [&key](const SqlCond& cond) {
    key += "\x04";
    key += cond.column;
    key += "\x05";
    key += cond.op;
    if (cond.op == "IN") key += std::to_string(cond.params.size());
  };
  for (const SqlCond& cond : conds.conjuncts) {
    key += "\x02";
    one(cond);
  }
  for (const auto& group : conds.or_groups) {
    key += "\x03";
    for (const auto& conjunction : group) {
      key += "\x02";
      for (const SqlCond& cond : conjunction) one(cond);
    }
  }
  return key;
}

const char* SqlOpFor(PropPredicate::Op op) {
  switch (op) {
    case PropPredicate::Op::kEq:
      return "=";
    case PropPredicate::Op::kNeq:
      return "<>";
    case PropPredicate::Op::kLt:
      return "<";
    case PropPredicate::Op::kLte:
      return "<=";
    case PropPredicate::Op::kGt:
      return ">";
    case PropPredicate::Op::kGte:
      return ">=";
    default:
      return nullptr;  // within / without / exists handled separately
  }
}

// ----------------------------------------------------------------------
// Fetch layout: which schema columns a query selects, and where the
// element's required fields and properties land in the fetched row.
// ----------------------------------------------------------------------

struct FetchLayout {
  std::vector<size_t> schema_cols;  // schema column index per SELECT column
  std::vector<size_t> positions_of_schema;  // schema idx -> fetched pos

  size_t PosOf(size_t schema_col) const {
    return positions_of_schema[schema_col];
  }
  bool Has(size_t schema_col) const {
    return schema_col < positions_of_schema.size() &&
           positions_of_schema[schema_col] != SIZE_MAX;
  }
};

FetchLayout MakeLayout(const sql::TableSchema& schema,
                       std::vector<size_t> cols) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  FetchLayout layout;
  layout.schema_cols = cols;
  layout.positions_of_schema.assign(schema.columns.size(), SIZE_MAX);
  for (size_t i = 0; i < cols.size(); ++i) {
    layout.positions_of_schema[cols[i]] = i;
  }
  return layout;
}

std::string SelectListFor(const sql::TableSchema& schema,
                          const FetchLayout& layout) {
  std::vector<std::string> names;
  for (size_t c : layout.schema_cols) {
    names.push_back("\"" + schema.columns[c].name + "\"");
  }
  return Join(names, ", ");
}

// Composes a ResolvedField value from a *fetched* row through the layout.
Value ComposeField(const ResolvedField& field, const FetchLayout& layout,
                   const Row& fetched) {
  if (field.def.SingleColumn()) {
    return fetched[layout.PosOf(field.column_indexes[0])];
  }
  std::string out;
  size_t col = 0;
  for (size_t i = 0; i < field.def.parts.size(); ++i) {
    if (i > 0) out += kIdSeparator;
    if (field.def.parts[i].is_constant) {
      out += field.def.parts[i].text;
    } else {
      out += fetched[layout.PosOf(field.column_indexes[col++])].ToString();
    }
  }
  return Value(std::move(out));
}

// Builds conditions constraining `field` to one of `ids`. Returns:
//   kNoMatch  — no id can belong to this definition (table prunable),
//   kExact    — conditions appended cover the constraint exactly,
struct IdCondResult {
  bool any_match = false;
};

// A decomposed id component can only match rows when its runtime type is
// compatible with the column's declared type; a string id like
// "patient::1" can never live in a BIGINT key column. This is what makes
// prefixed (and otherwise type-distinct) ids pin down the exact table.
bool TypeCompatible(const Value& v, sql::ColumnType column_type) {
  if (v.is_null()) return false;
  switch (column_type) {
    case sql::ColumnType::kInt:
    case sql::ColumnType::kDouble:
      return v.is_numeric();
    case sql::ColumnType::kString:
      return v.is_string();
    case sql::ColumnType::kBool:
      return v.is_bool();
  }
  return true;
}

IdCondResult BuildIdConds(const ResolvedField& field,
                          const sql::TableSchema& schema,
                          const std::vector<Value>& ids, QueryConds* conds) {
  IdCondResult result;
  std::vector<std::vector<Value>> decomposed;
  for (const Value& id : ids) {
    if (auto values = field.Decompose(id)) {
      bool compatible = true;
      for (size_t i = 0; i < values->size(); ++i) {
        compatible &= TypeCompatible(
            (*values)[i],
            schema.columns[field.column_indexes[i]].type);
      }
      if (compatible) decomposed.push_back(std::move(*values));
    }
  }
  if (decomposed.empty()) return result;
  result.any_match = true;
  if (field.column_indexes.size() == 1) {
    SqlCond cond;
    cond.column = schema.columns[field.column_indexes[0]].name;
    cond.op = "IN";
    for (auto& values : decomposed) cond.params.push_back(values[0]);
    conds->conjuncts.push_back(std::move(cond));
    return result;
  }
  std::vector<std::vector<SqlCond>> group;
  for (auto& values : decomposed) {
    std::vector<SqlCond> conjunction;
    for (size_t i = 0; i < field.column_indexes.size(); ++i) {
      SqlCond cond;
      cond.column = schema.columns[field.column_indexes[i]].name;
      cond.op = "=";
      cond.params.push_back(values[i]);
      conjunction.push_back(std::move(cond));
    }
    group.push_back(std::move(conjunction));
  }
  conds->or_groups.push_back(std::move(group));
  return result;
}

// Extends gremlin::MatchesSpec with edge endpoint checks, for the naive
// (client-filter) execution paths.
bool MatchesEdgeSpec(const Edge& e, const LookupSpec& spec) {
  if (!gremlin::MatchesSpec(e, spec)) return false;
  if (!spec.src_ids.empty() &&
      std::find(spec.src_ids.begin(), spec.src_ids.end(), e.src_id) ==
          spec.src_ids.end()) {
    return false;
  }
  if (!spec.dst_ids.empty() &&
      std::find(spec.dst_ids.begin(), spec.dst_ids.end(), e.dst_id) ==
          spec.dst_ids.end()) {
    return false;
  }
  return true;
}

// Splits an implicit edge id "srcParts::label::dstParts" against an edge
// table's definitions; nullopt when it cannot belong to this table.
struct ImplicitIdParts {
  std::vector<Value> src_values;
  std::string label;
  std::vector<Value> dst_values;
};

std::optional<ImplicitIdParts> DecomposeImplicitEdgeId(
    const ResolvedEdgeTable& table, const Value& id) {
  if (!id.is_string()) return std::nullopt;
  std::vector<std::string> parts = DecomposeId(id.as_string());
  size_t s = table.src_v.def.parts.size();
  size_t d = table.dst_v.def.parts.size();
  if (parts.size() != s + 1 + d) return std::nullopt;
  auto extract = [&](const overlay::FieldDef& def, size_t offset)
      -> std::optional<std::vector<Value>> {
    std::vector<Value> out;
    for (size_t i = 0; i < def.parts.size(); ++i) {
      const std::string& text = parts[offset + i];
      if (def.parts[i].is_constant) {
        if (text != def.parts[i].text) return std::nullopt;
      } else {
        char* end = nullptr;
        long long n = std::strtoll(text.c_str(), &end, 10);
        if (!text.empty() && end != nullptr && *end == '\0') {
          out.emplace_back(static_cast<int64_t>(n));
        } else {
          out.emplace_back(text);
        }
      }
    }
    return out;
  };
  ImplicitIdParts result;
  auto src = extract(table.src_v.def, 0);
  if (!src) return std::nullopt;
  result.src_values = std::move(*src);
  result.label = parts[s];
  auto dst = extract(table.dst_v.def, s + 1);
  if (!dst) return std::nullopt;
  result.dst_values = std::move(*dst);
  return result;
}

}  // namespace

// ----------------------------------------------------------------------

Db2GraphProvider::Db2GraphProvider(SqlDialect* dialect,
                                   overlay::Topology topology,
                                   RuntimeOptions options)
    : dialect_(dialect), topology_(std::move(topology)), options_(options) {
  if (options_.vertex_cache) {
    VertexCache::Options cache_options;
    cache_options.capacity = options_.vertex_cache_entries;
    cache_ = std::make_unique<VertexCache>(cache_options);
  }
}

void Db2GraphProvider::ExecuteJobs(size_t n,
                                   const std::function<void(size_t)>& fn) {
  // Fanning out while this thread already holds the database's shared
  // read lock (a graphQuery table function inside a SELECT) is unsafe:
  // pool workers would queue for fresh shared locks behind any waiting
  // writer, which in turn waits on this thread — a deadlock. Reentrant
  // calls run serially instead; the outer statement still parallelizes.
  if (n > 1 && options_.parallel_fanout &&
      !dialect_->db()->ReadLockHeldByThisThread()) {
    stats_.parallel_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.parallel_tasks.fetch_add(n, std::memory_order_relaxed);
    QueryTrace* trace = CurrentTrace();
    // Pool workers have no thread-local trace or governor context; install
    // this query's for the duration of each job so per-table SQL lands in
    // the right trace (never a concurrent query's) and deadline /
    // cancellation checks inside the job observe the right budgets.
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    if (trace != nullptr || qctx != nullptr) {
      if (trace != nullptr) trace->AddFanout(1, n);
      ThreadPool::Shared().RunBatch(n, [&fn, trace, qctx](size_t i) {
        ScopedTrace scoped(trace);
        governor::ScopedQueryContext governed(qctx);
        fn(i);
      });
      return;
    }
    ThreadPool::Shared().RunBatch(n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) fn(i);
}

bool Db2GraphProvider::CacheUsable(const LookupSpec& spec) const {
  // Single-id point lookups only: multi-id answers would interleave
  // cached and fetched rows and break the deterministic table-major
  // result order. Projections fetch partial rows (never cacheable), and
  // under access control every lookup must reach SQL so grants apply.
  return cache_ != nullptr && options_.vertex_cache && spec.ids.size() == 1 &&
         spec.agg == AggOp::kNone && !spec.has_projection &&
         !dialect_->db()->access_control_enabled();
}

bool Db2GraphProvider::CacheFillEligible(const LookupSpec& spec) const {
  // Labels prune tables and predicates are pushed into WHERE: either one
  // makes the fetched set a subset of "all vertices with this id", which
  // is what a cache entry must hold. (Id-type pinning is fine — a table
  // skipped because the id cannot decompose into its key columns cannot
  // contain the vertex at all.) A limit truncates the fetch, so a limited
  // lookup can never populate an entry either.
  return spec.labels.empty() && spec.predicates.empty() && spec.limit < 0;
}

VertexPtr Db2GraphProvider::MaterializeVertex(int table_index,
                                              const Row& row) const {
  // Only used with full-row fetches (client-filter paths).
  const ResolvedVertexTable& t = topology_.vertex_tables()[table_index];
  auto v = std::make_shared<Vertex>();
  v->id = t.id.Compose(row);
  v->label = t.conf.label.fixed ? t.conf.label.value
                                : row[*t.label_column].ToString();
  for (size_t i = 0; i < t.properties.size(); ++i) {
    const Value& value = row[t.property_columns[i]];
    if (!value.is_null()) v->properties.emplace_back(t.properties[i], value);
  }
  v->source_table = t.conf.table_name;
  auto prov = std::make_shared<RowProvenance>();
  prov->table_index = table_index;
  prov->row = row;
  v->provenance = std::move(prov);
  return v;
}

// ----------------------------------------------------------------------
// Vertices
// ----------------------------------------------------------------------

namespace {

// Per-table vertex query planning shared by Vertices and the aggregates.
struct VertexPlan {
  bool skip = false;
  bool client_filter = false;  // fetch everything, filter in the provider
  QueryConds conds;
  std::vector<std::string> predicate_columns;  // for the index advisor
};

VertexPlan PlanVertexTable(const ResolvedVertexTable& t,
                           const LookupSpec& spec,
                           const RuntimeOptions& options) {
  VertexPlan plan;
  const sql::TableSchema& schema = *t.schema;

  // Fixed-label pruning (Section 6.3 "Using Label Values").
  if (!spec.labels.empty()) {
    if (t.conf.label.fixed) {
      bool matches = std::find(spec.labels.begin(), spec.labels.end(),
                               t.conf.label.value) != spec.labels.end();
      if (!matches) {
        if (options.label_pruning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      }
    } else {
      SqlCond cond;
      cond.column = schema.columns[*t.label_column].name;
      cond.op = "IN";
      for (const std::string& l : spec.labels) cond.params.push_back(l);
      plan.conds.conjuncts.push_back(cond);
      plan.predicate_columns.push_back(cond.column);
    }
  }

  // Prefixed-id pinning / composite-id decomposition.
  if (!spec.ids.empty()) {
    QueryConds id_conds;
    IdCondResult r = BuildIdConds(t.id, schema, spec.ids, &id_conds);
    if (!r.any_match) {
      if (options.prefixed_id_pinning) {
        plan.skip = true;
        return plan;
      }
      plan.client_filter = true;
    } else {
      for (auto& c : id_conds.conjuncts) {
        plan.predicate_columns.push_back(c.column);
        plan.conds.conjuncts.push_back(std::move(c));
      }
      for (auto& g : id_conds.or_groups) {
        if (!g.empty() && !g[0].empty()) {
          for (const SqlCond& c : g[0]) {
            plan.predicate_columns.push_back(c.column);
          }
        }
        plan.conds.or_groups.push_back(std::move(g));
      }
    }
  }

  // Property predicates: pushdown + property-name pruning.
  for (const PropPredicate& pred : spec.predicates) {
    if (pred.key == gremlin::kIdKey || pred.key == gremlin::kLabelKey) {
      plan.client_filter = true;  // rare; resolved after materialization
      continue;
    }
    if (!t.HasProperty(pred.key)) {
      if (options.property_pruning) {
        plan.skip = true;  // no row of this table can have the property
        return plan;
      }
      plan.client_filter = true;
      continue;
    }
    // Locate the schema column behind the property.
    size_t column = 0;
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (EqualsIgnoreCase(t.properties[i], pred.key)) {
        column = t.property_columns[i];
        break;
      }
    }
    const std::string& column_name = schema.columns[column].name;
    SqlCond cond;
    cond.column = column_name;
    if (pred.op == PropPredicate::Op::kExists) {
      cond.op = "NOTNULL";
    } else if (pred.op == PropPredicate::Op::kWithin) {
      cond.op = "IN";
      cond.params = pred.values;
    } else if (pred.op == PropPredicate::Op::kWithout) {
      plan.client_filter = true;  // NOT IN needs null care; keep client-side
      continue;
    } else {
      const char* op = SqlOpFor(pred.op);
      if (op == nullptr) {
        plan.client_filter = true;
        continue;
      }
      cond.op = op;
      cond.params = pred.values;
    }
    plan.predicate_columns.push_back(column_name);
    plan.conds.conjuncts.push_back(std::move(cond));
  }

  // Projection-based pruning: a traversal that only consumes projected
  // properties gets nothing from a table having none of them.
  if (spec.has_projection && !spec.projection.empty() &&
      options.property_pruning) {
    bool any = false;
    for (const std::string& key : spec.projection) {
      if (t.HasProperty(key)) {
        any = true;
        break;
      }
    }
    if (!any) {
      plan.skip = true;
      return plan;
    }
  }
  return plan;
}

// Columns a vertex fetch needs under `spec` (projection-aware).
std::vector<size_t> VertexFetchColumns(const ResolvedVertexTable& t,
                                       const LookupSpec& spec) {
  std::vector<size_t> cols = t.id.column_indexes;
  if (t.label_column) cols.push_back(*t.label_column);
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (spec.has_projection) {
      bool wanted = false;
      for (const std::string& key : spec.projection) {
        if (EqualsIgnoreCase(key, t.properties[i])) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    cols.push_back(t.property_columns[i]);
  }
  return cols;
}

VertexPtr BuildVertexFromFetched(const ResolvedVertexTable& t, int table_index,
                                 const FetchLayout& layout, Row row) {
  auto v = std::make_shared<Vertex>();
  v->id = ComposeField(t.id, layout, row);
  v->label = t.conf.label.fixed
                 ? t.conf.label.value
                 : row[layout.PosOf(*t.label_column)].ToString();
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (!layout.Has(t.property_columns[i])) continue;
    const Value& value = row[layout.PosOf(t.property_columns[i])];
    if (!value.is_null()) {
      v->properties.emplace_back(t.properties[i], value);
    }
  }
  v->source_table = t.conf.table_name;
  auto prov = std::make_shared<RowProvenance>();
  prov->table_index = table_index;
  prov->row = std::move(row);
  v->provenance = std::move(prov);
  return v;
}

// One per-table vertex fetch: the unit of work the fan-out parallelizes.
// Everything it touches is either private to the call or internally
// synchronized (dialect template cache, database shared lock, atomics).
Status FetchVertexTable(SqlDialect* dialect, const ResolvedVertexTable& t,
                        int table_index, const LookupSpec& spec,
                        const VertexPlan& plan, std::vector<VertexPtr>* out) {
  // A cancelled / timed-out query skips the tables it has not fetched
  // yet; with fan-out, workers past this check finish their one statement
  // and the batch unwinds at the merge.
  DB2G_RETURN_NOT_OK(governor::CheckCurrent());
  DB2G_FAILPOINT("provider.fetch_vertex_table");
  const sql::TableSchema& schema = *t.schema;
  // The naive path fetches full rows (needed for client-side filtering);
  // the pushdown path fetches only the projected layout.
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = VertexFetchColumns(t, spec);
  }
  FetchLayout layout = MakeLayout(schema, std::move(cols));

  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  // The per-table row budget holds only when SQL sees every filter; a
  // client-filtered fetch must not be truncated before filtering.
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  Result<sql::ResultSet> rs = dialect->QueryShaped(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
  if (!rs.ok()) return rs.status();

  for (Row& row : rs->rows) {
    VertexPtr v = BuildVertexFromFetched(t, table_index, layout,
                                         std::move(row));
    if (plan.client_filter && !gremlin::MatchesSpec(*v, spec)) continue;
    out->push_back(std::move(v));
  }
  return Status::OK();
}

// One surviving table of a streaming vertex lookup.
struct VertexJob {
  int table_index;
  VertexPlan plan;
};

// Opens the per-table SQL stream FetchVertexTable would have executed
// materialized. `layout` receives the fetched-column layout the caller
// needs to build vertices from the stream's rows.
Result<std::unique_ptr<DialectRowStream>> OpenVertexTableStream(
    SqlDialect* dialect, const ResolvedVertexTable& t, const LookupSpec& spec,
    const VertexPlan& plan, FetchLayout* layout) {
  DB2G_FAILPOINT("provider.open_vertex_stream");
  const sql::TableSchema& schema = *t.schema;
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = VertexFetchColumns(t, spec);
  }
  *layout = MakeLayout(schema, std::move(cols));
  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, *layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  return dialect->QueryShapedStreaming(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
}

// Bounded handoff of vertex blocks from one per-table producer to the
// consuming stream: producers block when their queue is full (backpressure
// instead of materializing the table), the consumer blocks until the
// producer delivers or finishes, and cancellation wakes both sides.
class VertexBlockQueue {
 public:
  explicit VertexBlockQueue(size_t capacity) : capacity_(capacity) {}

  // Producer side. False = the consumer cancelled; stop fetching.
  bool Push(std::vector<VertexPtr> block) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return cancelled_ || blocks_.size() < capacity_;
    });
    if (cancelled_) return false;
    blocks_.push_back(std::move(block));
    not_empty_.notify_one();
    return true;
  }
  void MarkDone(Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    status_ = std::move(status);
    not_empty_.notify_all();
  }

  // Consumer side. False = producer finished; check TakeStatus().
  bool Pop(std::vector<VertexPtr>* block) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return done_ || !blocks_.empty(); });
    if (blocks_.empty()) return false;
    *block = std::move(blocks_.front());
    blocks_.pop_front();
    not_full_.notify_one();
    return true;
  }
  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
  }
  void Cancel() {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<VertexPtr>> blocks_;
  bool done_ = false;
  bool cancelled_ = false;
  Status status_ = Status::OK();
};

// Live streaming vertex lookup over the surviving tables.
//
// Serial mode keeps at most one per-table SQL stream open and pulls
// exactly the vertices the consumer asks for. Parallel mode (fan-out
// eligible) starts a coordinator thread that fans the per-table producers
// out on the shared pool; each producer streams its table into a bounded
// VertexBlockQueue and the consumer drains the queues in table order, so
// results match the materialized table-major merge exactly. Close()
// cancels: producers stop at their next push, and ones that have not
// started observe the flag and never open their SQL stream.
class Db2VertexStream : public gremlin::VertexStream {
 public:
  static constexpr size_t kQueueBlocks = 4;  // per-table backpressure bound

  Db2VertexStream(SqlDialect* dialect, const overlay::Topology* topology,
                  LookupSpec spec, std::vector<VertexJob> jobs, bool parallel)
      : dialect_(dialect),
        topology_(topology),
        spec_(std::move(spec)),
        jobs_(std::move(jobs)) {
    if (parallel && jobs_.size() > 1) StartParallel();
  }

  ~Db2VertexStream() override { Close(); }

  bool Next(std::vector<VertexPtr>* out, size_t max) override {
    out->clear();
    if (closed_ || !status_.ok()) return false;
    if (max == 0) max = 1;
    return parallel_mode_ ? NextParallel(out, max) : NextSerial(out, max);
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    if (serial_stream_ != nullptr) {
      serial_stream_->Close();
      serial_stream_.reset();
    }
    if (parallel_mode_) {
      cancel_.store(true, std::memory_order_release);
      for (auto& q : queues_) q->Cancel();
      if (coordinator_.joinable()) coordinator_.join();
    }
  }

  const Status& status() const override { return status_; }

 private:
  // -- serial: lazy per-table SQL streams, opened in table order ----------
  bool NextSerial(std::vector<VertexPtr>* out, size_t max) {
    while (true) {
      Status gst = governor::CheckCurrent();
      if (!gst.ok()) {
        status_ = std::move(gst);
        return false;
      }
      if (serial_stream_ == nullptr) {
        if (job_pos_ >= jobs_.size()) return false;
        Result<std::unique_ptr<DialectRowStream>> stream =
            OpenVertexTableStream(
                dialect_, topology_->vertex_tables()[jobs_[job_pos_].table_index],
                spec_, jobs_[job_pos_].plan, &layout_);
        if (!stream.ok()) {
          status_ = stream.status();
          return false;
        }
        serial_stream_ = std::move(*stream);
      }
      block_.capacity = max;
      if (!serial_stream_->Next(&block_)) {
        status_ = serial_stream_->status();
        serial_stream_->Close();
        serial_stream_.reset();
        if (!status_.ok()) return false;
        ++job_pos_;
        continue;
      }
      const VertexJob& job = jobs_[job_pos_];
      const ResolvedVertexTable& t =
          topology_->vertex_tables()[job.table_index];
      for (Row& row : block_.rows) {
        VertexPtr v = BuildVertexFromFetched(t, job.table_index, layout_,
                                             std::move(row));
        if (job.plan.client_filter && !gremlin::MatchesSpec(*v, spec_)) {
          continue;
        }
        out->push_back(std::move(v));
      }
      if (!out->empty()) return true;  // all-filtered block: keep pulling
    }
  }

  // -- parallel: bounded queues fed by pool workers -----------------------
  void StartParallel() {
    parallel_mode_ = true;
    queues_.reserve(jobs_.size());
    for (size_t i = 0; i < jobs_.size(); ++i) {
      queues_.push_back(std::make_unique<VertexBlockQueue>(kQueueBlocks));
    }
    QueryTrace* trace = CurrentTrace();
    if (trace != nullptr) trace->AddFanout(1, jobs_.size());
    // Producers inherit the consumer's governor context so a deadline or
    // kill observed mid-table stops the fetch from inside the producer,
    // not only when the consumer gets around to calling Close().
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    // RunBatch blocks its caller until every task finished, which must not
    // be the consumer: a dedicated coordinator submits the batch and is
    // joined on Close(). The consumer only ever waits on queue pops.
    coordinator_ = std::thread([this, trace, qctx] {
      ThreadPool::Shared().RunBatch(jobs_.size(),
                                    [this, trace, qctx](size_t j) {
        ScopedTrace scoped(trace);
        governor::ScopedQueryContext governed(qctx);
        ProduceTable(j);
      });
    });
  }

  void ProduceTable(size_t j) {
    VertexBlockQueue& queue = *queues_[j];
    // Early termination: a task that has not opened its SQL stream when
    // the consumer closes never runs it at all.
    if (cancel_.load(std::memory_order_acquire)) {
      queue.MarkDone(Status::OK());
      return;
    }
    const VertexJob& job = jobs_[j];
    const ResolvedVertexTable& t = topology_->vertex_tables()[job.table_index];
    FetchLayout layout;
    Result<std::unique_ptr<DialectRowStream>> stream =
        OpenVertexTableStream(dialect_, t, spec_, job.plan, &layout);
    if (!stream.ok()) {
      queue.MarkDone(stream.status());
      return;
    }
    governor::QueryContext* qctx = governor::CurrentQueryContext();
    Status final_status = Status::OK();
    sql::RowBlock block;
    while (!cancel_.load(std::memory_order_acquire)) {
      // The governor check makes an expired deadline stop the fetch from
      // inside the producer; the consumer's unwind (Close) still runs, but
      // the SQL stream stops pulling rows immediately.
      if (qctx != nullptr) {
        final_status = qctx->Check();
        if (!final_status.ok()) break;
      }
      DB2G_FAILPOINT_STATUS("provider.producer_block", final_status);
      if (!final_status.ok()) break;
      block.capacity = sql::kDefaultBlockRows;
      if (!(*stream)->Next(&block)) {
        final_status = (*stream)->status();
        break;
      }
      std::vector<VertexPtr> vertices;
      vertices.reserve(block.rows.size());
      for (Row& row : block.rows) {
        VertexPtr v = BuildVertexFromFetched(t, job.table_index, layout,
                                             std::move(row));
        if (job.plan.client_filter && !gremlin::MatchesSpec(*v, spec_)) {
          continue;
        }
        vertices.push_back(std::move(v));
      }
      if (vertices.empty()) continue;
      if (qctx != nullptr) {
        // Blocks parked in the bounded queue count against the query's
        // memory budget; the consumer releases the charge on pop. Charges
        // stranded by cancellation die with the query context.
        final_status = qctx->ChargeMemory(vertices.size() *
                                          governor::kApproxVertexBytes);
        if (!final_status.ok()) break;
      }
      if (!queue.Push(std::move(vertices))) break;
    }
    (*stream)->Close();
    queue.MarkDone(std::move(final_status));
  }

  bool NextParallel(std::vector<VertexPtr>* out, size_t max) {
    while (true) {
      if (pending_pos_ < pending_.size()) {
        size_t n = std::min(max, pending_.size() - pending_pos_);
        for (size_t i = 0; i < n; ++i) {
          out->push_back(std::move(pending_[pending_pos_ + i]));
        }
        pending_pos_ += n;
        if (pending_pos_ >= pending_.size()) {
          pending_.clear();
          pending_pos_ = 0;
        }
        return true;
      }
      if (queue_pos_ >= queues_.size()) return false;
      std::vector<VertexPtr> block;
      if (!queues_[queue_pos_]->Pop(&block)) {
        Status st = queues_[queue_pos_]->TakeStatus();
        if (!st.ok()) {
          status_ = std::move(st);
          return false;
        }
        ++queue_pos_;  // table drained; move to the next in order
        continue;
      }
      if (governor::QueryContext* qctx = governor::CurrentQueryContext()) {
        qctx->ReleaseMemory(block.size() * governor::kApproxVertexBytes);
      }
      pending_ = std::move(block);
      pending_pos_ = 0;
    }
  }

  SqlDialect* dialect_;
  const overlay::Topology* topology_;
  LookupSpec spec_;
  std::vector<VertexJob> jobs_;
  Status status_ = Status::OK();
  bool closed_ = false;

  // Serial state.
  size_t job_pos_ = 0;
  std::unique_ptr<DialectRowStream> serial_stream_;
  FetchLayout layout_;
  sql::RowBlock block_;

  // Parallel state.
  bool parallel_mode_ = false;
  std::atomic<bool> cancel_{false};
  std::vector<std::unique_ptr<VertexBlockQueue>> queues_;
  std::thread coordinator_;
  size_t queue_pos_ = 0;
  std::vector<VertexPtr> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace

Status Db2GraphProvider::Vertices(const LookupSpec& spec,
                                  std::vector<VertexPtr>* out) {
  const bool cache_on = CacheUsable(spec);
  uint64_t epoch = 0;
  if (cache_on) {
    // Epoch read *before* the lookup: a write racing with the fetch makes
    // the entry stale-by-construction rather than stale-but-current.
    epoch = dialect_->db()->write_epoch();
    std::vector<VertexPtr> cached;
    if (cache_->Get(spec.ids[0], epoch, &cached)) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) trace->AddCacheHit();
      for (VertexPtr& v : cached) {
        if (gremlin::MatchesSpec(*v, spec)) out->push_back(std::move(v));
      }
      return Status::OK();
    }
    stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    if (QueryTrace* trace = CurrentTrace()) trace->AddCacheMiss();
  }

  struct Job {
    int table_index;
    VertexPlan plan;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan)});
  }

  // Per-job result slots keep the merge deterministic in table order no
  // matter which worker finishes first.
  std::vector<std::vector<VertexPtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchVertexTable(
        dialect_, topology_.vertex_tables()[jobs[j].table_index],
        jobs[j].table_index, spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  std::vector<VertexPtr> fetched;
  for (auto& slot : slots) {
    for (VertexPtr& v : slot) fetched.push_back(std::move(v));
  }
  if (cache_on && CacheFillEligible(spec)) {
    // Every surviving table was consulted and nothing was filtered, so
    // `fetched` is the complete vertex set for this id (possibly empty —
    // a cached negative).
    cache_->Put(spec.ids[0], fetched, epoch);
  }
  for (VertexPtr& v : fetched) out->push_back(std::move(v));
  return Status::OK();
}

Result<std::unique_ptr<gremlin::VertexStream>>
Db2GraphProvider::VerticesStreaming(const LookupSpec& spec) {
  // Aggregates produce no element stream, and cache-eligible point
  // lookups answer from (and fill) the vertex cache only on the
  // materialized path — both fall back to materialize-and-chunk.
  if (spec.agg != AggOp::kNone || CacheUsable(spec)) {
    return GraphProvider::VerticesStreaming(spec);
  }

  QueryTrace* trace = CurrentTrace();
  std::vector<VertexJob> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(VertexJob{static_cast<int>(ti), std::move(plan)});
  }

  // Same fan-out eligibility rule as ExecuteJobs: never spawn workers
  // when this thread already holds the database read lock.
  bool parallel = jobs.size() > 1 && options_.parallel_fanout &&
                  !dialect_->db()->ReadLockHeldByThisThread();
  if (parallel) {
    stats_.parallel_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.parallel_tasks.fetch_add(jobs.size(), std::memory_order_relaxed);
  }
  return std::unique_ptr<gremlin::VertexStream>(new Db2VertexStream(
      dialect_, &topology_, spec, std::move(jobs), parallel));
}

Result<Value> Db2GraphProvider::AggregateVertices(const LookupSpec& spec) {
  if (spec.agg == AggOp::kNone) {
    return Status::Unsupported("no aggregate in spec");
  }
  struct Job {
    int table_index;
    VertexPlan plan;
    std::string select;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    if (plan.client_filter) {
      return Status::Unsupported(
          "aggregate requires client-side filtering; falling back");
    }
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    // Locate the aggregated property column (count(*) needs none).
    std::string agg_column;
    if (spec.agg != AggOp::kCount || !spec.agg_key.empty()) {
      bool found = false;
      for (size_t i = 0; i < t.properties.size(); ++i) {
        if (EqualsIgnoreCase(t.properties[i], spec.agg_key)) {
          agg_column = t.schema->columns[t.property_columns[i]].name;
          found = true;
          break;
        }
      }
      if (!found) continue;  // table contributes nothing
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    std::string select;
    switch (spec.agg) {
      case AggOp::kCount:
        select = agg_column.empty() ? "COUNT(*)"
                                    : "COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        select = "SUM(\"" + agg_column + "\"), COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kMin:
        select = "MIN(\"" + agg_column + "\")";
        break;
      case AggOp::kMax:
        select = "MAX(\"" + agg_column + "\")";
        break;
      case AggOp::kNone:
        return Status::Internal("unreachable");
    }
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan),
                       std::move(select)});
  }

  struct Partial {
    Status status = Status::OK();
    bool has_row = false;
    Row row;
  };
  std::vector<Partial> partials(jobs.size());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    const ResolvedVertexTable& t =
        topology_.vertex_tables()[jobs[j].table_index];
    std::vector<Value> params;
    CollectParams(jobs[j].plan.conds, &params);
    dialect_->RecordPattern(t.conf.table_name, jobs[j].plan.predicate_columns);
    Result<sql::ResultSet> rs = dialect_->QueryShaped(
        ShapeKey(t.conf.table_name, jobs[j].select, jobs[j].plan.conds),
        [&] {
          std::vector<Value> ignored;
          return BuildSql(t.conf.table_name, jobs[j].select,
                          jobs[j].plan.conds, &ignored);
        },
        params);
    if (!rs.ok()) {
      partials[j].status = rs.status();
      return;
    }
    if (!rs->rows.empty()) {
      partials[j].has_row = true;
      partials[j].row = std::move(rs->rows[0]);
    }
  });

  int64_t total_count = 0;
  double total_sum = 0;
  bool sum_is_int = true;
  int64_t total_isum = 0;
  Value min_v;
  Value max_v;
  for (Partial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    if (!partial.has_row) continue;
    const Row& row = partial.row;
    switch (spec.agg) {
      case AggOp::kCount:
        total_count += row[0].is_null() ? 0 : row[0].as_int();
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        if (!row[0].is_null()) {
          total_sum += row[0].NumericValue();
          if (row[0].is_int()) {
            total_isum += row[0].as_int();
          } else {
            sum_is_int = false;
          }
          total_count += row[1].as_int();
        }
        break;
      case AggOp::kMin:
        if (!row[0].is_null() && (min_v.is_null() || row[0] < min_v)) {
          min_v = row[0];
        }
        break;
      case AggOp::kMax:
        if (!row[0].is_null() && (max_v.is_null() || row[0] > max_v)) {
          max_v = row[0];
        }
        break;
      case AggOp::kNone:
        break;
    }
  }
  switch (spec.agg) {
    case AggOp::kCount:
      return Value(total_count);
    case AggOp::kSum:
      if (total_count == 0) return Value::Null();
      return sum_is_int ? Value(total_isum) : Value(total_sum);
    case AggOp::kMean:
      if (total_count == 0) return Value::Null();
      return Value(total_sum / static_cast<double>(total_count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    case AggOp::kNone:
      break;
  }
  return Status::Internal("unreachable");
}

// ----------------------------------------------------------------------
// Edges
// ----------------------------------------------------------------------

namespace {

struct EdgePlan {
  bool skip = false;
  bool client_filter = false;
  QueryConds conds;
  std::vector<std::string> predicate_columns;
};

EdgePlan PlanEdgeTable(const ResolvedEdgeTable& t, const LookupSpec& spec,
                       const RuntimeOptions& options) {
  EdgePlan plan;
  const sql::TableSchema& schema = *t.schema;

  // Fixed-label pruning.
  if (!spec.labels.empty()) {
    if (t.conf.label.fixed) {
      bool matches = std::find(spec.labels.begin(), spec.labels.end(),
                               t.conf.label.value) != spec.labels.end();
      if (!matches) {
        if (options.label_pruning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      }
    } else {
      SqlCond cond;
      cond.column = schema.columns[*t.label_column].name;
      cond.op = "IN";
      for (const std::string& l : spec.labels) cond.params.push_back(l);
      plan.predicate_columns.push_back(cond.column);
      plan.conds.conjuncts.push_back(std::move(cond));
    }
  }

  // Endpoint constraints via src/dst id decomposition.
  auto endpoint = [&](const ResolvedField& field,
                      const std::vector<Value>& ids) {
    if (ids.empty() || plan.skip) return;
    QueryConds conds;
    IdCondResult r = BuildIdConds(field, schema, ids, &conds);
    if (!r.any_match) {
      if (options.prefixed_id_pinning) {
        plan.skip = true;
        return;
      }
      plan.client_filter = true;
      return;
    }
    for (auto& c : conds.conjuncts) {
      plan.predicate_columns.push_back(c.column);
      plan.conds.conjuncts.push_back(std::move(c));
    }
    for (auto& g : conds.or_groups) {
      if (!g.empty()) {
        for (const SqlCond& c : g[0]) {
          plan.predicate_columns.push_back(c.column);
        }
      }
      plan.conds.or_groups.push_back(std::move(g));
    }
  };
  endpoint(t.src_v, spec.src_ids);
  if (plan.skip) return plan;
  endpoint(t.dst_v, spec.dst_ids);
  if (plan.skip) return plan;

  // Edge-id constraints: explicit ids decompose like vertex ids; implicit
  // ids decompose into src + label + dst conjunctive predicates.
  if (!spec.ids.empty()) {
    if (!t.conf.implicit_edge_id) {
      QueryConds conds;
      IdCondResult r = BuildIdConds(t.id, schema, spec.ids, &conds);
      if (!r.any_match) {
        if (options.prefixed_id_pinning) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      } else {
        for (auto& c : conds.conjuncts) {
          plan.predicate_columns.push_back(c.column);
          plan.conds.conjuncts.push_back(std::move(c));
        }
        for (auto& g : conds.or_groups) {
          plan.conds.or_groups.push_back(std::move(g));
        }
      }
    } else {
      std::vector<std::vector<SqlCond>> group;
      for (const Value& id : spec.ids) {
        auto parts = DecomposeImplicitEdgeId(t, id);
        if (!parts) continue;
        if (t.conf.label.fixed && parts->label != t.conf.label.value) {
          continue;  // label encoded in the id does not match this table
        }
        std::vector<SqlCond> conjunction;
        for (size_t i = 0; i < t.src_v.column_indexes.size(); ++i) {
          conjunction.push_back({schema.columns[t.src_v.column_indexes[i]].name,
                                 "=",
                                 {parts->src_values[i]}});
        }
        for (size_t i = 0; i < t.dst_v.column_indexes.size(); ++i) {
          conjunction.push_back({schema.columns[t.dst_v.column_indexes[i]].name,
                                 "=",
                                 {parts->dst_values[i]}});
        }
        if (!t.conf.label.fixed) {
          conjunction.push_back(
              {schema.columns[*t.label_column].name, "=",
               {Value(parts->label)}});
        }
        group.push_back(std::move(conjunction));
      }
      if (group.empty()) {
        if (options.implicit_edge_id_decomposition) {
          plan.skip = true;
          return plan;
        }
        plan.client_filter = true;
      } else {
        if (!group[0].empty()) {
          for (const SqlCond& c : group[0]) {
            plan.predicate_columns.push_back(c.column);
          }
        }
        plan.conds.or_groups.push_back(std::move(group));
      }
    }
  }

  // Property predicates.
  for (const PropPredicate& pred : spec.predicates) {
    if (pred.key == gremlin::kIdKey || pred.key == gremlin::kLabelKey) {
      plan.client_filter = true;
      continue;
    }
    if (!t.HasProperty(pred.key)) {
      if (options.property_pruning) {
        plan.skip = true;
        return plan;
      }
      plan.client_filter = true;
      continue;
    }
    size_t column = 0;
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (EqualsIgnoreCase(t.properties[i], pred.key)) {
        column = t.property_columns[i];
        break;
      }
    }
    const std::string& column_name = schema.columns[column].name;
    SqlCond cond;
    cond.column = column_name;
    if (pred.op == PropPredicate::Op::kExists) {
      cond.op = "NOTNULL";
    } else if (pred.op == PropPredicate::Op::kWithin) {
      cond.op = "IN";
      cond.params = pred.values;
    } else if (pred.op == PropPredicate::Op::kWithout) {
      plan.client_filter = true;
      continue;
    } else {
      const char* op = SqlOpFor(pred.op);
      if (op == nullptr) {
        plan.client_filter = true;
        continue;
      }
      cond.op = op;
      cond.params = pred.values;
    }
    plan.predicate_columns.push_back(column_name);
    plan.conds.conjuncts.push_back(std::move(cond));
  }

  if (spec.has_projection && !spec.projection.empty() &&
      options.property_pruning) {
    bool any = false;
    for (const std::string& key : spec.projection) {
      if (t.HasProperty(key)) {
        any = true;
        break;
      }
    }
    if (!any) {
      plan.skip = true;
      return plan;
    }
  }
  return plan;
}

std::vector<size_t> EdgeFetchColumns(const ResolvedEdgeTable& t,
                                     const LookupSpec& spec) {
  std::vector<size_t> cols = t.src_v.column_indexes;
  cols.insert(cols.end(), t.dst_v.column_indexes.begin(),
              t.dst_v.column_indexes.end());
  if (!t.conf.implicit_edge_id) {
    cols.insert(cols.end(), t.id.column_indexes.begin(),
                t.id.column_indexes.end());
  }
  if (t.label_column) cols.push_back(*t.label_column);
  for (size_t i = 0; i < t.properties.size(); ++i) {
    if (spec.has_projection) {
      bool wanted = false;
      for (const std::string& key : spec.projection) {
        if (EqualsIgnoreCase(key, t.properties[i])) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    cols.push_back(t.property_columns[i]);
  }
  return cols;
}

// One per-table edge fetch: the parallel fan-out unit for Edges /
// AdjacentEdges. Same thread-safety contract as FetchVertexTable.
Status FetchEdgeTable(SqlDialect* dialect, const ResolvedEdgeTable& t,
                      int table_index, const LookupSpec& spec,
                      const EdgePlan& plan, std::vector<EdgePtr>* out) {
  DB2G_RETURN_NOT_OK(governor::CheckCurrent());
  DB2G_FAILPOINT("provider.fetch_edge_table");
  const sql::TableSchema& schema = *t.schema;
  std::vector<size_t> cols;
  if (plan.client_filter) {
    for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
  } else {
    cols = EdgeFetchColumns(t, spec);
  }
  FetchLayout layout = MakeLayout(schema, std::move(cols));

  QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
  int64_t limit = plan.client_filter ? -1 : spec.limit;
  std::string select = SelectListFor(schema, layout);
  std::vector<Value> params;
  CollectParams(conds, &params);
  dialect->RecordPattern(t.conf.table_name, plan.predicate_columns);
  Result<sql::ResultSet> rs = dialect->QueryShaped(
      ShapeKey(t.conf.table_name, select, conds, limit),
      [&] {
        std::vector<Value> ignored;
        return BuildSql(t.conf.table_name, select, conds, &ignored, limit);
      },
      params);
  if (!rs.ok()) return rs.status();

  for (Row& row : rs->rows) {
    auto e = std::make_shared<Edge>();
    e->src_id = ComposeField(t.src_v, layout, row);
    e->dst_id = ComposeField(t.dst_v, layout, row);
    e->label = t.conf.label.fixed
                   ? t.conf.label.value
                   : row[layout.PosOf(*t.label_column)].ToString();
    if (t.conf.implicit_edge_id) {
      e->id = Value(e->src_id.ToString() + kIdSeparator + e->label +
                    kIdSeparator + e->dst_id.ToString());
    } else {
      e->id = ComposeField(t.id, layout, row);
    }
    for (size_t i = 0; i < t.properties.size(); ++i) {
      if (!layout.Has(t.property_columns[i])) continue;
      const Value& value = row[layout.PosOf(t.property_columns[i])];
      if (!value.is_null()) {
        e->properties.emplace_back(t.properties[i], value);
      }
    }
    e->source_table = t.conf.table_name;
    auto prov = std::make_shared<RowProvenance>();
    prov->table_index = table_index;
    prov->row = std::move(row);
    e->provenance = std::move(prov);
    if (plan.client_filter && !MatchesEdgeSpec(*e, spec)) continue;
    out->push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace

Status Db2GraphProvider::Edges(const LookupSpec& spec,
                               std::vector<EdgePtr>* out) {
  return EdgesOnTables(spec, {}, out);
}

Status Db2GraphProvider::EdgesOnTables(const LookupSpec& spec,
                                       const std::vector<int>& tables,
                                       std::vector<EdgePtr>* out) {
  struct Job {
    int table_index;
    EdgePlan plan;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    if (!tables.empty() &&
        std::find(tables.begin(), tables.end(), static_cast<int>(ti)) ==
            tables.end()) {
      continue;
    }
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    if (plan.skip) {
      stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    stats_.edge_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan)});
  }

  // Edge order matters downstream (per-source emission order in the
  // interpreter), so per-job slots are merged in table order.
  std::vector<std::vector<EdgePtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchEdgeTable(
        dialect_, topology_.edge_tables()[jobs[j].table_index],
        jobs[j].table_index, spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (auto& slot : slots) {
    for (EdgePtr& e : slot) out->push_back(std::move(e));
  }
  return Status::OK();
}

Result<Value> Db2GraphProvider::AggregateEdges(const LookupSpec& spec) {
  return AggregateEdgesOnTables(spec, {});
}

Result<Value> Db2GraphProvider::AggregateEdgesOnTables(
    const LookupSpec& spec, const std::vector<int>& tables) {
  if (spec.agg == AggOp::kNone) {
    return Status::Unsupported("no aggregate in spec");
  }
  struct Job {
    int table_index;
    EdgePlan plan;
    std::string select;
  };
  QueryTrace* trace = CurrentTrace();
  std::vector<Job> jobs;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    if (!tables.empty() &&
        std::find(tables.begin(), tables.end(), static_cast<int>(ti)) ==
            tables.end()) {
      continue;
    }
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    if (plan.client_filter) {
      return Status::Unsupported("aggregate needs client-side filtering");
    }
    if (plan.skip) {
      stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
      continue;
    }
    std::string agg_column;
    if (spec.agg != AggOp::kCount || !spec.agg_key.empty()) {
      bool found = false;
      for (size_t i = 0; i < t.properties.size(); ++i) {
        if (EqualsIgnoreCase(t.properties[i], spec.agg_key)) {
          agg_column = t.schema->columns[t.property_columns[i]].name;
          found = true;
          break;
        }
      }
      if (!found) continue;
    }
    stats_.edge_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->AddTableConsulted(t.conf.table_name);
    std::string select;
    switch (spec.agg) {
      case AggOp::kCount:
        select = agg_column.empty() ? "COUNT(*)"
                                    : "COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        select = "SUM(\"" + agg_column + "\"), COUNT(\"" + agg_column + "\")";
        break;
      case AggOp::kMin:
        select = "MIN(\"" + agg_column + "\")";
        break;
      case AggOp::kMax:
        select = "MAX(\"" + agg_column + "\")";
        break;
      case AggOp::kNone:
        return Status::Internal("unreachable");
    }
    jobs.push_back(Job{static_cast<int>(ti), std::move(plan),
                       std::move(select)});
  }

  struct Partial {
    Status status = Status::OK();
    bool has_row = false;
    Row row;
  };
  std::vector<Partial> partials(jobs.size());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[jobs[j].table_index];
    std::vector<Value> params;
    CollectParams(jobs[j].plan.conds, &params);
    dialect_->RecordPattern(t.conf.table_name, jobs[j].plan.predicate_columns);
    Result<sql::ResultSet> rs = dialect_->QueryShaped(
        ShapeKey(t.conf.table_name, jobs[j].select, jobs[j].plan.conds),
        [&] {
          std::vector<Value> ignored;
          return BuildSql(t.conf.table_name, jobs[j].select,
                          jobs[j].plan.conds, &ignored);
        },
        params);
    if (!rs.ok()) {
      partials[j].status = rs.status();
      return;
    }
    if (!rs->rows.empty()) {
      partials[j].has_row = true;
      partials[j].row = std::move(rs->rows[0]);
    }
  });

  int64_t total_count = 0;
  double total_sum = 0;
  bool sum_is_int = true;
  int64_t total_isum = 0;
  Value min_v;
  Value max_v;
  for (Partial& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    if (!partial.has_row) continue;
    const Row& row = partial.row;
    switch (spec.agg) {
      case AggOp::kCount:
        total_count += row[0].is_null() ? 0 : row[0].as_int();
        break;
      case AggOp::kSum:
      case AggOp::kMean:
        if (!row[0].is_null()) {
          total_sum += row[0].NumericValue();
          if (row[0].is_int()) {
            total_isum += row[0].as_int();
          } else {
            sum_is_int = false;
          }
          total_count += row[1].as_int();
        }
        break;
      case AggOp::kMin:
        if (!row[0].is_null() && (min_v.is_null() || row[0] < min_v)) {
          min_v = row[0];
        }
        break;
      case AggOp::kMax:
        if (!row[0].is_null() && (max_v.is_null() || row[0] > max_v)) {
          max_v = row[0];
        }
        break;
      case AggOp::kNone:
        break;
    }
  }
  switch (spec.agg) {
    case AggOp::kCount:
      return Value(total_count);
    case AggOp::kSum:
      if (total_count == 0) return Value::Null();
      return sum_is_int ? Value(total_isum) : Value(total_sum);
    case AggOp::kMean:
      if (total_count == 0) return Value::Null();
      return Value(total_sum / static_cast<double>(total_count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    case AggOp::kNone:
      break;
  }
  return Status::Internal("unreachable");
}

// ----------------------------------------------------------------------
// Adjacency with endpoint-table pruning
// ----------------------------------------------------------------------

Status Db2GraphProvider::AdjacentEdges(const std::vector<VertexPtr>& from,
                                       Direction dir, const LookupSpec& spec,
                                       std::vector<EdgePtr>* out) {
  // Which vertex tables do the anchors come from?
  std::unordered_set<std::string> source_tables;
  std::vector<Value> ids;
  ids.reserve(from.size());
  for (const VertexPtr& v : from) {
    ids.push_back(v->id);
    if (!v->source_table.empty()) source_tables.insert(v->source_table);
  }
  // Candidate edge tables: drop those whose declared endpoint vertex table
  // cannot contain any anchor (Section 6.3 "Using Source/Destination
  // Vertex Tables").
  QueryTrace* trace = CurrentTrace();
  std::vector<int> candidates;
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    if (options_.endpoint_table_pruning && !source_tables.empty()) {
      auto endpoint_possible = [&](int vertex_table) {
        if (vertex_table < 0) return true;  // endpoint table unknown
        return source_tables.count(
                   topology_.vertex_tables()[vertex_table].conf.table_name) >
               0;
      };
      bool possible = false;
      if (dir == Direction::kOut || dir == Direction::kBoth) {
        possible |= endpoint_possible(t.src_vertex_table);
      }
      if (dir == Direction::kIn || dir == Direction::kBoth) {
        possible |= endpoint_possible(t.dst_vertex_table);
      }
      if (!possible) {
        stats_.edge_tables_pruned.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) trace->AddTablePruned(t.conf.table_name);
        continue;
      }
    }
    candidates.push_back(static_cast<int>(ti));
  }

  LookupSpec edge_spec = spec;
  if (dir == Direction::kOut) {
    edge_spec.src_ids = ids;
    return EdgesOnTables(edge_spec, candidates, out);
  }
  if (dir == Direction::kIn) {
    edge_spec.dst_ids = ids;
    return EdgesOnTables(edge_spec, candidates, out);
  }
  edge_spec.src_ids = ids;
  DB2G_RETURN_NOT_OK(EdgesOnTables(edge_spec, candidates, out));
  edge_spec.src_ids.clear();
  edge_spec.dst_ids = ids;
  std::vector<EdgePtr> in_edges;
  DB2G_RETURN_NOT_OK(EdgesOnTables(edge_spec, candidates, &in_edges));
  for (EdgePtr& e : in_edges) {
    if (!(e->src_id == e->dst_id)) out->push_back(std::move(e));
  }
  return Status::OK();
}

Status Db2GraphProvider::EdgeEndpoints(const std::vector<EdgePtr>& edges,
                                       Direction endpoint,
                                       const LookupSpec& spec,
                                       std::vector<VertexPtr>* out) {
  // Downstream the interpreter joins endpoints back to edges through an
  // id-keyed map, so result order here is free — cache hits can be
  // emitted immediately during classification.
  const bool cache_on = cache_ != nullptr && options_.vertex_cache &&
                        spec.agg == AggOp::kNone && !spec.has_projection &&
                        !dialect_->db()->access_control_enabled();
  uint64_t epoch = cache_on ? dialect_->db()->write_epoch() : 0;
  // The pinned paths below replace spec.ids with the endpoint ids, so
  // cached vertices are filtered against labels/predicates only.
  LookupSpec cached_check = spec;
  cached_check.ids.clear();

  // Partition endpoint ids by the vertex table they are pinned to.
  std::unordered_map<int, std::vector<Value>> pinned;  // vertex table -> ids
  std::vector<Value> unpinned;
  std::unordered_set<Value, ValueHash> seen;

  auto classify = [&](const EdgePtr& e, bool source_side) -> bool {
    const Value& id = source_side ? e->src_id : e->dst_id;
    if (!seen.insert(id).second) return true;  // already handled
    const auto* prov = static_cast<const RowProvenance*>(e->provenance.get());
    int vertex_table = -1;
    if (prov != nullptr && options_.endpoint_table_pruning) {
      const ResolvedEdgeTable& t = topology_.edge_tables()[prov->table_index];
      vertex_table =
          source_side ? t.src_vertex_table : t.dst_vertex_table;
      // The vertex-table-is-also-edge-table shortcut: when the pinned
      // vertex table IS the edge's own table, the vertex's columns are in
      // the very row we already fetched — construct it without SQL.
      if (vertex_table >= 0 && options_.vertex_from_edge_shortcut) {
        const ResolvedVertexTable& vt =
            topology_.vertex_tables()[vertex_table];
        if (EqualsIgnoreCase(vt.conf.table_name, t.conf.table_name) &&
            prov->row.size() == vt.schema->columns.size()) {
          VertexPtr v = MaterializeVertex(vertex_table, prov->row);
          if (gremlin::MatchesSpec(*v, spec)) {
            out->push_back(std::move(v));
          }
          stats_.shortcut_vertices.fetch_add(1, std::memory_order_relaxed);
          if (QueryTrace* trace = CurrentTrace()) {
            trace->AddShortcutVertices(1);
          }
          return true;
        }
      }
    }
    if (cache_on) {
      std::vector<VertexPtr> cached;
      if (cache_->Get(id, epoch, &cached)) {
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        if (QueryTrace* trace = CurrentTrace()) trace->AddCacheHit();
        for (VertexPtr& v : cached) {
          if (gremlin::MatchesSpec(*v, cached_check)) {
            out->push_back(std::move(v));
          }
        }
        return true;
      }
      stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) trace->AddCacheMiss();
    }
    if (vertex_table >= 0) {
      pinned[vertex_table].push_back(id);
    } else {
      unpinned.push_back(id);
    }
    return true;
  };

  for (const EdgePtr& e : edges) {
    if (endpoint == Direction::kOut || endpoint == Direction::kBoth) {
      classify(e, /*source_side=*/true);
    }
    if (endpoint == Direction::kIn || endpoint == Direction::kBoth) {
      classify(e, /*source_side=*/false);
    }
  }

  // One job per pinned vertex table, in table-index order so the merge
  // (and any trace) is deterministic under fan-out.
  struct Job {
    int vertex_table;
    LookupSpec vertex_spec;
    VertexPlan plan;
  };
  std::vector<std::pair<int, std::vector<Value>>> groups(pinned.begin(),
                                                         pinned.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Job> jobs;
  for (auto& [vertex_table, ids] : groups) {
    LookupSpec vertex_spec = spec;
    vertex_spec.ids = std::move(ids);
    // Query exactly the pinned table.
    const ResolvedVertexTable& t = topology_.vertex_tables()[vertex_table];
    VertexPlan plan = PlanVertexTable(t, vertex_spec, options_);
    if (plan.skip) {
      stats_.vertex_tables_pruned.fetch_add(1, std::memory_order_relaxed);
      if (QueryTrace* trace = CurrentTrace()) {
        trace->AddTablePruned(t.conf.table_name);
      }
      continue;
    }
    stats_.vertex_tables_queried.fetch_add(1, std::memory_order_relaxed);
    if (QueryTrace* trace = CurrentTrace()) {
      trace->AddTableConsulted(t.conf.table_name);
    }
    jobs.push_back(Job{vertex_table, std::move(vertex_spec), std::move(plan)});
  }

  std::vector<std::vector<VertexPtr>> slots(jobs.size());
  std::vector<Status> statuses(jobs.size(), Status::OK());
  ExecuteJobs(jobs.size(), [&](size_t j) {
    statuses[j] = FetchVertexTable(
        dialect_, topology_.vertex_tables()[jobs[j].vertex_table],
        jobs[j].vertex_table, jobs[j].vertex_spec, jobs[j].plan, &slots[j]);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (auto& slot : slots) {
    for (VertexPtr& v : slot) out->push_back(std::move(v));
  }

  if (!unpinned.empty()) {
    LookupSpec vertex_spec = spec;
    vertex_spec.ids = std::move(unpinned);
    DB2G_RETURN_NOT_OK(Vertices(vertex_spec, out));
  }
  return Status::OK();
}

// ----------------------------------------------------------------------
// Compile-time plan previews (Explain)
// ----------------------------------------------------------------------

namespace {

// Predicts the access path the executor would pick for `conds` against
// `table` from index availability: an equality/IN conjunct backed by an
// index probes it, an ordered comparison backed by an index range-scans
// it, anything else falls back to a table scan (with residual filtering
// when conditions exist).
std::string PredictAccessPath(const sql::Database* db,
                              const std::string& table,
                              const QueryConds& conds) {
  const sql::Table* base = db->GetTable(table);
  bool has_conds = !conds.conjuncts.empty() || !conds.or_groups.empty();
  if (base != nullptr) {
    for (const SqlCond& cond : conds.conjuncts) {
      auto idx = base->schema().ColumnIndex(cond.column);
      if (!idx || base->FindIndexOn({*idx}) == nullptr) continue;
      if (cond.op == "=" || cond.op == "IN") return "index probe";
      if (cond.op == "<" || cond.op == "<=" || cond.op == ">" ||
          cond.op == ">=") {
        return "range scan";
      }
    }
  }
  return has_conds ? "full scan+filter" : "full scan";
}

}  // namespace

Status Db2GraphProvider::ExplainVertices(const LookupSpec& spec,
                                         std::vector<SqlPreview>* out) const {
  for (size_t ti = 0; ti < topology_.vertex_tables().size(); ++ti) {
    const ResolvedVertexTable& t = topology_.vertex_tables()[ti];
    VertexPlan plan = PlanVertexTable(t, spec, options_);
    SqlPreview preview;
    preview.table = t.conf.table_name;
    const sql::Table* base = dialect_->db()->GetTable(t.conf.table_name);
    preview.estimated_rows = base != nullptr ? base->row_count() : 0;
    if (plan.skip) {
      preview.pruned = true;
      preview.access_path = "pruned";
      out->push_back(std::move(preview));
      continue;
    }
    const sql::TableSchema& schema = *t.schema;
    std::vector<size_t> cols;
    if (plan.client_filter) {
      for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
    } else {
      cols = VertexFetchColumns(t, spec);
    }
    FetchLayout layout = MakeLayout(schema, std::move(cols));
    std::vector<Value> params;
    QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
    std::string sql = BuildSql(t.conf.table_name,
                               SelectListFor(schema, layout), conds, &params,
                               plan.client_filter ? -1 : spec.limit);
    preview.sql = SqlDialect::RenderSql(sql, params);
    preview.access_path =
        PredictAccessPath(dialect_->db(), t.conf.table_name, conds);
    out->push_back(std::move(preview));
  }
  return Status::OK();
}

Status Db2GraphProvider::ExplainEdges(const LookupSpec& spec,
                                      std::vector<SqlPreview>* out) const {
  for (size_t ti = 0; ti < topology_.edge_tables().size(); ++ti) {
    const ResolvedEdgeTable& t = topology_.edge_tables()[ti];
    EdgePlan plan = PlanEdgeTable(t, spec, options_);
    SqlPreview preview;
    preview.table = t.conf.table_name;
    const sql::Table* base = dialect_->db()->GetTable(t.conf.table_name);
    preview.estimated_rows = base != nullptr ? base->row_count() : 0;
    if (plan.skip) {
      preview.pruned = true;
      preview.access_path = "pruned";
      out->push_back(std::move(preview));
      continue;
    }
    const sql::TableSchema& schema = *t.schema;
    std::vector<size_t> cols;
    if (plan.client_filter) {
      for (size_t i = 0; i < schema.columns.size(); ++i) cols.push_back(i);
    } else {
      cols = EdgeFetchColumns(t, spec);
    }
    FetchLayout layout = MakeLayout(schema, std::move(cols));
    std::vector<Value> params;
    QueryConds conds = plan.client_filter ? QueryConds{} : plan.conds;
    std::string sql = BuildSql(t.conf.table_name,
                               SelectListFor(schema, layout), conds, &params,
                               plan.client_filter ? -1 : spec.limit);
    preview.sql = SqlDialect::RenderSql(sql, params);
    preview.access_path =
        PredictAccessPath(dialect_->db(), t.conf.table_name, conds);
    out->push_back(std::move(preview));
  }
  return Status::OK();
}

}  // namespace db2graph::core
