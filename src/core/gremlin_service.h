// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Gremlin Server analog (paper Section 3: TinkerPop "provides ... a
// service for remotely executing Gremlin scripts, called Gremlin Server";
// Section 8 ran all three systems "in server mode and responding to
// requests from clients"). This is the in-process equivalent: a worker
// pool executing submitted scripts against one Db2 Graph, with TinkerPop-
// style *sessions* — a sessioned client keeps its script variables alive
// across requests, a sessionless request runs with a fresh environment.
//
// Observability: the service keeps its queue depth in a registry gauge,
// per-request latency in a registry histogram, and request/session counts
// in registry counters (names below), so a process exporter sees them
// alongside every other subsystem.

#ifndef DB2GRAPH_CORE_GREMLIN_SERVICE_H_
#define DB2GRAPH_CORE_GREMLIN_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/db2graph.h"
#include "gremlin/interpreter.h"

namespace db2graph::core {

class GremlinService {
 public:
  using Response = Result<std::vector<gremlin::Traverser>>;

  /// Registry metric names the service maintains.
  static constexpr const char* kQueueDepthGauge =
      "gremlin_service.queue_depth";
  static constexpr const char* kRequestLatencyHistogram =
      "gremlin_service.request_micros";
  static constexpr const char* kRequestsCounter =
      "gremlin_service.requests";
  static constexpr const char* kSessionsCounter =
      "gremlin_service.sessions_opened";

  /// Starts `workers` executor threads over `graph` (not owned; must
  /// outlive the service).
  GremlinService(Db2Graph* graph, int workers);
  ~GremlinService();

  GremlinService(const GremlinService&) = delete;
  GremlinService& operator=(const GremlinService&) = delete;

  /// Submits a sessionless request: the script runs with an empty
  /// variable environment. After Shutdown() the future fails immediately
  /// with Status::Unavailable.
  std::future<Response> Submit(std::string script);

  /// Submits within a session: the session's variable bindings persist
  /// across requests (created on first use). Requests of one session are
  /// serialized in submission order, as Gremlin Server guarantees.
  std::future<Response> SubmitSession(const std::string& session_id,
                                      std::string script);

  /// Drops a session and its bindings.
  void CloseSession(const std::string& session_id);

  /// Stops accepting requests, drains the workers, and fails anything
  /// still queued with Status::Unavailable. Idempotent; the destructor
  /// calls it.
  void Shutdown();

  /// Requests executed so far.
  uint64_t completed() const { return completed_.load(); }

  /// Requests accepted but not yet picked up by a worker.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  struct Session {
    gremlin::Environment env;
    // Serialization of requests within one session.
    std::mutex mutex;
  };

  struct Request {
    std::string script;
    std::shared_ptr<Session> session;  // nullptr = sessionless
    std::promise<Response> promise;
  };

  void WorkerLoop();

  Db2Graph* graph_;
  std::atomic<uint64_t> completed_{0};
  metrics::Gauge* queue_depth_gauge_;
  metrics::Histogram* request_latency_;
  metrics::Counter* requests_total_;
  metrics::Counter* sessions_opened_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GREMLIN_SERVICE_H_
