// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Gremlin Server analog (paper Section 3: TinkerPop "provides ... a
// service for remotely executing Gremlin scripts, called Gremlin Server";
// Section 8 ran all three systems "in server mode and responding to
// requests from clients"). This is the in-process equivalent: a worker
// pool executing submitted scripts against one Db2 Graph, with TinkerPop-
// style *sessions* — a sessioned client keeps its script variables alive
// across requests, a sessionless request runs with a fresh environment.

#ifndef DB2GRAPH_CORE_GREMLIN_SERVICE_H_
#define DB2GRAPH_CORE_GREMLIN_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/db2graph.h"
#include "gremlin/interpreter.h"

namespace db2graph::core {

class GremlinService {
 public:
  using Response = Result<std::vector<gremlin::Traverser>>;

  /// Starts `workers` executor threads over `graph` (not owned; must
  /// outlive the service).
  GremlinService(Db2Graph* graph, int workers);
  ~GremlinService();

  GremlinService(const GremlinService&) = delete;
  GremlinService& operator=(const GremlinService&) = delete;

  /// Submits a sessionless request: the script runs with an empty
  /// variable environment.
  std::future<Response> Submit(std::string script);

  /// Submits within a session: the session's variable bindings persist
  /// across requests (created on first use). Requests of one session are
  /// serialized in submission order, as Gremlin Server guarantees.
  std::future<Response> SubmitSession(const std::string& session_id,
                                      std::string script);

  /// Drops a session and its bindings.
  void CloseSession(const std::string& session_id);

  /// Requests executed so far.
  uint64_t completed() const { return completed_.load(); }

 private:
  struct Session {
    gremlin::Environment env;
    // Serialization of requests within one session.
    std::mutex mutex;
  };

  struct Request {
    std::string script;
    std::shared_ptr<Session> session;  // nullptr = sessionless
    std::promise<Response> promise;
  };

  void WorkerLoop();

  Db2Graph* graph_;
  std::atomic<uint64_t> completed_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GREMLIN_SERVICE_H_
