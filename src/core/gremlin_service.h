// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Gremlin Server analog (paper Section 3: TinkerPop "provides ... a
// service for remotely executing Gremlin scripts, called Gremlin Server";
// Section 8 ran all three systems "in server mode and responding to
// requests from clients"). This is the in-process equivalent: a worker
// pool executing submitted scripts against one Db2 Graph, with TinkerPop-
// style *sessions* — a sessioned client keeps its script variables alive
// across requests, a sessionless request runs with a fresh environment.
//
// Requests may carry bind-variable values (Gremlin Server's parameterized
// scripts): the script text stays constant across requests, so it hits
// the graph's compiled-plan cache, and the bindings supply the ids.
//
// Session serialization is queue-based, not lock-based: a session admits
// one request into the worker queue at a time and parks the rest on the
// session's pending queue; completion promotes the next. Workers
// therefore never block holding a session lock — a slow session occupies
// at most the one worker actually executing its request, instead of
// pinning every worker that happened to pop one of its requests.
//
// Observability: the service keeps its queue depth in a registry gauge,
// per-request latency in a registry histogram, and request/session counts
// in registry counters (names below), so a process exporter sees them
// alongside every other subsystem.
//
// Admission control (the workload governor's front door): the wait queue
// is bounded. A submit that would push the backlog past max_queue_depth
// is shed immediately — the future fails with kOverloaded (and a
// retry-after hint in the message) instead of parking an unbounded
// backlog, and governor.shed counts it. Options can also impose default
// per-request limits (deadline, row and memory budgets); Shutdown()
// fires a shared cancel token so in-flight queries stop cooperatively
// instead of being waited out.

#ifndef DB2GRAPH_CORE_GREMLIN_SERVICE_H_
#define DB2GRAPH_CORE_GREMLIN_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/db2graph.h"
#include "gremlin/interpreter.h"

namespace db2graph::core {

class GremlinService {
 public:
  using Response = Result<std::vector<gremlin::Traverser>>;

  /// Registry metric names the service maintains.
  static constexpr const char* kQueueDepthGauge =
      "gremlin_service.queue_depth";
  static constexpr const char* kRequestLatencyHistogram =
      "gremlin_service.request_micros";
  static constexpr const char* kRequestsCounter =
      "gremlin_service.requests";
  static constexpr const char* kSessionsCounter =
      "gremlin_service.sessions_opened";

  struct Options {
    /// Executor threads — the service's max concurrency.
    int workers = 4;
    /// Bound on accepted-but-not-executing requests (worker queue plus
    /// parked session requests). A submit past the bound is shed with
    /// kOverloaded. 0 = 4x workers; negative = unbounded (pre-governor
    /// behavior).
    int max_queue_depth = 0;
    /// Default governor limits stamped on every request's ExecOptions
    /// (same 0 = inherit process default / negative = unlimited contract).
    int64_t timeout_ms = 0;
    int64_t max_result_rows = 0;
    int64_t max_memory_bytes = 0;
    /// Execution tuning stamped on every request's ExecOptions::config
    /// (e.g. ExecConfig().parallelism(4) gives each request intra-query
    /// parallel scans on top of the service's inter-query worker pool).
    /// Unset fields inherit session / process defaults as usual.
    ExecConfig exec;

    /// Legacy shape of the deprecated (graph, workers) constructor: n
    /// workers, unbounded queue.
    static Options WithWorkers(int n) {
      Options o;
      o.workers = n;
      o.max_queue_depth = -1;
      return o;
    }
  };

  /// Starts `options.workers` executor threads over `graph` (not owned;
  /// must outlive the service).
  GremlinService(Db2Graph* graph, const Options& options);
  [[deprecated(
      "use GremlinService(graph, GremlinService::Options::WithWorkers(n)) "
      "— Options also carries queue bounds, governor limits, and "
      "ExecConfig")]]
  GremlinService(Db2Graph* graph, int workers);
  ~GremlinService();

  GremlinService(const GremlinService&) = delete;
  GremlinService& operator=(const GremlinService&) = delete;

  /// Submits a sessionless request: the script runs with an empty
  /// variable environment (plus `bindings`, when given). After Shutdown()
  /// the future fails immediately with Status::Unavailable.
  std::future<Response> Submit(std::string script);
  std::future<Response> Submit(std::string script,
                               gremlin::Environment bindings);

  /// Submits within a session: the session's variable bindings persist
  /// across requests (created on first use). Requests of one session are
  /// serialized in submission order, as Gremlin Server guarantees; bind
  /// values are installed into the session environment before the script
  /// runs.
  std::future<Response> SubmitSession(const std::string& session_id,
                                      std::string script);
  std::future<Response> SubmitSession(const std::string& session_id,
                                      std::string script,
                                      gremlin::Environment bindings);

  /// Drops a session and its bindings; requests of the session still
  /// awaiting their turn fail with Status::Unavailable.
  void CloseSession(const std::string& session_id);

  /// Stops accepting requests, cancels in-flight queries through the
  /// shared governor token (they fail with kCancelled at their next
  /// cooperative check instead of running to completion), drains the
  /// workers, and fails anything still queued with Status::Unavailable.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Cancels the running query with this id (sysmon.active_queries shows
  /// ids); it fails with kCancelled at its next cooperative check. False
  /// = no such query is active.
  bool KillQuery(uint64_t id, const std::string& reason = {});

  /// Requests shed with kOverloaded by the admission gate.
  uint64_t shed() const { return shed_.load(); }

  /// Requests executed so far.
  uint64_t completed() const { return completed_.load(); }

  /// Requests accepted but not yet picked up by a worker (including
  /// sessioned requests awaiting their turn).
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + pending_count_;
  }

 private:
  struct Session;

  struct Request {
    std::string script;
    gremlin::Environment bindings;
    /// Set when the request is admitted to the worker queue; null while
    /// it waits on its session's pending queue (the session owns that
    /// queue — a self-reference there would leak the session).
    std::shared_ptr<Session> session;
    std::promise<Response> promise;
  };

  struct Session {
    gremlin::Environment env;
    /// Requests awaiting their turn; the head is promoted into the worker
    /// queue when the in-flight request completes.
    std::deque<Request> pending;
    /// A request of this session is queued or executing. While true, the
    /// executing worker has exclusive use of `env` — no lock needed.
    bool active = false;
  };

  void WorkerLoop();
  void FailPendingLocked(Session* session);
  /// Admission gate, called under mutex_. True = the backlog is full and
  /// the request must be shed.
  bool ShedLocked(Request* request);

  Db2Graph* graph_;
  Options options_;
  size_t max_queue_depth_ = 0;  // 0 after resolution = unbounded
  /// Fired by Shutdown(); stamped on every request's ExecOptions so
  /// in-flight executions cancel cooperatively.
  governor::CancelToken shutdown_token_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_{0};
  metrics::Gauge* queue_depth_gauge_;
  metrics::Histogram* request_latency_;
  metrics::Counter* requests_total_;
  metrics::Counter* sessions_opened_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  size_t pending_count_ = 0;  // across all sessions
  bool stopping_ = false;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
};

}  // namespace db2graph::core

#endif  // DB2GRAPH_CORE_GREMLIN_SERVICE_H_
