// Copyright (c) 2026 The db2graph-repro Authors.
//
// A partitioned variant of the LinkBench schema: each of the 10 vertex
// types lives in its own table (fixed label, optionally prefixed ids) and
// each of the 10 edge types in its own table with declared endpoint
// vertex tables. This is the layout where the paper's Section 6.3
// data-dependent optimizations (fixed-label pruning, prefixed-id pinning,
// src/dst vertex-table pruning) have real work to do — the ablation
// benchmark runs on it.

#ifndef DB2GRAPH_LINKBENCH_PARTITIONED_H_
#define DB2GRAPH_LINKBENCH_PARTITIONED_H_

#include "linkbench/linkbench.h"

namespace db2graph::linkbench {

/// Generates a dataset in which vertex type = id % 10 and edge type k
/// only connects type (k % 10) sources to type ((k + 3) % 10)
/// destinations, so each edge table's endpoints are pinned to one vertex
/// table each.
Dataset GeneratePartitioned(const Config& config);

/// Creates Node_t0..Node_t9 and Link_e0..Link_e9 and loads the dataset.
Status LoadIntoPartitionedDatabase(sql::Database* db,
                                   const Dataset& dataset);

/// Overlay with fixed labels, implicit edge ids, and declared src/dst
/// vertex tables. With `prefixed_ids`, vertex ids become 'vtK'::id
/// (enabling prefixed-id table pinning); otherwise they are the plain
/// integer ids LinkBench queries use.
overlay::OverlayConfig MakePartitionedOverlay(bool prefixed_ids = false);

/// Renders the prefixed vertex id of a node ("vt3::13").
std::string PartitionedVertexId(int64_t node_id);

/// Gremlin for the four query types against the partitioned overlay
/// (prefixed vertex ids).
class PartitionedWorkload {
 public:
  PartitionedWorkload(const Dataset& dataset, uint64_t seed)
      : dataset_(dataset), rng_(seed) {}

  std::string Next(QueryType type);

 private:
  const Dataset& dataset_;
  std::mt19937_64 rng_;
};

}  // namespace db2graph::linkbench

#endif  // DB2GRAPH_LINKBENCH_PARTITIONED_H_
