#include "linkbench/partitioned.h"

#include <unordered_set>

namespace db2graph::linkbench {

namespace {

std::string RandomPayload(std::mt19937_64* rng, int bytes) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::uniform_int_distribution<int> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  out.reserve(bytes);
  for (int i = 0; i < bytes; ++i) out.push_back(kAlphabet[pick(*rng)]);
  return out;
}

int NodeType(int64_t node_id) { return static_cast<int>(node_id % 10); }

// A node id of the wanted type, uniform over that type's stripe.
int64_t PickOfType(std::mt19937_64* rng, int64_t num_vertices, int type) {
  int64_t stripe = (num_vertices - type + 9) / 10;  // ids 1..N, id%10==type
  if (stripe <= 0) stripe = 1;
  std::uniform_int_distribution<int64_t> pick(0, stripe - 1);
  int64_t id = pick(*rng) * 10 + type;
  if (id == 0) id = 10;  // id 0 does not exist; wrap to the next of type 0
  if (id > num_vertices) id = type == 0 ? 10 : type;
  return id;
}

}  // namespace

std::string PartitionedVertexId(int64_t node_id) {
  return Dataset::VertexLabel(NodeType(node_id)) + "::" +
         std::to_string(node_id);
}

Dataset GeneratePartitioned(const Config& config) {
  Dataset dataset;
  dataset.config = config;
  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<int64_t> stamp(1000000000, 2000000000);

  dataset.nodes.reserve(config.num_vertices);
  for (int64_t i = 1; i <= config.num_vertices; ++i) {
    Node node;
    node.id = i;
    node.type = NodeType(i);
    node.version = 1 + static_cast<int64_t>(rng() % 16);
    node.time = stamp(rng);
    node.data = RandomPayload(&rng, config.payload_bytes);
    dataset.nodes.push_back(std::move(node));
  }

  const int64_t target_edges = static_cast<int64_t>(
      config.edges_per_vertex * static_cast<double>(config.num_vertices));
  std::uniform_int_distribution<int> etype(0, config.num_edge_types - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_edges * 2);
  int64_t attempts = 0;
  while (static_cast<int64_t>(dataset.links.size()) < target_edges &&
         attempts < target_edges * 6) {
    ++attempts;
    Link link;
    link.ltype = etype(rng);
    int src_type = link.ltype % 10;
    int dst_type = (link.ltype + 3) % 10;
    link.id1 = PickOfType(&rng, config.num_vertices, src_type);
    // Skew destinations toward the first node of the destination type.
    if (coin(rng) < config.hot_vertex_fraction) {
      link.id2 = dst_type == 0 ? 10 : dst_type;
    } else {
      link.id2 = PickOfType(&rng, config.num_vertices, dst_type);
    }
    if (link.id1 == link.id2) continue;
    uint64_t key = (static_cast<uint64_t>(link.id1) * 1000003u +
                    static_cast<uint64_t>(link.ltype)) *
                       2654435761u +
                   static_cast<uint64_t>(link.id2);
    if (!seen.insert(key).second) continue;
    link.visibility = 1;
    link.data = RandomPayload(&rng, config.payload_bytes);
    link.time = stamp(rng);
    link.version = 1;
    dataset.links.push_back(std::move(link));
  }
  return dataset;
}

Status LoadIntoPartitionedDatabase(sql::Database* db,
                                   const Dataset& dataset) {
  for (int t = 0; t < 10; ++t) {
    DB2G_RETURN_NOT_OK(db->ExecuteScript(
        "CREATE TABLE Node_t" + std::to_string(t) +
        " (id BIGINT PRIMARY KEY, version BIGINT, time BIGINT, "
        "data VARCHAR(64));"));
  }
  for (int t = 0; t < 10; ++t) {
    std::string name = "Link_e" + std::to_string(t);
    DB2G_RETURN_NOT_OK(db->ExecuteScript(
        "CREATE TABLE " + name +
        " (id1 BIGINT NOT NULL, id2 BIGINT NOT NULL, visibility BIGINT, "
        "data VARCHAR(64), time BIGINT, version BIGINT);"
        "CREATE INDEX idx_" + name + "_src ON " + name + " (id1);"
        "CREATE INDEX idx_" + name + "_dst ON " + name + " (id2);"));
  }
  for (const Node& n : dataset.nodes) {
    sql::Table* table =
        db->GetTable("Node_t" + std::to_string(NodeType(n.id)));
    Result<sql::RowId> rid = table->Insert(
        {Value(n.id), Value(n.version), Value(n.time), Value(n.data)});
    if (!rid.ok()) return rid.status();
  }
  for (const Link& l : dataset.links) {
    sql::Table* table = db->GetTable("Link_e" + std::to_string(l.ltype));
    Result<sql::RowId> rid = table->Insert(
        {Value(l.id1), Value(l.id2), Value(l.visibility), Value(l.data),
         Value(l.time), Value(l.version)});
    if (!rid.ok()) return rid.status();
  }
  return Status::OK();
}

overlay::OverlayConfig MakePartitionedOverlay(bool prefixed_ids) {
  overlay::OverlayConfig config;
  for (int t = 0; t < 10; ++t) {
    overlay::VertexTableConf v;
    v.table_name = "Node_t" + std::to_string(t);
    std::string id_def =
        prefixed_ids ? "'" + Dataset::VertexLabel(t) + "'::id" : "id";
    v.prefixed_id = prefixed_ids;
    v.id = std::move(overlay::FieldDef::Parse(id_def)).ValueOrThrow();
    v.label.fixed = true;
    v.label.value = Dataset::VertexLabel(t);
    v.properties = {"version", "time", "data"};
    v.properties_specified = true;
    config.v_tables.push_back(std::move(v));
  }
  for (int t = 0; t < 10; ++t) {
    int src_type = t % 10;
    int dst_type = (t + 3) % 10;
    overlay::EdgeTableConf e;
    e.table_name = "Link_e" + std::to_string(t);
    e.src_v_table = "Node_t" + std::to_string(src_type);
    e.src_v =
        std::move(overlay::FieldDef::Parse(
                      prefixed_ids
                          ? "'" + Dataset::VertexLabel(src_type) + "'::id1"
                          : "id1"))
            .ValueOrThrow();
    e.dst_v_table = "Node_t" + std::to_string(dst_type);
    e.dst_v =
        std::move(overlay::FieldDef::Parse(
                      prefixed_ids
                          ? "'" + Dataset::VertexLabel(dst_type) + "'::id2"
                          : "id2"))
            .ValueOrThrow();
    e.implicit_edge_id = true;
    e.label.fixed = true;
    e.label.value = Dataset::EdgeLabel(t);
    e.properties = {"visibility", "data", "time", "version"};
    e.properties_specified = true;
    config.e_tables.push_back(std::move(e));
  }
  return config;
}

std::string PartitionedWorkload::Next(QueryType type) {
  std::uniform_int_distribution<size_t> node_pick(0,
                                                  dataset_.nodes.size() - 1);
  std::uniform_int_distribution<size_t> link_pick(0,
                                                  dataset_.links.size() - 1);
  switch (type) {
    case QueryType::kGetNode: {
      const Node& n = dataset_.nodes[node_pick(rng_)];
      return "g.V('" + PartitionedVertexId(n.id) + "').hasLabel('" +
             Dataset::VertexLabel(n.type) + "')";
    }
    case QueryType::kCountLinks: {
      const Link& l = dataset_.links[link_pick(rng_)];
      return "g.V('" + PartitionedVertexId(l.id1) + "').outE('" +
             Dataset::EdgeLabel(l.ltype) + "').count()";
    }
    case QueryType::kGetLink: {
      const Link& l = dataset_.links[link_pick(rng_)];
      return "g.V('" + PartitionedVertexId(l.id1) + "').outE('" +
             Dataset::EdgeLabel(l.ltype) + "').where(inV().hasId('" +
             PartitionedVertexId(l.id2) + "'))";
    }
    case QueryType::kGetLinkList: {
      const Link& l = dataset_.links[link_pick(rng_)];
      return "g.V('" + PartitionedVertexId(l.id1) + "').outE('" +
             Dataset::EdgeLabel(l.ltype) + "')";
    }
  }
  return "g.V().count()";
}

}  // namespace db2graph::linkbench
