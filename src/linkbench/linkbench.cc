#include "linkbench/linkbench.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace db2graph::linkbench {

namespace {

std::string RandomPayload(std::mt19937_64* rng, int bytes) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::uniform_int_distribution<int> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  out.reserve(bytes);
  for (int i = 0; i < bytes; ++i) out.push_back(kAlphabet[pick(*rng)]);
  return out;
}

}  // namespace

DatasetStats Dataset::Stats() const {
  DatasetStats stats;
  stats.num_vertices = static_cast<int64_t>(nodes.size());
  stats.num_edges = static_cast<int64_t>(links.size());
  stats.avg_degree =
      nodes.empty() ? 0
                    : static_cast<double>(links.size()) /
                          static_cast<double>(nodes.size());
  std::unordered_map<int64_t, int64_t> degree;
  for (const Link& l : links) {
    ++degree[l.id1];
    ++degree[l.id2];
  }
  for (const auto& [id, d] : degree) {
    (void)id;
    stats.max_degree = std::max(stats.max_degree, d);
  }
  for (const Node& n : nodes) {
    stats.approx_csv_bytes += 32 + n.data.size();
  }
  for (const Link& l : links) {
    stats.approx_csv_bytes += 48 + l.data.size();
  }
  return stats;
}

Dataset Generate(const Config& config) {
  Dataset dataset;
  dataset.config = config;
  std::mt19937_64 rng(config.seed);

  dataset.nodes.reserve(config.num_vertices);
  std::uniform_int_distribution<int> vtype(0, config.num_vertex_types - 1);
  std::uniform_int_distribution<int64_t> stamp(1000000000, 2000000000);
  for (int64_t i = 0; i < config.num_vertices; ++i) {
    Node node;
    node.id = i + 1;  // 1-based like LinkBench
    node.type = vtype(rng);
    node.version = 1 + static_cast<int64_t>(rng() % 16);
    node.time = stamp(rng);
    node.data = RandomPayload(&rng, config.payload_bytes);
    dataset.nodes.push_back(std::move(node));
  }

  const int64_t target_edges = static_cast<int64_t>(
      config.edges_per_vertex * static_cast<double>(config.num_vertices));
  std::uniform_int_distribution<int64_t> uniform_id(1, config.num_vertices);
  std::uniform_int_distribution<int> etype(0, config.num_edge_types - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  // Destination skew: a single scorching vertex plus a warm top-100 set
  // produce the Table 2 max-degree shape (max degree ~2% of edge count).
  const int64_t kWarmSet = std::min<int64_t>(100, config.num_vertices);
  std::uniform_int_distribution<int64_t> warm_id(1, kWarmSet);

  std::unordered_set<uint64_t> seen;  // (id1, ltype, id2) uniqueness
  seen.reserve(target_edges * 2);
  dataset.links.reserve(target_edges);
  int64_t attempts = 0;
  while (static_cast<int64_t>(dataset.links.size()) < target_edges &&
         attempts < target_edges * 4) {
    ++attempts;
    Link link;
    link.id1 = uniform_id(rng);
    double roll = coin(rng);
    if (roll < config.hot_vertex_fraction) {
      link.id2 = 1;  // the hub
    } else if (roll < config.hot_vertex_fraction + 0.1) {
      link.id2 = warm_id(rng);
    } else {
      link.id2 = uniform_id(rng);
    }
    if (link.id1 == link.id2) continue;
    link.ltype = etype(rng);
    uint64_t key = (static_cast<uint64_t>(link.id1) * 1000003u +
                    static_cast<uint64_t>(link.ltype)) *
                       2654435761u +
                   static_cast<uint64_t>(link.id2);
    if (!seen.insert(key).second) continue;
    link.visibility = 1;
    link.data = RandomPayload(&rng, config.payload_bytes);
    link.time = stamp(rng);
    link.version = 1;
    dataset.links.push_back(std::move(link));
  }
  return dataset;
}

Status LoadIntoDatabase(sql::Database* db, const Dataset& dataset) {
  DB2G_RETURN_NOT_OK(db->ExecuteScript(R"sql(
    CREATE TABLE Node (
      id BIGINT PRIMARY KEY,
      ntype VARCHAR(10) NOT NULL,
      version BIGINT,
      time BIGINT,
      data VARCHAR(64)
    );
    CREATE TABLE Link (
      id1 BIGINT NOT NULL,
      ltype VARCHAR(10) NOT NULL,
      id2 BIGINT NOT NULL,
      visibility BIGINT,
      data VARCHAR(64),
      time BIGINT,
      version BIGINT
    );
    CREATE INDEX idx_link_src ON Link (id1);
    CREATE INDEX idx_link_dst ON Link (id2);
    CREATE INDEX idx_link_src_type ON Link (id1, ltype);
  )sql"));
  // Bulk load through the storage layer (SQL-per-row would model client
  // inserts; the premise here is pre-existing data).
  sql::Table* node_table = db->GetTable("Node");
  sql::Table* link_table = db->GetTable("Link");
  for (const Node& n : dataset.nodes) {
    Result<sql::RowId> rid = node_table->Insert(
        {Value(n.id), Value(Dataset::VertexLabel(n.type)), Value(n.version),
         Value(n.time), Value(n.data)});
    if (!rid.ok()) return rid.status();
  }
  for (const Link& l : dataset.links) {
    Result<sql::RowId> rid = link_table->Insert(
        {Value(l.id1), Value(Dataset::EdgeLabel(l.ltype)), Value(l.id2),
         Value(l.visibility), Value(l.data), Value(l.time),
         Value(l.version)});
    if (!rid.ok()) return rid.status();
  }
  return Status::OK();
}

overlay::OverlayConfig MakeOverlay() {
  const char* kJson = R"json({
    "v_tables": [
      {
        "table_name": "Node",
        "id": "id",
        "label": "ntype",
        "properties": ["version", "time", "data"]
      }
    ],
    "e_tables": [
      {
        "table_name": "Link",
        "src_v_table": "Node",
        "src_v": "id1",
        "dst_v_table": "Node",
        "dst_v": "id2",
        "implicit_edge_id": true,
        "label": "ltype",
        "properties": ["visibility", "data", "time", "version"]
      }
    ]
  })json";
  return std::move(overlay::OverlayConfig::Parse(kJson)).ValueOrThrow();
}

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kGetNode:
      return "getNode";
    case QueryType::kCountLinks:
      return "countLinks";
    case QueryType::kGetLink:
      return "getLink";
    case QueryType::kGetLinkList:
      return "getLinkList";
  }
  return "?";
}

Workload::Workload(const Dataset& dataset, uint64_t seed, bool zipfian)
    : dataset_(dataset), rng_(seed), zipfian_(zipfian) {}

size_t Workload::PickIndex(size_t n) {
  if (n == 0) return 0;
  if (!zipfian_) {
    std::uniform_int_distribution<size_t> pick(0, n - 1);
    return pick(rng_);
  }
  // Rank-skewed pick via a log-uniform rank: r = floor(e^(u * ln n)) maps
  // u ~ U[0,1) to P(rank r) proportional to 1/r — the classic Zipf shape
  // without per-n harmonic-number tables.
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double rank = std::exp(uniform(rng_) * std::log(static_cast<double>(n)));
  size_t r = static_cast<size_t>(rank);
  if (r >= n) r = n - 1;
  return r;
}

std::string Workload::Next(QueryType type) {
  // Parameters come from existing nodes/links so that queries mostly hit,
  // as LinkBench's request distributions do.
  switch (type) {
    case QueryType::kGetNode: {
      const Node& n = dataset_.nodes[PickIndex(dataset_.nodes.size())];
      return "g.V(" + std::to_string(n.id) + ").hasLabel('" +
             Dataset::VertexLabel(n.type) + "')";
    }
    case QueryType::kCountLinks: {
      const Link& l = dataset_.links[PickIndex(dataset_.links.size())];
      return "g.V(" + std::to_string(l.id1) + ").outE('" +
             Dataset::EdgeLabel(l.ltype) + "').count()";
    }
    case QueryType::kGetLink: {
      const Link& l = dataset_.links[PickIndex(dataset_.links.size())];
      return "g.V(" + std::to_string(l.id1) + ").outE('" +
             Dataset::EdgeLabel(l.ltype) + "').where(inV().hasId(" +
             std::to_string(l.id2) + "))";
    }
    case QueryType::kGetLinkList: {
      const Link& l = dataset_.links[PickIndex(dataset_.links.size())];
      return "g.V(" + std::to_string(l.id1) + ").outE('" +
             Dataset::EdgeLabel(l.ltype) + "')";
    }
  }
  return "g.V().count()";
}

std::string Workload::NextMixed() {
  std::uniform_int_distribution<int> pick(0, 3);
  return Next(static_cast<QueryType>(pick(rng_)));
}

}  // namespace db2graph::linkbench
