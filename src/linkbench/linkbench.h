// Copyright (c) 2026 The db2graph-repro Authors.
//
// LinkBench-shaped synthetic data and workload (paper Section 8, Tables 1
// and 2): a social-graph dataset with 10 vertex types and 10 edge types,
// 3 properties per vertex and 4 per edge, a skewed degree distribution
// with a very large maximum degree, and the four query-only operations
// (getNode, countLinks, getLink, getLinkList) expressed in Gremlin.
//
// Scales are laptop-sized stand-ins for the paper's 10M/100M datasets;
// the shape (who wins, crossovers) is what the benchmarks reproduce.

#ifndef DB2GRAPH_LINKBENCH_LINKBENCH_H_
#define DB2GRAPH_LINKBENCH_LINKBENCH_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "overlay/config.h"
#include "sql/database.h"

namespace db2graph::linkbench {

struct Config {
  int64_t num_vertices = 40000;
  double edges_per_vertex = 4.3;  // Table 2's average degree
  int num_vertex_types = 10;
  int num_edge_types = 10;
  /// Fraction of edges landing on the single hottest vertex; the paper's
  /// datasets have max degree ~= 2.2% of the edge count.
  double hot_vertex_fraction = 0.022;
  int payload_bytes = 24;  // size of the 'data' string properties
  uint64_t seed = 42;

  /// The paper's two scales, shrunk 250x / 2500x.
  static Config Small() { return Config{}; }
  static Config Large() {
    Config c;
    c.num_vertices = 400000;
    return c;
  }
};

/// One generated vertex row (the LinkBench "node").
struct Node {
  int64_t id;
  int type;  // 0..num_vertex_types-1
  int64_t version;
  int64_t time;
  std::string data;
};

/// One generated edge row (the LinkBench "link").
struct Link {
  int64_t id1;
  int ltype;  // 0..num_edge_types-1
  int64_t id2;
  int64_t visibility;
  std::string data;
  int64_t time;
  int64_t version;
};

/// Dataset statistics, i.e. the columns of the paper's Table 2.
struct DatasetStats {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  double avg_degree = 0;
  int64_t max_degree = 0;
  size_t approx_csv_bytes = 0;  // the paper's "CSV File" column
};

/// A fully generated dataset, loadable into any of the three systems.
struct Dataset {
  Config config;
  std::vector<Node> nodes;
  std::vector<Link> links;

  DatasetStats Stats() const;

  static std::string VertexLabel(int type) {
    return "vt" + std::to_string(type);
  }
  static std::string EdgeLabel(int type) {
    return "et" + std::to_string(type);
  }
};

/// Generates a dataset deterministically from config.seed.
Dataset Generate(const Config& config);

/// Creates the Node/Link tables (with the indexes a tuned deployment would
/// build) and bulk-loads the dataset. This models the paper's premise that
/// the graph data already lives in the relational database.
Status LoadIntoDatabase(sql::Database* db, const Dataset& dataset);

/// Overlay mapping the Node/Link tables as a property graph: vertex label
/// and edge label come from type columns, edge ids are implicit.
overlay::OverlayConfig MakeOverlay();

/// The four LinkBench query types (paper Table 1).
enum class QueryType { kGetNode, kCountLinks, kGetLink, kGetLinkList };

const char* QueryTypeName(QueryType type);

/// Generates query instances with parameters drawn from the dataset (ids
/// biased toward existing links, as LinkBench's query mix does).
class Workload {
 public:
  /// With `zipfian` set, node/link parameters are drawn rank-skewed
  /// (P(rank r) proportional to 1/r) instead of uniformly — the access
  /// distribution real LinkBench uses, and the one that gives hot-vertex
  /// caching something to work with.
  Workload(const Dataset& dataset, uint64_t seed, bool zipfian = false);

  /// The Gremlin text for one random instance of `type` (Table 1 shapes).
  std::string Next(QueryType type);

  /// A random instance of a random type (uniform mix).
  std::string NextMixed();

 private:
  size_t PickIndex(size_t n);

  const Dataset& dataset_;
  std::mt19937_64 rng_;
  bool zipfian_ = false;
};

}  // namespace db2graph::linkbench

#endif  // DB2GRAPH_LINKBENCH_LINKBENCH_H_
