// Copyright (c) 2026 The db2graph-repro Authors.
//
// Compact binary record encoding shared by the baseline graph stores.
// This is the "somewhat encrypted" storage format the paper criticizes:
// once values are serialized this way, the underlying store's own query
// tools cannot make sense of them — exactly the retrofittability problem
// Db2 Graph avoids.

#ifndef DB2GRAPH_BASELINES_CODEC_H_
#define DB2GRAPH_BASELINES_CODEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace db2graph::baselines {

/// Appends an unsigned LEB128 varint.
void PutVarint(uint64_t v, std::string* out);
/// Appends a length-prefixed string.
void PutString(const std::string& s, std::string* out);
/// Appends a tagged Value.
void PutValue(const Value& v, std::string* out);

/// Cursor over an encoded buffer.
class Decoder {
 public:
  explicit Decoder(const std::string& data) : data_(data) {}

  Status GetVarint(uint64_t* out);
  Status GetString(std::string* out);
  Status GetValue(Value* out);
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

/// Encodes a property list.
void PutProperties(const std::vector<std::pair<std::string, Value>>& props,
                   std::string* out);
Status GetProperties(Decoder* dec,
                     std::vector<std::pair<std::string, Value>>* out);

}  // namespace db2graph::baselines

#endif  // DB2GRAPH_BASELINES_CODEC_H_
