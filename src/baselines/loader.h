// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Table 3 pipeline for standalone graph databases: graph data that
// already lives in relational tables must be (1) exported out of the
// database, (2) loaded into the graph store's proprietary format, and
// (3) the graph opened for querying. Db2 Graph skips (1) and (2)
// entirely; its "open" is overlay resolution.

#ifndef DB2GRAPH_BASELINES_LOADER_H_
#define DB2GRAPH_BASELINES_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/database.h"

namespace db2graph::baselines {

/// One exported element in a neutral "CSV row" form.
struct ExportedVertex {
  Value id;
  std::string label;
  std::vector<std::pair<std::string, Value>> properties;
};
struct ExportedEdge {
  Value id;
  std::string label;
  Value src;
  Value dst;
  std::vector<std::pair<std::string, Value>> properties;
};

struct ExportedGraph {
  std::vector<ExportedVertex> vertices;
  std::vector<ExportedEdge> edges;
  /// Bytes of the serialized export ("CSV File" size).
  size_t csv_bytes = 0;
};

/// Exports the LinkBench-shaped Node/Link tables out of the relational
/// database (the paper's "Export From DB" step). Renders every row to its
/// CSV form, as a real export would.
Result<ExportedGraph> ExportLinkBenchTables(sql::Database* db);

/// Same for the partitioned layout (Node_t0..9 / Link_e0..9); the table
/// suffix becomes the element label ("vtK" / "etK").
Result<ExportedGraph> ExportPartitionedLinkBenchTables(sql::Database* db);

/// Loads an exported graph into any store exposing AddVertex/AddEdge/
/// Finalize (the paper's "Load Data" step).
template <typename GraphDb>
Status LoadExport(const ExportedGraph& exported, GraphDb* db) {
  for (const ExportedVertex& v : exported.vertices) {
    DB2G_RETURN_NOT_OK(db->AddVertex(v.id, v.label, v.properties));
  }
  for (const ExportedEdge& e : exported.edges) {
    DB2G_RETURN_NOT_OK(db->AddEdge(e.id, e.label, e.src, e.dst,
                                   e.properties));
  }
  return db->Finalize();
}

}  // namespace db2graph::baselines

#endif  // DB2GRAPH_BASELINES_LOADER_H_
