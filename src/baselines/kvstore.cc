#include "baselines/kvstore.h"

namespace db2graph::baselines {

void KvStore::Put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.size();
    bytes_ += value.size();
    it->second = std::move(value);
    return;
  }
  bytes_ += key.size() + value.size();
  map_.emplace(key, std::move(value));
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  bytes_ -= key.size() + it->second.size();
  map_.erase(it);
  return true;
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(prefix);
       it != map_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::string> KvStore::ScanKeys(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> out;
  for (auto it = map_.lower_bound(prefix);
       it != map_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

size_t KvStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

size_t KvStore::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Include per-record B-tree page overhead, as an embedded store pays.
  return bytes_ + map_.size() * 64;
}

}  // namespace db2graph::baselines
