#include "baselines/loader.h"

namespace db2graph::baselines {

Result<ExportedGraph> ExportLinkBenchTables(sql::Database* db) {
  ExportedGraph exported;

  Result<sql::ResultSet> nodes = db->Execute("SELECT * FROM Node");
  if (!nodes.ok()) return nodes.status();
  exported.vertices.reserve(nodes->rows.size());
  for (const Row& row : nodes->rows) {
    ExportedVertex v;
    v.id = row[0];
    v.label = row[1].ToString();
    v.properties = {{"version", row[2]}, {"time", row[3]}, {"data", row[4]}};
    // Render the CSV line the export file would contain.
    std::string line = v.id.ToString() + "," + v.label;
    for (const auto& [key, value] : v.properties) {
      (void)key;
      line += "," + value.ToString();
    }
    exported.csv_bytes += line.size() + 1;
    exported.vertices.push_back(std::move(v));
  }

  Result<sql::ResultSet> links = db->Execute("SELECT * FROM Link");
  if (!links.ok()) return links.status();
  exported.edges.reserve(links->rows.size());
  int64_t next_edge_id = 1000000000;  // surrogate ids for the graph stores
  for (const Row& row : links->rows) {
    ExportedEdge e;
    e.id = Value(next_edge_id++);
    e.src = row[0];
    e.label = row[1].ToString();
    e.dst = row[2];
    e.properties = {{"visibility", row[3]},
                    {"data", row[4]},
                    {"time", row[5]},
                    {"version", row[6]}};
    std::string line = e.src.ToString() + "," + e.label + "," +
                       e.dst.ToString();
    for (const auto& [key, value] : e.properties) {
      (void)key;
      line += "," + value.ToString();
    }
    exported.csv_bytes += line.size() + 1;
    exported.edges.push_back(std::move(e));
  }
  return exported;
}

Result<ExportedGraph> ExportPartitionedLinkBenchTables(sql::Database* db) {
  ExportedGraph exported;
  int64_t next_edge_id = 1000000000;
  for (int t = 0; t < 10; ++t) {
    std::string label = "vt" + std::to_string(t);
    Result<sql::ResultSet> nodes =
        db->Execute("SELECT * FROM Node_t" + std::to_string(t));
    if (!nodes.ok()) return nodes.status();
    for (const Row& row : nodes->rows) {
      ExportedVertex v;
      v.id = row[0];
      v.label = label;
      v.properties = {{"version", row[1]},
                      {"time", row[2]},
                      {"data", row[3]}};
      std::string line = v.id.ToString() + "," + label;
      for (const auto& [key, value] : v.properties) {
        (void)key;
        line += "," + value.ToString();
      }
      exported.csv_bytes += line.size() + 1;
      exported.vertices.push_back(std::move(v));
    }
  }
  for (int t = 0; t < 10; ++t) {
    std::string label = "et" + std::to_string(t);
    Result<sql::ResultSet> links =
        db->Execute("SELECT * FROM Link_e" + std::to_string(t));
    if (!links.ok()) return links.status();
    for (const Row& row : links->rows) {
      ExportedEdge e;
      e.id = Value(next_edge_id++);
      e.src = row[0];
      e.label = label;
      e.dst = row[1];
      e.properties = {{"visibility", row[2]},
                      {"data", row[3]},
                      {"time", row[4]},
                      {"version", row[5]}};
      std::string line = e.src.ToString() + "," + label + "," +
                         e.dst.ToString();
      for (const auto& [key, value] : e.properties) {
        (void)key;
        line += "," + value.ToString();
      }
      exported.csv_bytes += line.size() + 1;
      exported.edges.push_back(std::move(e));
    }
  }
  return exported;
}

}  // namespace db2graph::baselines
