// Copyright (c) 2026 The db2graph-repro Authors.
//
// "Janus-like": a JanusGraph-style hybrid graph database over the ordered
// KV store (paper Section 8 ran JanusGraph on BerkeleyDB). Storage schema
// follows JanusGraph's: the *entire* adjacency list of a vertex — edge
// properties included — is serialized into a single KV value, in a binary
// form that is meaningless to the underlying store's own tools (the
// paper's "somewhat encrypted form in one column"). Every traversal hop
// therefore pays a KV get plus a full-list decode, and a hub vertex's
// list is decoded wholesale even when one edge is wanted.

#ifndef DB2GRAPH_BASELINES_JANUS_LIKE_H_
#define DB2GRAPH_BASELINES_JANUS_LIKE_H_

#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/kvstore.h"
#include "gremlin/graph_api.h"

namespace db2graph::baselines {

class JanusLikeDb : public gremlin::GraphProvider {
 public:
  struct Options {
    /// Decoded-object cache capacity (vertex records + adjacency columns),
    /// mirroring the database cache JanusGraph keeps above the KV store.
    size_t cache_capacity = std::numeric_limits<size_t>::max();
    /// Synchronous "disk read" latency per cache miss (see DESIGN.md).
    double miss_penalty_us = 0;
  };

  JanusLikeDb() : JanusLikeDb(Options()) {}
  explicit JanusLikeDb(Options options)
      : options_(options), store_(std::make_unique<KvStore>()) {}

  // -- load path -----------------------------------------------------------
  Status AddVertex(const Value& id, const std::string& label,
                   std::vector<std::pair<std::string, Value>> properties);
  Status AddEdge(const Value& id, const std::string& label, const Value& src,
                 const Value& dst,
                 std::vector<std::pair<std::string, Value>> properties);
  /// Writes the per-vertex adjacency columns and flushes the WAL.
  Status Finalize();
  /// Opens the graph (cheap: reads store metadata).
  Status Open();

  /// Store bytes plus the per-edge-record column overhead the KV schema
  /// pays (each edge is stored twice, with per-cell metadata).
  size_t DiskBytes() const { return store_->ApproxBytes() + extra_disk_bytes_; }
  const KvStore& store() const { return *store_; }

  // -- GraphProvider ---------------------------------------------------------
  std::string name() const override { return "Janus-like"; }
  Status Vertices(const gremlin::LookupSpec& spec,
                  std::vector<gremlin::VertexPtr>* out) override;
  Status Edges(const gremlin::LookupSpec& spec,
               std::vector<gremlin::EdgePtr>* out) override;
  bool SupportsPushdown() const override { return false; }

 private:
  struct AdjRecord {
    bool outgoing;
    Value edge_id;
    std::string label;
    Value other_id;
    std::vector<std::pair<std::string, Value>> properties;
  };

  struct StagedVertex {
    std::string label;
    std::vector<std::pair<std::string, Value>> properties;
    std::vector<AdjRecord> adjacency;
  };

  static std::string VertexKey(const Value& id);
  static std::string AdjacencyKey(const Value& id);
  static std::string EdgeLocatorKey(const Value& id);
  static std::string LabelIndexKey(const std::string& label, const Value& id);

  using AdjListPtr = std::shared_ptr<const std::vector<AdjRecord>>;

  Result<gremlin::VertexPtr> FetchVertex(const Value& id) const;
  /// Decodes the complete adjacency column of one vertex. Decoding is
  /// all-or-nothing, however few entries the query needs — and happens on
  /// EVERY access: like JanusGraph's database cache, ours holds the
  /// *serialized* column, so a hit only spares the disk read, never the
  /// deserialization.
  Result<AdjListPtr> FetchAdjacency(const Value& id) const;

  // Serialized-value LRU shared by vertex and adjacency fetches.
  struct CacheSlot {
    std::string blob;
    std::list<std::string>::iterator lru_it;
  };
  /// Returns the cached raw column, charging the miss penalty and reading
  /// through to the KV store when absent. nullopt = key does not exist.
  std::optional<std::string> CachedGet(const std::string& key) const;
  gremlin::EdgePtr MaterializeEdge(const Value& anchor_id,
                                   const AdjRecord& rec) const;

  Options options_;
  std::unique_ptr<KvStore> store_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::string, CacheSlot> cache_;
  mutable std::list<std::string> lru_;
  size_t extra_disk_bytes_ = 0;
  std::unordered_map<Value, StagedVertex, ValueHash> staging_;
  uint64_t wal_seq_ = 0;
  bool finalized_ = false;
};

}  // namespace db2graph::baselines

#endif  // DB2GRAPH_BASELINES_JANUS_LIKE_H_
