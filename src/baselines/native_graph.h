// Copyright (c) 2026 The db2graph-repro Authors.
//
// "GDB-X": a native graph database simulator standing in for the
// anonymized commercial system of the paper's evaluation. Faithful to the
// behaviours the paper attributes to it:
//
//  * a proprietary on-disk format with index-free adjacency (each vertex
//    record embeds its adjacency lists), at a 6-7x size blow-up over the
//    relational source;
//  * an aggressive object cache, prefetched when the graph is opened
//    (hence GDB-X's 14-15 s open time), giving excellent latency while the
//    graph fits and cache-thrash when it does not;
//  * a global cache latch that limits concurrent-query scalability
//    (the paper's Fig. 6: GDB-X "cannot keep up with the large amount of
//    concurrency").
//
// Data must be imported before querying (Table 3's load path): the
// relational rows are re-encoded into the proprietary records.

#ifndef DB2GRAPH_BASELINES_NATIVE_GRAPH_H_
#define DB2GRAPH_BASELINES_NATIVE_GRAPH_H_

#include <atomic>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gremlin/graph_api.h"

namespace db2graph::baselines {

/// Native graph store with LRU object cache over serialized records.
class NativeGraphDb : public gremlin::GraphProvider {
 public:
  struct Options {
    /// Maximum number of element objects (vertices + edges) kept decoded
    /// in the cache. Sized between the small and large benchmark datasets
    /// to reproduce the paper's Fig. 5 crossover.
    size_t cache_capacity = std::numeric_limits<size_t>::max();
    /// Decode-and-cache everything on Open() (GDB-X's slow open).
    bool prefetch_on_open = true;
    /// Synchronous "disk read" latency charged on every cache miss, in
    /// microseconds. Our backing store is RAM; this stand-in restores the
    /// memory-vs-disk economics behind the paper's Fig. 5 crossover
    /// (documented in DESIGN.md). 0 = off (unit tests).
    double miss_penalty_us = 0;
  };

  NativeGraphDb() : options_(Options()) {}
  explicit NativeGraphDb(Options options) : options_(options) {}

  // -- load path (before Finalize) ---------------------------------------
  Status AddVertex(const Value& id, const std::string& label,
                   std::vector<std::pair<std::string, Value>> properties);
  Status AddEdge(const Value& id, const std::string& label, const Value& src,
                 const Value& dst,
                 std::vector<std::pair<std::string, Value>> properties);
  /// Encodes all staged elements into the proprietary record format and
  /// builds indexes. Part of the "Load Data" time in Table 3.
  Status Finalize();
  /// Opens the graph for querying; prefetches the cache when configured.
  /// The "Open Graph" time in Table 3.
  Status Open();

  /// Bytes of the proprietary on-disk representation.
  size_t DiskBytes() const;
  size_t VertexCount() const { return disk_vertices_.size(); }
  size_t EdgeCount() const { return disk_edges_.size(); }

  // -- GraphProvider ------------------------------------------------------
  std::string name() const override { return "GDB-X"; }
  Status Vertices(const gremlin::LookupSpec& spec,
                  std::vector<gremlin::VertexPtr>* out) override;
  Status Edges(const gremlin::LookupSpec& spec,
               std::vector<gremlin::EdgePtr>* out) override;
  bool SupportsPushdown() const override { return false; }

  struct CacheStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  size_t cached_elements() const;

 private:
  // One adjacency entry co-located with the vertex (index-free adjacency):
  // enough to traverse by label without touching the edge record.
  struct AdjEntry {
    Value edge_id;
    Value other_id;
    std::string label;
  };

  struct CachedVertex {
    gremlin::VertexPtr vertex;
    std::vector<AdjEntry> out_edges;
    std::vector<AdjEntry> in_edges;
  };
  using CachedVertexPtr = std::shared_ptr<const CachedVertex>;

  // Staging area used between Add* and Finalize.
  struct StagedVertex {
    std::string label;
    std::vector<std::pair<std::string, Value>> properties;
    std::vector<AdjEntry> out_edges;
    std::vector<AdjEntry> in_edges;
  };

  std::string EncodeVertex(const Value& id, const StagedVertex& v) const;
  Result<CachedVertexPtr> DecodeVertex(const Value& id,
                                       const std::string& blob) const;
  static std::string EncodeEdge(const gremlin::Edge& e);
  Result<gremlin::EdgePtr> DecodeEdge(const Value& id,
                                      const std::string& blob) const;

  /// Cache-aware fetches (nullptr when the id does not exist).
  Result<CachedVertexPtr> FetchVertex(const Value& id);
  Result<gremlin::EdgePtr> FetchEdge(const Value& id);

  Options options_;
  bool finalized_ = false;
  size_t disk_bytes_ = 0;

  std::unordered_map<Value, StagedVertex, ValueHash> staging_vertices_;
  std::unordered_map<Value, std::unique_ptr<gremlin::Edge>, ValueHash>
      staging_edges_;

  // The proprietary "disk": immutable after Finalize().
  std::unordered_map<Value, std::string, ValueHash> disk_vertices_;
  std::unordered_map<Value, std::string, ValueHash> disk_edges_;
  std::unordered_map<std::string, std::vector<Value>> vertex_label_index_;

  // LRU object cache, guarded by one latch (the concurrency bottleneck).
  mutable std::mutex cache_mutex_;
  struct CacheSlot {
    CachedVertexPtr vertex;
    gremlin::EdgePtr edge;
    std::list<std::pair<bool, Value>>::iterator lru_it;
  };
  mutable std::unordered_map<Value, CacheSlot, ValueHash> vertex_cache_;
  mutable std::unordered_map<Value, CacheSlot, ValueHash> edge_cache_;
  mutable std::list<std::pair<bool, Value>> lru_;  // (is_vertex, id)
  mutable CacheStats cache_stats_;

  void CacheInsertLocked(bool is_vertex, const Value& id,
                         CachedVertexPtr v, gremlin::EdgePtr e) const;
};

}  // namespace db2graph::baselines

#endif  // DB2GRAPH_BASELINES_NATIVE_GRAPH_H_
