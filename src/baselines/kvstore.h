// Copyright (c) 2026 The db2graph-repro Authors.
//
// A BerkeleyDB-style ordered key-value store: the storage back end of the
// JanusGraph-like baseline (the paper evaluated JanusGraph on BerkeleyDB).
// Single global latch, ordered iteration, binary values.

#ifndef DB2GRAPH_BASELINES_KVSTORE_H_
#define DB2GRAPH_BASELINES_KVSTORE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace db2graph::baselines {

/// Ordered KV store with a coarse global latch (as BerkeleyDB's page
/// latching behaves under a single-writer embedded deployment).
class KvStore {
 public:
  void Put(const std::string& key, std::string value);
  std::optional<std::string> Get(const std::string& key) const;
  bool Delete(const std::string& key);

  /// All (key, value) pairs whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, std::string>> Scan(
      const std::string& prefix) const;
  /// Keys only, for cheaper scans.
  std::vector<std::string> ScanKeys(const std::string& prefix) const;

  size_t size() const;
  /// Total bytes of keys + values (the store's "disk usage").
  size_t ApproxBytes() const;

  struct Stats {
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> puts{0};
    std::atomic<uint64_t> scans{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> map_;
  size_t bytes_ = 0;
  mutable Stats stats_;
};

}  // namespace db2graph::baselines

#endif  // DB2GRAPH_BASELINES_KVSTORE_H_
