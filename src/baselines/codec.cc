#include "baselines/codec.h"

#include <cstring>

namespace db2graph::baselines {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutString(const std::string& s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

namespace {
enum class Tag : uint8_t { kNull = 0, kBool = 1, kInt = 2, kDouble = 3,
                           kString = 4 };
}  // namespace

void PutValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back(static_cast<char>(Tag::kNull));
      return;
    case ValueType::kBool:
      out->push_back(static_cast<char>(Tag::kBool));
      out->push_back(v.as_bool() ? 1 : 0);
      return;
    case ValueType::kInt: {
      out->push_back(static_cast<char>(Tag::kInt));
      // ZigZag for negatives.
      uint64_t z = (static_cast<uint64_t>(v.as_int()) << 1) ^
                   static_cast<uint64_t>(v.as_int() >> 63);
      PutVarint(z, out);
      return;
    }
    case ValueType::kDouble: {
      out->push_back(static_cast<char>(Tag::kDouble));
      double d = v.as_double();
      char buf[sizeof(double)];
      std::memcpy(buf, &d, sizeof(double));
      out->append(buf, sizeof(double));
      return;
    }
    case ValueType::kString:
      out->push_back(static_cast<char>(Tag::kString));
      PutString(v.as_string(), out);
      return;
  }
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Internal("codec: truncated varint");
}

Status Decoder::GetString(std::string* out) {
  uint64_t len = 0;
  DB2G_RETURN_NOT_OK(GetVarint(&len));
  if (pos_ + len > data_.size()) {
    return Status::Internal("codec: truncated string");
  }
  out->assign(data_, pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetValue(Value* out) {
  if (pos_ >= data_.size()) return Status::Internal("codec: truncated value");
  Tag tag = static_cast<Tag>(data_[pos_++]);
  switch (tag) {
    case Tag::kNull:
      *out = Value::Null();
      return Status::OK();
    case Tag::kBool:
      if (pos_ >= data_.size()) return Status::Internal("codec: truncated");
      *out = Value(data_[pos_++] != 0);
      return Status::OK();
    case Tag::kInt: {
      uint64_t z = 0;
      DB2G_RETURN_NOT_OK(GetVarint(&z));
      *out = Value(static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1)));
      return Status::OK();
    }
    case Tag::kDouble: {
      if (pos_ + sizeof(double) > data_.size()) {
        return Status::Internal("codec: truncated double");
      }
      double d;
      std::memcpy(&d, data_.data() + pos_, sizeof(double));
      pos_ += sizeof(double);
      *out = Value(d);
      return Status::OK();
    }
    case Tag::kString: {
      std::string s;
      DB2G_RETURN_NOT_OK(GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::Internal("codec: bad tag");
}

void PutProperties(const std::vector<std::pair<std::string, Value>>& props,
                   std::string* out) {
  PutVarint(props.size(), out);
  for (const auto& [k, v] : props) {
    PutString(k, out);
    PutValue(v, out);
  }
}

Status GetProperties(Decoder* dec,
                     std::vector<std::pair<std::string, Value>>* out) {
  uint64_t n = 0;
  DB2G_RETURN_NOT_OK(dec->GetVarint(&n));
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    Value value;
    DB2G_RETURN_NOT_OK(dec->GetString(&key));
    DB2G_RETURN_NOT_OK(dec->GetValue(&value));
    out->emplace_back(std::move(key), std::move(value));
  }
  return Status::OK();
}

}  // namespace db2graph::baselines
