#include "baselines/native_graph.h"

#include <algorithm>

#include <chrono>

#include "baselines/codec.h"

namespace db2graph::baselines {

namespace {

// Busy-waits for the configured synchronous-read latency. Spinning (rather
// than sleeping) keeps sub-10us penalties accurate and models a saturated
// storage queue under concurrency.
void ChargeMissPenalty(double micros) {
  if (micros <= 0) return;
  auto end = std::chrono::steady_clock::now() +
             std::chrono::nanoseconds(static_cast<int64_t>(micros * 1000));
  while (std::chrono::steady_clock::now() < end) {
  }
}

}  // namespace

using gremlin::Edge;
using gremlin::EdgePtr;
using gremlin::LookupSpec;
using gremlin::MatchesSpec;
using gremlin::Vertex;
using gremlin::VertexPtr;

Status NativeGraphDb::AddVertex(
    const Value& id, const std::string& label,
    std::vector<std::pair<std::string, Value>> properties) {
  if (finalized_) {
    return Status::Unsupported(
        "GDB-X: online inserts after open are not supported; reload the "
        "graph");
  }
  StagedVertex& v = staging_vertices_[id];
  v.label = label;
  v.properties = std::move(properties);
  return Status::OK();
}

Status NativeGraphDb::AddEdge(
    const Value& id, const std::string& label, const Value& src,
    const Value& dst, std::vector<std::pair<std::string, Value>> properties) {
  if (finalized_) {
    return Status::Unsupported("GDB-X: online inserts are not supported");
  }
  auto src_it = staging_vertices_.find(src);
  auto dst_it = staging_vertices_.find(dst);
  if (src_it == staging_vertices_.end() ||
      dst_it == staging_vertices_.end()) {
    return Status::NotFound("GDB-X: edge endpoint vertex not loaded yet");
  }
  auto edge = std::make_unique<Edge>();
  edge->id = id;
  edge->label = label;
  edge->src_id = src;
  edge->dst_id = dst;
  edge->properties = std::move(properties);
  src_it->second.out_edges.push_back({id, dst, label});
  dst_it->second.in_edges.push_back({id, src, label});
  staging_edges_[id] = std::move(edge);
  return Status::OK();
}

std::string NativeGraphDb::EncodeVertex(const Value& id,
                                        const StagedVertex& v) const {
  std::string blob;
  PutValue(id, &blob);
  PutString(v.label, &blob);
  PutProperties(v.properties, &blob);
  auto put_adj = [&](const std::vector<AdjEntry>& adj) {
    PutVarint(adj.size(), &blob);
    for (const AdjEntry& e : adj) {
      PutValue(e.edge_id, &blob);
      PutValue(e.other_id, &blob);
      PutString(e.label, &blob);
    }
  };
  put_adj(v.out_edges);
  put_adj(v.in_edges);
  return blob;
}

Result<NativeGraphDb::CachedVertexPtr> NativeGraphDb::DecodeVertex(
    const Value& id, const std::string& blob) const {
  Decoder dec(blob);
  auto cached = std::make_shared<CachedVertex>();
  auto vertex = std::make_shared<Vertex>();
  Value stored_id;
  DB2G_RETURN_NOT_OK(dec.GetValue(&stored_id));
  vertex->id = id;
  DB2G_RETURN_NOT_OK(dec.GetString(&vertex->label));
  DB2G_RETURN_NOT_OK(GetProperties(&dec, &vertex->properties));
  auto get_adj = [&](std::vector<AdjEntry>* adj) -> Status {
    uint64_t n = 0;
    DB2G_RETURN_NOT_OK(dec.GetVarint(&n));
    adj->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      AdjEntry entry;
      DB2G_RETURN_NOT_OK(dec.GetValue(&entry.edge_id));
      DB2G_RETURN_NOT_OK(dec.GetValue(&entry.other_id));
      DB2G_RETURN_NOT_OK(dec.GetString(&entry.label));
      adj->push_back(std::move(entry));
    }
    return Status::OK();
  };
  DB2G_RETURN_NOT_OK(get_adj(&cached->out_edges));
  DB2G_RETURN_NOT_OK(get_adj(&cached->in_edges));
  cached->vertex = std::move(vertex);
  return CachedVertexPtr(std::move(cached));
}

std::string NativeGraphDb::EncodeEdge(const Edge& e) {
  std::string blob;
  PutValue(e.id, &blob);
  PutString(e.label, &blob);
  PutValue(e.src_id, &blob);
  PutValue(e.dst_id, &blob);
  PutProperties(e.properties, &blob);
  return blob;
}

Result<EdgePtr> NativeGraphDb::DecodeEdge(const Value& id,
                                          const std::string& blob) const {
  Decoder dec(blob);
  auto edge = std::make_shared<Edge>();
  Value stored_id;
  DB2G_RETURN_NOT_OK(dec.GetValue(&stored_id));
  edge->id = id;
  DB2G_RETURN_NOT_OK(dec.GetString(&edge->label));
  DB2G_RETURN_NOT_OK(dec.GetValue(&edge->src_id));
  DB2G_RETURN_NOT_OK(dec.GetValue(&edge->dst_id));
  DB2G_RETURN_NOT_OK(GetProperties(&dec, &edge->properties));
  return EdgePtr(std::move(edge));
}

Status NativeGraphDb::Finalize() {
  if (finalized_) return Status::OK();
  disk_vertices_.reserve(staging_vertices_.size());
  for (const auto& [id, staged] : staging_vertices_) {
    std::string blob = EncodeVertex(id, staged);
    // Native-format accounting: a fixed-width node record, one property
    // record per property, and doubly-linked relationship pointers per
    // adjacency entry (the Neo4j-style layout behind Table 3's 6-7x
    // blow-up over the relational representation).
    disk_bytes_ += blob.size() + 128 + 48 * staged.properties.size() +
                   24 * (staged.out_edges.size() + staged.in_edges.size());
    disk_vertices_[id] = std::move(blob);
    vertex_label_index_[staged.label].push_back(id);
  }
  disk_edges_.reserve(staging_edges_.size());
  for (const auto& [id, edge] : staging_edges_) {
    std::string blob = EncodeEdge(*edge);
    disk_bytes_ += blob.size() + 128 + 48 * edge->properties.size();
    disk_edges_[id] = std::move(blob);
  }
  staging_vertices_.clear();
  staging_edges_.clear();
  finalized_ = true;
  return Status::OK();
}

Status NativeGraphDb::Open() {
  DB2G_RETURN_NOT_OK(Finalize());
  if (!options_.prefetch_on_open) return Status::OK();
  // Aggressive prefetch: decode records into the object cache until full.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (const auto& [id, blob] : disk_vertices_) {
    if (lru_.size() >= options_.cache_capacity) break;
    Result<CachedVertexPtr> decoded = DecodeVertex(id, blob);
    if (!decoded.ok()) return decoded.status();
    CacheInsertLocked(true, id, *decoded, nullptr);
  }
  for (const auto& [id, blob] : disk_edges_) {
    if (lru_.size() >= options_.cache_capacity) break;
    Result<EdgePtr> decoded = DecodeEdge(id, blob);
    if (!decoded.ok()) return decoded.status();
    CacheInsertLocked(false, id, nullptr, *decoded);
  }
  return Status::OK();
}

size_t NativeGraphDb::DiskBytes() const { return disk_bytes_; }

void NativeGraphDb::CacheInsertLocked(bool is_vertex, const Value& id,
                                      CachedVertexPtr v, EdgePtr e) const {
  auto& cache = is_vertex ? vertex_cache_ : edge_cache_;
  if (cache.count(id) > 0) return;
  while (lru_.size() >= options_.cache_capacity && !lru_.empty()) {
    auto [victim_is_vertex, victim_id] = lru_.back();
    lru_.pop_back();
    (victim_is_vertex ? vertex_cache_ : edge_cache_).erase(victim_id);
    cache_stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.emplace_front(is_vertex, id);
  CacheSlot slot;
  slot.vertex = std::move(v);
  slot.edge = std::move(e);
  slot.lru_it = lru_.begin();
  cache.emplace(id, std::move(slot));
}

Result<NativeGraphDb::CachedVertexPtr> NativeGraphDb::FetchVertex(
    const Value& id) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = vertex_cache_.find(id);
    if (it != vertex_cache_.end()) {
      cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.vertex;
    }
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  ChargeMissPenalty(options_.miss_penalty_us);
  auto disk_it = disk_vertices_.find(id);
  if (disk_it == disk_vertices_.end()) return CachedVertexPtr(nullptr);
  Result<CachedVertexPtr> decoded = DecodeVertex(id, disk_it->second);
  if (!decoded.ok()) return decoded.status();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheInsertLocked(true, id, *decoded, nullptr);
  return *decoded;
}

Result<EdgePtr> NativeGraphDb::FetchEdge(const Value& id) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = edge_cache_.find(id);
    if (it != edge_cache_.end()) {
      cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.edge;
    }
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  ChargeMissPenalty(options_.miss_penalty_us);
  auto disk_it = disk_edges_.find(id);
  if (disk_it == disk_edges_.end()) return EdgePtr(nullptr);
  Result<EdgePtr> decoded = DecodeEdge(id, disk_it->second);
  if (!decoded.ok()) return decoded.status();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheInsertLocked(false, id, nullptr, *decoded);
  return *decoded;
}

Status NativeGraphDb::Vertices(const LookupSpec& spec,
                               std::vector<VertexPtr>* out) {
  if (!finalized_) return Status::Internal("GDB-X: graph not opened");
  if (!spec.ids.empty()) {
    for (const Value& id : spec.ids) {
      Result<CachedVertexPtr> v = FetchVertex(id);
      if (!v.ok()) return v.status();
      if (*v != nullptr && MatchesSpec(*(*v)->vertex, spec)) {
        out->push_back((*v)->vertex);
      }
    }
    return Status::OK();
  }
  if (!spec.labels.empty()) {
    for (const std::string& label : spec.labels) {
      auto it = vertex_label_index_.find(label);
      if (it == vertex_label_index_.end()) continue;
      for (const Value& id : it->second) {
        Result<CachedVertexPtr> v = FetchVertex(id);
        if (!v.ok()) return v.status();
        if (*v != nullptr && MatchesSpec(*(*v)->vertex, spec)) {
          out->push_back((*v)->vertex);
        }
      }
    }
    return Status::OK();
  }
  // Full scan: decode straight from disk, bypassing (and not polluting)
  // the object cache.
  for (const auto& [id, blob] : disk_vertices_) {
    Result<CachedVertexPtr> v = DecodeVertex(id, blob);
    if (!v.ok()) return v.status();
    if (MatchesSpec(*(*v)->vertex, spec)) out->push_back((*v)->vertex);
  }
  return Status::OK();
}

Status NativeGraphDb::Edges(const LookupSpec& spec,
                            std::vector<EdgePtr>* out) {
  if (!finalized_) return Status::Internal("GDB-X: graph not opened");
  auto emit_adjacent = [&](const std::vector<Value>& anchor_ids,
                           bool outgoing) -> Status {
    for (const Value& vid : anchor_ids) {
      Result<CachedVertexPtr> v = FetchVertex(vid);
      if (!v.ok()) return v.status();
      if (*v == nullptr) continue;
      const std::vector<AdjEntry>& adj =
          outgoing ? (*v)->out_edges : (*v)->in_edges;
      for (const AdjEntry& entry : adj) {
        if (!spec.labels.empty() &&
            std::find(spec.labels.begin(), spec.labels.end(), entry.label) ==
                spec.labels.end()) {
          continue;  // index-free adjacency: label known without the record
        }
        Result<EdgePtr> e = FetchEdge(entry.edge_id);
        if (!e.ok()) return e.status();
        if (*e != nullptr && MatchesSpec(**e, spec)) out->push_back(*e);
      }
    }
    return Status::OK();
  };

  if (!spec.src_ids.empty()) {
    DB2G_RETURN_NOT_OK(emit_adjacent(spec.src_ids, /*outgoing=*/true));
    // Intersect with dst constraint if both present.
    if (!spec.dst_ids.empty()) {
      out->erase(std::remove_if(out->begin(), out->end(),
                                [&](const EdgePtr& e) {
                                  return std::find(spec.dst_ids.begin(),
                                                   spec.dst_ids.end(),
                                                   e->dst_id) ==
                                         spec.dst_ids.end();
                                }),
                 out->end());
    }
    return Status::OK();
  }
  if (!spec.dst_ids.empty()) {
    return emit_adjacent(spec.dst_ids, /*outgoing=*/false);
  }
  if (!spec.ids.empty()) {
    for (const Value& id : spec.ids) {
      Result<EdgePtr> e = FetchEdge(id);
      if (!e.ok()) return e.status();
      if (*e != nullptr && MatchesSpec(**e, spec)) out->push_back(*e);
    }
    return Status::OK();
  }
  for (const auto& [id, blob] : disk_edges_) {
    Result<EdgePtr> e = DecodeEdge(id, blob);
    if (!e.ok()) return e.status();
    if (MatchesSpec(**e, spec)) out->push_back(*e);
  }
  return Status::OK();
}

size_t NativeGraphDb::cached_elements() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return lru_.size();
}

}  // namespace db2graph::baselines
