#include "baselines/janus_like.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "baselines/codec.h"

namespace db2graph::baselines {

namespace {

void ChargeMissPenalty(double micros) {
  if (micros <= 0) return;
  auto end = std::chrono::steady_clock::now() +
             std::chrono::nanoseconds(static_cast<int64_t>(micros * 1000));
  while (std::chrono::steady_clock::now() < end) {
  }
}

}  // namespace

using gremlin::Edge;
using gremlin::EdgePtr;
using gremlin::LookupSpec;
using gremlin::MatchesSpec;
using gremlin::Vertex;
using gremlin::VertexPtr;

std::string JanusLikeDb::VertexKey(const Value& id) {
  return "v:" + id.ToString();
}
std::string JanusLikeDb::AdjacencyKey(const Value& id) {
  return "a:" + id.ToString();
}
std::string JanusLikeDb::EdgeLocatorKey(const Value& id) {
  return "e:" + id.ToString();
}
std::string JanusLikeDb::LabelIndexKey(const std::string& label,
                                       const Value& id) {
  return "li:" + label + ":" + id.ToString();
}

Status JanusLikeDb::AddVertex(
    const Value& id, const std::string& label,
    std::vector<std::pair<std::string, Value>> properties) {
  if (finalized_) {
    return Status::Unsupported("Janus-like: reload required for new data");
  }
  StagedVertex& v = staging_[id];
  v.label = label;
  v.properties = std::move(properties);
  // Write-ahead log entry (the transactional store journals every insert).
  std::string wal;
  PutValue(id, &wal);
  PutString(label, &wal);
  store_->Put("wal:" + std::to_string(wal_seq_++), std::move(wal));
  return Status::OK();
}

Status JanusLikeDb::AddEdge(
    const Value& id, const std::string& label, const Value& src,
    const Value& dst, std::vector<std::pair<std::string, Value>> properties) {
  if (finalized_) {
    return Status::Unsupported("Janus-like: reload required for new data");
  }
  auto src_it = staging_.find(src);
  auto dst_it = staging_.find(dst);
  if (src_it == staging_.end() || dst_it == staging_.end()) {
    return Status::NotFound("Janus-like: edge endpoint vertex not loaded");
  }
  std::string wal;
  PutValue(id, &wal);
  PutString(label, &wal);
  PutValue(src, &wal);
  PutValue(dst, &wal);
  PutProperties(properties, &wal);
  store_->Put("wal:" + std::to_string(wal_seq_++), std::move(wal));

  // The adjacency entry (with the full edge property set) is stored on
  // BOTH endpoints, duplicating every edge.
  src_it->second.adjacency.push_back({true, id, label, dst, properties});
  dst_it->second.adjacency.push_back(
      {false, id, label, src, std::move(properties)});
  // Edge locator: JanusGraph edge ids embed the source vertex; looking an
  // edge up by id routes through the source's adjacency column.
  std::string locator;
  PutValue(src, &locator);
  store_->Put(EdgeLocatorKey(id), std::move(locator));
  return Status::OK();
}

Status JanusLikeDb::Finalize() {
  if (finalized_) return Status::OK();
  for (const auto& [id, staged] : staging_) {
    std::string vblob;
    PutString(staged.label, &vblob);
    PutProperties(staged.properties, &vblob);
    store_->Put(VertexKey(id), std::move(vblob));
    store_->Put(LabelIndexKey(staged.label, id), "");

    std::string ablob;
    PutVarint(staged.adjacency.size(), &ablob);
    for (const AdjRecord& rec : staged.adjacency) {
      ablob.push_back(rec.outgoing ? 1 : 0);
      PutValue(rec.edge_id, &ablob);
      PutString(rec.label, &ablob);
      PutValue(rec.other_id, &ablob);
      PutProperties(rec.properties, &ablob);
    }
    // Column-per-edge cell metadata (timestamps, TTL markers) the
    // wide-column schema carries for every adjacency entry.
    extra_disk_bytes_ += 56 * staged.adjacency.size();
    store_->Put(AdjacencyKey(id), std::move(ablob));
  }
  // WAL can be dropped once the columns are durable.
  for (const std::string& key : store_->ScanKeys("wal:")) {
    store_->Delete(key);
  }
  staging_.clear();
  finalized_ = true;
  return Status::OK();
}

Status JanusLikeDb::Open() {
  DB2G_RETURN_NOT_OK(Finalize());
  // Warm the decoded-object cache, mirroring the 15-17 s open times the
  // paper reports for JanusGraph.
  for (const auto& [key, blob] : store_->Scan("v:")) {
    (void)blob;
    if (lru_.size() >= options_.cache_capacity) return Status::OK();
    std::string id_text = key.substr(2);
    char* end = nullptr;
    long long n = std::strtoll(id_text.c_str(), &end, 10);
    Value id = (end != nullptr && *end == '\0' && !id_text.empty())
                   ? Value(static_cast<int64_t>(n))
                   : Value(id_text);
    (void)FetchVertex(id);
    if (lru_.size() >= options_.cache_capacity) return Status::OK();
    (void)FetchAdjacency(id);
  }
  return Status::OK();
}

std::optional<std::string> JanusLikeDb::CachedGet(
    const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.blob;
    }
  }
  ChargeMissPenalty(options_.miss_penalty_us);
  std::optional<std::string> blob = store_->Get(key);
  if (!blob) return std::nullopt;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_.count(key) == 0) {
    while (lru_.size() >= options_.cache_capacity && !lru_.empty()) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    CacheSlot slot;
    slot.blob = *blob;
    slot.lru_it = lru_.begin();
    cache_.emplace(key, std::move(slot));
  }
  return blob;
}

Result<VertexPtr> JanusLikeDb::FetchVertex(const Value& id) const {
  std::optional<std::string> blob = CachedGet(VertexKey(id));
  if (!blob) return VertexPtr(nullptr);
  Decoder dec(*blob);
  auto v = std::make_shared<Vertex>();
  v->id = id;
  DB2G_RETURN_NOT_OK(dec.GetString(&v->label));
  DB2G_RETURN_NOT_OK(GetProperties(&dec, &v->properties));
  return VertexPtr(std::move(v));
}

Result<JanusLikeDb::AdjListPtr> JanusLikeDb::FetchAdjacency(
    const Value& id) const {
  auto list = std::make_shared<std::vector<AdjRecord>>();
  std::vector<AdjRecord>& out = *list;
  std::optional<std::string> blob = CachedGet(AdjacencyKey(id));
  if (!blob) return AdjListPtr(std::move(list));
  // The whole column is decoded on every access, whatever fraction the
  // query needs.
  Decoder dec(*blob);
  uint64_t n = 0;
  DB2G_RETURN_NOT_OK(dec.GetVarint(&n));
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    AdjRecord rec;
    uint64_t dir = 0;
    if (dec.AtEnd()) return Status::Internal("janus: truncated adjacency");
    std::string dir_byte;
    // direction byte
    rec.outgoing = false;
    {
      // Decoder has no raw-byte getter; use GetVarint (single byte 0/1).
      DB2G_RETURN_NOT_OK(dec.GetVarint(&dir));
      rec.outgoing = dir != 0;
    }
    DB2G_RETURN_NOT_OK(dec.GetValue(&rec.edge_id));
    DB2G_RETURN_NOT_OK(dec.GetString(&rec.label));
    DB2G_RETURN_NOT_OK(dec.GetValue(&rec.other_id));
    DB2G_RETURN_NOT_OK(GetProperties(&dec, &rec.properties));
    out.push_back(std::move(rec));
  }
  return AdjListPtr(std::move(list));
}

EdgePtr JanusLikeDb::MaterializeEdge(const Value& anchor_id,
                                     const AdjRecord& rec) const {
  auto e = std::make_shared<Edge>();
  e->id = rec.edge_id;
  e->label = rec.label;
  e->properties = rec.properties;
  if (rec.outgoing) {
    e->src_id = anchor_id;
    e->dst_id = rec.other_id;
  } else {
    e->src_id = rec.other_id;
    e->dst_id = anchor_id;
  }
  return e;
}

Status JanusLikeDb::Vertices(const LookupSpec& spec,
                             std::vector<VertexPtr>* out) {
  if (!spec.ids.empty()) {
    for (const Value& id : spec.ids) {
      Result<VertexPtr> v = FetchVertex(id);
      if (!v.ok()) return v.status();
      if (*v != nullptr && MatchesSpec(**v, spec)) out->push_back(*v);
    }
    return Status::OK();
  }
  if (!spec.labels.empty()) {
    for (const std::string& label : spec.labels) {
      for (const std::string& key : store_->ScanKeys("li:" + label + ":")) {
        std::string id_text = key.substr(4 + label.size());
        // Ids in the index are rendered; recover ints when they parse.
        Value id;
        char* end = nullptr;
        long long n = std::strtoll(id_text.c_str(), &end, 10);
        id = (end != nullptr && *end == '\0' && !id_text.empty())
                 ? Value(static_cast<int64_t>(n))
                 : Value(id_text);
        Result<VertexPtr> v = FetchVertex(id);
        if (!v.ok()) return v.status();
        if (*v != nullptr && MatchesSpec(**v, spec)) out->push_back(*v);
      }
    }
    return Status::OK();
  }
  for (const auto& [key, blob] : store_->Scan("v:")) {
    std::string id_text = key.substr(2);
    char* end = nullptr;
    long long n = std::strtoll(id_text.c_str(), &end, 10);
    Value id = (end != nullptr && *end == '\0' && !id_text.empty())
                   ? Value(static_cast<int64_t>(n))
                   : Value(id_text);
    Decoder dec(blob);
    auto v = std::make_shared<Vertex>();
    v->id = id;
    DB2G_RETURN_NOT_OK(dec.GetString(&v->label));
    DB2G_RETURN_NOT_OK(GetProperties(&dec, &v->properties));
    if (MatchesSpec(*v, spec)) out->push_back(std::move(v));
  }
  return Status::OK();
}

Status JanusLikeDb::Edges(const LookupSpec& spec, std::vector<EdgePtr>* out) {
  auto emit_from = [&](const std::vector<Value>& anchors,
                       bool want_outgoing) -> Status {
    for (const Value& vid : anchors) {
      Result<AdjListPtr> adj = FetchAdjacency(vid);
      if (!adj.ok()) return adj.status();
      for (const AdjRecord& rec : **adj) {
        if (rec.outgoing != want_outgoing) continue;
        if (!spec.labels.empty() &&
            std::find(spec.labels.begin(), spec.labels.end(), rec.label) ==
                spec.labels.end()) {
          continue;
        }
        EdgePtr e = MaterializeEdge(vid, rec);
        if (MatchesSpec(*e, spec)) out->push_back(std::move(e));
      }
    }
    return Status::OK();
  };

  if (!spec.src_ids.empty()) {
    DB2G_RETURN_NOT_OK(emit_from(spec.src_ids, /*want_outgoing=*/true));
    if (!spec.dst_ids.empty()) {
      out->erase(std::remove_if(out->begin(), out->end(),
                                [&](const EdgePtr& e) {
                                  return std::find(spec.dst_ids.begin(),
                                                   spec.dst_ids.end(),
                                                   e->dst_id) ==
                                         spec.dst_ids.end();
                                }),
                 out->end());
    }
    return Status::OK();
  }
  if (!spec.dst_ids.empty()) {
    return emit_from(spec.dst_ids, /*want_outgoing=*/false);
  }
  if (!spec.ids.empty()) {
    for (const Value& id : spec.ids) {
      std::optional<std::string> locator = store_->Get(EdgeLocatorKey(id));
      if (!locator) continue;
      Decoder dec(*locator);
      Value src;
      DB2G_RETURN_NOT_OK(dec.GetValue(&src));
      Result<AdjListPtr> adj = FetchAdjacency(src);
      if (!adj.ok()) return adj.status();
      for (const AdjRecord& rec : **adj) {
        if (!rec.outgoing || !(rec.edge_id == id)) continue;
        EdgePtr e = MaterializeEdge(src, rec);
        if (MatchesSpec(*e, spec)) out->push_back(std::move(e));
        break;
      }
    }
    return Status::OK();
  }
  // Full edge scan: walk every adjacency column, outgoing side only.
  for (const auto& [key, blob] : store_->Scan("a:")) {
    std::string id_text = key.substr(2);
    char* end = nullptr;
    long long n = std::strtoll(id_text.c_str(), &end, 10);
    Value vid = (end != nullptr && *end == '\0' && !id_text.empty())
                    ? Value(static_cast<int64_t>(n))
                    : Value(id_text);
    Decoder dec(blob);
    uint64_t count = 0;
    DB2G_RETURN_NOT_OK(dec.GetVarint(&count));
    for (uint64_t i = 0; i < count; ++i) {
      AdjRecord rec;
      uint64_t dir = 0;
      DB2G_RETURN_NOT_OK(dec.GetVarint(&dir));
      rec.outgoing = dir != 0;
      DB2G_RETURN_NOT_OK(dec.GetValue(&rec.edge_id));
      DB2G_RETURN_NOT_OK(dec.GetString(&rec.label));
      DB2G_RETURN_NOT_OK(dec.GetValue(&rec.other_id));
      DB2G_RETURN_NOT_OK(GetProperties(&dec, &rec.properties));
      if (!rec.outgoing) continue;
      EdgePtr e = MaterializeEdge(vid, rec);
      if (MatchesSpec(*e, spec)) out->push_back(std::move(e));
    }
  }
  return Status::OK();
}

}  // namespace db2graph::baselines
