// Copyright (c) 2026 The db2graph-repro Authors.
//
// ExecConfig: the one execution-tuning surface. Before it, every feature
// added its own toggle — RuntimeOptions::streaming_execution /
// vectorized_execution, Database::set_vectorized_execution /
// set_profile_execution, the governor's env-seeded defaults — and a
// degree-of-parallelism knob would have been a ninth setter. ExecConfig
// replaces them with one immutable, builder-style value:
//
//   ExecConfig cfg = ExecConfig().parallelism(4).vectorized(true);
//
// Each field is tri-state: explicitly set, or unset ("inherit"). A query
// resolves its effective config by overlaying, in order:
//
//   engine defaults <- ExecConfig::ProcessDefault() <- session config
//       (Database::SetExecConfig / Db2Graph::Options::exec) <- per-call
//       ExecOptions::config
//
// ...so an unset field at one layer falls through to the layer below.
// The per-query result travels thread-locally via ScopedExecConfig (the
// same propagation model as ScopedTrace / ScopedQueryContext), which is
// how a Gremlin execution's config reaches the SQL compiles it issues
// deep inside the provider without signature plumbing.
//
// Governor limits ride along (timeout/rows/bytes follow the governor's
// 0 = inherit, negative = unlimited convention); ResolveLimits still
// interprets them, ExecConfig only carries them.

#ifndef DB2GRAPH_COMMON_EXEC_CONFIG_H_
#define DB2GRAPH_COMMON_EXEC_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace db2graph {

class ExecConfig {
 public:
  /// Engine defaults, applied when every layer leaves a field unset.
  static constexpr int kDefaultParallelism = 1;
  static constexpr bool kDefaultVectorized = true;
  static constexpr bool kDefaultStreaming = true;
  static constexpr bool kDefaultProfile = false;

  ExecConfig() = default;

  // ---- builders (return a modified copy; *this is never mutated) ----

  /// Degree of intra-query parallelism: number of concurrent morsel
  /// workers for eligible scans, hash-join builds, and barrier drains.
  /// 1 = serial (the default); values are clamped to [1, 64] on set.
  ExecConfig parallelism(int dop) const {
    ExecConfig c = *this;
    c.parallelism_ = dop < 1 ? 1 : (dop > 64 ? 64 : dop);
    c.has_parallelism_ = true;
    return c;
  }
  /// Column-at-a-time SQL execution for eligible single-table scans.
  ExecConfig vectorized(bool on) const {
    ExecConfig c = *this;
    c.vectorized_ = on;
    c.has_vectorized_ = true;
    return c;
  }
  /// Streaming (block-at-a-time) Gremlin execution.
  ExecConfig streaming(bool on) const {
    ExecConfig c = *this;
    c.streaming_ = on;
    c.has_streaming_ = true;
    return c;
  }
  /// Collect per-operator profiles for every statement (EXPLAIN ANALYZE
  /// collects them per-statement regardless).
  ExecConfig profile(bool on) const {
    ExecConfig c = *this;
    c.profile_ = on;
    c.has_profile_ = true;
    return c;
  }
  /// Rows (or traversers) per execution block; 0 = engine default.
  ExecConfig block_rows(size_t rows) const {
    ExecConfig c = *this;
    c.block_rows_ = rows;
    c.has_block_rows_ = true;
    return c;
  }
  /// Governor limits (0 = inherit process default, negative = unlimited).
  ExecConfig timeout_ms(int64_t ms) const {
    ExecConfig c = *this;
    c.timeout_ms_ = ms;
    c.has_timeout_ms_ = true;
    return c;
  }
  ExecConfig max_result_rows(int64_t rows) const {
    ExecConfig c = *this;
    c.max_result_rows_ = rows;
    c.has_max_result_rows_ = true;
    return c;
  }
  ExecConfig max_memory_bytes(int64_t bytes) const {
    ExecConfig c = *this;
    c.max_memory_bytes_ = bytes;
    c.has_max_memory_bytes_ = true;
    return c;
  }

  // ---- getters (resolved against the engine defaults when unset) ----

  int parallelism() const {
    return has_parallelism_ ? parallelism_ : kDefaultParallelism;
  }
  bool vectorized() const {
    return has_vectorized_ ? vectorized_ : kDefaultVectorized;
  }
  bool streaming() const {
    return has_streaming_ ? streaming_ : kDefaultStreaming;
  }
  bool profile() const { return has_profile_ ? profile_ : kDefaultProfile; }
  /// 0 = caller should use its own engine default.
  size_t block_rows() const { return has_block_rows_ ? block_rows_ : 0; }
  int64_t timeout_ms() const { return has_timeout_ms_ ? timeout_ms_ : 0; }
  int64_t max_result_rows() const {
    return has_max_result_rows_ ? max_result_rows_ : 0;
  }
  int64_t max_memory_bytes() const {
    return has_max_memory_bytes_ ? max_memory_bytes_ : 0;
  }

  // ---- tri-state inspection ----

  bool has_parallelism() const { return has_parallelism_; }
  bool has_vectorized() const { return has_vectorized_; }
  bool has_streaming() const { return has_streaming_; }
  bool has_profile() const { return has_profile_; }
  bool has_block_rows() const { return has_block_rows_; }
  bool has_timeout_ms() const { return has_timeout_ms_; }
  bool has_max_result_rows() const { return has_max_result_rows_; }
  bool has_max_memory_bytes() const { return has_max_memory_bytes_; }

  /// Layered resolution: every field `overrides` set wins; unset fields
  /// keep this config's state (set or unset).
  ExecConfig OverlaidBy(const ExecConfig& overrides) const;

  /// The process-wide default layer, seeded once from the environment
  /// (DB2G_PARALLELISM, DB2G_VECTORIZED, DB2G_STREAMING) and adjustable
  /// at runtime. Thread-safe.
  static ExecConfig ProcessDefault();
  static void SetProcessDefault(const ExecConfig& config);

  /// The per-query config installed on this thread (fully resolved by the
  /// installer); defaults-everything when no scope is active.
  static ExecConfig Current();

 private:
  friend class ScopedExecConfig;

  int parallelism_ = kDefaultParallelism;
  bool vectorized_ = kDefaultVectorized;
  bool streaming_ = kDefaultStreaming;
  bool profile_ = kDefaultProfile;
  size_t block_rows_ = 0;
  int64_t timeout_ms_ = 0;
  int64_t max_result_rows_ = 0;
  int64_t max_memory_bytes_ = 0;

  bool has_parallelism_ = false;
  bool has_vectorized_ = false;
  bool has_streaming_ = false;
  bool has_profile_ = false;
  bool has_block_rows_ = false;
  bool has_timeout_ms_ = false;
  bool has_max_result_rows_ = false;
  bool has_max_memory_bytes_ = false;
};

/// RAII installer of the thread's per-query ExecConfig; saves and
/// restores the previous one so nested executions (graphQuery inside a
/// SELECT) compose — the same contract as ScopedQueryContext.
class ScopedExecConfig {
 public:
  explicit ScopedExecConfig(const ExecConfig& config);
  ~ScopedExecConfig();
  ScopedExecConfig(const ScopedExecConfig&) = delete;
  ScopedExecConfig& operator=(const ScopedExecConfig&) = delete;

 private:
  const ExecConfig* previous_;
  ExecConfig config_;
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_EXEC_CONFIG_H_
