// Copyright (c) 2026 The db2graph-repro Authors.
//
// The workload governor (Db2's Workload Manager, scaled down): per-query
// deadlines, cooperative cancellation, and memory / result-row budgets,
// enforced at the same block boundaries that make execution incremental.
//
// One QueryContext exists per governed execution, created by
// Db2Graph::Execute from ExecOptions limits (with process-wide defaults
// from GovernorDefaults / environment variables) and installed thread-
// locally — the same propagation model as QueryTrace: deep layers (the
// SQL operator tree, the interpreter's pull cursor, the provider's
// fan-out producers) call CheckCurrent() at each block boundary without
// any signature plumbing, and fan-out pool workers inherit the context
// through ScopedQueryContext exactly like ScopedTrace.
//
// Violations latch: the first failed check fixes the context's terminal
// status (kTimeout / kCancelled / kResourceExhausted) and every later
// check returns it, so a query unwinding through many operators reports
// one coherent reason.
//
// Zero-cost-when-ungoverned contract: CheckCurrent() on a thread with no
// installed context is one thread-local read and a null check.

#ifndef DB2GRAPH_COMMON_WORKLOAD_GOVERNOR_H_
#define DB2GRAPH_COMMON_WORKLOAD_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace db2graph::governor {

/// Registry metric names the governor maintains (termination reasons as
/// counters, surfaced through sysmon.metrics).
inline constexpr const char* kTimeoutsCounter = "governor.timeouts";
inline constexpr const char* kCancelsCounter = "governor.cancels";
inline constexpr const char* kShedCounter = "governor.shed";
inline constexpr const char* kResourceExhaustedCounter =
    "governor.resource_exhausted";

/// A shared cancellation flag, cheap to copy; every copy refers to the
/// same state. A default-constructed token is detached (never fires) —
/// ExecOptions carries one by value without forcing an allocation on
/// callers that never cancel.
class CancelToken {
 public:
  CancelToken() = default;

  /// A live token that Cancel() can fire.
  static CancelToken Make();

  bool valid() const { return state_ != nullptr; }
  /// Fires the token; the first caller's reason wins. No-op when detached.
  void Cancel(std::string reason);
  bool cancelled() const;
  /// The reason passed to Cancel(); empty before it fires.
  std::string reason() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

/// Effective limits of one execution; 0 = unlimited for every field.
struct GovernorLimits {
  int64_t timeout_ms = 0;
  int64_t max_result_rows = 0;
  int64_t max_memory_bytes = 0;
  bool any() const {
    return timeout_ms > 0 || max_result_rows > 0 || max_memory_bytes > 0;
  }
};

/// Process-wide default limits, applied when an execution's ExecOptions
/// leave a field at 0 ("inherit"). Seeded once from the environment —
/// DB2G_QUERY_TIMEOUT_MS, DB2G_MAX_RESULT_ROWS, DB2G_MAX_MEMORY_BYTES —
/// and adjustable at runtime (Db2Graph forwards here).
class GovernorDefaults {
 public:
  static GovernorDefaults& Global();

  GovernorLimits Get() const;
  void SetTimeoutMs(int64_t ms);
  void SetMaxResultRows(int64_t rows);
  void SetMaxMemoryBytes(int64_t bytes);

 private:
  GovernorDefaults();
  std::atomic<int64_t> timeout_ms_{0};
  std::atomic<int64_t> max_result_rows_{0};
  std::atomic<int64_t> max_memory_bytes_{0};
};

/// Resolves per-call option fields against the process defaults:
/// 0 = inherit the default, negative = explicitly unlimited, positive =
/// that value.
GovernorLimits ResolveLimits(int64_t timeout_ms, int64_t max_result_rows,
                             int64_t max_memory_bytes);

/// The per-query governance state. Thread-safe: fan-out producers,
/// KillQuery callers, and sysmon.active_queries all touch a running
/// query's context concurrently.
class QueryContext {
 public:
  QueryContext(std::string script, GovernorLimits limits,
               CancelToken external);

  uint64_t id() const { return id_; }
  const std::string& script() const { return script_; }
  const GovernorLimits& limits() const { return limits_; }
  uint64_t start_micros() const { return start_micros_; }
  /// Wall time since the context was created (monotonic clock).
  uint64_t elapsed_micros() const;

  /// The cooperative check, called at block boundaries. Returns (and
  /// latches) kCancelled when this query's token — its own or the
  /// external one from ExecOptions — has fired, kTimeout when the
  /// deadline passed, or a previously latched violation.
  Status Check();

  /// Cancels this query; Check() returns kCancelled from now on.
  void Cancel(std::string reason);

  /// Memory budget accounting (approximate bytes of retained traverser /
  /// queue-block state). Charge latches kResourceExhausted when the
  /// running total crosses the budget.
  Status ChargeMemory(uint64_t bytes);
  void ReleaseMemory(uint64_t bytes);
  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }

  /// Result-row budget: `rows` is the size a traverser stream just
  /// reached; exceeding max_result_rows latches kResourceExhausted.
  Status CheckResultRows(uint64_t rows);

  /// Monotonic progress counter shown by sysmon.active_queries.
  void AddRowsProduced(uint64_t n) {
    rows_produced_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t rows_produced() const {
    return rows_produced_.load(std::memory_order_relaxed);
  }

 private:
  /// Latches `code` as the terminal status (first violation wins) and
  /// returns the latched status.
  Status Latch(StatusCode code, std::string message);

  const uint64_t id_;
  const std::string script_;
  const GovernorLimits limits_;
  const CancelToken external_;
  CancelToken own_;
  const uint64_t start_micros_;
  /// Deadline in monotonic micros; 0 = none.
  const uint64_t deadline_micros_;

  /// StatusCode of the latched violation; kOk while healthy. The message
  /// lives behind the mutex (written once, by the latching thread).
  std::atomic<int> violation_{static_cast<int>(StatusCode::kOk)};
  mutable std::mutex mutex_;
  std::string violation_message_;

  std::atomic<uint64_t> memory_used_{0};
  std::atomic<uint64_t> memory_peak_{0};
  std::atomic<uint64_t> rows_produced_{0};
};

/// The thread's installed context; nullptr when the execution is
/// ungoverned (no limits and no token).
QueryContext* CurrentQueryContext();

/// Cooperative check against the installed context; OK when ungoverned.
/// This is THE call sites use — one TLS read when no governor is active.
Status CheckCurrent();

/// RAII installer; saves and restores the previous thread-local context,
/// so fan-out workers and nested graphQuery interpreters compose (same
/// contract as ScopedTrace). Installing nullptr is allowed and makes the
/// scope ungoverned.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* ctx);
  ~ScopedQueryContext();
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* previous_;
};

/// Process-wide registry of running governed queries: the backing store
/// of sysmon.active_queries and the lookup KillQuery goes through.
class ActiveQueryRegistry {
 public:
  static ActiveQueryRegistry& Global();

  void Register(std::shared_ptr<QueryContext> ctx);
  void Unregister(uint64_t id);
  /// Cancels the query; false when no such query is running.
  bool Kill(uint64_t id, std::string reason);
  /// Running queries, id order.
  std::vector<std::shared_ptr<QueryContext>> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<QueryContext>> active_;
};

/// Registers a query in the active registry and installs it on this
/// thread for the scope's duration; unregisters on destruction.
class ScopedActiveQuery {
 public:
  explicit ScopedActiveQuery(std::shared_ptr<QueryContext> ctx);
  ~ScopedActiveQuery();
  ScopedActiveQuery(const ScopedActiveQuery&) = delete;
  ScopedActiveQuery& operator=(const ScopedActiveQuery&) = delete;

 private:
  std::shared_ptr<QueryContext> ctx_;
  ScopedQueryContext scope_;
};

/// The `ok|error|timeout|cancelled|overloaded|resource_exhausted` label
/// recorded in sysmon.query_log and the slow-query log.
const char* TerminationReason(const Status& status);

/// Bumps the governor.* counter matching a terminal status; no-op for OK
/// and plain errors (shed is counted at the admission gate, not here).
void CountTermination(const Status& status);

/// Approximate retained bytes per buffered traverser / vertex, used by
/// the block-boundary memory accounting. Deliberately coarse: the budget
/// bounds order-of-magnitude blowups, not exact allocations.
inline constexpr uint64_t kApproxTraverserBytes = 192;
inline constexpr uint64_t kApproxVertexBytes = 256;

}  // namespace db2graph::governor

#endif  // DB2GRAPH_COMMON_WORKLOAD_GOVERNOR_H_
